// Table 8 + Figure 10: why long-series support matters. The long trajectory's
// data is generated (i) by GenDT with its cross-batch autoregressive tail and
// (ii) by stitching together INDEPENDENTLY generated short (50 s / 100 s)
// trajectories — the stitched variants show seam artifacts and worse
// distribution match.
#include "harness.h"

using namespace gendt;

namespace {
// Generate with the autoregressive tail reset every `chunk` windows —
// equivalent to stitching independently generated short trajectories.
core::GeneratedSeries stitched_generate(const core::GenDTGenerator& gendt,
                                        const std::vector<context::Window>& windows,
                                        size_t chunk, uint64_t seed) {
  core::GeneratedSeries out;
  for (size_t start = 0; start < windows.size(); start += chunk) {
    const size_t end = std::min(windows.size(), start + chunk);
    std::vector<context::Window> part(windows.begin() + static_cast<long>(start),
                                      windows.begin() + static_cast<long>(end));
    core::GeneratedSeries piece = gendt.generate(part, seed + start * 13);
    if (out.channels.empty()) out.channels.assign(piece.channels.size(), {});
    for (size_t ch = 0; ch < piece.channels.size(); ++ch)
      out.channels[ch].insert(out.channels[ch].end(), piece.channels[ch].begin(),
                              piece.channels[ch].end());
  }
  return out;
}

// Mean |jump| at stitching seams vs elsewhere (Fig. 10's visual artifact).
double seam_jump(const core::GeneratedSeries& g, size_t period) {
  double seam = 0.0;
  int n = 0;
  for (size_t i = period; i < g.channels[0].size(); i += period) {
    seam += std::abs(g.channels[0][i] - g.channels[0][i - 1]);
    ++n;
  }
  return n > 0 ? seam / n : 0.0;
}
}  // namespace

int main() {
  bench::print_title("Table 8 + Figure 10: GenDT vs stitched short-trajectory generation");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  sim::DriveTestRecord long_rec = sim::make_long_complex_record(
      ds, cfg.scale.train_duration_s >= 600.0 ? 1500.0 : 600.0);

  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);
  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  auto gendt = bench::train_gendt_generator(ds, pipe, cfg, mcfg);

  auto windows = pipe.builder->generation_windows(long_rec);
  core::GeneratedSeries truth = core::real_series(windows, pipe.norm);

  const int L = cfg.context.window_len;  // 50 samples/window
  core::GeneratedSeries full = gendt->generate(windows, 42);
  core::GeneratedSeries s50 = stitched_generate(*gendt, windows, 1, 42);   // ~50 s pieces
  core::GeneratedSeries s100 = stitched_generate(*gendt, windows, 2, 42);  // ~100 s pieces

  std::printf("%-18s %8s %8s %8s %14s\n", "Method", "MAE", "DTW", "HWD", "seam jump (dB)");
  auto row = [&](const char* name, const core::GeneratedSeries& g, size_t period) {
    const bench::Scores s = bench::score_series(truth.channels[0], g.channels[0]);
    std::printf("%-18s %8.2f %8.2f %8.2f %14.2f\n", name, s.mae, s.dtw, s.hwd,
                seam_jump(g, period));
  };
  row("GenDT", full, static_cast<size_t>(L));
  row("50s Trajectory", s50, static_cast<size_t>(L));
  row("100s Trajectory", s100, static_cast<size_t>(2 * L));

  const double real_roc = metrics::series_stats(truth.channels[0]).roc;
  std::printf("\nReal series mean step-to-step change: %.2f dB (seam jumps well above this "
              "are stitch artifacts).\n", real_roc);

  std::printf("\nLast ~400 samples (Fig. 10 zoom):\n");
  auto tail = [](const std::vector<double>& v, size_t n) {
    return std::vector<double>(v.end() - static_cast<long>(std::min(n, v.size())), v.end());
  };
  bench::ascii_chart({{"real", tail(truth.channels[0], 400)},
                      {"GenDT", tail(full.channels[0], 400)},
                      {"50s stitched", tail(s50.channels[0], 400)}},
                     100, 14);
  std::printf("\nExpected shape (paper Table 8/Fig. 10): stitched variants worse on all "
              "metrics, especially HWD, with visible discontinuities at seams.\n");
  return 0;
}
