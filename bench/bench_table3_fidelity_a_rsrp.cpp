// Table 3: generated RSRP time-series fidelity (MAE/DTW/HWD) of GenDT and
// the five baselines for each Dataset A scenario (walk/bus/tram). All rows
// come from ONE model per method trained across all scenarios, as in the
// paper.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Table 3: RSRP fidelity per scenario, Dataset A (lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_a(cfg.scale);
  bench::FidelityResults res = bench::run_fidelity_eval(ds, cfg);
  bench::print_fidelity_table(res, /*kpi_channel=*/0);
  std::printf("\nExpected shape (paper Table 3): GenDT best on MAE/DTW everywhere; FDaS "
              "competitive only on HWD; Real Cont. DG second overall.\n");
  return 0;
}
