// Figure 18 (Appendix C): qualitative sample — generated RSRP series for the
// Dataset A walk scenario, GenDT vs Real Context DG, against ground truth.
// GenDT's dynamic (GNN) context handling tracks local structure that the
// static per-window context of DG misses.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Figure 18: generated RSRP sample, GenDT vs Real Context DG (Walk)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_a(cfg.scale);
  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);

  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  auto gendt = bench::train_gendt_generator(ds, pipe, cfg, mcfg);

  baselines::DoppelGANger dg(
      {.epochs = cfg.baseline_epochs, .use_real_context = true, .seed = cfg.seed + 4},
      pipe.norm, static_cast<int>(ds.kpis.size()));
  std::fprintf(stderr, "[fig18] training Real Cont. DG...\n");
  dg.fit(pipe.train_windows);

  const sim::DriveTestRecord& walk = ds.test[0];  // Dataset A test[0] = walk
  auto windows = pipe.builder->generation_windows(walk);
  core::GeneratedSeries truth = core::real_series(windows, pipe.norm);
  core::GeneratedSeries g1 = gendt->generate(windows, 77);
  core::GeneratedSeries g2 = dg.generate(windows, 77);

  std::printf("(a) GenDT\n");
  bench::ascii_chart({{"real", truth.channels[0]}, {"generated", g1.channels[0]}}, 100, 13);
  std::printf("\n(b) Real Context DG\n");
  bench::ascii_chart({{"real", truth.channels[0]}, {"generated", g2.channels[0]}}, 100, 13);

  const bench::Scores s1 = bench::score_series(truth.channels[0], g1.channels[0]);
  const bench::Scores s2 = bench::score_series(truth.channels[0], g2.channels[0]);
  std::printf("\n%-16s %8s %8s %8s\n", "Method", "MAE", "DTW", "HWD");
  std::printf("%-16s %8.2f %8.2f %8.2f\n", "GenDT", s1.mae, s1.dtw, s1.hwd);
  std::printf("%-16s %8.2f %8.2f %8.2f\n", "Real Cont. DG", s2.mae, s2.dtw, s2.hwd);
  return 0;
}
