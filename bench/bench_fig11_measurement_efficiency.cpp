// Figure 11: measurement efficiency — uncertainty-guided vs random selection
// of additional training subsets, tracking DTW and HWD on the held-out long
// trajectory as the fraction of used measurement data grows.
#include "harness.h"

#include "gendt/core/active_learning.h"

using namespace gendt;

int main() {
  bench::print_title(
      "Figure 11: uncertainty-driven vs random training-data selection (Dataset B)");
  bench::EvalConfig cfg = bench::default_eval_config();
  // More records give more geographic spread for subset selection.
  cfg.scale.records_per_scenario = 2;
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  sim::DriveTestRecord eval_rec = sim::make_long_complex_record(
      ds, cfg.scale.train_duration_s >= 600.0 ? 1000.0 : 500.0);

  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);
  auto eval_windows = pipe.builder->generation_windows(eval_rec);

  auto subsets = sim::geographic_subsets(ds, 23);
  std::vector<std::vector<context::Window>> subset_windows;
  for (const auto& s : subsets) {
    std::vector<context::Window> w;
    for (const auto& rec : s) {
      auto ws = pipe.builder->training_windows(rec);
      w.insert(w.end(), ws.begin(), ws.end());
    }
    if (!w.empty()) subset_windows.push_back(std::move(w));
  }
  std::printf("Geographic subsets available: %zu; evaluation route: %zu samples.\n\n",
              subset_windows.size(), eval_rec.samples.size());

  core::ActiveLearningConfig acfg;
  acfg.model.num_channels = static_cast<int>(ds.kpis.size());
  acfg.model.hidden = cfg.gendt_hidden;
  acfg.initial_train.epochs = std::max(3, cfg.gendt_epochs / 2);
  acfg.incremental_train.epochs = std::max(2, cfg.gendt_epochs / 4);
  acfg.max_steps = static_cast<int>(std::min<size_t>(8, subset_windows.size()));
  acfg.seed = cfg.seed;

  std::fprintf(stderr, "[fig11] running uncertainty-guided campaign...\n");
  auto unc = core::run_active_learning(subset_windows, eval_windows, pipe.norm,
                                       core::SelectionStrategy::kUncertainty, acfg);
  std::fprintf(stderr, "[fig11] running random-selection campaign...\n");
  auto rnd = core::run_active_learning(subset_windows, eval_windows, pipe.norm,
                                       core::SelectionStrategy::kRandom, acfg);

  std::printf("%-10s | %28s | %28s\n", "", "Uncertainty Selection", "Random Selection");
  std::printf("%-10s | %8s %8s %8s | %8s %8s %8s\n", "data used", "MAE", "DTW", "HWD", "MAE",
              "DTW", "HWD");
  const size_t steps = std::min(unc.size(), rnd.size());
  for (size_t i = 0; i < steps; ++i) {
    std::printf("%9.1f%% | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
                100.0 * unc[i].fraction_used, unc[i].mae, unc[i].dtw, unc[i].hwd, rnd[i].mae,
                rnd[i].dtw, rnd[i].hwd);
  }

  // Where does each strategy first reach within 10% of its final DTW?
  auto plateau = [](const std::vector<core::ActiveLearningStep>& s) {
    const double final_dtw = s.back().dtw;
    for (const auto& st : s)
      if (st.dtw <= final_dtw * 1.10) return st.fraction_used;
    return s.back().fraction_used;
  };
  std::printf("\nDTW plateau reached at %.0f%% of data (uncertainty) vs %.0f%% (random).\n",
              100.0 * plateau(unc), 100.0 * plateau(rnd));
  std::printf("Expected shape (paper Fig. 11): the uncertainty curve drops faster and "
              "plateaus with ~10%% of data; random needs ~2x more.\n");
  return 0;
}
