// Shared evaluation harness for the paper-reproduction benches: trains GenDT
// and the §5.2 baselines on a dataset's training split and scores generated
// KPI series on the held-out test split, per scenario and averaged, with the
// §5.1 metrics (MAE / DTW / HWD).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gendt/baselines/baselines.h"
#include "gendt/core/model.h"
#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

namespace gendt::bench {

/// One method's scores for one KPI on one evaluation series.
struct Scores {
  double mae = 0.0;
  double dtw = 0.0;
  double hwd = 0.0;
  void accumulate(const Scores& o) {
    mae += o.mae;
    dtw += o.dtw;
    hwd += o.hwd;
  }
  void scale(double f) {
    mae *= f;
    dtw *= f;
    hwd *= f;
  }
};

Scores score_series(const std::vector<double>& real, const std::vector<double>& generated);

/// Evaluation sizing: one place to keep bench runtimes sane. Values here are
/// the repo defaults; the GENDT_BENCH_FAST=1 environment variable halves the
/// training effort for smoke runs.
struct EvalConfig {
  sim::DatasetScale scale{.train_duration_s = 700.0, .test_duration_s = 300.0,
                          .records_per_scenario = 1, .seed = 42};
  context::ContextConfig context{.visible_radius_m = 4000.0, .env_radius_m = 500.0,
                                 .max_cells = 6, .window_len = 50, .train_step = 10};
  int gendt_hidden = 48;
  int gendt_epochs = 12;
  int baseline_epochs = 12;
  int dtw_band = 40;
  uint64_t seed = 7;
  /// Worker threads for GenDT training/generation (0 = all hardware
  /// threads, 1 = serial). Overridable with GENDT_THREADS; results are
  /// bitwise identical at every setting, so this is purely a speed knob.
  int threads = 0;
};

/// Applies GENDT_BENCH_FAST if set.
EvalConfig default_eval_config();

/// The full per-method, per-scenario, per-KPI result set of one dataset.
struct FidelityResults {
  std::vector<std::string> methods;                 // row order
  std::vector<std::string> scenarios;               // column groups
  std::vector<sim::Kpi> kpis;                       // channels
  // scores[method][scenario][kpi]
  std::map<std::string, std::map<std::string, std::map<int, Scores>>> scores;

  Scores average(const std::string& method, int kpi_channel) const;
};

/// Trains GenDT + all baselines on `dataset.train`, generates for each test
/// record, scores per scenario. The GenDT generator is returned through
/// `gendt_out` (when non-null) for follow-up experiments on the same model.
FidelityResults run_fidelity_eval(const sim::Dataset& dataset, const EvalConfig& cfg,
                                  std::unique_ptr<core::GenDTGenerator>* gendt_out = nullptr,
                                  context::ContextBuilder** builder_out = nullptr);

/// Build the standard context pipeline for a dataset.
struct Pipeline {
  context::KpiNorm norm;
  std::unique_ptr<context::ContextBuilder> builder;
  std::vector<context::Window> train_windows;
};
Pipeline make_pipeline(const sim::Dataset& dataset, const EvalConfig& cfg);

/// Train a fresh GenDT on the pipeline's training windows.
std::unique_ptr<core::GenDTGenerator> train_gendt_generator(const sim::Dataset& dataset,
                                                            const Pipeline& pipe,
                                                            const EvalConfig& cfg,
                                                            core::GenDTConfig model_overrides);

// ---- Table / figure text rendering ---------------------------------------

/// Print a header like: "== Table 3: ... ==".
void print_title(const std::string& title);

/// Print a metric table: rows = methods, column groups = scenarios (or
/// KPIs), three metric columns per group.
void print_fidelity_table(const FidelityResults& res, int kpi_channel);
void print_average_table(const FidelityResults& res);

/// Minimal ASCII line chart: series rendered as rows of a fixed-height grid.
void ascii_chart(const std::vector<std::pair<std::string, std::vector<double>>>& series,
                 int width = 100, int height = 16);

}  // namespace gendt::bench
