// Figure 4: cell density (cells per km^2) experienced along each of the
// seven measurement scenarios (Dataset A cases 1-3, Dataset B cases 4-7).
#include <cstdio>

#include "harness.h"

using namespace gendt;

namespace {
// Mean cell density within 1 km of the trajectory, sampled along it.
double scenario_density(const sim::Dataset& ds, const sim::DriveTestRecord& rec) {
  const geo::LocalProjection& proj = ds.world.projection();
  double sum = 0.0;
  int n = 0;
  for (size_t i = 0; i < rec.samples.size(); i += 20) {
    sum += ds.world.cells.density_per_km2(proj.to_enu(rec.samples[i].pos), 1000.0);
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}
}  // namespace

int main() {
  bench::print_title("Figure 4: cell density (cells/km^2) per scenario (7 cases)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset a = sim::make_dataset_a(cfg.scale);
  sim::Dataset b = sim::make_dataset_b(cfg.scale);

  std::printf("%-8s %-18s %12s\n", "Case", "Scenario", "Cells/km^2");
  int case_id = 1;
  for (const auto& rec : a.train) {
    std::printf("%-8d %-18s %12.1f\n", case_id++,
                std::string(sim::scenario_name(rec.scenario)).c_str(),
                scenario_density(a, rec));
  }
  for (const auto& rec : b.train) {
    std::printf("%-8d %-18s %12.1f\n", case_id++,
                std::string(sim::scenario_name(rec.scenario)).c_str(),
                scenario_density(b, rec));
  }
  std::printf("\nPaper reference (Fig. 4): inner-city / slow-mobility cases see tens of "
              "cells per km^2; highway cases see far fewer.\n");
  return 0;
}
