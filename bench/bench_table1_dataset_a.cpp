// Table 1: statistics of Dataset A per scenario — time granularity, average
// velocity, serving-cell dwell time, RSRP/RSRQ mean & std, sample count.
#include <cstdio>

#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Table 1: Statistics of Dataset A for different scenarios");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_a(cfg.scale);

  std::printf("%-34s %10s %10s %10s\n", "", "Walk", "Bus", "Tram");
  auto row = [&](const char* label, auto fn) {
    std::printf("%-34s", label);
    for (const auto& rec : ds.train) std::printf(" %10.2f", fn(rec));
    std::printf("\n");
  };

  row("Time Granularity (s)", [](const sim::DriveTestRecord& r) {
    return r.samples.size() > 1
               ? (r.samples.back().t - r.samples.front().t) /
                     static_cast<double>(r.samples.size() - 1)
               : 0.0;
  });
  row("Avg. Velocity (m/s)",
      [](const sim::DriveTestRecord& r) { return r.trajectory.mean_speed_mps(); });
  row("Avg. Duration at Serving Cell (s)",
      [](const sim::DriveTestRecord& r) { return r.avg_serving_cell_duration_s(); });
  row("Avg. RSRP (dBm)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrp)).mean;
  });
  row("Std. RSRP (dBm)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrp)).stddev;
  });
  row("Avg. RSRQ (dB)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrq)).mean;
  });
  row("Std. RSRQ (dB)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrq)).stddev;
  });
  row("Measurement Samples",
      [](const sim::DriveTestRecord& r) { return static_cast<double>(r.samples.size()); });

  std::printf("\nPaper reference (Table 1): velocities 1.4/5.6/11.5 m/s, RSRP ~ -86 dBm "
              "(std ~10), RSRQ ~ -13 dB (std ~2), dwell 80/50/43 s.\n");
  return 0;
}
