// Table 5: generated RSRP fidelity per Dataset B scenario (city driving x2,
// highway x2) for GenDT and the baselines.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Table 5: RSRP fidelity per scenario, Dataset B (lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  bench::FidelityResults res = bench::run_fidelity_eval(ds, cfg);
  bench::print_fidelity_table(res, /*kpi_channel=*/0);
  std::printf("\nExpected shape (paper Table 5): GenDT generally best; highways harder "
              "than city centres for every method.\n");
  return 0;
}
