// Table 12 (Appendix C.1): ablation of GenDT's design choices on Dataset B —
// removing ResGen, the stochastic layers (SRNN), the GAN loss, or the batch
// (windowed) training, one at a time.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Table 12: GenDT ablation on Dataset B (RSRP + RSRQ, lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);

  // "No batch": one-shot training over whole records (window = full series).
  bench::EvalConfig nobatch_cfg = cfg;
  nobatch_cfg.context.window_len = 260;  // longer than most records' test split
  nobatch_cfg.context.train_step = 260;
  bench::Pipeline nobatch_pipe = bench::make_pipeline(ds, nobatch_cfg);

  struct Variant {
    std::string name;
    core::GenDTConfig cfg;
    const bench::Pipeline* pipe;
    const context::ContextConfig* gen_ctx;
  };
  core::GenDTConfig base;
  base.num_channels = static_cast<int>(ds.kpis.size());
  base.hidden = cfg.gendt_hidden;

  core::GenDTConfig no_resgen = base;
  no_resgen.use_resgen = false;
  core::GenDTConfig no_srnn = base;
  no_srnn.stochastic.enabled = false;
  core::GenDTConfig no_gan = base;
  no_gan.use_gan = false;

  const std::vector<Variant> variants = {
      {"GenDT", base, &pipe, &cfg.context},
      {"No ResGen", no_resgen, &pipe, &cfg.context},
      {"No SRNN", no_srnn, &pipe, &cfg.context},
      {"No GAN loss", no_gan, &pipe, &cfg.context},
      {"No batch", base, &nobatch_pipe, &nobatch_cfg.context},
  };

  std::printf("%-14s %8s %8s %8s   %8s %8s %8s\n", "Variant", "MAE:RSRP", "DTW:RSRP",
              "HWD:RSRP", "MAE:RSRQ", "DTW:RSRQ", "HWD:RSRQ");
  for (const auto& v : variants) {
    std::fprintf(stderr, "[ablation] training %s...\n", v.name.c_str());
    core::TrainConfig tcfg;
    tcfg.epochs = cfg.gendt_epochs;
    tcfg.seed = cfg.seed;
    core::GenDTGenerator gen(v.cfg, tcfg, v.pipe->norm);
    gen.fit(v.pipe->train_windows);

    bench::Scores rsrp, rsrq;
    int n = 0;
    for (const auto& test : ds.test) {
      auto gen_windows = v.pipe->builder->generation_windows(test);
      core::GeneratedSeries truth = core::real_series(gen_windows, v.pipe->norm);
      core::GeneratedSeries fake = gen.generate(gen_windows, cfg.seed + 31);
      rsrp.accumulate(bench::score_series(truth.channels[0], fake.channels[0]));
      rsrq.accumulate(bench::score_series(truth.channels[1], fake.channels[1]));
      ++n;
    }
    rsrp.scale(1.0 / n);
    rsrq.scale(1.0 / n);
    std::printf("%-14s %8.2f %8.2f %8.2f   %8.2f %8.2f %8.2f\n", v.name.c_str(), rsrp.mae,
                rsrp.dtw, rsrp.hwd, rsrq.mae, rsrq.dtw, rsrq.hwd);
  }
  std::printf("\nExpected shape (paper Table 12): dropping the GAN loss hurts most across "
              "the board; no ResGen mainly degrades HWD; no SRNN and no batch degrade all "
              "metrics moderately.\n");
  return 0;
}
