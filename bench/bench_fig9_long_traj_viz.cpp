// Figure 9: qualitative view of GenDT over the long complex trajectory —
// (a) the generated RSRP min/max envelope (across stochastic samples) should
// tightly cover the ground truth; (b) the generated distribution should
// match the real one.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Figure 9: GenDT over a long and complex trajectory");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  sim::DriveTestRecord long_rec = sim::make_long_complex_record(
      ds, cfg.scale.train_duration_s >= 600.0 ? 1500.0 : 600.0);

  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);
  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  auto gendt = bench::train_gendt_generator(ds, pipe, cfg, mcfg);

  auto gen_windows = pipe.builder->generation_windows(long_rec);
  core::GeneratedSeries truth = core::real_series(gen_windows, pipe.norm);

  // Envelope over 5 stochastic samples (paper: min/max per time instant).
  std::vector<core::GeneratedSeries> samples;
  for (uint64_t s = 0; s < 5; ++s) samples.push_back(gendt->generate(gen_windows, 100 + s));
  const size_t n = truth.channels[0].size();
  std::vector<double> env_lo(n, 1e9), env_hi(n, -1e9), all_gen;
  for (const auto& g : samples) {
    for (size_t i = 0; i < n; ++i) {
      env_lo[i] = std::min(env_lo[i], g.channels[0][i]);
      env_hi[i] = std::max(env_hi[i], g.channels[0][i]);
      all_gen.push_back(g.channels[0][i]);
    }
  }

  std::printf("(a) RSRP time series: real vs generated envelope (5 samples)\n");
  bench::ascii_chart({{"real", truth.channels[0]}, {"env-min", env_lo}, {"env-max", env_hi}},
                     100, 14);

  // Coverage statistic: fraction of real samples inside the envelope
  // (allowing a small tolerance as the paper's bounds are visual).
  int covered = 0;
  for (size_t i = 0; i < n; ++i) {
    if (truth.channels[0][i] >= env_lo[i] - 3.0 && truth.channels[0][i] <= env_hi[i] + 3.0)
      ++covered;
  }
  std::printf("\nEnvelope coverage of ground truth (+-3 dB): %.0f%%\n",
              100.0 * covered / static_cast<double>(n));

  // (b) distribution match.
  std::printf("\n(b) RSRP distribution (20 bins, density):\n");
  double lo = 1e9, hi = -1e9;
  for (double v : truth.channels[0]) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  auto hr = metrics::histogram(truth.channels[0], lo, hi, 20);
  auto hg = metrics::histogram(all_gen, lo, hi, 20);
  std::printf("%10s %8s %8s\n", "RSRP(dBm)", "real", "GenDT");
  for (int b = 0; b < 20; ++b) {
    std::printf("%10.1f %8.3f %8.3f\n", lo + (b + 0.5) * (hi - lo) / 20.0,
                hr[static_cast<size_t>(b)], hg[static_cast<size_t>(b)]);
  }
  std::printf("\nHWD(real, generated) = %.2f\n", metrics::hwd(truth.channels[0], all_gen));
  return 0;
}
