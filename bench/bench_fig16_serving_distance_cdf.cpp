// Figure 16 (Appendix A): CDF of the 2D distance to the primary serving cell
// for each scenario in both datasets.
#include <cstdio>

#include "harness.h"

using namespace gendt;

namespace {
std::vector<double> serving_distances(const sim::Dataset& ds, const sim::DriveTestRecord& rec) {
  std::vector<double> out;
  for (const auto& m : rec.samples) {
    const radio::Cell* c = ds.world.cells.find(m.serving_cell);
    if (c != nullptr) out.push_back(geo::haversine_m(m.pos, c->site));
  }
  return out;
}

void print_cdf_block(const char* dataset_name, const sim::Dataset& ds) {
  std::vector<double> thresholds;
  for (double d = 0.0; d <= 6000.0; d += 500.0) thresholds.push_back(d);

  std::printf("%s\n%-12s", dataset_name, "dist (m)");
  for (double th : thresholds) std::printf(" %6.0f", th);
  std::printf("\n");
  for (const auto& rec : ds.train) {
    const auto d = serving_distances(ds, rec);
    const auto cdf = metrics::ecdf(d, thresholds);
    std::printf("%-12s", std::string(sim::scenario_name(rec.scenario)).substr(0, 12).c_str());
    for (double v : cdf) std::printf(" %6.2f", v);
    std::printf("\n");
  }
  std::printf("\n");
}
}  // namespace

int main() {
  bench::print_title("Figure 16: CDF of distance to serving cell per scenario");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset a = sim::make_dataset_a(cfg.scale);
  sim::Dataset b = sim::make_dataset_b(cfg.scale);
  print_cdf_block("Dataset A:", a);
  print_cdf_block("Dataset B:", b);
  std::printf("Paper reference: slow-mobility/inner-city scenarios keep serving cells "
              "closer; highways reach cells out to several km.\n");
  return 0;
}
