// Table 7: fidelity over the long and complex trajectory (§6.1.3) — a
// multi-city route mixing inner-city driving and highway legs, held out from
// training, evaluated for every method on RSRP and RSRQ.
#include <memory>

#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title(
      "Table 7: long & complex trajectory fidelity, Dataset B (lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  const double duration =
      cfg.scale.train_duration_s >= 600.0 ? 2230.0 : 800.0;  // paper length when not FAST
  sim::DriveTestRecord long_rec = sim::make_long_complex_record(ds, duration);

  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);
  auto gen_windows = pipe.builder->generation_windows(long_rec);
  core::GeneratedSeries truth = core::real_series(gen_windows, pipe.norm);

  // Train all methods once on the standard Dataset B training split.
  std::vector<std::unique_ptr<core::TimeSeriesGenerator>> methods;
  {
    core::GenDTConfig mcfg;
    mcfg.num_channels = static_cast<int>(ds.kpis.size());
    mcfg.hidden = cfg.gendt_hidden;
    core::TrainConfig tcfg;
    tcfg.epochs = cfg.gendt_epochs;
    tcfg.seed = cfg.seed;
    {
      auto g = std::make_unique<core::GenDTGenerator>(mcfg, tcfg, pipe.norm);
      g->set_kpis(ds.kpis);
      methods.push_back(std::move(g));
    }
  }
  for (auto& b :
       baselines::make_all_baselines(pipe.norm, static_cast<int>(ds.kpis.size()), cfg.seed))
    methods.push_back(std::move(b));

  std::printf("Route: %.0f s, %zu samples, %.1f km across the region.\n\n",
              long_rec.samples.back().t, long_rec.samples.size(),
              long_rec.trajectory.length_m() / 1000.0);
  std::printf("%-14s %8s %8s %8s   %8s %8s %8s\n", "Method", "MAE:RSRP", "DTW:RSRP",
              "HWD:RSRP", "MAE:RSRQ", "DTW:RSRQ", "HWD:RSRQ");
  for (auto& m : methods) {
    std::fprintf(stderr, "[table7] training %s...\n", m->name().c_str());
    m->fit(pipe.train_windows);
    core::GeneratedSeries fake = m->generate(gen_windows, cfg.seed + 5);
    const bench::Scores rsrp = bench::score_series(truth.channels[0], fake.channels[0]);
    const bench::Scores rsrq = bench::score_series(truth.channels[1], fake.channels[1]);
    std::printf("%-14s %8.2f %8.2f %8.2f   %8.2f %8.2f %8.2f\n", m->name().c_str(), rsrp.mae,
                rsrp.dtw, rsrp.hwd, rsrq.mae, rsrq.dtw, rsrq.hwd);
  }
  std::printf("\nExpected shape (paper Table 7): GenDT clearly best on all metrics; only "
              "Real Cont. DG comes close; FDaS HWD degrades (training distribution no "
              "longer matches the complex route).\n");
  return 0;
}
