// Table 2: statistics of Dataset B per scenario, including the rate-of-change
// (ROC, mean |first difference|) of RSRP and RSRQ.
#include <cstdio>

#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Table 2: Statistics of Dataset B for different scenarios");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);

  std::printf("%-34s %12s %12s %12s %12s\n", "", "CityDriv 1", "CityDriv 2", "Highway 1",
              "Highway 2");
  auto row = [&](const char* label, auto fn) {
    std::printf("%-34s", label);
    for (const auto& rec : ds.train) std::printf(" %12.2f", fn(rec));
    std::printf("\n");
  };

  row("Time Granularity (s)", [](const sim::DriveTestRecord& r) {
    return r.samples.size() > 1
               ? (r.samples.back().t - r.samples.front().t) /
                     static_cast<double>(r.samples.size() - 1)
               : 0.0;
  });
  row("Avg. Velocity (m/s)",
      [](const sim::DriveTestRecord& r) { return r.trajectory.mean_speed_mps(); });
  row("Avg. Duration at Serving Cell (s)",
      [](const sim::DriveTestRecord& r) { return r.avg_serving_cell_duration_s(); });
  row("Avg. RSRP (dBm)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrp)).mean;
  });
  row("Std. RSRP (dBm)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrp)).stddev;
  });
  row("ROC RSRP (dBm)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrp)).roc;
  });
  row("Avg. RSRQ (dB)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrq)).mean;
  });
  row("Std. RSRQ (dB)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrq)).stddev;
  });
  row("ROC RSRQ (dB)", [](const sim::DriveTestRecord& r) {
    return metrics::series_stats(r.kpi_series(sim::Kpi::kRsrq)).roc;
  });
  row("Sample Num.",
      [](const sim::DriveTestRecord& r) { return static_cast<double>(r.samples.size()); });

  std::printf("\nPaper reference (Table 2): granularity 2-4 s, velocities 9-31 m/s, RSRP "
              "~ -85 dBm (std 7-10.5), dwell 22-31 s, ROC RSRP ~1 dB, ROC RSRQ ~0.4 dB.\n");
  return 0;
}
