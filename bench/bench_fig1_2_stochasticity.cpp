// Figures 1-2: stochasticity of radio KPI data — five measurement runs over
// the SAME tram trajectory at the same time of day show location-aligned
// RSRP spread (Fig. 1), largely explained by serving-cell churn (Fig. 2).
#include <cstdio>

#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title("Figures 1-2: RSRP over the same trajectory, five time slots");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_a(cfg.scale);
  sim::DriveTestSimulator sim(ds.world, ds.sim_config);

  // One fixed tram trajectory, five independent measurement runs.
  std::mt19937_64 rng(3);
  geo::Trajectory tram =
      sim::scenario_trajectory(ds.world.region, sim::Scenario::kTram, 500.0, rng);
  std::vector<sim::DriveTestRecord> runs;
  for (uint64_t slot = 0; slot < 5; ++slot)
    runs.push_back(sim.run(tram, sim::Scenario::kTram, 900 + slot));

  // Fig. 1: per-location spread across the runs.
  const size_t n = runs[0].samples.size();
  double mean_spread = 0.0, max_spread = 0.0;
  std::vector<double> spread(n);
  for (size_t i = 0; i < n; ++i) {
    double lo = 1e9, hi = -1e9;
    for (const auto& r : runs) {
      lo = std::min(lo, r.samples[i].rsrp_dbm);
      hi = std::max(hi, r.samples[i].rsrp_dbm);
    }
    spread[i] = hi - lo;
    mean_spread += spread[i];
    max_spread = std::max(max_spread, spread[i]);
  }
  mean_spread /= static_cast<double>(n);

  std::vector<std::pair<std::string, std::vector<double>>> chart;
  for (size_t k = 0; k < runs.size(); ++k)
    chart.emplace_back("slot " + std::to_string(k), runs[k].kpi_series(sim::Kpi::kRsrp));
  bench::ascii_chart(chart, 100, 14);

  std::printf("\nLocation-aligned RSRP spread across the 5 runs: mean %.1f dB, max %.1f dB\n",
              mean_spread, max_spread);

  // Fig. 2: serving-cell churn behind the spread.
  std::printf("\nServing-cell diversity (Fig. 2): per location, distinct serving cells "
              "across the 5 runs:\n");
  int multi_cell_locations = 0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<radio::CellId> ids;
    for (const auto& r : runs) ids.push_back(r.samples[i].serving_cell);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.size() > 1) ++multi_cell_locations;
  }
  std::printf("  %d of %zu locations (%.0f%%) saw more than one serving cell — the\n"
              "  'serving cell is fixed and known' assumption of prior work fails.\n",
              multi_cell_locations, n, 100.0 * multi_cell_locations / static_cast<double>(n));

  // Correlation: locations with high spread should coincide with cell churn.
  double spread_multi = 0.0, spread_single = 0.0;
  int n_multi = 0, n_single = 0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<radio::CellId> ids;
    for (const auto& r : runs) ids.push_back(r.samples[i].serving_cell);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.size() > 1) {
      spread_multi += spread[i];
      ++n_multi;
    } else {
      spread_single += spread[i];
      ++n_single;
    }
  }
  if (n_multi > 0 && n_single > 0) {
    std::printf("  mean RSRP spread where serving cell churns: %.1f dB vs %.1f dB where "
                "stable.\n",
                spread_multi / n_multi, spread_single / n_single);
  }
  return 0;
}
