// Table 6: average fidelity across all Dataset B scenarios for RSRP and RSRQ.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title(
      "Table 6: average fidelity across scenarios, Dataset B, RSRP + RSRQ (lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);
  bench::FidelityResults res = bench::run_fidelity_eval(ds, cfg);
  bench::print_average_table(res);
  std::printf("\nExpected shape (paper Table 6): GenDT leads; RSRQ improvements smaller "
              "than RSRP (test RSRQ is stable and narrow-ranged).\n");
  return 0;
}
