#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gendt::bench {

Scores score_series(const std::vector<double>& real, const std::vector<double>& generated) {
  Scores s;
  const size_t n = std::min(real.size(), generated.size());
  std::vector<double> r(real.begin(), real.begin() + static_cast<long>(n));
  std::vector<double> g(generated.begin(), generated.begin() + static_cast<long>(n));
  s.mae = metrics::mae(r, g);
  s.dtw = metrics::dtw(r, g, 40);
  s.hwd = metrics::hwd(r, g);
  return s;
}

EvalConfig default_eval_config() {
  EvalConfig cfg;
  const char* fast = std::getenv("GENDT_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    cfg.scale.train_duration_s = 300.0;
    cfg.scale.test_duration_s = 150.0;
    cfg.gendt_epochs = 5;
    cfg.baseline_epochs = 4;
  }
  if (const char* threads = std::getenv("GENDT_THREADS")) {
    cfg.threads = std::atoi(threads);
  }
  return cfg;
}

Scores FidelityResults::average(const std::string& method, int kpi_channel) const {
  Scores avg;
  int n = 0;
  auto mit = scores.find(method);
  if (mit == scores.end()) return avg;
  for (const auto& [scenario, per_kpi] : mit->second) {
    auto kit = per_kpi.find(kpi_channel);
    if (kit != per_kpi.end()) {
      avg.accumulate(kit->second);
      ++n;
    }
  }
  if (n > 0) avg.scale(1.0 / static_cast<double>(n));
  return avg;
}

Pipeline make_pipeline(const sim::Dataset& dataset, const EvalConfig& cfg) {
  Pipeline p;
  p.norm = context::fit_kpi_norm(dataset.train, dataset.kpis);
  p.builder = std::make_unique<context::ContextBuilder>(dataset.world, cfg.context, p.norm,
                                                        dataset.kpis);
  for (const auto& rec : dataset.train) {
    auto w = p.builder->training_windows(rec);
    p.train_windows.insert(p.train_windows.end(), w.begin(), w.end());
  }
  return p;
}

std::unique_ptr<core::GenDTGenerator> train_gendt_generator(const sim::Dataset& dataset,
                                                            const Pipeline& pipe,
                                                            const EvalConfig& cfg,
                                                            core::GenDTConfig model_overrides) {
  core::GenDTConfig mcfg = model_overrides;
  mcfg.num_channels = static_cast<int>(dataset.kpis.size());
  if (mcfg.hidden <= 0) mcfg.hidden = cfg.gendt_hidden;
  mcfg.parallelism = {.threads = cfg.threads};
  core::TrainConfig tcfg;
  tcfg.epochs = cfg.gendt_epochs;
  tcfg.seed = cfg.seed;
  tcfg.parallelism = {.threads = cfg.threads};
  auto gen = std::make_unique<core::GenDTGenerator>(mcfg, tcfg, pipe.norm);
  gen->fit(pipe.train_windows);
  return gen;
}

FidelityResults run_fidelity_eval(const sim::Dataset& dataset, const EvalConfig& cfg,
                                  std::unique_ptr<core::GenDTGenerator>* gendt_out,
                                  context::ContextBuilder** builder_out) {
  FidelityResults res;
  res.kpis = dataset.kpis;

  // Leaky static to let callers keep using the builder after return.
  static std::vector<std::unique_ptr<Pipeline>> pipelines;
  pipelines.push_back(std::make_unique<Pipeline>(make_pipeline(dataset, cfg)));
  Pipeline& pipe = *pipelines.back();
  if (builder_out != nullptr) *builder_out = pipe.builder.get();

  // Methods: GenDT first, then the five baselines.
  std::vector<std::unique_ptr<core::TimeSeriesGenerator>> methods;
  {
    core::GenDTConfig mcfg;
    mcfg.num_channels = static_cast<int>(dataset.kpis.size());
    mcfg.hidden = cfg.gendt_hidden;
    mcfg.init_seed = cfg.seed;
    core::TrainConfig tcfg;
    tcfg.epochs = cfg.gendt_epochs;
    tcfg.seed = cfg.seed;
    {
      auto g = std::make_unique<core::GenDTGenerator>(mcfg, tcfg, pipe.norm);
      g->set_kpis(dataset.kpis);
      methods.push_back(std::move(g));
    }
  }
  {
    auto baselines = baselines::make_all_baselines(pipe.norm,
                                                   static_cast<int>(dataset.kpis.size()),
                                                   cfg.seed);
    for (auto& b : baselines) methods.push_back(std::move(b));
  }

  for (auto& m : methods) {
    std::fprintf(stderr, "[harness] training %s...\n", m->name().c_str());
    m->fit(pipe.train_windows);
    res.methods.push_back(m->name());
  }

  for (const auto& test : dataset.test) {
    const std::string scenario{sim::scenario_name(test.scenario)};
    res.scenarios.push_back(scenario);
    auto gen_windows = pipe.builder->generation_windows(test);
    core::GeneratedSeries truth = core::real_series(gen_windows, pipe.norm);
    for (auto& m : methods) {
      core::GeneratedSeries fake = m->generate(gen_windows, cfg.seed + 101);
      for (size_t ch = 0; ch < dataset.kpis.size(); ++ch) {
        res.scores[m->name()][scenario][static_cast<int>(ch)] =
            score_series(truth.channels[ch], fake.channels[ch]);
      }
    }
  }

  if (gendt_out != nullptr) {
    *gendt_out = std::unique_ptr<core::GenDTGenerator>(
        static_cast<core::GenDTGenerator*>(methods.front().release()));
  }
  return res;
}

void print_title(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
}

void print_fidelity_table(const FidelityResults& res, int kpi_channel) {
  // Header: metric groups per scenario.
  std::printf("%-14s", "Method");
  for (const auto& metric : {"MAE", "DTW", "HWD"}) {
    for (const auto& sc : res.scenarios) std::printf(" %13s", (std::string(metric) + ":" + sc.substr(0, 9)).c_str());
  }
  std::printf("\n");
  for (const auto& m : res.methods) {
    std::printf("%-14s", m.c_str());
    auto row = res.scores.at(m);
    for (int metric = 0; metric < 3; ++metric) {
      for (const auto& sc : res.scenarios) {
        const Scores& s = row.at(sc).at(kpi_channel);
        const double v = metric == 0 ? s.mae : metric == 1 ? s.dtw : s.hwd;
        std::printf(" %13.2f", v);
      }
    }
    std::printf("\n");
  }
}

void print_average_table(const FidelityResults& res) {
  std::printf("%-14s", "Method");
  for (const auto& k : res.kpis) {
    const std::string kn{sim::kpi_name(k)};
    std::printf(" %9s %9s %9s", ("MAE:" + kn).substr(0, 9).c_str(),
                ("DTW:" + kn).substr(0, 9).c_str(), ("HWD:" + kn).substr(0, 9).c_str());
  }
  std::printf("\n");
  for (const auto& m : res.methods) {
    std::printf("%-14s", m.c_str());
    for (size_t ch = 0; ch < res.kpis.size(); ++ch) {
      const Scores s = res.average(m, static_cast<int>(ch));
      std::printf(" %9.2f %9.2f %9.2f", s.mae, s.dtw, s.hwd);
    }
    std::printf("\n");
  }
}

void ascii_chart(const std::vector<std::pair<std::string, std::vector<double>>>& series,
                 int width, int height) {
  if (series.empty()) return;
  double lo = 1e300, hi = -1e300;
  size_t max_len = 0;
  for (const auto& [name, s] : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    max_len = std::max(max_len, s.size());
  }
  if (max_len == 0 || hi <= lo) return;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  const char* marks = "*o+x#@";
  for (size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si].second;
    if (s.empty()) continue;
    for (int x = 0; x < width; ++x) {
      const size_t idx = static_cast<size_t>(
          static_cast<double>(x) / std::max(1, width - 1) * static_cast<double>(s.size() - 1));
      const double v = s[idx];
      int y = static_cast<int>((hi - v) / (hi - lo) * (height - 1));
      y = std::clamp(y, 0, height - 1);
      grid[static_cast<size_t>(y)][static_cast<size_t>(x)] = marks[si % 6];
    }
  }
  std::printf("  %8.2f +%s\n", hi, std::string(static_cast<size_t>(width), '-').c_str());
  for (const auto& row : grid) std::printf("%11s|%s\n", "", row.c_str());
  std::printf("  %8.2f +%s\n", lo, std::string(static_cast<size_t>(width), '-').c_str());
  std::printf("%11s ", "");
  for (size_t si = 0; si < series.size(); ++si)
    std::printf(" [%c] %s", marks[si % 6], series[si].first.c_str());
  std::printf("\n");
}

}  // namespace gendt::bench
