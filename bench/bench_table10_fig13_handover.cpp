// Table 10 + Figure 13: handover analysis use case. GenDT (and each
// baseline) is retrained with the serving-cell KPI channel appended; the
// generated serving-cell series' change points give inter-handover times,
// scored by HWD against the real distribution, plus a CDF comparison.
#include <memory>

#include "harness.h"

#include "gendt/downstream/handover.h"

using namespace gendt;

int main() {
  bench::print_title("Table 10 + Figure 13: inter-handover time distribution use case");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_b(cfg.scale);

  // Retrain with the serving-cell channel appended (paper §6.3.2).
  ds.kpis.push_back(sim::Kpi::kServingCell);
  bench::Pipeline pipe = bench::make_pipeline(ds, cfg);
  const int serving_ch = static_cast<int>(ds.kpis.size()) - 1;

  std::vector<std::unique_ptr<core::TimeSeriesGenerator>> methods;
  {
    core::GenDTConfig mcfg;
    mcfg.num_channels = static_cast<int>(ds.kpis.size());
    mcfg.hidden = cfg.gendt_hidden;
    core::TrainConfig tcfg;
    tcfg.epochs = cfg.gendt_epochs;
    tcfg.seed = cfg.seed;
    {
      auto g = std::make_unique<core::GenDTGenerator>(mcfg, tcfg, pipe.norm);
      g->set_kpis(ds.kpis);
      methods.push_back(std::move(g));
    }
  }
  for (auto& b :
       baselines::make_all_baselines(pipe.norm, static_cast<int>(ds.kpis.size()), cfg.seed))
    methods.push_back(std::move(b));

  // Detection threshold calibration: pick, per method, the jump threshold
  // whose detected handover RATE on generated *training* routes matches the
  // real training handover rate. Uses training data only; applied to test.
  auto calibrate_threshold = [&](const core::TimeSeriesGenerator& gen) {
    double real_rate = 0.0;
    double duration = 0.0;
    std::vector<std::vector<double>> gen_series;
    std::vector<std::vector<double>> gen_t;
    for (const auto& rec : ds.train) {
      std::vector<double> t;
      for (const auto& m : rec.samples) t.push_back(m.t);
      auto serving = rec.kpi_series(sim::Kpi::kServingCell);
      real_rate += static_cast<double>(
          downstream::detect_inter_handover_times(serving, t, 0.5).size());
      duration += t.empty() ? 0.0 : t.back() - t.front();
      auto windows = pipe.builder->generation_windows(rec);
      core::GeneratedSeries fake = gen.generate(windows, cfg.seed + 87);
      t.resize(fake.length());
      gen_series.push_back(
          downstream::median_filter(fake.channels[static_cast<size_t>(serving_ch)], 3));
      gen_t.push_back(std::move(t));
    }
    real_rate /= std::max(1.0, duration);
    const double sigma = pipe.norm.stddev[static_cast<size_t>(serving_ch)];
    double best_th = 0.25 * sigma;
    double best_gap = 1e300;
    for (double frac = 0.02; frac <= 1.0; frac *= 1.3) {
      double rate = 0.0;
      for (size_t r = 0; r < gen_series.size(); ++r) {
        rate += static_cast<double>(
            downstream::detect_inter_handover_times(gen_series[r], gen_t[r], frac * sigma)
                .size());
      }
      rate /= std::max(1.0, duration);
      const double gap = std::abs(rate - real_rate);
      if (gap < best_gap) {
        best_gap = gap;
        best_th = frac * sigma;
      }
    }
    return best_th;
  };

  // Real inter-handover distribution pooled over all test routes.
  std::vector<double> real_durations;
  for (const auto& test : ds.test) {
    std::vector<double> t;
    for (const auto& m : test.samples) t.push_back(m.t);
    auto serving = test.kpi_series(sim::Kpi::kServingCell);
    auto d = downstream::detect_inter_handover_times(serving, t, 0.5);
    real_durations.insert(real_durations.end(), d.begin(), d.end());
  }

  std::printf("%-14s %8s %14s %14s\n", "Method", "HWD", "mean IHT (s)", "#handovers");
  std::printf("%-14s %8s %14.1f %14zu\n", "Real", "-",
              metrics::series_stats(real_durations).mean, real_durations.size());

  std::vector<double> gendt_durations;
  for (auto& m : methods) {
    std::fprintf(stderr, "[handover] training %s...\n", m->name().c_str());
    m->fit(pipe.train_windows);
    const double threshold = calibrate_threshold(*m);
    std::vector<double> gen_durations;
    for (const auto& test : ds.test) {
      auto gen_windows = pipe.builder->generation_windows(test);
      core::GeneratedSeries fake = m->generate(gen_windows, cfg.seed + 23);
      std::vector<double> t;
      for (const auto& mm : test.samples) t.push_back(mm.t);
      t.resize(fake.length());
      // Generated serving-cell values are continuous: median-filter, then
      // detect sustained jumps with the train-calibrated threshold.
      auto smoothed =
          downstream::median_filter(fake.channels[static_cast<size_t>(serving_ch)], 3);
      auto d = downstream::detect_inter_handover_times(smoothed, t, threshold);
      gen_durations.insert(gen_durations.end(), d.begin(), d.end());
    }
    auto cmp = downstream::compare_handover_distributions(real_durations, gen_durations);
    std::printf("%-14s %8.2f %14.1f %14zu\n", m->name().c_str(), cmp.hwd,
                cmp.generated_mean_s, cmp.generated_count);
    if (m->name() == "GenDT") gendt_durations = gen_durations;
  }

  std::printf("\nFigure 13: CDF of inter-handover time\n%10s %8s %8s\n", "time (s)", "real",
              "GenDT");
  std::vector<double> thresholds;
  for (double th = 0.0; th <= 250.0; th += 25.0) thresholds.push_back(th);
  auto cr = metrics::ecdf(real_durations, thresholds);
  auto cg = metrics::ecdf(gendt_durations, thresholds);
  for (size_t i = 0; i < thresholds.size(); ++i)
    std::printf("%10.0f %8.2f %8.2f\n", thresholds[i], cr[i], cg[i]);
  std::printf("\nExpected shape (paper Table 10/Fig. 13): GenDT's distribution closest to "
              "real (lowest HWD); Real Cont. DG second; others far off.\n");
  return 0;
}
