// Table 4: average fidelity across all Dataset A scenarios for every KPI
// channel (RSRP, RSRQ, SINR, CQI) and every method.
#include "harness.h"

using namespace gendt;

int main() {
  bench::print_title(
      "Table 4: average fidelity across scenarios, Dataset A, all KPIs (lower is better)");
  bench::EvalConfig cfg = bench::default_eval_config();
  sim::Dataset ds = sim::make_dataset_a(cfg.scale);
  bench::FidelityResults res = bench::run_fidelity_eval(ds, cfg);
  bench::print_average_table(res);
  std::printf("\nExpected shape (paper Table 4): GenDT leads on most metrics; CQI gains "
              "are marginal (discrete-valued channel).\n");
  return 0;
}
