// Microbenchmarks (google-benchmark) for the library's hot paths: DTW,
// Wasserstein, matmul kernels (pre-blocking reference vs the blocked
// library kernel), LSTM stepping, context-window extraction, simulator
// sample rate, GenDT window generation, and the parallel training step at
// several thread counts. These guard against performance regressions rather
// than reproducing a paper result.
//
// Unless --benchmark_out is given, results are also written to
// BENCH_micro_perf.json (committed to the repo so the perf trajectory is
// tracked PR over PR).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gendt/context/context.h"
#include "gendt/core/batched_infer_session.h"
#include "gendt/core/infer_session.h"
#include "gendt/core/model.h"
#include "gendt/metrics/metrics.h"
#include "gendt/nn/infer.h"
#include "gendt/nn/pack.h"
#include "gendt/nn/serialize.h"
#include "gendt/nn/simd.h"
#include "gendt/serve/engine.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

namespace {

std::vector<double> random_series(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(-90.0, 10.0);
  std::vector<double> v(n);
  for (auto& x : v) x = g(rng);
  return v;
}

void BM_DtwUnbanded(benchmark::State& state) {
  const auto a = random_series(static_cast<size_t>(state.range(0)), 1);
  const auto b = random_series(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(metrics::dtw(a, b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DtwUnbanded)->Arg(128)->Arg(512)->Arg(1024)->Complexity(benchmark::oNSquared);

void BM_DtwBanded(benchmark::State& state) {
  const auto a = random_series(static_cast<size_t>(state.range(0)), 1);
  const auto b = random_series(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(metrics::dtw(a, b, 40));
}
BENCHMARK(BM_DtwBanded)->Arg(512)->Arg(2048);

void BM_Wasserstein(benchmark::State& state) {
  const auto a = random_series(static_cast<size_t>(state.range(0)), 3);
  const auto b = random_series(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(metrics::wasserstein1(a, b));
}
BENCHMARK(BM_Wasserstein)->Arg(1024)->Arg(8192);

// The seed's matmul kernel (i-k-j with zero-skip, no tiling), kept here as
// the fixed reference the blocked library kernel is measured against.
nn::Mat naive_matmul(const nn::Mat& a, const nn::Mat& b) {
  nn::Mat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

void BM_MatmulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(21);
  const nn::Mat a = nn::Mat::randn(n, n, rng);
  const nn::Mat b = nn::Mat::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul(a, b)(0, 0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(128)->Arg(512);

// Pinned to the scalar route: this is the committed-baseline number tracked
// PR over PR, and the scalar kernels are the cross-release anchor. The SIMD
// route gets its own series (BM_MatmulSimd) so the two trend independently.
void BM_MatmulBlocked(benchmark::State& state) {
  const nn::simd::ScopedRoute pin(nn::simd::Route::kScalar);
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(21);
  const nn::Mat a = nn::Mat::randn(n, n, rng);
  const nn::Mat b = nn::Mat::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(nn::matmul(a, b)(0, 0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulBlocked)->Arg(32)->Arg(128)->Arg(512);

void BM_MatmulBlockedNT(benchmark::State& state) {
  const nn::simd::ScopedRoute pin(nn::simd::Route::kScalar);
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(22);
  const nn::Mat a = nn::Mat::randn(n, n, rng);
  const nn::Mat b = nn::Mat::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(nn::matmul_nt(a, b)(0, 0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulBlockedNT)->Arg(128)->Arg(512);

// The AVX2/FMA route over the same shapes as BM_MatmulBlocked — the ratio
// between the two series is the headline SIMD speedup.
void BM_MatmulSimd(benchmark::State& state) {
  const nn::simd::ScopedRoute pin(nn::simd::Route::kAvx2);
  if (!pin.ok()) {
    state.SkipWithError("avx2 route unsupported on this build/CPU");
    return;
  }
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(21);
  const nn::Mat a = nn::Mat::randn(n, n, rng);
  const nn::Mat b = nn::Mat::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(nn::matmul(a, b)(0, 0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulSimd)->Arg(128)->Arg(512);

// The fused single-row y = b + x1*W1 + x2*W2 kernel (avx2 only), at the
// shape every LSTM step issues: gate pre-activations from input + recurrent
// weights. The scalar route's generic path is the implicit baseline via
// BM_LstmStep.
void BM_Affine2Simd(benchmark::State& state) {
  const nn::simd::ScopedRoute pin(nn::simd::Route::kAvx2);
  if (!pin.ok()) {
    state.SkipWithError("avx2 route unsupported on this build/CPU");
    return;
  }
  std::mt19937_64 rng(23);
  const nn::Mat x1 = nn::Mat::randn(1, 9, rng);
  const nn::Mat w1 = nn::Mat::randn(9, 112, rng);
  const nn::Mat x2 = nn::Mat::randn(1, 28, rng);
  const nn::Mat w2 = nn::Mat::randn(28, 112, rng);
  const nn::Mat b = nn::Mat::randn(1, 112, rng);
  nn::Mat y(1, 112);
  for (auto _ : state) {
    nn::infer::affine2_fwd(x1, w1, x2, w2, b, y);
    benchmark::DoNotOptimize(y(0, 0));
  }
}
BENCHMARK(BM_Affine2Simd);

void BM_LstmStep(benchmark::State& state) {
  std::mt19937_64 rng(5);
  nn::LstmCell cell(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)), rng);
  nn::Tensor x = nn::Tensor::constant(nn::Mat::randn(1, static_cast<int>(state.range(0)), rng));
  auto st = cell.initial_state();
  for (auto _ : state) {
    auto next = cell.step(x, st);
    benchmark::DoNotOptimize(next.h.value()(0, 0));
  }
}
BENCHMARK(BM_LstmStep)->Args({9, 28})->Args({9, 100})->Args({31, 100});

// The same recurrent step through the tape-free fast path on the avx2 route:
// fused affine2 gate pre-activations + vectorized gate nonlinearities.
void BM_LstmStepSimd(benchmark::State& state) {
  const nn::simd::ScopedRoute pin(nn::simd::Route::kAvx2);
  if (!pin.ok()) {
    state.SkipWithError("avx2 route unsupported on this build/CPU");
    return;
  }
  const int in = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  std::mt19937_64 rng(5);
  nn::LstmCell cell(in, hidden, rng);
  const nn::Mat x = nn::Mat::randn(1, in, rng);
  nn::Mat h(1, hidden), c(1, hidden), gates(1, 4 * hidden), scratch(1, hidden);
  std::mt19937_64 step_rng(7);
  for (auto _ : state) {
    nn::infer::lstm_step_fwd(cell, x, nn::StochasticConfig{}, step_rng, h, c, gates, scratch);
    benchmark::DoNotOptimize(h(0, 0));
  }
}
BENCHMARK(BM_LstmStepSimd)->Args({9, 28})->Args({9, 100});

void BM_LstmWindowBackward(benchmark::State& state) {
  std::mt19937_64 rng(6);
  nn::LstmNetwork net(9, 28, 4, rng);
  std::vector<nn::Tensor> xs;
  for (int t = 0; t < 50; ++t) xs.push_back(nn::Tensor::constant(nn::Mat::randn(1, 9, rng)));
  for (auto _ : state) {
    auto ys = net.forward(xs, nn::StochasticConfig{}, rng);
    nn::Tensor loss = nn::sum(nn::square(nn::concat_rows(ys)));
    net.zero_grad();
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_LstmWindowBackward);

// Cold-start cost of the two model-file formats over the same ~25 MB of
// weights: GDTCKPT2 (full parse + per-tensor copy + CRC) vs a GDTPACK1 map
// (one mmap + directory walk; kStructural is the serve path, kFull adds the
// payload CRC pass). The structural/ckpt ratio is the headline instant-load
// number.
struct LoadFixtures {
  std::string ckpt_path;
  std::string pack_path;

  LoadFixtures() {
    nn::Checkpoint ck;
    ck.meta.set_string("bench", "model-load");
    std::mt19937_64 rng(31);
    for (int i = 0; i < 12; ++i)
      ck.params.push_back({"layer" + std::to_string(i) + "/w", nn::Mat::randn(512, 512, rng)});
    const auto dir = std::filesystem::temp_directory_path();
    ckpt_path = (dir / "gendt_bench_load.ckpt").string();
    pack_path = (dir / "gendt_bench_load.gdtpack").string();
    nn::save_checkpoint(ck, ckpt_path);
    nn::write_packed(ck, pack_path);
  }
  static LoadFixtures& get() {
    static LoadFixtures f;
    return f;
  }
};

void BM_CkptModelLoad(benchmark::State& state) {
  auto& f = LoadFixtures::get();
  for (auto _ : state) {
    nn::Checkpoint ck;
    const nn::LoadResult res = nn::read_checkpoint(f.ckpt_path, ck);
    if (!res.ok()) {
      state.SkipWithError(res.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(ck.params.size());
  }
}
BENCHMARK(BM_CkptModelLoad);

void BM_PackedModelLoad(benchmark::State& state) {
  auto& f = LoadFixtures::get();
  const nn::PackVerify verify =
      state.range(0) != 0 ? nn::PackVerify::kFull : nn::PackVerify::kStructural;
  for (auto _ : state) {
    nn::PackedModel pack;
    const nn::LoadResult res = pack.map(f.pack_path, verify);
    if (!res.ok()) {
      state.SkipWithError(res.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(pack.tensors().size());
  }
  state.counters["full_verify"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PackedModelLoad)->Arg(0)->Arg(1);

struct SimFixtures {
  sim::Dataset ds;
  std::unique_ptr<sim::DriveTestSimulator> sim;
  geo::Trajectory traj;
  std::unique_ptr<context::ContextBuilder> builder;
  std::unique_ptr<core::GenDTModel> model;
  std::vector<context::Window> windows;

  SimFixtures() {
    sim::DatasetScale scale;
    scale.train_duration_s = 200.0;
    scale.test_duration_s = 100.0;
    scale.records_per_scenario = 1;
    ds = sim::make_dataset_a(scale);
    sim = std::make_unique<sim::DriveTestSimulator>(ds.world, ds.sim_config);
    std::mt19937_64 rng(9);
    traj = sim::scenario_trajectory(ds.world.region, sim::Scenario::kWalk, 120.0, rng);
    context::KpiNorm norm = context::fit_kpi_norm(ds.train, ds.kpis);
    context::ContextConfig ccfg;
    ccfg.window_len = 50;
    ccfg.max_cells = 6;
    builder = std::make_unique<context::ContextBuilder>(ds.world, ccfg, norm, ds.kpis);
    core::GenDTConfig mcfg;
    mcfg.num_channels = 4;
    mcfg.hidden = 28;
    model = std::make_unique<core::GenDTModel>(mcfg);
    windows = builder->generation_windows(traj);
  }
  static SimFixtures& get() {
    static SimFixtures f;
    return f;
  }
};

void BM_SimulatorRun(benchmark::State& state) {
  auto& f = SimFixtures::get();
  uint64_t seed = 0;
  for (auto _ : state) {
    auto rec = f.sim->run(f.traj, sim::Scenario::kWalk, ++seed);
    benchmark::DoNotOptimize(rec.samples.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.traj.size()));
}
BENCHMARK(BM_SimulatorRun);

void BM_ContextWindowBuild(benchmark::State& state) {
  auto& f = SimFixtures::get();
  for (auto _ : state) {
    auto w = f.builder->generation_windows(f.traj);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_ContextWindowBuild);

void BM_GenDTWindowGeneration(benchmark::State& state) {
  auto& f = SimFixtures::get();
  uint64_t seed = 0;
  for (auto _ : state) {
    auto s = f.model->sample_windows(f.windows, ++seed);
    benchmark::DoNotOptimize(s.size());
  }
  int64_t samples = 0;
  for (const auto& w : f.windows) samples += w.len;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * samples);
}
BENCHMARK(BM_GenDTWindowGeneration);

// Same rollout through the tape-free InferenceSession (bitwise-identical
// output, enforced by gen_parity_test). The session persists across
// iterations, so steady-state runs allocate nothing — the comparison against
// BM_GenDTWindowGeneration is the fast path's headline number.
void BM_GenDTWindowGenerationFast(benchmark::State& state) {
  auto& f = SimFixtures::get();
  core::InferenceSession session(*f.model);
  uint64_t seed = 0;
  for (auto _ : state) {
    auto s = session.run(f.windows, ++seed);
    benchmark::DoNotOptimize(s.size());
  }
  int64_t samples = 0;
  for (const auto& w : f.windows) samples += w.len;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * samples);
}
BENCHMARK(BM_GenDTWindowGenerationFast);

// The lane-batched LSTM step at B lanes vs the single-row kernel (B=1):
// gate pre-activations for all lanes come from ONE [B x 4H] affine2 GEMM, so
// the per-step weight traffic (the matvec bottleneck at inference batch 1)
// is amortized across lanes. Items processed = lane-steps, so the B=8/B=1
// items_per_second ratio is the per-step GEMM win.
void BM_BatchedLstmStep(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  constexpr int kIn = 9;
  constexpr int kHidden = 512;
  std::mt19937_64 rng(5);
  nn::LstmCell cell(kIn, kHidden, rng);
  const nn::Mat x = nn::Mat::randn(b, kIn, rng);
  nn::Mat h(b, kHidden), c(b, kHidden), gates(b, 4 * kHidden), scratch(b, kHidden);
  std::vector<std::mt19937_64> lane_rngs(static_cast<size_t>(b));
  std::vector<std::mt19937_64*> rngs(static_cast<size_t>(b));
  for (int l = 0; l < b; ++l) {
    lane_rngs[static_cast<size_t>(l)].seed(static_cast<uint64_t>(7 + l));
    rngs[static_cast<size_t>(l)] = &lane_rngs[static_cast<size_t>(l)];
  }
  for (auto _ : state) {
    nn::infer::lstm_step_fwd_batch(cell, x, nn::StochasticConfig{}, rngs.data(), h, c, gates,
                                   scratch);
    benchmark::DoNotOptimize(h(0, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * b);
  state.counters["lanes"] = b;
}
BENCHMARK(BM_BatchedLstmStep)->Arg(1)->Arg(8);

// The coverage-grid workload (ROADMAP 4b / `gendt covermap`): 8 stationary
// trajectories rolled out single-threaded at a serving-sized hidden width.
// B=1 is the production serial path — one InferenceSession::run per
// trajectory, every LSTM step a [1 x K] matvec that re-streams the weights —
// and B=8 packs the same 8 trajectories into ONE BatchedInferenceSession
// call, where each step is a multi-row GEMM (the tentpole matvec-to-GEMM
// conversion; bits identical per lane, pinned by gen_batch_parity_test).
// Items processed = windows, so items_per_second is windows/sec and the
// B=8/B=1 ratio is the headline lane-batching speedup (gated >= 3x by the
// issue's acceptance).
void BM_CovermapThroughput(benchmark::State& state) {
  auto& f = SimFixtures::get();
  static core::GenDTModel* model = [] {
    core::GenDTConfig mcfg;
    mcfg.num_channels = 4;
    mcfg.hidden = 512;
    mcfg.resgen_hidden = 512;
    mcfg.parallelism = {.threads = 1};
    return new core::GenDTModel(mcfg);
  }();
  const int b = static_cast<int>(state.range(0));
  constexpr int kLanes = 8;
  core::InferenceSession serial(*model);
  core::BatchedInferenceSession session(*model);
  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    size_t windows_done = 0;
    if (b == 1) {
      for (int l = 0; l < kLanes; ++l) {
        const auto samples =
            serial.run(f.windows, runtime::derive_stream_seed(round, static_cast<uint64_t>(l)));
        windows_done += samples.size();
      }
    } else {
      for (int lo = 0; lo < kLanes; lo += b) {
        const int hi = std::min(kLanes, lo + b);
        std::vector<core::BatchLane> lanes(static_cast<size_t>(hi - lo));
        for (int l = lo; l < hi; ++l) {
          lanes[static_cast<size_t>(l - lo)].windows = &f.windows;
          lanes[static_cast<size_t>(l - lo)].seed =
              runtime::derive_stream_seed(round, static_cast<uint64_t>(l));
        }
        const auto results = session.run(lanes);
        for (const auto& r : results) windows_done += r.samples.size();
      }
    }
    benchmark::DoNotOptimize(windows_done);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLanes * f.windows.size()));
  state.counters["lane_batch"] = b;
}
BENCHMARK(BM_CovermapThroughput)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// End-to-end serving throughput at several batch_max values: 8 requests
// through GenerationEngine with 2 workers. batch_max=1 is classic
// one-request-per-worker dispatch; larger values drain the queue and fan the
// batch out on the shared pool.
void BM_ServeBatchThroughput(benchmark::State& state) {
  auto& f = SimFixtures::get();
  static core::GenDTGenerator* generator = [] {
    auto& fx = SimFixtures::get();
    core::GenDTConfig mcfg;
    mcfg.num_channels = 4;
    mcfg.hidden = 28;
    auto* g = new core::GenDTGenerator(mcfg, core::TrainConfig{},
                                       context::fit_kpi_norm(fx.ds.train, fx.ds.kpis));
    g->set_kpis(fx.ds.kpis);
    return g;
  }();

  constexpr int kRequests = 8;
  serve::EngineConfig cfg;
  cfg.backpressure = serve::EngineConfig::Backpressure::kBlock;
  cfg.workers = 2;
  cfg.batch_max = static_cast<int>(state.range(0));
  cfg.expected_channels = 4;
  serve::GenerationEngine engine(*generator, cfg);
  std::vector<serve::Request> requests(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    requests[r].windows = f.windows;
    requests[r].seed = 100 + static_cast<uint64_t>(r);
  }
  for (auto _ : state) {
    auto responses = engine.serve(requests);
    benchmark::DoNotOptimize(responses.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRequests);
  state.counters["batch_max"] = cfg.batch_max;
}
BENCHMARK(BM_ServeBatchThroughput)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// One generator+discriminator training epoch at a given worker-thread
// count. The trained numbers are bitwise identical across the Arg values
// (runtime_determinism_test enforces it); only the wall-clock may differ.
void BM_GenDTTrainEpochByThreads(benchmark::State& state) {
  static std::vector<context::Window>* train_windows = [] {
    auto* w = new std::vector<context::Window>();
    auto& fx = SimFixtures::get();
    context::KpiNorm norm = context::fit_kpi_norm(fx.ds.train, fx.ds.kpis);
    context::ContextConfig ccfg;
    ccfg.window_len = 25;
    ccfg.train_step = 25;
    ccfg.max_cells = 5;
    context::ContextBuilder b(fx.ds.world, ccfg, norm, fx.ds.kpis);
    for (const auto& rec : fx.ds.train) {
      auto ws = b.training_windows(rec);
      w->insert(w->end(), ws.begin(), ws.end());
      if (w->size() >= 8) break;
    }
    if (w->size() > 8) w->resize(8);
    return w;
  }();

  const int threads = static_cast<int>(state.range(0));
  core::GenDTConfig mcfg;
  mcfg.num_channels = 4;
  mcfg.hidden = 28;
  mcfg.parallelism = {.threads = threads};
  core::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.windows_per_step = 4;
  tcfg.parallelism = {.threads = threads};
  for (auto _ : state) {
    core::GenDTModel model(mcfg);
    auto stats = core::train_gendt(model, *train_windows, tcfg);
    benchmark::DoNotOptimize(stats.mse_per_epoch.back());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(train_windows->size()));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_GenDTTrainEpochByThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the committed
// BENCH_micro_perf.json so every run leaves a machine-readable record.
// The emitted JSON's context.library_build_type reports how the BENCHMARK
// LIBRARY was compiled — and the distro-packaged google-benchmark is itself
// a debug build, so the field says "debug" no matter how this binary and the
// gendt kernels were built. tools/bench_compare.py hard-fails on debug-built
// results, and what that gate actually cares about is the kernels' build
// mode, so rewrite the field from this TU's own NDEBUG after the run.
void patch_library_build_type(const std::string& path) {
  if (path.empty() || path == "/dev/null") return;
  std::ifstream in(path);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  std::string s = buf.str();
  const std::string key = "\"library_build_type\":";
  const size_t k = s.find(key);
  if (k == std::string::npos) return;
  const size_t q0 = s.find('"', k + key.size());
  const size_t q1 = q0 == std::string::npos ? std::string::npos : s.find('"', q0 + 1);
  if (q1 == std::string::npos) return;
#ifdef NDEBUG
  s.replace(q0 + 1, q1 - q0 - 1, "release");
#else
  s.replace(q0 + 1, q1 - q0 - 1, "debug");
#endif
  std::ofstream out(path, std::ios::trunc);
  out << s;
}

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_path = "BENCH_micro_perf.json";
  bool has_out_flag = false;  // any --benchmark_out* flag on the command line
  bool has_out_path = false;  // an explicit --benchmark_out=<path>
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--benchmark_out=", 0) == 0) {
      has_out_flag = has_out_path = true;
      out_path = a.substr(std::string("--benchmark_out=").size());
    } else if (a.rfind("--benchmark_out", 0) == 0) {
      has_out_flag = true;  // e.g. --benchmark_out_format: caller manages output
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_perf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out_flag) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Format-only invocations (--benchmark_out_format without --benchmark_out)
  // write no file, so there is nothing to patch.
  patch_library_build_type(has_out_flag && !has_out_path ? "" : out_path);
  return 0;
}
