// Measurement-campaign planning: the operator workflow of paper §6.2/§7.1.
//
// A region is split into geographic subsets. Starting from one coarse
// measurement subset, GenDT's model-uncertainty measure picks where to drive
// next; the campaign stops when fidelity on a held-out route plateaus —
// typically long before all subsets are measured, which is exactly the
// measurement saving GenDT promises.
//
// Build & run:  ./build/examples/measurement_campaign
#include <cstdio>

#include "gendt/core/active_learning.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

int main() {
  std::printf("=== Uncertainty-driven measurement campaign ===\n\n");

  sim::DatasetScale scale;
  scale.train_duration_s = 600.0;
  scale.test_duration_s = 120.0;
  scale.records_per_scenario = 2;
  sim::Dataset ds = sim::make_dataset_b(scale);
  sim::DriveTestRecord eval_route = sim::make_long_complex_record(ds, 500.0);

  context::KpiNorm norm = context::fit_kpi_norm(ds.train, ds.kpis);
  context::ContextConfig ccfg;
  ccfg.window_len = 30;
  ccfg.train_step = 10;
  ccfg.max_cells = 5;
  context::ContextBuilder builder(ds.world, ccfg, norm, ds.kpis);

  auto subsets = sim::geographic_subsets(ds, 10);
  std::printf("Region split into %zu geographic measurement subsets.\n", subsets.size());

  std::vector<std::vector<context::Window>> subset_windows;
  for (const auto& s : subsets) {
    std::vector<context::Window> w;
    for (const auto& rec : s) {
      auto ws = builder.training_windows(rec);
      w.insert(w.end(), ws.begin(), ws.end());
    }
    if (!w.empty()) subset_windows.push_back(std::move(w));
  }
  auto eval_windows = builder.generation_windows(eval_route);

  core::ActiveLearningConfig cfg;
  cfg.model.num_channels = static_cast<int>(ds.kpis.size());
  cfg.model.hidden = 20;
  cfg.initial_train.epochs = 6;
  cfg.incremental_train.epochs = 3;
  cfg.max_steps = static_cast<int>(std::min<size_t>(5, subset_windows.size()));

  std::printf("Held-out evaluation route: %zu samples over %.0f s.\n\n",
              eval_route.samples.size(), eval_route.samples.back().t);
  std::printf("Campaign steps (drive where the model is least certain):\n");
  std::printf("%6s %10s %8s %8s %8s  %s\n", "step", "data used", "MAE", "DTW", "HWD",
              "subset driven");

  auto steps = core::run_active_learning(subset_windows, eval_windows, norm,
                                         core::SelectionStrategy::kUncertainty, cfg);
  for (size_t i = 0; i < steps.size(); ++i) {
    const auto& st = steps[i];
    std::printf("%6zu %9.1f%% %8.2f %8.2f %8.2f  %s\n", i + 1, 100.0 * st.fraction_used,
                st.mae, st.dtw, st.hwd,
                st.picked_subset < 0 ? "(seed subset)" : "uncertainty pick");
  }

  if (steps.size() >= 2) {
    size_t best = 0;
    for (size_t i = 1; i < steps.size(); ++i)
      if (steps[i].hwd < steps[best].hwd) best = i;
    std::printf("\nBest fidelity (HWD %.2f) reached at step %zu with %.0f%% of the region's\n"
                "measurements; driving the remaining subsets adds little — that is the\n"
                "measurement saving GenDT targets.\n",
                steps[best].hwd, best + 1, 100.0 * steps[best].fraction_used);
  }
  return 0;
}
