// Bringing your own data: the CSV round trip an operator would use.
//
//   1. Export a drive-test campaign (here: simulated) to CSV — the same
//      schema you would produce from a Nemo/TEMS export plus a CellMapper
//      cell table.
//   2. Reload the CSVs, train GenDT on the loaded records.
//   3. Generate KPIs for a new trajectory read from CSV and write the
//      result back out.
//
// Build & run:  ./build/examples/custom_data
#include <cstdio>
#include <filesystem>

#include "gendt/core/model.h"
#include "gendt/io/csv.h"
#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

int main() {
  std::printf("=== GenDT with CSV data in and out ===\n\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gendt_custom_data").string();
  std::filesystem::create_directories(dir);

  // --- 1. A measurement campaign, exported to CSV --------------------------
  sim::DatasetScale scale;
  scale.train_duration_s = 400.0;
  scale.test_duration_s = 160.0;
  scale.records_per_scenario = 1;
  sim::Dataset ds = sim::make_dataset_a(scale);

  std::vector<std::string> record_files;
  for (size_t i = 0; i < ds.train.size(); ++i) {
    const std::string path = dir + "/record_" + std::to_string(i) + ".csv";
    if (!io::write_record_csv(ds.train[i], path)) {
      std::fprintf(stderr, "export failed: %s\n", path.c_str());
      return 1;
    }
    record_files.push_back(path);
  }
  const std::string cells_path = dir + "/cells.csv";
  io::write_cells_csv(ds.world.cells, cells_path);
  const std::string traj_path = dir + "/new_route.csv";
  io::write_trajectory_csv(ds.test[0].trajectory, traj_path);
  std::printf("exported %zu record CSVs + cells.csv + a new route to %s\n\n",
              record_files.size(), dir.c_str());

  // --- 2. Reload and train --------------------------------------------------
  std::vector<sim::DriveTestRecord> records;
  for (const auto& path : record_files) {
    auto rec = io::read_record_csv(path);
    if (!rec) {
      std::fprintf(stderr, "import failed: %s\n", io::last_error().c_str());
      return 1;
    }
    records.push_back(std::move(*rec));
  }
  auto cells = io::read_cells_csv(cells_path, ds.world.region.origin);
  std::printf("reloaded %zu records and %zu cells from CSV\n", records.size(),
              cells ? cells->size() : 0);

  context::KpiNorm norm = context::fit_kpi_norm(records, ds.kpis);
  context::ContextConfig ccfg;
  ccfg.window_len = 40;
  ccfg.train_step = 8;
  ccfg.max_cells = 6;
  // In a real deployment you would assemble World from the loaded cell table
  // plus your land-use source; here the simulated world provides both.
  context::ContextBuilder builder(ds.world, ccfg, norm, ds.kpis);
  std::vector<context::Window> windows;
  for (const auto& rec : records) {
    auto w = builder.training_windows(rec);
    windows.insert(windows.end(), w.begin(), w.end());
  }

  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 24;
  core::GenDTGenerator gendt(mcfg, core::TrainConfig{.epochs = 6}, norm);
  gendt.set_kpis(ds.kpis);
  std::printf("training on %zu windows...\n", windows.size());
  gendt.fit(windows);

  // --- 3. Generate for the CSV trajectory and write the series back --------
  auto traj = io::read_trajectory_csv(traj_path);
  if (!traj) {
    std::fprintf(stderr, "import failed: %s\n", io::last_error().c_str());
    return 1;
  }
  auto gen_windows = builder.generation_windows(*traj);
  core::GeneratedSeries series = gendt.generate(gen_windows, 2026);

  std::vector<std::string> names;
  for (auto k : ds.kpis) names.emplace_back(sim::kpi_name(k));
  const std::string out_path = dir + "/generated_kpis.csv";
  io::write_series_csv(series, names, out_path, traj->front().t, 1.0);
  std::printf("wrote %s (%zu samples x %zu KPIs)\n", out_path.c_str(), series.length(),
              series.channels.size());

  // Sanity: the regenerated file parses and matches.
  auto reload = io::read_series_csv(out_path);
  if (reload && reload->length() == series.length()) {
    std::printf("\nround trip verified; generated RSRP mean %.1f dBm (train mean %.1f)\n",
                metrics::series_stats(reload->channels[0]).mean, norm.mean[0]);
  }
  return 0;
}
