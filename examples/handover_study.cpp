// Handover analysis without a drive test (paper §6.3.2).
//
// GenDT is trained with the serving-cell KPI as an extra output channel;
// the generated serving-cell series' change points give the inter-handover
// time distribution, which an operator uses to tune mobility parameters.
//
// Build & run:  ./build/examples/handover_study
#include <cstdio>

#include "gendt/core/model.h"
#include "gendt/downstream/handover.h"
#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

int main() {
  std::printf("=== Handover analysis from generated data ===\n\n");

  sim::DatasetScale scale;
  scale.train_duration_s = 600.0;
  scale.test_duration_s = 300.0;
  scale.records_per_scenario = 1;
  sim::Dataset ds = sim::make_dataset_b(scale);

  // Retrain GenDT with the serving-cell channel added (the paper notes the
  // model itself is unchanged; only the channel list grows).
  std::vector<sim::Kpi> kpis = ds.kpis;
  kpis.push_back(sim::Kpi::kServingCell);
  context::KpiNorm norm = context::fit_kpi_norm(ds.train, kpis);
  context::ContextConfig ccfg;
  ccfg.window_len = 30;
  ccfg.train_step = 10;
  ccfg.max_cells = 5;
  context::ContextBuilder builder(ds.world, ccfg, norm, kpis);

  std::vector<context::Window> train_windows;
  for (const auto& rec : ds.train) {
    auto w = builder.training_windows(rec);
    train_windows.insert(train_windows.end(), w.begin(), w.end());
  }

  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(kpis.size());
  mcfg.hidden = 24;
  core::TrainConfig tcfg;
  tcfg.epochs = 8;
  core::GenDTGenerator gendt(mcfg, tcfg, norm);
  std::printf("Training GenDT with serving-cell channel (%zu windows)...\n",
              train_windows.size());
  gendt.fit(train_windows);

  // Generate over all test routes and pool the handover statistics.
  const int serving_ch = static_cast<int>(kpis.size()) - 1;
  std::vector<double> real_durations, gen_durations;
  for (const auto& test : ds.test) {
    auto gen_windows = builder.generation_windows(test);
    core::GeneratedSeries fake = gendt.generate(gen_windows, 7);
    std::vector<double> t;
    for (const auto& m : test.samples) t.push_back(m.t);
    t.resize(fake.length());

    auto real_serving = test.kpi_series(sim::Kpi::kServingCell);
    real_serving.resize(fake.length());
    auto rd = downstream::detect_inter_handover_times(real_serving, t, 0.5);
    // Generated serving-cell values are continuous: median-filter (handover
    // = sustained change), then threshold at half the channel's std.
    auto smoothed =
        downstream::median_filter(fake.channels[static_cast<size_t>(serving_ch)], 3);
    auto gd =
        downstream::detect_inter_handover_times(smoothed, t, 0.2 * norm.stddev[serving_ch]);
    real_durations.insert(real_durations.end(), rd.begin(), rd.end());
    gen_durations.insert(gen_durations.end(), gd.begin(), gd.end());
  }

  auto cmp = downstream::compare_handover_distributions(real_durations, gen_durations);
  std::printf("\nInter-handover time distribution:\n");
  std::printf("  real:      %zu handovers, mean %.1f s\n", cmp.real_count, cmp.real_mean_s);
  std::printf("  generated: %zu handovers, mean %.1f s\n", cmp.generated_count,
              cmp.generated_mean_s);
  std::printf("  HWD(real, generated) = %.2f\n\n", cmp.hwd);

  // CDF like the paper's Fig. 13.
  std::vector<double> thresholds;
  for (double th = 0.0; th <= 200.0; th += 25.0) thresholds.push_back(th);
  auto cdf_r = metrics::ecdf(real_durations, thresholds);
  auto cdf_g = metrics::ecdf(gen_durations, thresholds);
  std::printf("CDF of inter-handover time (s):\n%10s %8s %8s\n", "threshold", "real", "gen");
  for (size_t i = 0; i < thresholds.size(); ++i)
    std::printf("%10.0f %8.2f %8.2f\n", thresholds[i], cdf_r[i], cdf_g[i]);
  return 0;
}
