// Quickstart: the end-to-end GenDT workflow on a laptop-scale world.
//
//   1. Build a synthetic region (land use, PoIs, cell deployment).
//   2. Run a small drive-test campaign to get training measurements.
//   3. Train the GenDT conditional generative model.
//   4. Generate multi-KPI series for a NEW trajectory (no measurements!)
//      and compare against what a real drive test would have recorded.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "gendt/baselines/baselines.h"
#include "gendt/core/model.h"
#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

int main() {
  std::printf("=== GenDT quickstart ===\n\n");

  // 1. A small single-city world (Dataset A style).
  sim::DatasetScale scale;
  scale.train_duration_s = 500.0;
  scale.test_duration_s = 200.0;
  scale.records_per_scenario = 1;
  sim::Dataset ds = sim::make_dataset_a(scale);
  std::printf("World: %zu cells deployed, %zu PoIs scattered\n", ds.world.cells.size(),
              ds.world.land_use->pois().size());
  std::printf("Training data: %zu drive-test records, %zu samples total\n\n", ds.train.size(),
              ds.total_samples());

  // 2. Context pipeline: windows of L=40 samples, overlapping for training.
  context::KpiNorm norm = context::fit_kpi_norm(ds.train, ds.kpis);
  context::ContextConfig ccfg;
  ccfg.window_len = 40;
  ccfg.train_step = 8;
  ccfg.max_cells = 6;
  context::ContextBuilder builder(ds.world, ccfg, norm, ds.kpis);

  std::vector<context::Window> train_windows;
  for (const auto& rec : ds.train) {
    auto w = builder.training_windows(rec);
    train_windows.insert(train_windows.end(), w.begin(), w.end());
  }
  std::printf("Context: %zu training windows; per window up to %d visible cells x %d attrs "
              "+ %d env attributes\n\n",
              train_windows.size(), ccfg.max_cells, context::kCellAttrs,
              sim::kNumEnvAttributes);

  // A peek at the context of the first window (paper Fig. 3 / Table 11).
  const auto& w0 = train_windows.front();
  std::printf("First window context snapshot (t=0):\n");
  for (size_t ci = 0; ci < w0.cell_attrs.size(); ++ci) {
    std::printf("  cell %zu: offset=(%+.2f, %+.2f) km, p_max(norm)=%.2f, azimuth(norm)=%+.2f, "
                "distance=%.2f km\n",
                ci, w0.cell_attrs[ci](0, 0), w0.cell_attrs[ci](0, 1), w0.cell_attrs[ci](0, 2),
                w0.cell_attrs[ci](0, 3), w0.cell_attrs[ci](0, 4));
  }
  std::printf("  dominant land use nearby:");
  for (int a = 0; a < sim::kNumLandUse; ++a) {
    if (w0.env(0, a) > 0.15)
      std::printf(" %.*s (%.0f%%)", static_cast<int>(context::env_attribute_name(a).size()),
                  context::env_attribute_name(a).data(), 100.0 * w0.env(0, a));
  }
  std::printf("\n\n");

  // 3. Train GenDT.
  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 24;
  core::TrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.verbose = false;
  core::GenDTGenerator gendt(mcfg, tcfg, norm);
  std::printf("Training GenDT (%d epochs over %zu windows)...\n", tcfg.epochs,
              train_windows.size());
  gendt.fit(train_windows);
  std::printf("done.\n\n");

  // 4. Generate for an UNSEEN trajectory and compare with ground truth.
  const sim::DriveTestRecord& test = ds.test[0];
  auto gen_windows = builder.generation_windows(test);
  core::GeneratedSeries fake = gendt.generate(gen_windows, /*seed=*/2024);
  core::GeneratedSeries real = core::real_series(gen_windows, norm);

  std::printf("Generated %zu-sample multi-KPI series for a new %s trajectory:\n",
              fake.length(), scenario_name(test.scenario).data());
  std::printf("%-12s %10s %10s %10s %10s\n", "KPI", "real mean", "gen mean", "MAE", "HWD");
  for (size_t ch = 0; ch < ds.kpis.size(); ++ch) {
    const auto rs = metrics::series_stats(real.channels[ch]);
    const auto gs = metrics::series_stats(fake.channels[ch]);
    std::printf("%-12s %10.2f %10.2f %10.2f %10.2f\n", sim::kpi_name(ds.kpis[ch]).data(),
                rs.mean, gs.mean, metrics::mae(real.channels[ch], fake.channels[ch]),
                metrics::hwd(real.channels[ch], fake.channels[ch]));
  }

  std::printf("\nFirst 10 seconds, RSRP (dBm):\n  real:");
  for (int t = 0; t < 10; ++t) std::printf(" %7.1f", real.channels[0][static_cast<size_t>(t)]);
  std::printf("\n  gen: ");
  for (int t = 0; t < 10; ++t) std::printf(" %7.1f", fake.channels[0][static_cast<size_t>(t)]);
  std::printf("\n\nNo field measurements were used to produce the generated series — only the\n"
              "trajectory and its public network/environment context.\n");
  return 0;
}
