// What-if analysis (paper Appendix C.2): study the effect of deploying new
// cells on radio KPIs along a route, *before* any hardware goes up and
// without a single drive test.
//
// GenDT's conditioning makes this possible: the network context is an input,
// so editing the cell table and regenerating shows the expected KPI change.
//
// Build & run:  ./build/examples/whatif_new_cell
#include <algorithm>
#include <cstdio>

#include "gendt/core/model.h"
#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

int main() {
  std::printf("=== What-if: deploying new cells along a weak route ===\n\n");

  sim::DatasetScale scale;
  scale.train_duration_s = 500.0;
  scale.test_duration_s = 250.0;
  scale.records_per_scenario = 1;
  sim::Dataset ds = sim::make_dataset_a(scale);

  context::KpiNorm norm = context::fit_kpi_norm(ds.train, ds.kpis);
  context::ContextConfig ccfg;
  ccfg.window_len = 30;
  ccfg.train_step = 8;
  ccfg.max_cells = 6;
  context::ContextBuilder builder(ds.world, ccfg, norm, ds.kpis);

  std::vector<context::Window> train_windows;
  for (const auto& rec : ds.train) {
    auto w = builder.training_windows(rec);
    train_windows.insert(train_windows.end(), w.begin(), w.end());
  }

  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 24;
  core::GenDTGenerator gendt(mcfg, core::TrainConfig{.epochs = 8}, norm);
  std::printf("Training GenDT on today's deployment (%zu windows)...\n", train_windows.size());
  gendt.fit(train_windows);

  // The study route: the bus test trajectory.
  const sim::DriveTestRecord& route = ds.test[1];
  auto before_windows = builder.generation_windows(route.trajectory);
  core::GeneratedSeries before = gendt.generate(before_windows, 11);

  // Find the weakest generated spot along the route and plan a 3-sector
  // site right there.
  size_t worst = 0;
  for (size_t i = 1; i < before.channels[0].size(); ++i)
    if (before.channels[0][i] < before.channels[0][worst]) worst = i;
  const geo::LatLon site = route.samples.empty()
                               ? route.trajectory[worst].pos
                               : route.samples[std::min(worst, route.samples.size() - 1)].pos;
  std::printf("Weakest generated RSRP %.1f dBm at sample %zu; planning a site there.\n",
              before.channels[0][worst], worst);

  // Edited world: same region, plus the hypothetical site.
  sim::World modified = ds.world;
  std::vector<radio::Cell> cells = ds.world.cells.cells();
  radio::CellId next_id = 0;
  for (const auto& c : cells) next_id = std::max(next_id, c.id);
  for (int sector = 0; sector < 3; ++sector) {
    radio::Cell c;
    c.id = ++next_id;
    c.site = site;
    c.p_max_dbm = 46.0;
    c.azimuth_deg = 120.0 * sector;
    cells.push_back(c);
  }
  modified.cells = radio::CellTable(std::move(cells), ds.world.region.origin);

  context::ContextBuilder modified_builder(modified, ccfg, norm, ds.kpis);
  auto after_windows = modified_builder.generation_windows(route.trajectory);
  core::GeneratedSeries after = gendt.generate(after_windows, 11);

  // Compare the generated KPI picture before vs after, around the new site.
  const size_t n = std::min(before.channels[0].size(), after.channels[0].size());
  const size_t lo = worst > 30 ? worst - 30 : 0;
  const size_t hi = std::min(n, worst + 30);
  double before_mean = 0.0, after_mean = 0.0;
  for (size_t i = lo; i < hi; ++i) {
    before_mean += before.channels[0][i];
    after_mean += after.channels[0][i];
  }
  before_mean /= static_cast<double>(hi - lo);
  after_mean /= static_cast<double>(hi - lo);

  std::printf("\nGenerated RSRP near the planned site (+-30 samples):\n");
  std::printf("  before: %.1f dBm   after: %.1f dBm   delta: %+.1f dB\n", before_mean,
              after_mean, after_mean - before_mean);
  const auto sb = metrics::series_stats(before.channels[0]);
  const auto sa = metrics::series_stats(after.channels[0]);
  std::printf("  route-wide mean: %.1f -> %.1f dBm\n", sb.mean, sa.mean);
  std::printf("\nThe operator sees the expected coverage gain before committing to the build.\n");
  return 0;
}
