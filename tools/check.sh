#!/usr/bin/env bash
# Sanitized check of the parallel runtime: builds the tree with
# GENDT_SANITIZE=thread and runs the runtime + nn test subset (the code that
# actually shares state across threads) under ThreadSanitizer.
#
# Usage: tools/check.sh [thread|address] [build-dir]
set -euo pipefail

SANITIZER="${1:-thread}"
BUILD_DIR="${2:-build-${SANITIZER}san}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

case "$SANITIZER" in
  thread|address) ;;
  *) echo "usage: tools/check.sh [thread|address] [build-dir]" >&2; exit 2 ;;
esac

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENDT_SANITIZE="$SANITIZER"
cmake --build "$ROOT/$BUILD_DIR" -j "$JOBS" --target \
  runtime_test runtime_determinism_test nn_mat_test nn_tensor_test nn_layers_test nn_optim_test

# Fail on any sanitizer report, not just on test assertion failures.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
ctest --test-dir "$ROOT/$BUILD_DIR" -L 'runtime|nn' --output-on-failure -j "$JOBS"

echo "check.sh: ${SANITIZER}-sanitized runtime/nn suite passed"
