#!/usr/bin/env bash
# Sanitized check of a test-label subset, plus a `lint` mode for the static
# gate. Sanitizer modes build the tree with GENDT_SANITIZE=<sanitizer> into a
# per-sanitizer build dir and run the matching ctest labels under it.
# Defaults to the runtime + nn + serialize + serve + gen-parity subset (code
# that shares state across threads, the checkpoint fault-injection corpus,
# the serving engine's chaos sweep plus the registry/router, trace-replay,
# and streaming-daemon suites ("serve" also matches the hyphenated
# serve-replay and serve-stream labels, so the GDTSTRM1 frame fuzz corpus
# and the resume/drain chaos tests run under every sanitizer here), and the
# inference fast path's bitwise-parity suite — these run multi-worker
# batches whose determinism claim is only credible with TSan watching) —
# pass a label regex to vet anything else, e.g.:
#
#   tools/check.sh lint                   # unified static analysis
#                                         # (gendt_lint.py self-test + all
#                                         # rule packs + clang-tidy gate when
#                                         # clang-tidy is installed)
#   tools/check.sh thread                 # TSan over the default subset
#   tools/check.sh undefined              # UBSan (+float-cast-overflow)
#   tools/check.sh address 'serialize'    # ASan over the corruption corpus
#   tools/check.sh leak 'runtime|nn|core' # LSan over a wider subset
#
# A label regex that matches zero tests is an error (a typo'd label must not
# pass vacuously).
#
# Usage: tools/check.sh [lint|thread|address|undefined|leak] [label-regex] [build-dir]
set -euo pipefail

SANITIZER="${1:-thread}"
LABEL="${2:-runtime|nn|serialize|serve|gen-parity}"
BUILD_DIR="${3:-build-${SANITIZER}san}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "$SANITIZER" = "lint" ]; then
  # Static gate: fixture corpus, then all source rule packs over the tree,
  # then the clang-tidy gate (skipped with a notice when the tool is
  # absent). The tidy build dir defaults to build/ so local runs share the
  # compile_commands.json a plain configure already exported.
  python3 "$ROOT/tools/gendt_lint.py" --self-test
  python3 "$ROOT/tools/gendt_lint.py"
  python3 "$ROOT/tools/gendt_lint.py" --tidy --build-dir "${3:-$ROOT/build}"
  echo "check.sh: lint gate passed"
  exit 0
fi

case "$SANITIZER" in
  thread|address|undefined|leak) ;;
  *) echo "usage: tools/check.sh [lint|thread|address|undefined|leak] [label-regex] [build-dir]" >&2
     exit 2 ;;
esac

cmake -B "$ROOT/$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENDT_SANITIZE="$SANITIZER"
cmake --build "$ROOT/$BUILD_DIR" -j "$JOBS"

# Refuse to "pass" when the label matches nothing.
MATCHED="$(ctest --test-dir "$ROOT/$BUILD_DIR" -N -L "$LABEL" | sed -n 's/^Total Tests: //p')"
if [ -z "$MATCHED" ] || [ "$MATCHED" -eq 0 ]; then
  echo "check.sh: label regex '$LABEL' matches no tests — refusing to pass vacuously" >&2
  exit 3
fi

# Fail on any sanitizer report, not just on test assertion failures.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$ROOT/$BUILD_DIR" -L "$LABEL" --output-on-failure -j "$JOBS"

echo "check.sh: ${SANITIZER}-sanitized suite '$LABEL' passed ($MATCHED tests)"
