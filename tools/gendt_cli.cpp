// gendt — command-line front end for the GenDT library.
//
//   gendt simulate --out DIR [--dataset a|b] [--seed N] [--train-s SEC]
//       Simulate a drive-test campaign; writes per-scenario train/test
//       record CSVs plus the deployment's cells.csv.
//
//   gendt train --out MODEL.ckpt [--dataset a|b] [--seed N] [--epochs E]
//               [--threads N] [--resume] [--record FILE]...
//       Train a GenDT model. Records come from --record CSVs, or from a
//       fresh simulation of the dataset when none are given. After every
//       epoch the full training state — parameters, Adam slots, epoch
//       cursor, KPI normalization — is written atomically to MODEL.ckpt
//       (GDTCKPT2: CRC-protected, norm stats in header metadata). A run
//       killed mid-way resumes with --resume and finishes bitwise
//       identical to an uninterrupted run, at any --threads setting.
//
//   gendt generate --model MODEL.ckpt --trajectory TRAJ.csv --out OUT.csv
//                  [--dataset a|b] [--seed N] [--gen-seed N] [--threads N]
//       Generate KPI series for a trajectory (no measurements needed).
//       Reads GDTCKPT2 checkpoints and legacy GDTCKPT1 files (which carried
//       the norm stats as two fake parameter rows).
//
//   gendt eval --real FILE.csv --generated FILE.csv
//       Fidelity metrics (MAE/DTW/HWD) per channel between two series CSVs.
//
//   gendt pack --in MODEL.ckpt --out MODEL.gdtpack
//       Convert a checkpoint into a GDTPACK1 zero-copy weight arena:
//       parameters + metadata laid out 64-byte aligned for one-mmap loading
//       (trainer state is dropped — a pack is an inference artifact).
//       generate and serve accept either format and detect it by magic.
//
//   gendt serve --requests FILE (--model MODEL.ckpt | --models id=PATH,...)
//               --out DIR [--deadline-ms N] [--max-queue N] [--shed]
//               [--model-budget N] [--threads N] [--dataset a|b] [--seed N]
//       Batch-serve generation requests through the fault-tolerant serving
//       stack: a ModelRegistry of named models routed by request model id,
//       bounded admission with per-model budgets, per-request deadlines,
//       retry-with-backoff, and graceful degradation to an FDaS fallback.
//       FILE lists one request per line: `trajectory.csv [gen-seed]
//       [deadline-ms] [model-id]` ('#' starts a comment; the model id
//       defaults to the first --models entry). Exits non-zero iff any
//       request ends in a structured error or was shed (degraded responses
//       are successes — that is the point of the fallback).
//
//   gendt serve --stream --socket PATH --model MODEL.{ckpt,gdtpack}
//               [--chunk-windows N] [--idle-timeout-ms N] [--drain-deadline-ms N]
//               [--threads N] [--dataset a|b] [--seed N]
//       Streaming daemon: GDTSTRM1 sessions over a Unix-domain socket.
//       Each OPEN carries a trajectory; the server answers in ACK-paced
//       chunks (one in flight per session, so a stalled reader exerts
//       backpressure), keeps a resume snapshot at every ACK, and survives
//       disconnects: a RESUME continues from the last ACKed chunk with the
//       stream bitwise identical to an uninterrupted one — and to `gendt
//       generate` on the same trajectory. SIGINT/SIGTERM drains gracefully:
//       in-flight chunks finish (or cancel at --drain-deadline-ms), every
//       session closes cleanly, final stats partition exactly.
//
//   gendt stream-client --socket PATH --trajectory TRAJ.csv --out OUT.csv
//               [--gen-seed N] [--chunk-windows N]
//               [--kill-after-chunks K --state FILE] [--resume --state FILE]
//       Blocking client for the streaming daemon: opens a session, receives
//       and ACKs chunks, writes the series CSV. --kill-after-chunks drops
//       the connection mid-stream and saves the session credentials plus
//       received values to --state; a later --resume --state run reconnects,
//       RESUMEs, and finishes the identical CSV.
//
//   gendt replay --out BENCH.json (--scripted N | --models id=PATH,...)
//               [--requests N] [--rate-hz R] [--seed N] [--deadline-ms N]
//               [--sim-workers W] [--budget B] [--threads T] [--swap-at MS]
//       Trace-replay load harness: generate a request trace (synthetic
//       windows against N scripted models, or simulated user trajectories
//       against real checkpoints), replay it against the model registry on
//       virtual time, and write per-model p50/p99 latency + shed rate as
//       google-benchmark JSON (tools/bench_compare.py format). Outcomes are
//       bitwise deterministic at any --threads value and any --swap-at
//       timing; --swap-at hot-swaps the first model to identically-loaded
//       weights mid-replay to prove it.
//
// The world (cells + environment context) is reconstructed from
// --dataset/--seed; operators with real data would adapt sim::World to
// their cell table and land-use sources.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gendt/baselines/baselines.h"
#include "gendt/core/infer_session.h"
#include "gendt/core/model.h"
#include "gendt/geo/geo.h"
#include "gendt/io/csv.h"
#include "gendt/metrics/metrics.h"
#include "gendt/nn/pack.h"
#include "gendt/nn/simd.h"
#include "gendt/runtime/signal.h"
#include "gendt/runtime/thread_pool.h"
#include "gendt/serve/engine.h"
#include "gendt/serve/fault.h"
#include "gendt/serve/registry.h"
#include "gendt/serve/replay.h"
#include "gendt/serve/router.h"
#include "gendt/serve/stream/client.h"
#include "gendt/serve/stream/server.h"
#include "gendt/sim/dataset.h"

using namespace gendt;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> records;

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool flag(const std::string& key) const { return options.count(key) != 0; }
  // Exits with a usage error on a malformed value rather than letting
  // std::stol's exception escape to std::terminate.
  long get_long(const std::string& key, long fallback) const {
    const std::string v = get(key);
    if (v.empty()) return fallback;
    try {
      size_t pos = 0;
      const long parsed = std::stol(v, &pos);
      if (pos != v.size()) throw std::invalid_argument(v);
      return parsed;
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: --%s expects an integer, got '%s'\n", key.c_str(), v.c_str());
      std::exit(2);
    }
  }
};

// Per-command vocabulary: anything else is a hard usage error, not a silent
// skip — a typoed `--thread 4` must not quietly run serial.
const std::map<std::string, std::set<std::string>>& command_options() {
  static const std::map<std::string, std::set<std::string>> kOptions = {
      {"simulate", {"out", "dataset", "seed", "train-s"}},
      {"train", {"out", "dataset", "seed", "train-s", "epochs", "threads", "resume", "record"}},
      {"generate",
       {"model", "trajectory", "out", "dataset", "seed", "train-s", "gen-seed", "threads",
        "fast", "reference"}},
      {"eval", {"real", "generated"}},
      {"pack", {"in", "out"}},
      {"serve",
       {"requests", "model", "models", "model-budget", "out", "dataset", "seed", "train-s",
        "deadline-ms", "max-queue", "shed", "threads", "batch-max", "lane-batch",
        // --stream daemon options
        "stream", "socket", "chunk-windows", "idle-timeout-ms", "drain-deadline-ms",
        "stream-sessions", "idle-exit-ms"}},
      {"stream-client",
       {"socket", "trajectory", "out", "gen-seed", "chunk-windows", "kill-after-chunks",
        "state", "resume"}},
      {"replay",
       {"out", "scripted", "models", "requests", "rate-hz", "seed", "deadline-ms",
        "sim-workers", "budget", "threads", "window-cost-ms", "windows", "window-len",
        "swap-at", "duration-s", "dataset", "train-s"}},
      {"covermap",
       {"out", "grid", "batch", "threads", "seed", "gen-seed", "train-s", "dataset", "model",
        "bench-out"}},
  };
  return kOptions;
}

bool is_help(const std::string& command) {
  return command == "--help" || command == "-h" || command == "help";
}

bool is_version(const std::string& command) {
  return command == "--version" || command == "-V" || command == "version";
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  if (a.command.empty() || is_help(a.command) || is_version(a.command)) return a;
  const auto cmd = command_options().find(a.command);
  if (cmd == command_options().end()) {
    std::fprintf(stderr,
                 "error: unknown command '%s' (expected simulate, train, generate, eval, "
                 "pack, serve, stream-client, replay, or covermap; see 'gendt --help')\n",
                 a.command.c_str());
    std::exit(2);
  }
  static const std::set<std::string> kBoolFlags = {"resume", "shed", "fast", "reference",
                                                   "stream", "lane-batch"};
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s' (options start with --)\n",
                   arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2);
    if (cmd->second.count(key) == 0) {
      std::fprintf(stderr, "error: unknown option '--%s' for command '%s'\n", key.c_str(),
                   a.command.c_str());
      std::exit(2);
    }
    if (kBoolFlags.count(key) != 0) {  // boolean flags take no value
      a.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: option '--%s' expects a value\n", key.c_str());
      std::exit(2);
    }
    if (key == "record") {
      a.records.emplace_back(argv[++i]);
    } else {
      a.options[key] = argv[++i];
    }
  }
  return a;
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: gendt <simulate|train|generate|eval|pack|serve|stream-client|replay"
               "|covermap> [options]\n"
               "  simulate --out DIR [--dataset a|b] [--seed N] [--train-s SEC]\n"
               "  train    --out MODEL.ckpt [--dataset a|b] [--seed N] [--epochs E]"
               " [--threads N] [--resume] [--record FILE]...\n"
               "  generate --model MODEL.ckpt --trajectory TRAJ.csv --out OUT.csv"
               " [--dataset a|b] [--seed N] [--gen-seed N] [--threads N] [--fast|--reference]\n"
               "  eval     --real FILE.csv --generated FILE.csv\n"
               "  pack     --in MODEL.ckpt --out MODEL.gdtpack\n"
               "  serve    --requests FILE (--model MODEL.ckpt | --models id=PATH,...)"
               " --out DIR [--deadline-ms N] [--max-queue N] [--shed] [--model-budget N]"
               " [--threads N] [--batch-max N] [--lane-batch] [--dataset a|b] [--seed N]\n"
               "  serve    --stream --socket PATH --model MODEL [--chunk-windows N]"
               " [--idle-timeout-ms N] [--drain-deadline-ms N] [--threads N]"
               " [--dataset a|b] [--seed N]\n"
               "  stream-client --socket PATH --trajectory TRAJ.csv --out OUT.csv"
               " [--gen-seed N] [--chunk-windows N] [--kill-after-chunks K] [--state FILE]"
               " [--resume]\n"
               "  replay   --out BENCH.json (--scripted N | --models id=PATH,...)"
               " [--requests N] [--rate-hz R] [--seed N] [--deadline-ms N] [--sim-workers W]"
               " [--budget B] [--threads T] [--swap-at MS]\n"
               "  covermap --out MAP.csv [--grid WxH] [--batch B] [--threads N]"
               " [--model MODEL] [--gen-seed N] [--bench-out BENCH.json]"
               " [--dataset a|b] [--seed N]\n"
               "--threads N sets the worker-thread count (0 = all hardware threads,\n"
               "1 = serial). Results are bitwise identical at every setting.\n"
               "train writes an atomic checkpoint after every epoch; --resume\n"
               "continues a killed run bit-for-bit from the last epoch boundary.\n"
               "serve reads one request per line from --requests ('trajectory.csv\n"
               "[gen-seed] [deadline-ms] [model-id]'), routes by model id through a\n"
               "multi-model registry (--models id=PATH,... with per-model\n"
               "--model-budget admission), enforces deadlines cooperatively, and\n"
               "degrades to an FDaS fallback instead of failing when it can.\n"
               "replay load-tests the registry on virtual time and writes per-model\n"
               "p50/p99 latency + shed rate as bench_compare.py-compatible JSON.\n"
               "generate runs the tape-free fast path by default; --reference runs\n"
               "the autograd graph instead — outputs are bitwise identical.\n"
               "serve --batch-max N lets each worker drain up to N queued requests\n"
               "and fan them out on the shared pool; responses are bitwise\n"
               "independent of batch composition. --lane-batch additionally packs\n"
               "each drained batch's compatible requests into one lane-batched\n"
               "GEMM rollout — same bits, higher throughput.\n"
               "covermap generates a KPI coverage map (ROADMAP 4b): a --grid WxH\n"
               "lattice of stationary trajectories over the region, rolled out in\n"
               "lane batches of --batch through the batched inference session.\n"
               "Point (ix,iy) always runs on RNG stream derive_stream_seed(\n"
               "gen-seed, iy*W+ix), so the CSV is byte-identical at every\n"
               "--threads/--batch setting; --bench-out writes throughput JSON.\n"
               "serve --stream runs the GDTSTRM1 streaming daemon on a Unix socket:\n"
               "chunked generation with ACK-paced backpressure, seam-free RESUME\n"
               "from the last ACKed chunk, and graceful drain on SIGINT/SIGTERM.\n"
               "stream-client consumes one stream into a series CSV;\n"
               "--kill-after-chunks K drops the connection after K chunks (saving\n"
               "--state) and --resume continues from the state file — the resumed\n"
               "CSV is byte-identical to an uninterrupted stream and to generate.\n"
               "pack converts a GDTCKPT2 checkpoint into a GDTPACK1 weight arena\n"
               "that generate/serve load with one mmap and zero tensor copies;\n"
               "GENDT_SIMD=off|avx2|auto selects the kernel route (gendt --version\n"
               "shows the CPU features and the route in effect).\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

sim::Dataset build_dataset(const Args& a) {
  sim::DatasetScale scale;
  scale.seed = static_cast<uint64_t>(a.get_long("seed", 42));
  scale.train_duration_s = static_cast<double>(a.get_long("train-s", 600));
  scale.test_duration_s = scale.train_duration_s / 2.0;
  scale.records_per_scenario = 1;
  return a.get("dataset", "a") == "b" ? sim::make_dataset_b(scale) : sim::make_dataset_a(scale);
}

context::ContextConfig default_context() {
  context::ContextConfig cfg;
  cfg.window_len = 50;
  cfg.train_step = 10;
  cfg.max_cells = 6;
  return cfg;
}

// Legacy GDTCKPT1 checkpoints carried the norm stats as two fake parameter
// rows; v2 files keep them in header metadata instead. This helper exists
// only for the v1 read path in cmd_generate.
std::vector<nn::NamedParam> legacy_norm_params(nn::Tensor& mean, nn::Tensor& stddev) {
  return {{"kpi_norm.mean", mean}, {"kpi_norm.std", stddev}};
}

int cmd_simulate(const Args& a) {
  const std::string out_dir = a.get("out");
  if (out_dir.empty()) return usage();
  std::filesystem::create_directories(out_dir);
  sim::Dataset ds = build_dataset(a);

  if (!io::write_cells_csv(ds.world.cells, out_dir + "/cells.csv")) {
    std::fprintf(stderr, "error: cannot write %s/cells.csv\n", out_dir.c_str());
    return 1;
  }
  auto dump = [&](const std::vector<sim::DriveTestRecord>& recs, const char* tag) {
    for (const auto& rec : recs) {
      std::string name{sim::scenario_name(rec.scenario)};
      for (auto& c : name)
        if (c == ' ') c = '_';
      const std::string path = out_dir + "/" + tag + "_" + name + ".csv";
      if (!io::write_record_csv(rec, path)) return false;
      std::printf("wrote %s (%zu samples)\n", path.c_str(), rec.samples.size());
    }
    return true;
  };
  if (!dump(ds.train, "train") || !dump(ds.test, "test")) {
    std::fprintf(stderr, "error: failed writing record CSVs\n");
    return 1;
  }
  std::printf("wrote %s/cells.csv (%zu cells)\n", out_dir.c_str(), ds.world.cells.size());
  return 0;
}

int cmd_train(const Args& a) {
  const std::string out = a.get("out");
  if (out.empty()) return usage();
  const bool resume = a.flag("resume");
  const std::string dataset = a.get("dataset", "a");
  sim::Dataset ds = build_dataset(a);

  std::vector<sim::DriveTestRecord> records;
  if (a.records.empty()) {
    records = ds.train;
    std::printf("no --record given: training on a simulated %s-style campaign "
                "(%zu records)\n",
                dataset.c_str(), records.size());
  } else {
    for (const auto& path : a.records) {
      auto rec = io::read_record_csv(path);
      if (!rec) {
        std::fprintf(stderr, "error: %s\n", io::last_error().c_str());
        return 1;
      }
      records.push_back(std::move(*rec));
    }
  }

  core::TrainConfig tcfg;
  tcfg.epochs = static_cast<int>(a.get_long("epochs", 12));
  tcfg.seed = static_cast<uint64_t>(a.get_long("seed", 42));
  tcfg.verbose = true;
  const int threads = static_cast<int>(a.get_long("threads", 0));
  tcfg.parallelism = {.threads = threads};

  // On --resume, the checkpoint is the source of truth for the norm stats
  // and the training cursor; it is read (and fully validated) before the
  // windows are built, because the norm shapes every window's target.
  nn::Checkpoint ckpt;
  context::KpiNorm norm = context::fit_kpi_norm(records, ds.kpis);
  if (resume) {
    const nn::LoadResult r = nn::read_checkpoint(out, ckpt);
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot resume from %s: %s\n", out.c_str(),
                   r.message().c_str());
      return 1;
    }
    if (r.version < 2) {
      std::fprintf(stderr,
                   "error: %s is a legacy GDTCKPT1 checkpoint with no training state; "
                   "retrain without --resume\n",
                   out.c_str());
      return 1;
    }
    uint64_t saved_seed = 0, epochs_done = 0;
    if (!ckpt.meta.get_u64("train.seed", saved_seed) ||
        !ckpt.meta.get_u64("train.epochs_done", epochs_done)) {
      std::fprintf(stderr, "error: %s carries no resume cursor (not written by 'gendt train')\n",
                   out.c_str());
      return 1;
    }
    if (saved_seed != tcfg.seed) {
      std::fprintf(stderr,
                   "error: checkpoint was trained with --seed %llu, not %llu — resuming would "
                   "not reproduce the uninterrupted run\n",
                   static_cast<unsigned long long>(saved_seed),
                   static_cast<unsigned long long>(tcfg.seed));
      return 1;
    }
    std::string saved_dataset;
    if (ckpt.meta.get_string("train.dataset", saved_dataset) && saved_dataset != dataset) {
      std::fprintf(stderr, "error: checkpoint was trained on dataset '%s', not '%s'\n",
                   saved_dataset.c_str(), dataset.c_str());
      return 1;
    }
    std::vector<double> mean, stddev;
    if (!ckpt.meta.get_f64s("kpi_norm.mean", mean) ||
        !ckpt.meta.get_f64s("kpi_norm.std", stddev) || mean.size() != ds.kpis.size() ||
        stddev.size() != ds.kpis.size()) {
      std::fprintf(stderr, "error: %s has no usable kpi_norm metadata\n", out.c_str());
      return 1;
    }
    norm.mean = std::move(mean);
    norm.stddev = std::move(stddev);
    tcfg.start_epoch = static_cast<int>(epochs_done);
  }

  context::ContextBuilder builder(ds.world, default_context(), norm, ds.kpis);
  std::vector<context::Window> windows;
  for (const auto& rec : records) {
    auto w = builder.training_windows(rec);
    windows.insert(windows.end(), w.begin(), w.end());
  }
  if (windows.empty()) {
    std::fprintf(stderr, "error: no training windows (records too short?)\n");
    return 1;
  }

  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 48;
  mcfg.parallelism = {.threads = threads};
  core::GenDTModel model(mcfg);

  auto params = model.generator_params();
  for (auto& p : model.discriminator_params()) params.push_back(p);

  if (resume) {
    uint64_t saved_windows = 0;
    if (ckpt.meta.get_u64("train.windows", saved_windows) && saved_windows != windows.size()) {
      std::fprintf(stderr,
                   "error: checkpoint was trained on %llu windows, this invocation built %zu — "
                   "the training set changed\n",
                   static_cast<unsigned long long>(saved_windows), windows.size());
      return 1;
    }
    const nn::LoadResult r = nn::apply_params(params, ckpt, nn::LoadMode::kStrict);
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot resume from %s: %s\n", out.c_str(),
                   r.message().c_str());
      return 1;
    }
    tcfg.resume_opt_state = std::move(ckpt.state);
    if (tcfg.start_epoch >= tcfg.epochs) {
      std::printf("%s already holds %d trained epochs (requested %d) — nothing to resume\n",
                  out.c_str(), tcfg.start_epoch, tcfg.epochs);
      return 0;
    }
    std::printf("resuming %s at epoch %d/%d\n", out.c_str(), tcfg.start_epoch, tcfg.epochs);
  }

  // Metadata shared by every epoch's checkpoint: the norm stats (formerly
  // smuggled as two fake parameter rows) plus the resume cursor inputs.
  nn::CkptMeta meta;
  meta.set_f64s("kpi_norm.mean", norm.mean);
  meta.set_f64s("kpi_norm.std", norm.stddev);
  meta.set_string("train.dataset", dataset);
  meta.set_u64("train.seed", tcfg.seed);
  meta.set_u64("train.total_epochs", static_cast<uint64_t>(tcfg.epochs));
  meta.set_u64("train.windows", windows.size());

  auto write_checkpoint = [&](int epochs_done, std::vector<nn::TensorRecord> opt_state) {
    nn::Checkpoint ck;
    ck.meta = meta;
    ck.meta.set_u64("train.epochs_done", static_cast<uint64_t>(epochs_done));
    ck.params.reserve(params.size());
    for (const auto& p : params) ck.params.push_back({p.name, p.tensor.value()});
    ck.state = std::move(opt_state);
    if (!nn::save_checkpoint(ck, out)) {
      std::fprintf(stderr, "warning: failed to write checkpoint %s\n", out.c_str());
      return false;
    }
    return true;
  };
  tcfg.on_epoch_end = [&](const core::TrainCheckpoint& tc) {
    write_checkpoint(tc.epochs_done, tc.opt_state);
  };

  std::printf("training on %zu windows for %d epochs...\n", windows.size(),
              tcfg.epochs - tcfg.start_epoch);
  const core::TrainStats stats = core::train_gendt(model, windows, tcfg);
  if (!stats.error.empty()) {
    std::fprintf(stderr, "error: %s\n", stats.error.c_str());
    return 1;
  }
  if (tcfg.epochs <= tcfg.start_epoch) {
    // Zero-epoch run: still publish a checkpoint so generate works.
    if (!write_checkpoint(tcfg.start_epoch, {})) return 1;
  }
  std::printf("saved %s\n", out.c_str());
  return 0;
}

int cmd_generate(const Args& a) {
  const std::string model_path = a.get("model");
  const std::string traj_path = a.get("trajectory");
  const std::string out = a.get("out");
  if (model_path.empty() || traj_path.empty() || out.empty()) return usage();

  sim::Dataset ds = build_dataset(a);
  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 48;
  mcfg.parallelism = {.threads = static_cast<int>(a.get_long("threads", 0))};
  core::GenDTModel model(mcfg);

  context::KpiNorm norm;
  norm.mean.assign(ds.kpis.size(), 0.0);
  norm.stddev.assign(ds.kpis.size(), 1.0);
  // Declared at function scope: when the model is a GDTPACK1 arena, the live
  // parameters are views into this mapping for the rest of the command.
  nn::PackedModel pack;
  if (nn::sniff_packed(model_path)) {
    const nn::LoadResult r = pack.map(model_path);  // kFull: one-shot command
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", model_path.c_str(),
                   r.message().c_str());
      return 1;
    }
    std::vector<double> mean, stddev;
    if (!pack.meta().get_f64s("kpi_norm.mean", mean) ||
        !pack.meta().get_f64s("kpi_norm.std", stddev) || mean.size() != ds.kpis.size() ||
        stddev.size() != ds.kpis.size()) {
      std::fprintf(stderr, "error: %s has no usable kpi_norm metadata\n", model_path.c_str());
      return 1;
    }
    norm.mean = std::move(mean);
    norm.stddev = std::move(stddev);
    auto params = model.generator_params();
    for (auto& p : model.discriminator_params()) params.push_back(p);
    const nn::LoadResult applied = nn::apply_packed(params, pack, nn::LoadMode::kStrict);
    if (!applied.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s (config mismatch?)\n", model_path.c_str(),
                   applied.message().c_str());
      return 1;
    }
  } else {
    nn::Checkpoint ckpt;
    const nn::LoadResult r = nn::read_checkpoint(model_path, ckpt);
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", model_path.c_str(),
                   r.message().c_str());
      return 1;
    }
    auto params = model.generator_params();
    for (auto& p : model.discriminator_params()) params.push_back(p);
    if (r.version >= 2) {
      // v2: norm stats live in header metadata.
      std::vector<double> mean, stddev;
      if (!ckpt.meta.get_f64s("kpi_norm.mean", mean) ||
          !ckpt.meta.get_f64s("kpi_norm.std", stddev) || mean.size() != ds.kpis.size() ||
          stddev.size() != ds.kpis.size()) {
        std::fprintf(stderr, "error: %s has no usable kpi_norm metadata\n", model_path.c_str());
        return 1;
      }
      norm.mean = std::move(mean);
      norm.stddev = std::move(stddev);
      const nn::LoadResult applied = nn::apply_params(params, ckpt, nn::LoadMode::kStrict);
      if (!applied.ok()) {
        std::fprintf(stderr, "error: cannot load %s: %s (config mismatch?)\n",
                     model_path.c_str(), applied.message().c_str());
        return 1;
      }
    } else {
      // v1: norm stats ride along as two fake parameter rows.
      nn::Tensor mean(nn::Mat::zeros(1, static_cast<int>(ds.kpis.size())), false);
      nn::Tensor stddev(nn::Mat::ones(1, static_cast<int>(ds.kpis.size())), false);
      for (auto& p : legacy_norm_params(mean, stddev)) params.push_back(p);
      const nn::LoadResult applied = nn::apply_params(params, ckpt, nn::LoadMode::kStrict);
      if (!applied.ok()) {
        std::fprintf(stderr, "error: cannot load %s: %s (config mismatch?)\n",
                     model_path.c_str(), applied.message().c_str());
        return 1;
      }
      for (size_t ch = 0; ch < ds.kpis.size(); ++ch) {
        norm.mean[ch] = mean.value()(0, static_cast<int>(ch));
        norm.stddev[ch] = stddev.value()(0, static_cast<int>(ch));
      }
    }
  }

  auto traj = io::read_trajectory_csv(traj_path);
  if (!traj) {
    std::fprintf(stderr, "error: %s\n", io::last_error().c_str());
    return 1;
  }

  context::ContextBuilder builder(ds.world, default_context(), norm, ds.kpis);
  auto windows = builder.generation_windows(*traj);
  if (windows.empty()) {
    std::fprintf(stderr, "error: trajectory too short for one window\n");
    return 1;
  }

  // --fast (default) runs the tape-free InferenceSession; --reference runs
  // the autograd Tensor graph. Outputs are bitwise identical (the gen-parity
  // suite enforces it); --reference exists for A/B checks of exactly that.
  if (a.flag("fast") && a.flag("reference")) {
    std::fprintf(stderr, "error: --fast and --reference are mutually exclusive\n");
    return 2;
  }
  core::GeneratedSeries series;
  series.channels.assign(ds.kpis.size(), {});
  const uint64_t gen_seed = static_cast<uint64_t>(a.get_long("gen-seed", 1));
  std::vector<core::WindowSample> samples;
  if (a.flag("reference")) {
    samples = model.sample_windows(windows, gen_seed);
  } else {
    core::InferenceSession session(model);
    samples = session.run(windows, gen_seed);
  }
  for (const auto& s : samples) {
    for (int t = 0; t < s.output.rows(); ++t)
      for (size_t ch = 0; ch < ds.kpis.size(); ++ch)
        series.channels[ch].push_back(
            norm.denormalize(static_cast<int>(ch), s.output(t, static_cast<int>(ch))));
  }

  std::vector<std::string> names;
  for (auto k : ds.kpis) names.emplace_back(sim::kpi_name(k));
  const double period =
      traj->size() > 1 ? (*traj)[1].t - (*traj)[0].t : 1.0;
  if (!io::write_series_csv(series, names, out, traj->front().t, period)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu samples x %zu KPIs)\n", out.c_str(), series.length(),
              series.channels.size());
  return 0;
}

int cmd_eval(const Args& a) {
  auto real = io::read_series_csv(a.get("real"));
  auto gen = io::read_series_csv(a.get("generated"));
  if (!real || !gen) {
    std::fprintf(stderr, "error: %s\n", io::last_error().c_str());
    return 1;
  }
  if (real->channels.size() != gen->channels.size()) {
    std::fprintf(stderr, "error: channel count mismatch (%zu vs %zu)\n", real->channels.size(),
                 gen->channels.size());
    return 1;
  }
  std::printf("%-10s %10s %10s %10s\n", "channel", "MAE", "DTW", "HWD");
  for (size_t ch = 0; ch < real->channels.size(); ++ch) {
    const size_t n = std::min(real->channels[ch].size(), gen->channels[ch].size());
    std::vector<double> r(real->channels[ch].begin(),
                          real->channels[ch].begin() + static_cast<long>(n));
    std::vector<double> g(gen->channels[ch].begin(),
                          gen->channels[ch].begin() + static_cast<long>(n));
    std::printf("%-10zu %10.3f %10.3f %10.3f\n", ch, metrics::mae(r, g),
                metrics::dtw(r, g, 40), metrics::hwd(r, g));
  }
  return 0;
}

int cmd_pack(const Args& a) {
  const std::string in = a.get("in");
  const std::string out = a.get("out");
  if (in.empty() || out.empty()) return usage();

  nn::Checkpoint ckpt;
  const nn::LoadResult r = nn::read_checkpoint(in, ckpt);
  if (!r.ok()) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", in.c_str(), r.message().c_str());
    return 1;
  }
  if (!nn::write_packed(ckpt, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  // Self-verify the published file end to end (kFull reads every byte back
  // through the real loader) before reporting success.
  nn::PackedModel pack;
  const nn::LoadResult v = pack.map(out, nn::PackVerify::kFull);
  if (!v.ok()) {
    std::fprintf(stderr, "error: %s failed verification after packing: %s\n", out.c_str(),
                 v.message().c_str());
    return 1;
  }
  std::printf("packed %s -> %s (%zu tensors, %zu bytes)\n", in.c_str(), out.c_str(),
              pack.tensors().size(), pack.size_bytes());
  if (!ckpt.state.empty())
    std::printf("note: %zu trainer-state tensors dropped (a pack is inference-only; keep the "
                ".ckpt to resume training)\n",
                ckpt.state.size());
  return 0;
}

int cmd_version() {
  std::printf("gendt (GenDT drive-test generation toolkit)\n");
  const std::string features = nn::simd::cpu_feature_string();
  std::printf("cpu features: %s\n", features.empty() ? "(none detected)" : features.c_str());
  std::printf("kernel dispatch: %s%s\n", nn::simd::route_name(nn::simd::active_route()),
              nn::simd::route_supported(nn::simd::Route::kAvx2) ? "" : " (avx2 unavailable)");
  return 0;
}

// One line of a --requests file:
// `trajectory.csv [gen-seed] [deadline-ms] [model-id]`.
struct ServeRequestSpec {
  std::string trajectory;
  uint64_t gen_seed = 1;
  int64_t deadline_ms = -1;  // -1 inherits --deadline-ms
  std::string model_id;      // empty routes to the first loaded model
};

bool parse_requests_file(const std::string& path, std::vector<ServeRequestSpec>& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "error: cannot open requests file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    ServeRequestSpec spec;
    if (!(fields >> spec.trajectory)) continue;  // blank / comment-only line
    std::string token;
    try {
      if (fields >> token) {
        size_t pos = 0;
        spec.gen_seed = std::stoull(token, &pos);
        if (pos != token.size()) throw std::invalid_argument(token);
      }
      if (fields >> token) {
        size_t pos = 0;
        spec.deadline_ms = std::stoll(token, &pos);
        if (pos != token.size() || spec.deadline_ms < -1) throw std::invalid_argument(token);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: %s:%d: malformed field '%s' (expected: trajectory.csv"
                   " [gen-seed] [deadline-ms] [model-id])\n",
                   path.c_str(), lineno, token.c_str());
      return false;
    }
    if (fields >> token) spec.model_id = token;
    if (fields >> token) {
      std::fprintf(stderr, "error: %s:%d: trailing field '%s'\n", path.c_str(), lineno,
                   token.c_str());
      return false;
    }
    out.push_back(std::move(spec));
  }
  return true;
}

// Parse --models "id=path[,id=path]..." preserving order (the first entry is
// the default route for request lines that name no model).
bool parse_models_flag(const std::string& value,
                       std::vector<std::pair<std::string, std::string>>& out) {
  std::stringstream ss(value);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      std::fprintf(stderr, "error: --models expects id=path[,id=path]..., got '%s'\n",
                   entry.c_str());
      return false;
    }
    const std::string id = entry.substr(0, eq);
    for (const auto& existing : out) {
      if (existing.first == id) {
        std::fprintf(stderr, "error: --models lists model id '%s' twice\n", id.c_str());
        return false;
      }
    }
    out.emplace_back(id, entry.substr(eq + 1));
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: --models lists no models\n");
    return false;
  }
  return true;
}

// Load a GDTCKPT2 checkpoint or GDTPACK1 arena (detected by magic) into a
// ready GenDTGenerator. A pack maps with kStructural (directory CRC only):
// serve cold-start is O(page faults), the payload CRC having been verified
// when `gendt pack` wrote the file. Prints the failure and returns null on
// error.
std::unique_ptr<core::GenDTGenerator> load_generator(const std::string& model_path,
                                                     const sim::Dataset& ds,
                                                     std::string* format_out) {
  core::GenDTConfig mcfg;
  mcfg.num_channels = static_cast<int>(ds.kpis.size());
  mcfg.hidden = 48;
  // Parallelism lives across requests (engine workers), not inside the model.
  mcfg.parallelism = {.threads = 1};

  const bool packed = nn::sniff_packed(model_path);
  nn::PackedModel pack;
  nn::Checkpoint ckpt;
  context::KpiNorm norm;
  if (packed) {
    const nn::LoadResult r = pack.map(model_path, nn::PackVerify::kStructural);
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", model_path.c_str(),
                   r.message().c_str());
      return nullptr;
    }
    if (!pack.meta().get_f64s("kpi_norm.mean", norm.mean) ||
        !pack.meta().get_f64s("kpi_norm.std", norm.stddev) ||
        norm.mean.size() != ds.kpis.size() || norm.stddev.size() != ds.kpis.size()) {
      std::fprintf(stderr, "error: %s has no usable kpi_norm metadata\n", model_path.c_str());
      return nullptr;
    }
  } else {
    const nn::LoadResult r = nn::read_checkpoint(model_path, ckpt);
    if (!r.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", model_path.c_str(),
                   r.message().c_str());
      return nullptr;
    }
    if (r.version < 2) {
      std::fprintf(stderr,
                   "error: serve requires a GDTCKPT2 checkpoint; %s is v%d (retrain to upgrade)\n",
                   model_path.c_str(), r.version);
      return nullptr;
    }
    if (!ckpt.meta.get_f64s("kpi_norm.mean", norm.mean) ||
        !ckpt.meta.get_f64s("kpi_norm.std", norm.stddev) || norm.mean.size() != ds.kpis.size() ||
        norm.stddev.size() != ds.kpis.size()) {
      std::fprintf(stderr, "error: %s has no usable kpi_norm metadata\n", model_path.c_str());
      return nullptr;
    }
  }

  auto primary = std::make_unique<core::GenDTGenerator>(mcfg, core::TrainConfig{}, norm);
  primary->set_kpis(ds.kpis);
  if (packed) {
    const nn::LoadResult applied = primary->load_packed(std::move(pack));
    if (!applied.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s (config mismatch?)\n", model_path.c_str(),
                   applied.message().c_str());
      return nullptr;
    }
  } else {
    auto params = primary->model().generator_params();
    for (auto& p : primary->model().discriminator_params()) params.push_back(p);
    const nn::LoadResult applied = nn::apply_params(params, ckpt, nn::LoadMode::kStrict);
    if (!applied.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s (config mismatch?)\n", model_path.c_str(),
                   applied.message().c_str());
      return nullptr;
    }
  }
  if (format_out != nullptr) *format_out = packed ? "GDTPACK1 (mmap)" : "GDTCKPT2";
  return primary;
}

int cmd_serve_stream(const Args& a);

int cmd_serve(const Args& a) {
  if (a.flag("stream")) return cmd_serve_stream(a);
  const std::string req_path = a.get("requests");
  const std::string model_path = a.get("model");
  const std::string models_flag = a.get("models");
  const std::string out_dir = a.get("out");
  if (req_path.empty() || out_dir.empty() || (model_path.empty() && models_flag.empty()))
    return usage();
  if (!model_path.empty() && !models_flag.empty()) {
    std::fprintf(stderr, "error: --model and --models are mutually exclusive\n");
    return 2;
  }

  std::vector<ServeRequestSpec> specs;
  if (!parse_requests_file(req_path, specs)) return 1;
  if (specs.empty()) {
    std::fprintf(stderr, "error: %s lists no requests\n", req_path.c_str());
    return 1;
  }

  sim::Dataset ds = build_dataset(a);

  std::vector<std::pair<std::string, std::string>> model_specs;
  if (!models_flag.empty()) {
    if (!parse_models_flag(models_flag, model_specs)) return 2;
  } else {
    model_specs.emplace_back("default", model_path);
  }

  serve::EngineConfig cfg;
  cfg.max_queue = static_cast<int>(a.get_long("max-queue", 64));
  cfg.backpressure = a.flag("shed") ? serve::EngineConfig::Backpressure::kShed
                                    : serve::EngineConfig::Backpressure::kBlock;
  cfg.workers = runtime::Parallelism{.threads = static_cast<int>(a.get_long("threads", 0))}
                    .resolved();
  cfg.default_deadline_ms = a.get_long("deadline-ms", -1);
  cfg.batch_max = static_cast<int>(a.get_long("batch-max", 1));
  if (cfg.batch_max < 1) {
    std::fprintf(stderr, "error: --batch-max must be >= 1\n");
    return 2;
  }
  cfg.lane_batch = a.flag("lane-batch");
  if (cfg.lane_batch && cfg.batch_max < 2) {
    std::fprintf(stderr, "error: --lane-batch requires --batch-max >= 2\n");
    return 2;
  }
  cfg.expected_channels = static_cast<int>(ds.kpis.size());

  // Every model becomes a registry entry with its own warmed session pool
  // and (optional) per-model admission budget; requests route by model id.
  const int model_budget = static_cast<int>(a.get_long("model-budget", -1));
  serve::ModelRegistry registry;
  context::KpiNorm first_norm;
  for (size_t m = 0; m < model_specs.size(); ++m) {
    std::string format;
    std::unique_ptr<core::GenDTGenerator> gen =
        load_generator(model_specs[m].second, ds, &format);
    if (gen == nullptr) return 1;
    if (m == 0) first_norm = gen->norm();
    gen->prewarm(static_cast<size_t>(std::max(1, cfg.workers)));
    // Peak-bytes of the warm session pool: what this model pins in memory
    // before the first request (grows once lane batching warms up).
    std::printf("serve: model '%s' <- %s (%s, budget=%d, warm=%.1f KiB)\n",
                model_specs[m].first.c_str(), model_specs[m].second.c_str(), format.c_str(),
                model_budget, static_cast<double>(gen->warm_peak_bytes()) / 1024.0);
    registry.add(model_specs[m].first, std::move(gen), serve::ModelBudget{model_budget});
  }
  std::printf("serve: kernels=%s cpu=[%s] models=%zu\n",
              nn::simd::route_name(nn::simd::active_route()),
              nn::simd::cpu_feature_string().c_str(), registry.size());

  // Graceful-degradation path: FDaS fitted on the simulated campaign — cheap,
  // unconditionally finite, and honest about being a distribution sample.
  // Request windows carry no KPI-normalized targets, so one builder (first
  // model's norm) serves every model; each model denormalizes with its own.
  context::ContextBuilder builder(ds.world, default_context(), first_norm, ds.kpis);
  std::vector<context::Window> train_windows;
  for (const auto& rec : ds.train) {
    auto w = builder.training_windows(rec);
    train_windows.insert(train_windows.end(), w.begin(), w.end());
  }
  baselines::FDaS fallback(first_norm);
  fallback.fit(train_windows);

  // A spec whose trajectory fails to load keeps an empty window list and
  // resolves through the engine as a structured invalid-request.
  std::vector<serve::RoutedRequest> routed(specs.size());
  std::vector<std::string> notes(specs.size());
  std::vector<double> start_t(specs.size(), 0.0), period(specs.size(), 1.0);
  for (size_t i = 0; i < specs.size(); ++i) {
    routed[i].model_id = specs[i].model_id.empty() ? model_specs[0].first : specs[i].model_id;
    routed[i].request.seed = specs[i].gen_seed;
    routed[i].request.deadline_ms = specs[i].deadline_ms;
    auto traj = io::read_trajectory_csv(specs[i].trajectory);
    if (!traj) {
      notes[i] = io::last_error();
      continue;
    }
    auto windows = builder.generation_windows(*traj);
    if (windows.empty()) {
      notes[i] = specs[i].trajectory + ": trajectory too short for one window";
      continue;
    }
    routed[i].request.windows = std::move(windows);
    start_t[i] = traj->front().t;
    period[i] = traj->size() > 1 ? (*traj)[1].t - (*traj)[0].t : 1.0;
  }

  serve::ModelRouter router(registry, cfg);
  router.set_fallback(&fallback);

  // Ctrl-C / SIGTERM drains instead of killing: every request's token
  // parents the process-wide drain token, so in-flight generations cancel
  // cooperatively and the batch still resolves to a full summary with the
  // ok+degraded+failed+shed partition intact.
  runtime::SignalDrain::install();
  std::vector<runtime::CancelToken> request_tokens(routed.size());
  for (size_t i = 0; i < routed.size(); ++i) {
    request_tokens[i].set_parent(&runtime::SignalDrain::token());
    routed[i].request.cancel = &request_tokens[i];
  }

  std::filesystem::create_directories(out_dir);
  const std::vector<serve::Response> responses = router.serve(routed);
  if (runtime::SignalDrain::draining())
    std::fprintf(stderr, "serve: drain signal received; remaining requests cancelled\n");

  std::vector<std::string> names;
  for (auto k : ds.kpis) names.emplace_back(sim::kpi_name(k));
  int errors = 0;
  uint64_t n_ok = 0, n_degraded = 0, n_failed = 0, n_shed = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const serve::Response& resp = responses[i];
    if (resp.outcome == serve::Outcome::kError || resp.outcome == serve::Outcome::kShed) {
      ++errors;
      resp.outcome == serve::Outcome::kError ? ++n_failed : ++n_shed;
      std::fprintf(stderr, "request %zu (%s): %s %s: %s%s%s\n", i,
                   specs[i].trajectory.c_str(),
                   std::string(serve::to_string(resp.outcome)).c_str(),
                   std::string(serve::to_string(resp.error.code)).c_str(),
                   resp.error.message.c_str(), notes[i].empty() ? "" : " — ",
                   notes[i].c_str());
      continue;
    }
    resp.outcome == serve::Outcome::kOk ? ++n_ok : ++n_degraded;
    const std::string out_path = out_dir + "/response_" + std::to_string(i) + ".csv";
    if (!io::write_series_csv(resp.series, names, out_path, start_t[i], period[i])) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("request %zu (%s): %s%s%s attempts=%d -> %s\n", i, specs[i].trajectory.c_str(),
                std::string(serve::to_string(resp.outcome)).c_str(),
                resp.outcome == serve::Outcome::kDegraded ? " " : "",
                resp.outcome == serve::Outcome::kDegraded
                    ? ("(" + std::string(serve::to_string(resp.error.code)) + ")").c_str()
                    : "",
                resp.attempts, out_path.c_str());
  }
  for (const std::string& id : registry.ids()) {
    const serve::ModelStats ms = registry.stats(id);
    // The pool is warm now, so the peak-bytes figure reflects what serving
    // this batch actually pinned (lane batching included).
    double warm_kib = 0.0;
    if (const auto lease = registry.acquire(id)) {
      if (const auto* g = dynamic_cast<const core::GenDTGenerator*>(&lease.generator()))
        warm_kib = static_cast<double>(g->warm_peak_bytes()) / 1024.0;
    }
    std::printf("model '%s' (v%llu): %llu routed, %llu ok, %llu degraded, %llu failed, "
                "%llu shed, warm=%.1f KiB\n",
                id.c_str(), static_cast<unsigned long long>(registry.active_version(id)),
                static_cast<unsigned long long>(ms.total()),
                static_cast<unsigned long long>(ms.ok),
                static_cast<unsigned long long>(ms.degraded),
                static_cast<unsigned long long>(ms.failed),
                static_cast<unsigned long long>(ms.shed), warm_kib);
  }
  std::printf("served %zu requests: %llu ok, %llu degraded, %llu failed, %llu shed, "
              "%llu retries\n",
              specs.size(), static_cast<unsigned long long>(n_ok),
              static_cast<unsigned long long>(n_degraded),
              static_cast<unsigned long long>(n_failed),
              static_cast<unsigned long long>(n_shed),
              static_cast<unsigned long long>(router.engine().stats().retries));
  return errors == 0 ? 0 : 1;
}

// ---- Streaming daemon + client ---------------------------------------------

int cmd_serve_stream(const Args& a) {
  const std::string socket_path = a.get("socket");
  const std::string model_path = a.get("model");
  if (socket_path.empty() || model_path.empty()) return usage();

  sim::Dataset ds = build_dataset(a);
  std::string format;
  std::unique_ptr<core::GenDTGenerator> gen = load_generator(model_path, ds, &format);
  if (gen == nullptr) return 1;
  const context::KpiNorm norm = gen->norm();

  context::ContextBuilder builder(ds.world, default_context(), norm, ds.kpis);
  std::vector<std::string> names;
  for (auto k : ds.kpis) names.emplace_back(sim::kpi_name(k));

  serve::stream::StreamServerConfig cfg;
  cfg.chunk_windows = static_cast<int>(a.get_long("chunk-windows", 8));
  cfg.idle_timeout_ms = a.get_long("idle-timeout-ms", 30'000);
  cfg.drain_deadline_ms = a.get_long("drain-deadline-ms", 5'000);
  cfg.parallelism =
      runtime::Parallelism{.threads = static_cast<int>(a.get_long("threads", 0))};
  // Test hooks: exit after N resolved sessions / after sustained idleness,
  // so cli_test can run a real daemon without killing it from outside.
  cfg.exit_after_sessions = static_cast<uint64_t>(a.get_long("stream-sessions", 0));
  cfg.idle_exit_ms = a.get_long("idle-exit-ms", 0);
  runtime::SignalDrain::install();
  cfg.drain = &runtime::SignalDrain::token();

  // The factory runs on the event-loop thread and must not throw: every
  // wire value is validated before it reaches geo::Trajectory (which asserts
  // strictly increasing t).
  const core::GenDTModel& model = gen->model();
  serve::stream::StreamServer server(
      cfg,
      [&builder, &model, &norm, &names](const serve::stream::OpenRequest& open,
                                        serve::stream::StreamErrorCode* code,
                                        std::string* error)
          -> std::unique_ptr<serve::stream::ChunkSource> {
        *code = serve::stream::StreamErrorCode::kInvalidRequest;
        std::vector<geo::TrajectoryPoint> pts;
        pts.reserve(open.points.size());
        for (const auto& p : open.points) {
          if (!std::isfinite(p.t) || !std::isfinite(p.lat) || !std::isfinite(p.lon) ||
              (!pts.empty() && p.t <= pts.back().t)) {
            *error = "trajectory points must be finite and strictly increasing in t";
            return nullptr;
          }
          pts.push_back({p.t, {p.lat, p.lon}});
        }
        if (pts.size() < 2) {
          *error = "trajectory needs at least two points";
          return nullptr;
        }
        const double t0 = pts.front().t;
        const double period = pts[1].t - pts[0].t;
        geo::Trajectory traj(std::move(pts));
        auto windows = builder.generation_windows(traj);
        if (windows.empty()) {
          *error = "trajectory too short for one window";
          return nullptr;
        }
        // Empty KPI list: the stream denormalizes exactly like `gendt
        // generate` (no CQI snap) — the byte-parity the resume tests pin.
        return std::make_unique<serve::stream::GenDTChunkSource>(
            model, norm, std::vector<sim::Kpi>{}, std::move(windows), open.seed,
            static_cast<int>(open.chunk_windows), names, t0, period);
      });

  std::string err;
  if (!server.listen_unix(socket_path, &err)) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n", socket_path.c_str(), err.c_str());
    return 1;
  }
  std::printf("serve --stream: %s (%s) on %s, chunk=%d windows "
              "(SIGINT/SIGTERM drains gracefully)\n",
              model_path.c_str(), format.c_str(), socket_path.c_str(), cfg.chunk_windows);
  std::fflush(stdout);
  server.run();

  const serve::stream::StreamStats st = server.stats();
  std::printf("stream: %llu sessions: %llu ok, %llu degraded, %llu failed, %llu shed | "
              "%llu chunks, %llu points, %llu resumes, %llu bad frames\n",
              static_cast<unsigned long long>(st.sessions_total),
              static_cast<unsigned long long>(st.sessions_ok),
              static_cast<unsigned long long>(st.sessions_degraded),
              static_cast<unsigned long long>(st.sessions_failed),
              static_cast<unsigned long long>(st.sessions_shed),
              static_cast<unsigned long long>(st.chunks_sent),
              static_cast<unsigned long long>(st.points_sent),
              static_cast<unsigned long long>(st.resumes),
              static_cast<unsigned long long>(st.bad_frames));
  return 0;
}

// Client-side resume state: session credentials plus everything already
// received, with doubles as raw IEEE-754 bit patterns so a resumed run can
// reproduce the uninterrupted CSV byte-for-byte.
struct StreamClientState {
  std::string session_id;
  uint64_t token = 0;
  uint64_t chunks_have = 0;
  std::vector<std::string> channel_names;
  double t0 = 0.0;
  double period_s = 1.0;
  std::vector<double> values;  // row-major [points x channels]
};

uint64_t f64_bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double bits_f64(uint64_t b) {
  double v = 0.0;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

bool write_stream_state(const StreamClientState& s, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "GDTSTRMCLI1\n";
  out << "session " << s.session_id << "\n";
  out << "token " << std::hex << s.token << std::dec << "\n";
  out << "chunks " << s.chunks_have << "\n";
  out << "channels " << s.channel_names.size();
  for (const std::string& n : s.channel_names) out << " " << n;
  out << "\n";
  out << "t0 " << std::hex << f64_bits(s.t0) << "\n";
  out << "period " << f64_bits(s.period_s) << std::dec << "\n";
  out << "values " << s.values.size() << "\n";
  out << std::hex;
  for (size_t i = 0; i < s.values.size(); ++i)
    out << f64_bits(s.values[i]) << ((i + 1) % 8 == 0 ? "\n" : " ");
  out << "\n";
  out.flush();
  return out.good();
}

bool read_stream_state(const std::string& path, StreamClientState& s) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic, key;
  if (!(in >> magic) || magic != "GDTSTRMCLI1") return false;
  size_t n_channels = 0, n_values = 0;
  if (!(in >> key >> s.session_id) || key != "session") return false;
  if (!(in >> key >> std::hex >> s.token >> std::dec) || key != "token") return false;
  if (!(in >> key >> s.chunks_have) || key != "chunks") return false;
  if (!(in >> key >> n_channels) || key != "channels" || n_channels > 4096) return false;
  s.channel_names.resize(n_channels);
  for (std::string& name : s.channel_names)
    if (!(in >> name)) return false;
  uint64_t bits = 0;
  if (!(in >> key >> std::hex >> bits >> std::dec) || key != "t0") return false;
  s.t0 = bits_f64(bits);
  if (!(in >> key >> std::hex >> bits >> std::dec) || key != "period") return false;
  s.period_s = bits_f64(bits);
  if (!(in >> key >> n_values) || key != "values" || n_values > (1u << 28)) return false;
  s.values.resize(n_values);
  in >> std::hex;
  for (double& v : s.values) {
    if (!(in >> bits)) return false;
    v = bits_f64(bits);
  }
  return true;
}

const char* stream_status_name(serve::stream::StreamClient::Status st) {
  using Status = serve::stream::StreamClient::Status;
  switch (st) {
    case Status::kOk: return "ok";
    case Status::kError: return "server error";
    case Status::kClosed: return "connection closed";
    case Status::kTimeout: return "timeout";
    case Status::kProtocol: return "protocol error";
  }
  return "?";
}

int stream_client_fail(const serve::stream::StreamClient& client,
                       serve::stream::StreamClient::Status st, const char* what) {
  using Status = serve::stream::StreamClient::Status;
  if (st == Status::kError) {
    std::fprintf(stderr, "error: %s: server replied %s: %s\n", what,
                 std::string(serve::stream::to_string(client.last_error().code)).c_str(),
                 client.last_error().message.c_str());
  } else {
    std::fprintf(stderr, "error: %s: %s\n", what, stream_status_name(st));
  }
  return 1;
}

int cmd_stream_client(const Args& a) {
  using Status = serve::stream::StreamClient::Status;
  const std::string socket_path = a.get("socket");
  const std::string out_path = a.get("out");
  const std::string state_path = a.get("state");
  const bool resume = a.flag("resume");
  const long kill_after = a.get_long("kill-after-chunks", -1);
  if (socket_path.empty() || out_path.empty()) return usage();
  if ((resume || kill_after >= 0) && state_path.empty()) {
    std::fprintf(stderr, "error: --resume / --kill-after-chunks need --state FILE\n");
    return 2;
  }

  // Validate local inputs before touching the network: a corrupt state file
  // should fail here, not after a connect that may itself hang or fail.
  StreamClientState st;
  if (resume && !read_stream_state(state_path, st)) {
    std::fprintf(stderr, "error: cannot read state file %s\n", state_path.c_str());
    return 1;
  }

  serve::stream::StreamClient client;
  std::string err;
  if (!client.connect_unix(socket_path, &err)) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n", socket_path.c_str(),
                 err.c_str());
    return 1;
  }

  if (resume) {
    serve::stream::ResumeRequest req;
    req.session_id = st.session_id;
    req.resume_token = st.token;
    req.chunks_have = st.chunks_have;
    serve::stream::ResumeAck ack;
    const Status s = client.resume(req, &ack);
    if (s != Status::kOk) return stream_client_fail(client, s, "RESUME");
    std::printf("resumed %s at chunk %llu/%u windows\n", st.session_id.c_str(),
                static_cast<unsigned long long>(ack.next_chunk_index), ack.total_windows);
  } else {
    const std::string traj_path = a.get("trajectory");
    if (traj_path.empty()) return usage();
    auto traj = io::read_trajectory_csv(traj_path);
    if (!traj) {
      std::fprintf(stderr, "error: %s\n", io::last_error().c_str());
      return 1;
    }
    serve::stream::OpenRequest req;
    req.seed = static_cast<uint64_t>(a.get_long("gen-seed", 1));
    req.chunk_windows = static_cast<uint32_t>(a.get_long("chunk-windows", 0));
    for (const auto& p : traj->points()) req.points.push_back({p.t, p.pos.lat, p.pos.lon});
    serve::stream::OpenAck ack;
    const Status s = client.open(req, &ack);
    if (s != Status::kOk) return stream_client_fail(client, s, "OPEN");
    st.session_id = ack.session_id;
    st.token = ack.resume_token;
    st.channel_names = ack.channel_names;
    st.t0 = ack.t0;
    st.period_s = ack.period_s;
    std::printf("opened %s: %u windows in chunks of %u, %zu channels\n",
                ack.session_id.c_str(), ack.total_windows, ack.chunk_windows,
                ack.channel_names.size());
  }

  bool saw_last = false;
  while (!saw_last) {
    serve::stream::ChunkMsg chunk;
    bool last = false;
    const Status s = client.recv_chunk(&chunk, &last);
    if (s != Status::kOk) return stream_client_fail(client, s, "CHUNK");
    if (chunk.index != st.chunks_have ||
        chunk.num_channels != st.channel_names.size()) {
      std::fprintf(stderr, "error: unexpected chunk %llu (%u channels), wanted %llu (%zu)\n",
                   static_cast<unsigned long long>(chunk.index), chunk.num_channels,
                   static_cast<unsigned long long>(st.chunks_have),
                   st.channel_names.size());
      return 1;
    }
    st.values.insert(st.values.end(), chunk.values.begin(), chunk.values.end());
    if (!client.ack(chunk.index)) {
      std::fprintf(stderr, "error: connection lost sending ACK\n");
      return 1;
    }
    st.chunks_have = chunk.index + 1;
    saw_last = last;
    if (!saw_last && kill_after >= 0 &&
        st.chunks_have >= static_cast<uint64_t>(kill_after)) {
      if (!write_stream_state(st, state_path)) {
        std::fprintf(stderr, "error: cannot write state file %s\n", state_path.c_str());
        return 1;
      }
      client.kill();
      std::printf("killed connection after %llu chunks; state -> %s "
                  "(continue with --resume --state)\n",
                  static_cast<unsigned long long>(st.chunks_have), state_path.c_str());
      return 0;
    }
  }

  serve::stream::CloseStats close_stats;
  const Status s = client.close_session(&close_stats);
  if (s != Status::kOk) {
    // The stream itself is complete and ACKed; a lost CLOSE handshake does
    // not invalidate the data, so warn instead of failing the run.
    std::fprintf(stderr, "warning: CLOSE handshake failed: %s\n", stream_status_name(s));
  }

  const size_t n_channels = st.channel_names.size();
  const size_t n_points = n_channels == 0 ? 0 : st.values.size() / n_channels;
  core::GeneratedSeries series;
  series.channels.assign(n_channels, std::vector<double>(n_points));
  for (size_t t = 0; t < n_points; ++t)
    for (size_t c = 0; c < n_channels; ++c)
      series.channels[c][t] = st.values[t * n_channels + c];
  if (!io::write_series_csv(series, st.channel_names, out_path, st.t0, st.period_s)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("streamed %llu chunks, %zu points -> %s\n",
              static_cast<unsigned long long>(st.chunks_have), n_points, out_path.c_str());
  return 0;
}

// Serialize a ReplayReport as google-benchmark JSON (the exact shape
// tools/bench_compare.py consumes). Pure function of the report — no
// timestamps, no environment — so identical replays produce identical bytes.
bool write_replay_bench_json(const serve::ReplayReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  char buf[64];
  os << "{\n  \"context\": {\"harness\": \"gendt replay\"},\n  \"benchmarks\": [\n";
  bool first = true;
  auto emit = [&](const std::string& name, double value) {
    if (!first) os << ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    os << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\", "
       << "\"iterations\": 1, \"real_time\": " << buf << ", \"cpu_time\": " << buf
       << ", \"time_unit\": \"ms\"}";
  };
  for (const serve::ModelReport& m : report.models) {
    emit("BM_ServeReplay/" + m.id + "/p50_latency_ms", m.p50_latency_ms);
    emit("BM_ServeReplay/" + m.id + "/p99_latency_ms", m.p99_latency_ms);
    emit("BM_ServeReplay/" + m.id + "/shed_rate_pct", 100.0 * m.shed_rate);
  }
  os << "\n  ]\n}\n";
  return static_cast<bool>(os);
}

int cmd_replay(const Args& a) {
  const std::string out_path = a.get("out");
  if (out_path.empty()) return usage();
  const long scripted_n = a.get_long("scripted", 0);
  const std::string models_flag = a.get("models");
  if ((scripted_n > 0) == !models_flag.empty()) {
    std::fprintf(stderr,
                 "error: replay needs exactly one of --scripted N or --models id=path,...\n");
    return 2;
  }

  serve::TraceConfig tcfg;
  tcfg.num_requests = static_cast<int>(a.get_long("requests", 1000));
  tcfg.rate_hz = static_cast<double>(a.get_long("rate-hz", 200));
  tcfg.seed = static_cast<uint64_t>(a.get_long("seed", 1));
  tcfg.deadline_ms = a.get_long("deadline-ms", -1);
  tcfg.windows_per_request = static_cast<int>(a.get_long("windows", 4));
  tcfg.window_len = static_cast<int>(a.get_long("window-len", 10));
  tcfg.trajectory_duration_s = static_cast<double>(a.get_long("duration-s", 60));

  serve::ReplayConfig rcfg;
  rcfg.sim_workers = static_cast<int>(a.get_long("sim-workers", 4));
  rcfg.per_window_cost_ms = a.get_long("window-cost-ms", 1);
  rcfg.threads = runtime::Parallelism{.threads = static_cast<int>(a.get_long("threads", 0))}
                     .resolved();
  const int64_t swap_at = a.get_long("swap-at", -1);
  const int budget = static_cast<int>(a.get_long("budget", -1));

  serve::ModelRegistry registry;
  serve::Trace trace;
  std::vector<serve::SwapScript> swaps;
  std::unique_ptr<core::TimeSeriesGenerator> fallback;

  if (scripted_n > 0) {
    // Scripted mode: N synthetic models whose output is a pure function of
    // (request seed, window, t, channel) and whose virtual per-window cost
    // matches the scheduler's occupancy model — the cheap, deterministic
    // load shape the committed BENCH_serve_replay.json is built from.
    tcfg.model_ids.clear();
    for (long m = 0; m < scripted_n; ++m)
      tcfg.model_ids.push_back("scripted" + std::to_string(m));
    trace = serve::synthetic_trace(tcfg);
    rcfg.engine.expected_channels = 2;
    fallback = std::make_unique<serve::ConstantGenerator>(2, 0.0);
  } else {
    std::vector<std::pair<std::string, std::string>> model_specs;
    if (!parse_models_flag(models_flag, model_specs)) return 2;
    sim::Dataset ds = build_dataset(a);
    context::KpiNorm first_norm;
    for (size_t m = 0; m < model_specs.size(); ++m) {
      std::unique_ptr<core::GenDTGenerator> gen =
          load_generator(model_specs[m].second, ds, nullptr);
      if (gen == nullptr) return 1;
      if (m == 0) first_norm = gen->norm();
      gen->prewarm(static_cast<size_t>(std::max(1, rcfg.threads)));
      registry.add(model_specs[m].first, std::move(gen), serve::ModelBudget{budget});
      tcfg.model_ids = {};
    }
    for (const auto& [id, path] : model_specs) tcfg.model_ids.push_back(id);
    context::ContextBuilder builder(ds.world, default_context(), first_norm, ds.kpis);
    std::printf("replay: generating %d user trajectories through gendt::sim...\n",
                tcfg.num_requests);
    trace = serve::sim_trace(builder, ds.world.region, tcfg);
    rcfg.engine.expected_channels = static_cast<int>(ds.kpis.size());
    std::vector<context::Window> train_windows;
    for (const auto& rec : ds.train) {
      auto w = builder.training_windows(rec);
      train_windows.insert(train_windows.end(), w.begin(), w.end());
    }
    auto fdas = std::make_unique<baselines::FDaS>(first_norm);
    fdas->fit(train_windows);
    fallback = std::move(fdas);
    if (swap_at >= 0) {
      // Hot-swap the first model to a fresh load of the same artifact:
      // identical weights, new arena/session pool — the zero-downtime path.
      std::unique_ptr<core::GenDTGenerator> next =
          load_generator(model_specs[0].second, ds, nullptr);
      if (next == nullptr) return 1;
      next->prewarm(static_cast<size_t>(std::max(1, rcfg.threads)));
      swaps.push_back({swap_at, model_specs[0].first, std::move(next)});
    }
  }

  // Per-request virtual clocks: allocated before the scripted generators
  // bind to them (bindings need stable addresses), started by replay().
  std::vector<runtime::ManualClock> clocks(trace.requests.size());
  if (scripted_n > 0) {
    serve::ScriptedGenerator::Config scfg;
    scfg.num_channels = 2;
    scfg.window_cost_ms = rcfg.per_window_cost_ms;
    const auto make_scripted = [&]() {
      auto gen = std::make_unique<serve::ScriptedGenerator>(
          scfg, serve::FaultPlan{}, static_cast<int>(trace.requests.size()));
      for (size_t i = 0; i < trace.requests.size(); ++i)
        gen->bind_request(trace.requests[i].seed, static_cast<int>(i), &clocks[i]);
      return gen;
    };
    for (const std::string& id : tcfg.model_ids)
      registry.add(id, make_scripted(), serve::ModelBudget{budget});
    if (swap_at >= 0)
      swaps.push_back({swap_at, tcfg.model_ids.front(), make_scripted()});
  }

  const serve::ReplayReport report =
      serve::replay(registry, trace, clocks, rcfg, std::move(swaps), fallback.get());

  for (const serve::ModelReport& m : report.models) {
    std::printf("model '%s': %llu requests, %llu ok, %llu degraded, %llu failed, %llu shed "
                "| p50=%.0fms p99=%.0fms shed=%.2f%%\n",
                m.id.c_str(), static_cast<unsigned long long>(m.requests),
                static_cast<unsigned long long>(m.ok),
                static_cast<unsigned long long>(m.degraded),
                static_cast<unsigned long long>(m.failed),
                static_cast<unsigned long long>(m.shed), m.p50_latency_ms, m.p99_latency_ms,
                100.0 * m.shed_rate);
  }
  std::printf("replay: %zu requests, digest %016llx\n", trace.requests.size(),
              static_cast<unsigned long long>(report.digest));
  if (!write_replay_bench_json(report, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// ---- Coverage map ----------------------------------------------------------

// The coverage-grid workload (ROADMAP 4b): a WxH lattice of stationary
// trajectories over the region, rolled out through the lane-batched
// inference session in blocks of --batch. Point (ix,iy) always runs on RNG
// stream derive_stream_seed(gen_seed, iy*W+ix) — never on its lane slot or
// the thread that happened to pick its block up — so the CSV is
// byte-identical at every --threads and --batch setting.
int cmd_covermap(const Args& a) {
  const std::string out_path = a.get("out");
  if (out_path.empty()) return usage();

  const std::string grid = a.get("grid", "16x16");
  long gw = 0, gh = 0;
  {
    const size_t x = grid.find('x');
    try {
      size_t wpos = 0, hpos = 0;
      if (x == std::string::npos) throw std::invalid_argument(grid);
      gw = std::stol(grid.substr(0, x), &wpos);
      gh = std::stol(grid.substr(x + 1), &hpos);
      if (wpos != x || hpos != grid.size() - x - 1) throw std::invalid_argument(grid);
    } catch (const std::exception&) {
      gw = gh = 0;
    }
    if (gw < 1 || gh < 1) {
      std::fprintf(stderr, "error: --grid expects WxH with W,H >= 1, got '%s'\n", grid.c_str());
      return 2;
    }
  }
  const int batch = static_cast<int>(a.get_long("batch", 8));
  if (batch < 1) {
    std::fprintf(stderr, "error: --batch expects a batch size >= 1, got %d\n", batch);
    return 2;
  }
  const uint64_t gen_seed = static_cast<uint64_t>(a.get_long("gen-seed", 1));
  const runtime::Parallelism par{.threads = static_cast<int>(a.get_long("threads", 0))};

  sim::Dataset ds = build_dataset(a);
  const std::string model_path = a.get("model");
  std::unique_ptr<core::GenDTGenerator> gen;
  std::string format;
  if (!model_path.empty()) {
    gen = load_generator(model_path, ds, &format);
    if (gen == nullptr) return 1;
  } else {
    // No model: map the untrained generator (deterministic init_seed
    // weights) under an identity norm — the workload/throughput shape is
    // identical to a trained model's, which is what the benchmark gate and
    // the determinism acceptance run on.
    core::GenDTConfig mcfg;
    mcfg.num_channels = static_cast<int>(ds.kpis.size());
    mcfg.hidden = 48;
    mcfg.parallelism = {.threads = 1};
    context::KpiNorm norm;
    norm.mean.assign(ds.kpis.size(), 0.0);
    norm.stddev.assign(ds.kpis.size(), 1.0);
    gen = std::make_unique<core::GenDTGenerator>(mcfg, core::TrainConfig{}, norm);
    gen->set_kpis(ds.kpis);
    format = "untrained (deterministic init)";
  }

  context::ContextBuilder builder(ds.world, default_context(), gen->norm(), ds.kpis);
  const int wlen = default_context().window_len;
  const int nch = static_cast<int>(ds.kpis.size());
  const long n_points = gw * gh;
  const long n_blocks = (n_points + batch - 1) / batch;

  // Grid point (ix,iy) -> ENU position: the lattice spans the central 80% of
  // the modelled square (cells live inside it; the margin avoids projecting
  // outside the land-use raster).
  const double extent = ds.world.region.extent_m;
  const auto grid_enu = [&](long ix, long iy) {
    const double east = gw > 1 ? -0.8 * extent + static_cast<double>(ix) * (1.6 * extent /
                                                                            static_cast<double>(gw - 1))
                               : 0.0;
    const double north = gh > 1 ? -0.8 * extent + static_cast<double>(iy) * (1.6 * extent /
                                                                             static_cast<double>(gh - 1))
                                : 0.0;
    return geo::Enu{east, north};
  };

  std::vector<geo::LatLon> positions(static_cast<size_t>(n_points));
  std::vector<double> means(static_cast<size_t>(n_points) * static_cast<size_t>(nch), 0.0);
  std::atomic<long> windows_done{0};
  std::atomic<bool> failed{false};

  // The CSV bits are seed-pure; the clock only feeds the throughput stats.
  const auto t_start = std::chrono::steady_clock::now();  // gendt-lint: allow(wallclock) stats only
  runtime::parallel_tasks(par, static_cast<int>(n_blocks), [&](int block) {
    const long lo = static_cast<long>(block) * batch;
    const long hi = std::min(n_points, lo + batch);
    // Window contexts are per-point state; build them here so blocks stay
    // independent, then roll all lanes of the block out in one GEMM batch.
    std::vector<std::vector<context::Window>> windows(static_cast<size_t>(hi - lo));
    std::vector<core::GenerateBatchItem> items(static_cast<size_t>(hi - lo));
    for (long p = lo; p < hi; ++p) {
      const long ix = p % gw, iy = p / gw;
      positions[static_cast<size_t>(p)] = ds.world.projection().to_latlon(grid_enu(ix, iy));
      std::vector<geo::TrajectoryPoint> pts;
      pts.reserve(static_cast<size_t>(wlen));
      for (int t = 0; t < wlen; ++t)
        pts.push_back({static_cast<double>(t), positions[static_cast<size_t>(p)]});
      windows[static_cast<size_t>(p - lo)] = builder.generation_windows(geo::Trajectory(pts));
      items[static_cast<size_t>(p - lo)] = {.windows = &windows[static_cast<size_t>(p - lo)],
                                            .seed = runtime::derive_stream_seed(
                                                gen_seed, static_cast<uint64_t>(p))};
    }
    const std::vector<core::GenerateBatchResult> results = gen->generate_batch(items);
    for (long p = lo; p < hi; ++p) {
      const core::GenerateBatchResult& r = results[static_cast<size_t>(p - lo)];
      if (!r.ok) {
        std::fprintf(stderr, "error: point (%ld,%ld): %s\n", p % gw, p / gw, r.error.c_str());
        failed.store(true);
        continue;
      }
      for (int ch = 0; ch < nch; ++ch) {
        const std::vector<double>& series = r.series.channels[static_cast<size_t>(ch)];
        double sum = 0.0;
        for (double v : series) sum += v;
        means[static_cast<size_t>(p) * static_cast<size_t>(nch) + static_cast<size_t>(ch)] =
            series.empty() ? 0.0 : sum / static_cast<double>(series.size());
      }
      windows_done.fetch_add(
          static_cast<long>(windows[static_cast<size_t>(p - lo)].size()));
    }
  });
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_start)  // gendt-lint: allow(wallclock) stats only
          .count();
  if (failed.load()) return 1;

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  os << "ix,iy,lat,lon";
  for (auto k : ds.kpis) os << ',' << sim::kpi_name(k) << "_mean";
  os << '\n';
  char buf[64];
  for (long p = 0; p < n_points; ++p) {
    os << (p % gw) << ',' << (p / gw);
    std::snprintf(buf, sizeof(buf), "%.9f", positions[static_cast<size_t>(p)].lat);
    os << ',' << buf;
    std::snprintf(buf, sizeof(buf), "%.9f", positions[static_cast<size_t>(p)].lon);
    os << ',' << buf;
    for (int ch = 0; ch < nch; ++ch) {
      std::snprintf(buf, sizeof(buf), "%.6f",
                    means[static_cast<size_t>(p) * static_cast<size_t>(nch) +
                          static_cast<size_t>(ch)]);
      os << ',' << buf;
    }
    os << '\n';
  }
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }

  const double wps = elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(windows_done.load()) /
                                            elapsed_ms
                                      : 0.0;
  std::printf("covermap: %ldx%ld grid (%s), batch=%d, %ld windows in %.0f ms (%.1f windows/s)"
              " -> %s\n",
              gw, gh, format.c_str(), batch, windows_done.load(), elapsed_ms, wps, out_path.c_str());

  const std::string bench_path = a.get("bench-out");
  if (!bench_path.empty()) {
    std::ofstream bs(bench_path);
    if (!bs) {
      std::fprintf(stderr, "error: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    // google-benchmark JSON, same shape write_replay_bench_json emits; this
    // one carries wall-clock throughput, so it is a local artifact — the
    // committed, bench_compare.py-gated numbers come from bench_micro_perf.
    bs << "{\n  \"context\": {\"harness\": \"gendt covermap\"},\n  \"benchmarks\": [\n";
    std::snprintf(buf, sizeof(buf), "%.6f", elapsed_ms);
    bs << "    {\"name\": \"BM_CovermapRollout/total_ms\", \"run_type\": \"iteration\", "
       << "\"iterations\": 1, \"real_time\": " << buf << ", \"cpu_time\": " << buf
       << ", \"time_unit\": \"ms\"},\n";
    std::snprintf(buf, sizeof(buf), "%.6f", wps);
    bs << "    {\"name\": \"BM_CovermapRollout/windows_per_s\", \"run_type\": \"iteration\", "
       << "\"iterations\": 1, \"real_time\": " << buf << ", \"cpu_time\": " << buf
       << ", \"time_unit\": \"ms\"}\n  ]\n}\n";
    if (!bs) {
      std::fprintf(stderr, "error: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", bench_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (is_help(a.command)) {
    print_usage(stdout);
    return 0;
  }
  if (is_version(a.command)) return cmd_version();
  if (a.command == "simulate") return cmd_simulate(a);
  if (a.command == "train") return cmd_train(a);
  if (a.command == "generate") return cmd_generate(a);
  if (a.command == "eval") return cmd_eval(a);
  if (a.command == "pack") return cmd_pack(a);
  if (a.command == "serve") return cmd_serve(a);
  if (a.command == "stream-client") return cmd_stream_client(a);
  if (a.command == "replay") return cmd_replay(a);
  if (a.command == "covermap") return cmd_covermap(a);
  return usage();  // no command given
}
