#!/usr/bin/env python3
"""Determinism linter for the GenDT model/runtime code.

GenDT's training and generation are pinned bitwise-reproducible (per-window
RNG streams derived with runtime::derive_stream_seed, window-ordered gradient
reduction — see runtime_determinism_test). This linter rejects the source
patterns that silently break that guarantee:

  rand               C rand()/srand() — hidden global state, not seedable
                     per-window.
  random-device      std::random_device — nondeterministic entropy source.
  wallclock          std::chrono::{steady,system,high_resolution}_clock::now
                     in model code — time-dependent behavior.
  unseeded-mt19937   default-constructed std::mt19937/std::mt19937_64 — runs
                     ignore the configured seed (deterministic but always the
                     same stream, i.e. a silently dropped seed).
  unordered-iteration  range-for over a std::unordered_{map,set} in gradient
                     -reduction paths (src/nn, src/core) — iteration order is
                     implementation-defined, so float accumulation order (and
                     therefore the result bits) would vary.
  intrinsics         x86 SIMD intrinsics (_mm*, __m128/__m256/__m512,
                     immintrin.h/x86intrin.h) anywhere except
                     src/nn/kernels_avx2.cpp. Vector code must live behind
                     the gendt::nn::simd kernel table: ad-hoc intrinsics
                     elsewhere would fork the arithmetic away from the
                     dispatched routes and silently break the scalar route's
                     bitwise-anchor contract.

Scope: src/ plus tools/gendt_cli.cpp — the CLI owns the train-resume path,
which serializes checkpoints whose byte layout (and therefore CRC) must be a
pure function of the training state, so it obeys the same ordering rules as
the gradient-reduction code. src/serve is held to the same bar: retry
backoff jitter must come from derive_stream_seed (never global RNG state),
deadlines must be measured through the injectable runtime::Clock, and no
serving decision path may read the wall clock directly — the chaos tests'
bitwise-reproducibility claim depends on all three. The single sanctioned
wall-clock read is the SteadyClock impl behind runtime::steady_clock(),
suppressed at its definition. Benches and the other tools may time things;
tests may do what they like. Suppress a finding with a same-line comment:
    // determinism-lint: allow(<rule>) <reason>

Usage:
  tools/lint_determinism.py [paths...]   # files or dirs;
                                         # default: <repo>/src + the CLI
  tools/lint_determinism.py --self-test  # verify every rule fires
Exit code 0 = clean, 1 = findings, 2 = usage/self-test failure.
"""

import os
import re
import sys

# Rules applied to every scanned file: (rule-id, regex, message).
GLOBAL_RULES = [
    (
        "rand",
        re.compile(r"(?<![\w:.])s?rand\s*\("),
        "C rand()/srand() uses hidden global state; derive a stream with "
        "runtime::derive_stream_seed and use std::mt19937_64 instead",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is a nondeterministic entropy source; seeds must "
        "come from the config",
    ),
    (
        "wallclock",
        re.compile(r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now"),
        "wall-clock reads make model/runtime behavior time-dependent; pass "
        "timestamps in explicitly",
    ),
    (
        # Trailing-underscore identifiers are class members (repo naming
        # convention): those are seeded in constructor init lists, so only
        # default-constructed locals/globals are flagged.
        "unseeded-mt19937",
        re.compile(r"std::mt19937(?:_64)?\s+\w*[^_\W]\s*(?:;|\{\s*\})"),
        "default-constructed mt19937 silently ignores the configured seed; "
        "construct it from a derive_stream_seed value",
    ),
]

# Paths (directories or single files) whose code must keep a stable
# iteration order: gradient-reduction paths, where an unordered container
# can reorder float accumulation between runs/platforms; the CLI's
# checkpoint writer, where it would reorder serialized records and change
# the file bytes/CRC between identical runs; and the serving layer, where
# fault-plan lookup and outcome digests must not depend on hash-table
# iteration order or the chaos sweep's cross-thread-count equality breaks.
# src/nn and src/core also cover the tape-free inference fast path
# (nn/infer.cpp, core/infer_session.cpp): its bitwise-parity contract with
# the Tensor graph needs the same stable accumulation and RNG-draw order as
# the training code, so those files are held to the same rules.
ORDER_SENSITIVE_PATHS = ("src/nn", "src/core", "src/serve", "tools/gendt_cli.cpp")

# The single file allowed to use x86 intrinsics: the AVX2 kernel TU behind
# the gendt::nn::simd dispatch table (built with file-local -mavx2 -mfma).
INTRINSICS_EXEMPT = "src/nn/kernels_avx2.cpp"
INTRINSICS = re.compile(
    r"(?<![\w])_mm(?:\d{3})?_\w+\s*\("      # _mm_*, _mm256_*, _mm512_* calls
    r"|(?<![\w])__m\d{3}[di]?(?![\w])"      # __m128/__m256d/__m512i vector types
    r"|#\s*include\s*[<\"](?:imm|x86)intrin\.h[>\"]")
INTRINSICS_MSG = (
    "x86 intrinsics outside src/nn/kernels_avx2.cpp; vector code must sit "
    "behind the gendt::nn::simd kernel table so the scalar route stays the "
    "bitwise determinism anchor")

UNORDERED_DECL = re.compile(r"std::unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)")
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*&?(\w+)\s*\)")

ALLOW = re.compile(r"//\s*determinism-lint:\s*allow\((?P<rules>[\w,\s-]+)\)")
SOURCE_EXTS = (".cpp", ".cc", ".h", ".hpp")


def strip_strings(line):
    """Blank out string/char literals so their contents can't match rules."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def allowed_rules(line):
    m = ALLOW.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group("rules").split(",")}


def scan_file(path, rel):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [(rel, 0, "io", f"cannot read file: {e}")]

    rel_posix = rel.replace("\\", "/")
    order_sensitive = any(
        rel_posix == p or rel_posix.startswith(p + "/")
        for p in ORDER_SENSITIVE_PATHS
    )

    unordered_vars = set()
    if order_sensitive:
        for line in lines:
            for m in UNORDERED_DECL.finditer(strip_strings(line)):
                unordered_vars.add(m.group(1))

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        allow = allowed_rules(raw)
        code = strip_strings(line)
        # Line comments can mention the patterns freely.
        code = code.split("//")[0]

        for rule, rx, msg in GLOBAL_RULES:
            if rx.search(code) and rule not in allow:
                findings.append((rel, lineno, rule, msg))
        if (rel_posix != INTRINSICS_EXEMPT and "intrinsics" not in allow
                and INTRINSICS.search(code)):
            findings.append((rel, lineno, "intrinsics", INTRINSICS_MSG))
        if order_sensitive and "unordered-iteration" not in allow:
            m = RANGE_FOR.search(code)
            if m and m.group(1) in unordered_vars:
                findings.append(
                    (rel, lineno, "unordered-iteration",
                     f"range-for over unordered container '{m.group(1)}' in a "
                     "gradient-reduction path; iterate a sorted/indexed view "
                     "so float accumulation order is stable"))
    return findings


def scan_paths(root, paths):
    findings = []
    scanned = 0
    for base in paths:
        if os.path.isfile(base):
            findings.extend(scan_file(base, os.path.relpath(base, root)))
            scanned += 1
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root)
                findings.extend(scan_file(full, rel))
                scanned += 1
    return findings, scanned


def self_test():
    import tempfile

    cases = {
        "rand": "int x = rand();\n",
        "random-device": "std::random_device rd;\n",
        "wallclock": "auto t = std::chrono::steady_clock::now();\n",
        "unseeded-mt19937": "std::mt19937_64 rng;\n",
        "unordered-iteration":
            "std::unordered_map<const void*, Mat> grads;\n"
            "void reduce() { for (const auto& kv : grads) use(kv); }\n",
        "intrinsics":
            "#include <immintrin.h>\n"
            "__m256d v = _mm256_mul_pd(a, b);\n",
    }
    clean = (
        "std::mt19937_64 rng(derive_stream_seed(seed, w));\n"
        "std::mt19937_64 rng_;  // member decl, seeded in the ctor init list\n"
        "std::unordered_map<const void*, Mat> grads;\n"
        "for (const auto& p : params) apply(grads.at(p.id()));\n"
        "int x = rand();  // determinism-lint: allow(rand) self-test fixture\n"
    )
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        nn = os.path.join(tmp, "src", "nn")
        os.makedirs(nn)
        for rule, snippet in cases.items():
            path = os.path.join(nn, f"case_{rule.replace('-', '_')}.cpp")
            with open(path, "w", encoding="utf-8") as f:
                f.write(snippet)
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")])
            hit = any(r == rule for (_f, _l, r, _m) in found)
            os.remove(path)
            if not hit:
                print(f"self-test FAILED: rule '{rule}' did not fire", file=sys.stderr)
                ok = False
        path = os.path.join(nn, "clean.cpp")
        with open(path, "w", encoding="utf-8") as f:
            f.write(clean)
        # The one sanctioned intrinsics TU must NOT fire the rule.
        exempt = os.path.join(nn, "kernels_avx2.cpp")
        with open(exempt, "w", encoding="utf-8") as f:
            f.write("#include <immintrin.h>\n__m256d v = _mm256_setzero_pd();\n")
        found, _ = scan_paths(tmp, [os.path.join(tmp, "src")])
        if found:
            for f_, l, r, m in found:
                print(f"self-test FAILED: false positive {f_}:{l}: [{r}] {m}",
                      file=sys.stderr)
            ok = False
    print("lint_determinism self-test:", "ok" if ok else "FAILED")
    return 0 if ok else 2


def main(argv):
    if "--self-test" in argv:
        return self_test()
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.abspath(p) for p in argv] or [
        os.path.join(root, "src"),
        os.path.join(root, "tools", "gendt_cli.cpp"),
    ]
    for p in paths:
        if not os.path.exists(p):
            print(f"lint_determinism: no such file or directory: {p}", file=sys.stderr)
            return 2
    findings, scanned = scan_paths(root, paths)
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s) in {scanned} files")
        return 1
    print(f"lint_determinism: clean ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
