#!/usr/bin/env python3
"""DEPRECATED entry point — the determinism rules moved into the unified
static-analysis driver, tools/gendt_lint.py, as its `determinism` rule pack
(alongside the `layering` and `rawmutex` packs and the clang-tidy gate).

This shim forwards every invocation to

    tools/gendt_lint.py --packs determinism [args...]

with identical rule ids, suppression comments (both the legacy
`// determinism-lint: allow(...)` and the unified `// gendt-lint: allow(...)`
spellings), default scope (src/ + tools/gendt_cli.cpp), --self-test
semantics, and exit codes — so existing scripts and muscle memory keep
linting instead of silently doing nothing. New scripts should call
gendt_lint.py directly (it also checks layering and raw-mutex usage).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gendt_lint  # noqa: E402  (path set up just above)

if __name__ == "__main__":
    print("lint_determinism.py is deprecated: forwarding to "
          "`gendt_lint.py --packs determinism` (see tools/gendt_lint.py for "
          "the layering/rawmutex packs and the clang-tidy gate)",
          file=sys.stderr)
    sys.exit(gendt_lint.main(["--packs", "determinism", *sys.argv[1:]]))
