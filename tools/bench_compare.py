#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Guards the perf trajectory tracked in BENCH_micro_perf.json: a benchmark
whose cpu_time regressed by more than the threshold (default 25%) versus the
baseline fails the run. Benchmarks present on only one side are reported but
never fail — renames and new benchmarks must not break CI, and a retired
benchmark must not pin its baseline entry forever.

Aggregate rows (BigO/RMS/mean/...) are skipped: only per-iteration timings
are comparable run to run. Times are normalized to nanoseconds before
comparing, so a benchmark switching time_unit doesn't fake a regression.

Usage:
  tools/bench_compare.py [--threshold PCT] BASELINE.json FRESH.json
  tools/bench_compare.py --self-test

Exit code 0 = within threshold, 1 = regression(s), 2 = usage/bad input.
"""

import argparse
import json
import sys

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def check_build_type(doc, path):
    """Hard-fail on timings from a debug build.

    Debug numbers are noise for the perf trajectory: comparing against (or
    committing) them would either mask real regressions or manufacture fake
    ones. The field is optional — hand-rolled contexts (BENCH_serve_replay's
    emitter) don't carry it, and absence is fine; an explicit "debug" is not.
    """
    build = doc.get("context", {}).get("library_build_type")
    if build == "debug":
        print(f"bench_compare: {path} was produced by a debug build "
              "(context.library_build_type == \"debug\") — rerun the "
              "benchmark from a Release build", file=sys.stderr)
        sys.exit(2)


def load_timings(path):
    """Return {benchmark name: cpu_time in ns} for per-iteration entries."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    check_build_type(doc, path)
    timings = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        cpu = bench.get("cpu_time")
        unit = bench.get("time_unit", "ns")
        name = bench.get("name")
        if name is None or cpu is None or unit not in _NS_PER_UNIT:
            continue
        timings[name] = float(cpu) * _NS_PER_UNIT[unit]
    return timings


def compare(baseline, fresh, threshold_pct):
    """Return (regressions, warnings, report lines).

    A regression is >threshold slower. Warnings cover names present on only
    one side: never fatal (exit stays 0), but loud on stderr so a PR adding
    benchmarks knows the baseline wants regenerating.
    """
    regressions = []
    warnings = []
    lines = []
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            warnings.append(f"'{name}' is only in the baseline (retired or "
                            "renamed?) — not compared")
            lines.append(f"  only-baseline  {name} (retired or renamed — ignored)")
            continue
        if name not in baseline:
            warnings.append(f"'{name}' is new (absent from the baseline) — "
                            "not compared; regenerate the baseline to track it")
            lines.append(f"  only-fresh     {name} (new benchmark — ignored)")
            continue
        base, cur = baseline[name], fresh[name]
        if base <= 0.0:
            lines.append(f"  skipped        {name} (non-positive baseline)")
            continue
        delta_pct = 100.0 * (cur - base) / base
        tag = "ok"
        if delta_pct > threshold_pct:
            tag = "REGRESSION"
            regressions.append(name)
        lines.append(
            f"  {tag:<14} {name}: {base:.0f}ns -> {cur:.0f}ns ({delta_pct:+.1f}%)")
    return regressions, warnings, lines


def self_test():
    baseline = {"a": 100.0, "b": 100.0, "gone": 50.0}
    fresh = {"a": 120.0, "b": 130.0, "new": 10.0}
    regressions, warnings, _ = compare(baseline, fresh, 25.0)
    ok = regressions == ["b"]  # +20% passes, +30% fails, new/retired ignored
    # One-sided names warn (loudly, on stderr in main) but never fail.
    ok = ok and len(warnings) == 2
    ok = ok and any("'gone'" in w and "baseline" in w for w in warnings)
    ok = ok and any("'new'" in w and "new" in w for w in warnings)
    regressions, warnings, _ = compare(baseline, fresh, 35.0)
    ok = ok and regressions == [] and len(warnings) == 2
    # A fresh run that only ADDS benchmarks is clean: no regressions, and the
    # additions surface as warnings only.
    regressions, warnings, _ = compare({"a": 100.0}, {"a": 100.0, "x": 1.0}, 25.0)
    ok = ok and regressions == [] and warnings and "'x'" in warnings[0]
    # Debug-built results are rejected outright; a missing or release build
    # type passes (BENCH_serve_replay's hand-rolled context has no such field).
    try:
        check_build_type({"context": {"library_build_type": "debug"}}, "x.json")
        ok = False
    except SystemExit as e:
        ok = ok and e.code == 2
    for clean in ({}, {"context": {}}, {"context": {"library_build_type": "release"}}):
        try:
            check_build_type(clean, "x.json")
        except SystemExit:
            ok = False
    print("bench_compare self-test:", "ok" if ok else "FAILED")
    return 0 if ok else 2


def main(argv):
    if "--self-test" in argv:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed cpu_time increase in percent")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    args = parser.parse_args(argv)

    baseline = load_timings(args.baseline)
    fresh = load_timings(args.fresh)
    if not baseline or not fresh:
        print("bench_compare: no comparable per-iteration timings found",
              file=sys.stderr)
        return 2

    regressions, warnings, lines = compare(baseline, fresh, args.threshold)
    print(f"bench_compare: {args.fresh} vs baseline {args.baseline} "
          f"(threshold +{args.threshold:g}%)")
    for line in lines:
        print(line)
    for warning in warnings:
        print(f"bench_compare: warning: {warning}", file=sys.stderr)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"+{args.threshold:g}%: {', '.join(regressions)}")
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
