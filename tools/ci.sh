#!/usr/bin/env bash
# One-command verification pipeline: everything a PR must survive, in the
# order that fails fastest.
#
#   1. warning-clean build        (-Wall -Wextra -Wshadow -Wconversion, -Werror;
#                                  -Wthread-safety as error under Clang)
#   2. unified static analysis    (tools/gendt_lint.py: fixture self-test,
#                                  then the determinism + layering + rawmutex
#                                  rule packs over src/ + CLI, with the
#                                  machine-readable findings JSON left in the
#                                  build dir for diffing)
#   3. clang-tidy gate            (tools/gendt_lint.py --tidy against the CI
#                                  build's compile_commands.json; .clang-tidy
#                                  WarningsAsErrors makes any finding fail the
#                                  step. Skipped with a notice when clang-tidy
#                                  is not installed — tool presence is the
#                                  opt-in, so installing it hardens the gate)
#   4. full ctest suite           (includes the gendt_lint_self_test /
#                                  gendt_lint_tree entries, label `lint`)
#   5. TSan subset                (tools/check.sh thread  -> runtime|nn|serialize|serve;
#                                  "serve" also matches serve-stream, so the
#                                  streaming daemon's multi-worker resume and
#                                  drain paths run with the race detector on)
#   6. UBSan subset               (tools/check.sh undefined -> runtime|nn|serialize|serve)
#   7. ASan serve-chaos + corpus  (serialize|serve: the checkpoint
#                                  fault-injection corpus, the serving
#                                  engine's chaos sweep, and the GDTSTRM1
#                                  frame-decoder fuzz corpus — corrupt files,
#                                  injected faults, and hostile wire bytes
#                                  must fail cleanly, not as heap errors the
#                                  test harness can't see)
#   8. UBSan scalar-route gate    (GENDT_SIMD=off over serialize|gen-parity:
#                                  the pack/checkpoint corpora and both
#                                  parity suites with kernel dispatch forced
#                                  to the scalar anchor — the bitwise
#                                  contract must hold, UB-clean, with SIMD
#                                  disabled end to end)
#
# Usage: tools/ci.sh [--fast] [--bench]
#   --fast stops after step 4 (skips the sanitizer builds; those dominate
#   wall-clock on small machines).
#   --bench additionally runs a smoke-filtered bench_micro_perf pass and
#   gates it with tools/bench_compare.py against the committed
#   BENCH_micro_perf.json (>25% cpu_time regression fails). Off by default:
#   microbenchmark timings are only meaningful on a quiet machine.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD_DIR="$ROOT/build-ci"
FAST=0
BENCH=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    *) echo "usage: tools/ci.sh [--fast] [--bench]" >&2; exit 2 ;;
  esac
done

step() { echo; echo "=== ci.sh [$1] $2"; }

step 1/8 "warning-clean build (GENDT_WERROR=ON)"
cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release -DGENDT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

step 2/8 "unified static analysis (gendt_lint.py: determinism + layering + rawmutex)"
python3 "$ROOT/tools/gendt_lint.py" --self-test
python3 "$ROOT/tools/gendt_lint.py" --json "$BUILD_DIR/lint_findings.json"

step 3/8 "clang-tidy gate (hard-fails on findings when the tool is installed)"
python3 "$ROOT/tools/gendt_lint.py" --tidy --build-dir "$BUILD_DIR"

step 4/8 "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "$BENCH" -eq 1 ]; then
  # Optional perf gate: a fast smoke subset (the kernels and the generation
  # fast path — the benchmarks this repo's perf work targets) against the
  # committed baseline. Full runs still go through bench/bench_micro_perf
  # directly.
  step bench "bench_compare smoke subset (--bench)"
  python3 "$ROOT/tools/bench_compare.py" --self-test
  BENCH_JSON="$BUILD_DIR/bench_smoke.json"
  "$BUILD_DIR/bench/bench_micro_perf" \
    --benchmark_filter='BM_Matmul|BM_LstmStep|BM_GenDTWindowGeneration|BM_Affine2Simd|BM_CkptModelLoad|BM_PackedModelLoad|BM_BatchedLstmStep|BM_CovermapThroughput' \
    --benchmark_out="$BENCH_JSON" --benchmark_out_format=json
  python3 "$ROOT/tools/bench_compare.py" "$ROOT/BENCH_micro_perf.json" "$BENCH_JSON"

  # Serving-layer load gate: replay the canonical 10^5-request scripted
  # trace against the model registry and compare p50/p99 latency + shed
  # rate per model with the committed baseline. The replay runs on virtual
  # time, so the numbers are exact — any drift is a behavior change in the
  # serve layer, not machine noise.
  step bench "trace-replay serve gate (BENCH_serve_replay.json)"
  REPLAY_JSON="$BUILD_DIR/bench_serve_replay.json"
  "$BUILD_DIR/tools/gendt" replay --scripted 2 --requests 100000 --rate-hz 1000 \
    --deadline-ms 44 --budget 48 --swap-at 30000 --seed 1 --out "$REPLAY_JSON"
  python3 "$ROOT/tools/bench_compare.py" "$ROOT/BENCH_serve_replay.json" "$REPLAY_JSON"
fi

if [ "$FAST" -eq 1 ]; then
  echo; echo "ci.sh: fast mode — skipping sanitizer subsets"; exit 0
fi

step 5/8 "ThreadSanitizer subset"
"$ROOT/tools/check.sh" thread

step 6/8 "UndefinedBehaviorSanitizer subset"
"$ROOT/tools/check.sh" undefined

step 7/8 "AddressSanitizer over the fault-injection suites (serialize + serve chaos)"
"$ROOT/tools/check.sh" address 'serialize|serve'

step 8/8 "UBSan scalar-route gate (GENDT_SIMD=off over serialize + parity suites)"
GENDT_SIMD=off "$ROOT/tools/check.sh" undefined 'serialize|gen-parity'

echo; echo "ci.sh: all stages passed"
