#!/usr/bin/env bash
# One-command verification pipeline: everything a PR must survive, in the
# order that fails fastest.
#
#   1. warning-clean build        (-Wall -Wextra -Wshadow -Wconversion, -Werror)
#   2. determinism lint           (tools/lint_determinism.py over src/ + CLI)
#   3. clang-tidy baseline        (.clang-tidy; skipped if clang-tidy absent)
#   4. full ctest suite
#   5. TSan subset                (tools/check.sh thread  -> runtime|nn|serialize|serve)
#   6. UBSan subset               (tools/check.sh undefined -> runtime|nn|serialize|serve)
#   7. ASan serve-chaos + corpus  (serialize|serve: the checkpoint
#                                  fault-injection corpus and the serving
#                                  engine's chaos sweep — corrupt files and
#                                  injected faults must fail cleanly, not as
#                                  heap errors the test harness can't see)
#   8. UBSan scalar-route gate    (GENDT_SIMD=off over serialize|gen-parity:
#                                  the pack/checkpoint corpora and both
#                                  parity suites with kernel dispatch forced
#                                  to the scalar anchor — the bitwise
#                                  contract must hold, UB-clean, with SIMD
#                                  disabled end to end)
#
# Usage: tools/ci.sh [--fast] [--bench]
#   --fast stops after step 4 (skips the sanitizer builds; those dominate
#   wall-clock on small machines).
#   --bench additionally runs a smoke-filtered bench_micro_perf pass and
#   gates it with tools/bench_compare.py against the committed
#   BENCH_micro_perf.json (>25% cpu_time regression fails). Off by default:
#   microbenchmark timings are only meaningful on a quiet machine.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD_DIR="$ROOT/build-ci"
FAST=0
BENCH=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    *) echo "usage: tools/ci.sh [--fast] [--bench]" >&2; exit 2 ;;
  esac
done

step() { echo; echo "=== ci.sh [$1] $2"; }

step 1/8 "warning-clean build (GENDT_WERROR=ON)"
cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release -DGENDT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

step 2/8 "determinism lint"
python3 "$ROOT/tools/lint_determinism.py" --self-test
python3 "$ROOT/tools/lint_determinism.py"

step 3/8 "clang-tidy baseline"
if command -v clang-tidy >/dev/null 2>&1; then
  # Compile commands come from the CI build dir; only first-party sources.
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find "$ROOT/src" -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "clang-tidy not installed — skipping (install it to run the .clang-tidy baseline)"
fi

step 4/8 "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "$BENCH" -eq 1 ]; then
  # Optional perf gate: a fast smoke subset (the kernels and the generation
  # fast path — the benchmarks this repo's perf work targets) against the
  # committed baseline. Full runs still go through bench/bench_micro_perf
  # directly.
  step bench "bench_compare smoke subset (--bench)"
  python3 "$ROOT/tools/bench_compare.py" --self-test
  BENCH_JSON="$BUILD_DIR/bench_smoke.json"
  "$BUILD_DIR/bench/bench_micro_perf" \
    --benchmark_filter='BM_Matmul|BM_LstmStep|BM_GenDTWindowGeneration|BM_Affine2Simd|BM_CkptModelLoad|BM_PackedModelLoad' \
    --benchmark_out="$BENCH_JSON" --benchmark_out_format=json
  python3 "$ROOT/tools/bench_compare.py" "$ROOT/BENCH_micro_perf.json" "$BENCH_JSON"
fi

if [ "$FAST" -eq 1 ]; then
  echo; echo "ci.sh: fast mode — skipping sanitizer subsets"; exit 0
fi

step 5/8 "ThreadSanitizer subset"
"$ROOT/tools/check.sh" thread

step 6/8 "UndefinedBehaviorSanitizer subset"
"$ROOT/tools/check.sh" undefined

step 7/8 "AddressSanitizer over the fault-injection suites (serialize + serve chaos)"
"$ROOT/tools/check.sh" address 'serialize|serve'

step 8/8 "UBSan scalar-route gate (GENDT_SIMD=off over serialize + parity suites)"
GENDT_SIMD=off "$ROOT/tools/check.sh" undefined 'serialize|gen-parity'

echo; echo "ci.sh: all stages passed"
