#!/usr/bin/env python3
"""Unified static-analysis driver for the GenDT tree.

One entry point, three source-level rule packs plus the clang-tidy gate:

  determinism   The rules that protect the bitwise-reproducibility contract
                (formerly tools/lint_determinism.py, which now forwards
                here): rand, random-device, wallclock, unseeded-mt19937,
                unordered-iteration, intrinsics. See each rule's message for
                the rationale; the short version is that training,
                generation, and serving are pinned bitwise-identical across
                runs and thread counts, and these are the source patterns
                that silently break that.

  layering      Architecture-layering linter over the `#include` graph of
                src/. Each module under src/<module>/ declares its direct
                dependencies in LAYER_DEPS (mirroring the CMake link graph);
                a module may include headers from any module *beneath* it in
                the transitive closure of that DAG. Rules:
                  layering-undeclared-edge   include of a module that is not
                                             reachable through the declared
                                             DAG (a sideways include)
                  layering-cycle             include that closes a module
                                             cycle (an upward include, e.g.
                                             `#include <gendt/serve/...>`
                                             from an nn TU)
                  layering-undeclared-module a src/<dir> (or gendt/<dir>
                                             include target) missing from
                                             LAYER_DEPS entirely
                  include-path               `..` path segments in an
                                             include — cross-module headers
                                             must use the canonical
                                             gendt/<module>/... form so the
                                             graph stays parseable
                Tests, tools, bench, and examples are exempt: they sit on
                top of every module by design.

  rawmutex      Forbids raw std synchronization primitives (std::mutex,
                std::lock_guard, std::condition_variable, ...) outside
                src/runtime/include/gendt/runtime/mutex.h. libstdc++'s
                std::mutex is not a Clang thread-safety capability, so a raw
                mutex silently escapes -Wthread-safety: GUARDED_BY on state
                it protects is vacuous and lock-order/requires analysis sees
                nothing. All locking goes through the annotated
                runtime::Mutex / MutexLock / CondVar wrappers, which keep
                the whole tree inside the analysis at zero runtime cost.

  rawio         Forbids raw POSIX I/O syscalls (::read, ::write, ::recv,
                ::send and friends) outside src/net/. The net module's
                wrappers retry EINTR, suppress SIGPIPE, and surface partial
                transfers explicitly; a stray raw syscall elsewhere silently
                reintroduces the exact failure modes (signal-interrupted
                reads, SIGPIPE process death, short writes) the streaming
                service is hardened against.

  --tidy        The clang-tidy gate: resolves compile_commands.json from the
                build dir (configuring with CMAKE_EXPORT_COMPILE_COMMANDS=ON
                if needed), runs clang-tidy over every first-party TU in the
                database (src/ + tools/gendt_cli.cpp), and fails on any
                finding (.clang-tidy sets WarningsAsErrors). When clang-tidy
                is not installed the gate is skipped with a notice unless
                --require-tidy is passed; CI treats presence of the tool as
                the opt-in. CLANG_TIDY=<path> overrides the binary.

Scope of the source packs: src/ plus tools/gendt_cli.cpp (the CLI owns the
train-resume path and obeys the same ordering rules as the gradient-reduction
code). Suppress any source-pack finding with a same-line comment:

    // gendt-lint: allow(<rule>[, <rule>...]) <reason>

The legacy `// determinism-lint: allow(...)` spelling is still honored for
determinism-pack rules so existing suppressions keep working.

Usage:
  tools/gendt_lint.py [paths...]                 # all source packs over the
                                                 # default scope
  tools/gendt_lint.py --packs layering,rawmutex  # subset of packs
  tools/gendt_lint.py --json findings.json       # machine-readable findings
  tools/gendt_lint.py --tidy [--build-dir DIR]   # clang-tidy gate
  tools/gendt_lint.py --self-test                # fixture corpus; every rule
                                                 # must fire and every
                                                 # exemption must hold
Exit code 0 = clean, 1 = findings, 2 = usage/self-test/config failure.
"""

import json
import os
import re
import shutil
import subprocess
import sys

# --------------------------------------------------------------------------
# Shared scanning machinery
# --------------------------------------------------------------------------

SOURCE_EXTS = (".cpp", ".cc", ".h", ".hpp")

# Unified suppression marker, plus the legacy determinism-only spelling.
ALLOW = re.compile(r"//\s*gendt-lint:\s*allow\((?P<rules>[\w,\s-]+)\)")
ALLOW_LEGACY = re.compile(r"//\s*determinism-lint:\s*allow\((?P<rules>[\w,\s-]+)\)")

SOURCE_PACKS = ("determinism", "layering", "rawmutex", "rawio")


def strip_strings(line):
    """Blank out string/char literals so their contents can't match rules."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def allowed_rules(line):
    """Rules suppressed on this line (unified + legacy markers)."""
    rules = set()
    for rx in (ALLOW, ALLOW_LEGACY):
        m = rx.search(line)
        if m:
            rules.update(r.strip() for r in m.group("rules").split(","))
    return rules


class Finding:
    __slots__ = ("file", "line", "pack", "rule", "message")

    def __init__(self, file, line, pack, rule, message):
        self.file = file
        self.line = line
        self.pack = pack
        self.rule = rule
        self.message = message

    def text(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {"file": self.file, "line": self.line, "pack": self.pack,
                "rule": self.rule, "message": self.message}


# --------------------------------------------------------------------------
# Pack: determinism (the former lint_determinism.py rules, verbatim)
# --------------------------------------------------------------------------

DETERMINISM_RULES = [
    (
        "rand",
        re.compile(r"(?<![\w:.])s?rand\s*\("),
        "C rand()/srand() uses hidden global state; derive a stream with "
        "runtime::derive_stream_seed and use std::mt19937_64 instead",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is a nondeterministic entropy source; seeds must "
        "come from the config",
    ),
    (
        "wallclock",
        re.compile(r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now"),
        "wall-clock reads make model/runtime behavior time-dependent; pass "
        "timestamps in explicitly",
    ),
    (
        # Trailing-underscore identifiers are class members (repo naming
        # convention): those are seeded in constructor init lists, so only
        # default-constructed locals/globals are flagged.
        "unseeded-mt19937",
        re.compile(r"std::mt19937(?:_64)?\s+\w*[^_\W]\s*(?:;|\{\s*\})"),
        "default-constructed mt19937 silently ignores the configured seed; "
        "construct it from a derive_stream_seed value",
    ),
]

# Paths (directories or single files) whose code must keep a stable iteration
# order: gradient-reduction paths (src/nn, src/core — including the tape-free
# fast path, whose bitwise parity with the Tensor graph needs the same stable
# accumulation and RNG-draw order), the serving layer (fault-plan lookups and
# outcome digests must not depend on hash-table iteration order), and the
# CLI's checkpoint writer (record order decides the file bytes/CRC).
ORDER_SENSITIVE_PATHS = ("src/nn", "src/core", "src/serve", "tools/gendt_cli.cpp")

# The only files allowed to use x86 intrinsics: the AVX2 and AVX-512 kernel
# TUs behind the gendt::nn::simd dispatch table (each built with file-local
# ISA flags).
INTRINSICS_EXEMPT = ("src/nn/kernels_avx2.cpp", "src/nn/kernels_avx512.cpp")
INTRINSICS = re.compile(
    r"(?<![\w])_mm(?:\d{3})?_\w+\s*\("      # _mm_*, _mm256_*, _mm512_* calls
    r"|(?<![\w])__m\d{3}[di]?(?![\w])"      # __m128/__m256d/__m512i vector types
    r"|(?<![\w])__mmask\d{1,2}(?![\w])"     # AVX-512 lane masks
    r"|#\s*include\s*[<\"](?:imm|x86)intrin\.h[>\"]")
INTRINSICS_MSG = (
    "x86 intrinsics outside src/nn/kernels_avx{2,512}.cpp; vector code must "
    "sit behind the gendt::nn::simd kernel table so the scalar route stays "
    "the bitwise determinism anchor")

UNORDERED_DECL = re.compile(r"std::unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)")
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*&?(\w+)\s*\)")


# --------------------------------------------------------------------------
# Pack: layering
# --------------------------------------------------------------------------

# Declared direct dependencies of every src/<module>, mirroring the CMake
# target_link_libraries graph (docs/ARCHITECTURE.md "Module layering" renders
# the same DAG). A module may #include headers of any module in the
# *transitive closure* of its declared deps — public headers leak their own
# includes, so direct use of an indirect dependency is layering-clean. What
# the linter rejects is a sideways edge (not reachable) or an upward edge
# (one that closes a cycle). Editing this table is an architecture decision:
# update the ARCHITECTURE.md diagram in the same change.
LAYER_DEPS = {
    "runtime": (),
    "geo": (),
    "metrics": (),
    "nn": ("runtime",),
    "radio": ("geo",),
    "sim": ("geo", "radio"),
    "context": ("nn", "sim"),
    "core": ("nn", "context", "metrics"),
    "io": ("core",),
    "baselines": ("core",),
    "downstream": ("nn", "sim", "metrics", "core", "context"),
    # net is the portable socket/poll I/O layer under the streaming service;
    # it sits just above runtime (CancelToken-aware transfer loops).
    "net": ("runtime",),
    # serve -> sim is the trace-replay harness generating load from simulated
    # user trajectories; serve -> net carries the GDTSTRM1 streaming daemon
    # (both mirror src/serve/CMakeLists.txt).
    "serve": ("core", "sim", "net"),
}

GENDT_INCLUDE = re.compile(r'#\s*include\s*[<"]gendt/([A-Za-z0-9_]+)/')
DOTDOT_INCLUDE = re.compile(r'#\s*include\s*[<"][^">]*(?:^|/)?\.\./')


def layer_closure(deps):
    """module -> set of modules reachable through declared direct deps."""
    closure = {}

    def reach(mod, stack):
        if mod in closure:
            return closure[mod]
        if mod in stack:  # declared cycle: reported by validate_layer_deps
            return set()
        stack = stack | {mod}
        out = set()
        for d in deps.get(mod, ()):
            out.add(d)
            out |= reach(d, stack)
        closure[mod] = out
        return out

    for m in deps:
        reach(m, frozenset())
    return closure


def validate_layer_deps(deps):
    """The declared graph itself must be a DAG over known modules."""
    errors = []
    for mod, ds in deps.items():
        for d in ds:
            if d not in deps:
                errors.append(f"LAYER_DEPS[{mod!r}] names unknown module {d!r}")
    # Cycle check via DFS coloring.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in deps}

    def dfs(mod, path):
        color[mod] = GRAY
        for d in deps.get(mod, ()):
            if d not in color:
                continue
            if color[d] == GRAY:
                cyc = path[path.index(d):] + [d] if d in path else [mod, d]
                errors.append("declared layer DAG has a cycle: " + " -> ".join(cyc + [cyc[0]] if cyc[-1] != cyc[0] else cyc))
            elif color[d] == WHITE:
                dfs(d, path + [d])
        color[mod] = BLACK

    for m in deps:
        if color[m] == WHITE:
            dfs(m, [m])
    return errors


def module_of(rel_posix):
    """src/<module>/... -> module name, else None (tools/tests are exempt)."""
    parts = rel_posix.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def find_cycle_path(edges, start, end):
    """Shortest module path start -> ... -> end through `edges` (BFS)."""
    frontier = [[start]]
    seen = {start}
    while frontier:
        nxt = []
        for path in frontier:
            for d in sorted(edges.get(path[-1], ())):
                if d == end:
                    return path + [d]
                if d not in seen:
                    seen.add(d)
                    nxt.append(path + [d])
        frontier = nxt
    return [start, "...", end]


def layering_postprocess(include_records):
    """Turn collected include records into layering findings.

    include_records: list of (rel, lineno, from_mod, to_mod, allow_set).
    Only called for in-scope (src/<module>/) files.
    """
    findings = []
    closure = layer_closure(LAYER_DEPS)

    # Observed module graph (for cycle/reachability): declared edges plus
    # every edge seen in the tree, so a single bad include is judged against
    # the graph it would create.
    observed = {m: set(ds) for m, ds in LAYER_DEPS.items()}
    for _rel, _ln, frm, to, _allow in include_records:
        if frm in observed and to in LAYER_DEPS:
            observed.setdefault(frm, set()).add(to)

    reach_cache = {}

    def reaches(src, dst):
        """True if dst is reachable from src in the observed graph."""
        key = src
        if key not in reach_cache:
            seen = set()
            stack = [src]
            while stack:
                m = stack.pop()
                for d in observed.get(m, ()):
                    if d not in seen:
                        seen.add(d)
                        stack.append(d)
            reach_cache[key] = seen
        return dst in reach_cache[key]

    for rel, lineno, frm, to, allow in include_records:
        if frm == to:
            continue
        if frm not in LAYER_DEPS:
            if "layering-undeclared-module" not in allow:
                findings.append(Finding(
                    rel, lineno, "layering", "layering-undeclared-module",
                    f"src module '{frm}' is not declared in the layer DAG; "
                    "add it to LAYER_DEPS in tools/gendt_lint.py and to the "
                    "ARCHITECTURE.md module-layering diagram"))
            continue
        if to not in LAYER_DEPS:
            if "layering-undeclared-module" not in allow:
                findings.append(Finding(
                    rel, lineno, "layering", "layering-undeclared-module",
                    f"include of unknown module 'gendt/{to}/...'; declare it "
                    "in LAYER_DEPS in tools/gendt_lint.py and in the "
                    "ARCHITECTURE.md module-layering diagram"))
            continue
        if to in closure[frm]:
            continue  # declared (possibly transitive) downward edge
        # The edge is undeclared. If the *target* can already reach us, this
        # include closes a module cycle — an upward edge through the DAG.
        if reaches(to, frm):
            if "layering-cycle" in allow:
                continue
            back = find_cycle_path(observed, to, frm)
            cyc = " -> ".join([frm] + back)
            findings.append(Finding(
                rel, lineno, "layering", "layering-cycle",
                f"include of gendt/{to}/ from module '{frm}' closes the "
                f"module cycle {cyc}; '{to}' sits above '{frm}' in the "
                "declared layer DAG — invert the dependency or move the "
                "shared code below both"))
        else:
            if "layering-undeclared-edge" in allow:
                continue
            findings.append(Finding(
                rel, lineno, "layering", "layering-undeclared-edge",
                f"module '{frm}' does not declare a dependency on '{to}' "
                "(directly or transitively); if the edge is intended, add it "
                "to LAYER_DEPS in tools/gendt_lint.py, the CMake "
                "target_link_libraries, and the ARCHITECTURE.md diagram"))
    return findings


# --------------------------------------------------------------------------
# Pack: rawmutex
# --------------------------------------------------------------------------

# The single file allowed to name the std synchronization types: the
# annotated wrapper that puts them behind Clang thread-safety capabilities.
RAWMUTEX_EXEMPT = "src/runtime/include/gendt/runtime/mutex.h"
RAW_MUTEX = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*[<\"](?:mutex|shared_mutex|condition_variable)[>\"]")
RAW_MUTEX_MSG = (
    "raw std synchronization primitive outside runtime/mutex.h; use the "
    "annotated runtime::Mutex / MutexLock / CondVar wrappers so GUARDED_BY/"
    "REQUIRES keep the state inside Clang's -Wthread-safety analysis")


# --------------------------------------------------------------------------
# Pack: rawio
# --------------------------------------------------------------------------

# The module allowed to issue raw POSIX I/O syscalls: src/net, whose wrappers
# (read_some/write_some/write_all/read_exact) own the EINTR/SIGPIPE/partial-
# transfer discipline for the whole tree.
RAWIO_EXEMPT_PREFIX = "src/net/"
RAW_IO = re.compile(
    r"::\s*(?:read|write|recv|send|recvfrom|sendto|recvmsg|sendmsg|readv|writev)\s*\(")
RAW_IO_MSG = (
    "raw POSIX I/O syscall outside src/net/; use the gendt::net wrappers "
    "(read_some/write_some/write_all/read_exact), which retry EINTR, "
    "suppress SIGPIPE, and surface partial transfers explicitly")


# --------------------------------------------------------------------------
# File scanning (single pass shared by all source packs)
# --------------------------------------------------------------------------

def scan_file(path, rel, packs):
    """Scan one file. Returns (findings, include_records).

    include_records feed the layering pack's whole-graph pass; they are only
    collected for files under src/<module>/.
    """
    findings = []
    include_records = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel, 0, "driver", "io", f"cannot read file: {e}")], []

    rel_posix = rel.replace("\\", "/")
    mod = module_of(rel_posix)
    order_sensitive = any(
        rel_posix == p or rel_posix.startswith(p + "/")
        for p in ORDER_SENSITIVE_PATHS
    )

    unordered_vars = set()
    if "determinism" in packs and order_sensitive:
        for line in lines:
            for m in UNORDERED_DECL.finditer(strip_strings(line)):
                unordered_vars.add(m.group(1))

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        allow = allowed_rules(raw)
        code = strip_strings(line)
        # Line comments can mention the patterns freely.
        code = code.split("//")[0]
        # Include paths are string literals, so the layering pack matches
        # against the comment-stripped (not string-stripped) text.
        inc_code = line.split("//")[0]

        if "determinism" in packs:
            for rule, rx, msg in DETERMINISM_RULES:
                if rx.search(code) and rule not in allow:
                    findings.append(Finding(rel, lineno, "determinism", rule, msg))
            if (rel_posix not in INTRINSICS_EXEMPT and "intrinsics" not in allow
                    and INTRINSICS.search(code)):
                findings.append(
                    Finding(rel, lineno, "determinism", "intrinsics", INTRINSICS_MSG))
            if order_sensitive and "unordered-iteration" not in allow:
                m = RANGE_FOR.search(code)
                if m and m.group(1) in unordered_vars:
                    findings.append(Finding(
                        rel, lineno, "determinism", "unordered-iteration",
                        f"range-for over unordered container '{m.group(1)}' in a "
                        "gradient-reduction path; iterate a sorted/indexed view "
                        "so float accumulation order is stable"))

        if "rawmutex" in packs:
            if (rel_posix != RAWMUTEX_EXEMPT and "raw-mutex" not in allow
                    and RAW_MUTEX.search(code)):
                findings.append(
                    Finding(rel, lineno, "rawmutex", "raw-mutex", RAW_MUTEX_MSG))

        if "rawio" in packs:
            if (not rel_posix.startswith(RAWIO_EXEMPT_PREFIX)
                    and "raw-io" not in allow and RAW_IO.search(code)):
                findings.append(
                    Finding(rel, lineno, "rawio", "raw-io", RAW_IO_MSG))

        if "layering" in packs and mod is not None:
            if DOTDOT_INCLUDE.search(inc_code) and "include-path" not in allow:
                findings.append(Finding(
                    rel, lineno, "layering", "include-path",
                    "'..' path segment in an include; cross-module headers "
                    "must use the canonical gendt/<module>/... form so the "
                    "layer graph stays parseable"))
            m = GENDT_INCLUDE.search(inc_code)
            if m:
                include_records.append((rel, lineno, mod, m.group(1), allow))

    return findings, include_records


def scan_paths(root, paths, packs):
    findings = []
    include_records = []
    scanned = 0
    for base in paths:
        if os.path.isfile(base):
            f, inc = scan_file(base, os.path.relpath(base, root), packs)
            findings.extend(f)
            include_records.extend(inc)
            scanned += 1
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root)
                f, inc = scan_file(full, rel, packs)
                findings.extend(f)
                include_records.extend(inc)
                scanned += 1
    if "layering" in packs:
        findings.extend(layering_postprocess(include_records))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, scanned


# --------------------------------------------------------------------------
# clang-tidy gate
# --------------------------------------------------------------------------

def first_party_tus(root, build_dir):
    """First-party TUs present in the build dir's compile_commands.json."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    src_prefix = os.path.join(root, "src") + os.sep
    cli = os.path.join(root, "tools", "gendt_cli.cpp")
    files = set()
    for entry in db:
        path = os.path.normpath(os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(src_prefix) or path == cli:
            files.add(path)
    return sorted(files)


def run_tidy(root, build_dir, require, jobs):
    """Run the clang-tidy gate. Returns a process exit code."""
    tidy = shutil.which(os.environ.get("CLANG_TIDY", "clang-tidy"))
    if tidy is None:
        if require:
            print("gendt_lint --tidy: clang-tidy not found and --require-tidy "
                  "set", file=sys.stderr)
            return 2
        print("gendt_lint --tidy: clang-tidy not installed — skipping the "
              "tidy gate (install clang-tidy to enforce .clang-tidy; CI "
              "treats tool presence as the opt-in)")
        return 0

    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        # The toplevel CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS, but an
        # older build dir may predate it; (re)configure with the flag forced.
        print(f"gendt_lint --tidy: exporting compile commands into {build_dir}")
        cfg = subprocess.run(
            ["cmake", "-B", build_dir, "-S", root,
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
            stdout=subprocess.DEVNULL)
        if cfg.returncode != 0 or not os.path.exists(db_path):
            print(f"gendt_lint --tidy: cannot produce {db_path}", file=sys.stderr)
            return 2

    files = first_party_tus(root, build_dir)
    if not files:
        print("gendt_lint --tidy: no first-party TUs in compile_commands.json",
              file=sys.stderr)
        return 2

    # run-clang-tidy parallelizes across TUs; fall back to plain clang-tidy.
    runner = shutil.which("run-clang-tidy")
    if runner is not None:
        cmd = [runner, "-p", build_dir, "-quiet", "-j", str(jobs),
               "-clang-tidy-binary", tidy]
        cmd += [re.escape(f) + "$" for f in files]
    else:
        cmd = [tidy, "-p", build_dir, "--quiet"] + files
    print(f"gendt_lint --tidy: {len(files)} TUs via "
          f"{os.path.basename(cmd[0])} (.clang-tidy WarningsAsErrors gate)")
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print("gendt_lint --tidy: clang-tidy gate FAILED", file=sys.stderr)
        return 1
    print("gendt_lint --tidy: clean")
    return 0


# --------------------------------------------------------------------------
# Self-test fixtures
# --------------------------------------------------------------------------

def _write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)
    return path


def _expect(label, findings, rule, want, errors):
    hits = [f for f in findings if f.rule == rule]
    if want and not hits:
        errors.append(f"{label}: rule '{rule}' did not fire")
    if not want and hits:
        errors.append(f"{label}: rule '{rule}' fired unexpectedly: "
                      + "; ".join(h.text() for h in hits))


def self_test(packs):
    import tempfile

    errors = []

    if "determinism" in packs:
        cases = {
            "rand": "int x = rand();\n",
            "random-device": "std::random_device rd;\n",
            "wallclock": "auto t = std::chrono::steady_clock::now();\n",
            "unseeded-mt19937": "std::mt19937_64 rng;\n",
            "unordered-iteration":
                "std::unordered_map<const void*, Mat> grads;\n"
                "void reduce() { for (const auto& kv : grads) use(kv); }\n",
            "intrinsics":
                "#include <immintrin.h>\n"
                "__m256d v = _mm256_mul_pd(a, b);\n",
        }
        clean = (
            "std::mt19937_64 rng(derive_stream_seed(seed, w));\n"
            "std::mt19937_64 rng_;  // member decl, seeded in the ctor init list\n"
            "std::unordered_map<const void*, Mat> grads;\n"
            "for (const auto& p : params) apply(grads.at(p.id()));\n"
            "int x = rand();  // determinism-lint: allow(rand) legacy marker\n"
            "int y = rand();  // gendt-lint: allow(rand) unified marker\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            for rule, snippet in cases.items():
                rel = f"src/nn/case_{rule.replace('-', '_')}.cpp"
                path = _write(tmp, rel, snippet)
                found, _ = scan_paths(tmp, [os.path.join(tmp, "src")],
                                      {"determinism"})
                _expect(f"determinism[{rule}]", found, rule, True, errors)
                os.remove(path)
            _write(tmp, "src/nn/clean.cpp", clean)
            # The sanctioned intrinsics TUs must NOT fire the rule.
            _write(tmp, "src/nn/kernels_avx2.cpp",
                   "#include <immintrin.h>\n__m256d v = _mm256_setzero_pd();\n")
            _write(tmp, "src/nn/kernels_avx512.cpp",
                   "#include <immintrin.h>\n__m512d v = _mm512_setzero_pd();\n"
                   "__mmask8 m = 0x0f;\n")
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"determinism"})
            for f in found:
                errors.append(f"determinism[clean]: false positive {f.text()}")

    if "layering" in packs:
        # Fixture groups scan in isolated trees: a seeded bad edge changes
        # the observed graph, so mixing groups would reclassify each other's
        # edges (exactly what the observed-graph design is for).
        with tempfile.TemporaryDirectory() as tmp:
            # Seeded upward include (the CI acceptance fixture): an nn TU
            # pulling in serve closes serve -> core -> nn -> serve.
            _write(tmp, "src/nn/bad_upward.cpp",
                   "#include <gendt/serve/engine.h>\n")
            # Legitimate downward + transitive edges: never flagged.
            _write(tmp, "src/serve/good.cpp",
                   '#include "gendt/core/model.h"\n'
                   '#include "gendt/runtime/mutex.h"\n')
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"layering"})
            _expect("layering", found, "layering-cycle", True, errors)
            for f in found:
                if f.file.endswith("good.cpp"):
                    errors.append(f"layering[clean]: false positive {f.text()}")
                # The upward fixture is blamed on the nn TU, not on serve.
                if f.rule == "layering-cycle" and "bad_upward" not in f.file:
                    errors.append(f"layering[cycle]: blamed wrong file {f.text()}")
        with tempfile.TemporaryDirectory() as tmp:
            # Sideways include: sim does not (and must not) depend on nn.
            _write(tmp, "src/sim/bad_sideways.cpp",
                   '#include "gendt/nn/mat.h"\n')
            # Suppressed line: no finding.
            _write(tmp, "src/sim/suppressed.cpp",
                   '#include "gendt/nn/mat.h"  '
                   "// gendt-lint: allow(layering-undeclared-edge) fixture\n")
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"layering"})
            _expect("layering", found, "layering-undeclared-edge", True, errors)
            for f in found:
                if f.file.endswith("suppressed.cpp"):
                    errors.append(f"layering[clean]: false positive {f.text()}")
        with tempfile.TemporaryDirectory() as tmp:
            # Undeclared module on both ends; relative-path include.
            _write(tmp, "src/mystery/new_module.cpp",
                   '#include "gendt/geo/geo.h"\n')
            _write(tmp, "src/geo/bad_unknown.cpp",
                   '#include "gendt/mystery/thing.h"\n')
            _write(tmp, "src/radio/bad_path.cpp",
                   '#include "../geo/include/gendt/geo/geo.h"\n')
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"layering"})
            _expect("layering", found, "layering-undeclared-module", True, errors)
            _expect("layering", found, "include-path", True, errors)
            unknown = [f for f in found if f.rule == "layering-undeclared-module"]
            if len(unknown) != 2:
                errors.append("layering: expected undeclared-module findings on "
                              f"both ends, got {[f.text() for f in unknown]}")

    if "rawmutex" in packs:
        with tempfile.TemporaryDirectory() as tmp:
            _write(tmp, "src/core/bad_mutex.cpp",
                   "#include <mutex>\n"
                   "std::mutex mu;\n"
                   "void f() { std::lock_guard<std::mutex> g(mu); }\n"
                   "std::condition_variable cv;\n")
            # The annotated wrapper itself is the one sanctioned user.
            _write(tmp, RAWMUTEX_EXEMPT,
                   "#include <mutex>\n#include <condition_variable>\n"
                   "class Mutex { std::mutex mu_; };\n")
            _write(tmp, "src/serve/suppressed.cpp",
                   "std::mutex special_;  "
                   "// gendt-lint: allow(raw-mutex) fixture\n")
            _write(tmp, "src/serve/clean.cpp",
                   '#include "gendt/runtime/mutex.h"\n'
                   "void f(runtime::Mutex& mu) { runtime::MutexLock lock(mu); }\n")
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"rawmutex"})
            _expect("rawmutex", found, "raw-mutex", True, errors)
            bad_lines = {f.line for f in found if f.file.endswith("bad_mutex.cpp")}
            if bad_lines != {1, 2, 3, 4}:
                errors.append(f"rawmutex: expected findings on lines 1-4 of "
                              f"bad_mutex.cpp, got {sorted(bad_lines)}")
            for f in found:
                if RAWMUTEX_EXEMPT.replace("/", os.sep) in f.file or \
                        f.file.endswith("suppressed.cpp") or f.file.endswith("clean.cpp"):
                    errors.append(f"rawmutex[clean]: false positive {f.text()}")

    if "rawio" in packs:
        with tempfile.TemporaryDirectory() as tmp:
            _write(tmp, "src/serve/bad_io.cpp",
                   "void f(int fd) { char b[8]; ::read(fd, b, 8); }\n"
                   "void g(int fd) { ::send(fd, nullptr, 0, 0); }\n")
            # src/net owns the raw syscalls; wrappers there are sanctioned.
            _write(tmp, "src/net/io.cpp",
                   "long rs(int fd, void* b, unsigned long n) "
                   "{ return ::read(fd, b, n); }\n")
            _write(tmp, "src/serve/suppressed_io.cpp",
                   "void h(int fd) { ::write(fd, nullptr, 0); }  "
                   "// gendt-lint: allow(raw-io) fixture\n")
            _write(tmp, "src/serve/clean_io.cpp",
                   '#include "gendt/net/io.h"\n'
                   "bool ok(int fd) { return net::write_all(fd, nullptr, 0); }\n")
            found, _ = scan_paths(tmp, [os.path.join(tmp, "src")], {"rawio"})
            _expect("rawio", found, "raw-io", True, errors)
            bad_lines = {f.line for f in found if f.file.endswith("bad_io.cpp")}
            if bad_lines != {1, 2}:
                errors.append(f"rawio: expected findings on lines 1-2 of "
                              f"bad_io.cpp, got {sorted(bad_lines)}")
            for f in found:
                if (os.sep + "net" + os.sep in f.file
                        or f.file.endswith("suppressed_io.cpp")
                        or f.file.endswith("clean_io.cpp")):
                    errors.append(f"rawio[clean]: false positive {f.text()}")

    # Config sanity: the declared DAG itself must validate.
    dag_errors = validate_layer_deps(LAYER_DEPS)
    errors.extend(f"LAYER_DEPS: {e}" for e in dag_errors)

    # JSON output round-trips.
    f = Finding("src/x.cpp", 3, "rawmutex", "raw-mutex", "msg")
    if json.loads(json.dumps(f.as_dict()))["rule"] != "raw-mutex":
        errors.append("json: finding did not round-trip")

    for e in errors:
        print(f"self-test FAILED: {e}", file=sys.stderr)
    print("gendt_lint self-test:", "ok" if not errors else "FAILED",
          f"(packs: {', '.join(sorted(packs))})")
    return 0 if not errors else 2


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def usage(err=None):
    if err:
        print(f"gendt_lint: {err}", file=sys.stderr)
    print(__doc__.split("Usage:")[1].strip(), file=sys.stderr)
    return 2


def main(argv):
    packs = set(SOURCE_PACKS)
    json_out = None
    tidy = False
    require_tidy = False
    self_test_mode = False
    build_dir = None
    jobs = os.cpu_count() or 2
    paths = []

    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            self_test_mode = True
        elif arg == "--tidy":
            tidy = True
        elif arg == "--require-tidy":
            require_tidy = True
        elif arg == "--packs":
            i += 1
            if i >= len(argv):
                return usage("--packs needs a comma-separated list")
            packs = {p.strip() for p in argv[i].split(",") if p.strip()}
            bad = packs - set(SOURCE_PACKS)
            if bad:
                return usage(f"unknown pack(s): {', '.join(sorted(bad))} "
                             f"(known: {', '.join(SOURCE_PACKS)})")
        elif arg == "--json":
            i += 1
            if i >= len(argv):
                return usage("--json needs a file path")
            json_out = argv[i]
        elif arg == "--build-dir":
            i += 1
            if i >= len(argv):
                return usage("--build-dir needs a directory")
            build_dir = argv[i]
        elif arg.startswith("-"):
            return usage(f"unknown option {arg}")
        else:
            paths.append(arg)
        i += 1

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    if self_test_mode:
        return self_test(packs)

    if tidy:
        return run_tidy(root, build_dir or os.path.join(root, "build"),
                        require_tidy, jobs)

    paths = [os.path.abspath(p) for p in paths] or [
        os.path.join(root, "src"),
        os.path.join(root, "tools", "gendt_cli.cpp"),
    ]
    for p in paths:
        if not os.path.exists(p):
            print(f"gendt_lint: no such file or directory: {p}", file=sys.stderr)
            return 2

    findings, scanned = scan_paths(root, paths, packs)
    for f in findings:
        print(f.text())
    if json_out:
        payload = {
            "packs": sorted(packs),
            "scanned_files": scanned,
            "findings": [f.as_dict() for f in findings],
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    label = "+".join(sorted(packs))
    if findings:
        print(f"gendt_lint[{label}]: {len(findings)} finding(s) in "
              f"{scanned} files")
        return 1
    print(f"gendt_lint[{label}]: clean ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
