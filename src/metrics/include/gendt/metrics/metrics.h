// Fidelity metrics from the paper's §5.1 plus the summary statistics its
// data tables report.
#pragma once

#include <span>
#include <vector>

namespace gendt::metrics {

/// Mean absolute error between two equal-length series.
double mae(std::span<const double> a, std::span<const double> b);

/// Classic O(|a|·|b|) dynamic-time-warping distance with absolute-value
/// local cost, normalized by the longer length so values are comparable to
/// MAE. `band` > 0 restricts to a Sakoe-Chiba band of that half-width
/// (0 = unconstrained).
double dtw(std::span<const double> a, std::span<const double> b, int band = 0);

/// Histogram over [lo, hi] with `bins` equal-width buckets; out-of-range
/// values clamp to the edge buckets. Returns densities summing to 1.
std::vector<double> histogram(std::span<const double> x, double lo, double hi, int bins);

/// 1-D Wasserstein-1 distance between two sample sets (exact, via sorted
/// samples / quantile coupling).
double wasserstein1(std::span<const double> a, std::span<const double> b);

/// Histogram Wasserstein Distance (paper §5.1): Wasserstein-1 between the
/// two empirical distributions, computed over shared histogram support —
/// equivalent to the area between CDFs on a common grid.
double hwd(std::span<const double> real, std::span<const double> generated, int bins = 50);

/// Empirical CDF evaluated at the given thresholds.
std::vector<double> ecdf(std::span<const double> x, std::span<const double> thresholds);

/// Summary statistics used by Tables 1-2.
struct SeriesStats {
  double mean = 0.0;
  double stddev = 0.0;
  double roc = 0.0;  // mean |first difference| ("rate of change")
  size_t n = 0;
};
SeriesStats series_stats(std::span<const double> x);

/// Durations between consecutive serving-cell changes, given the serving
/// cell series and timestamps. Used by the §6.3.2 handover analysis.
std::vector<double> inter_handover_times(std::span<const double> serving_cell,
                                         std::span<const double> t);

}  // namespace gendt::metrics
