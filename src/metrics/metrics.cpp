#include "gendt/metrics/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace gendt::metrics {

double mae(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double dtw(std::span<const double> a, std::span<const double> b, int band) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling two-row DP.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    size_t j_lo = 1, j_hi = m;
    if (band > 0) {
      // Sakoe-Chiba band around the diagonal scaled for unequal lengths.
      const double diag = static_cast<double>(i) * static_cast<double>(m) / static_cast<double>(n);
      j_lo = static_cast<size_t>(std::max(1.0, diag - band));
      j_hi = static_cast<size_t>(std::min(static_cast<double>(m), diag + band));
    }
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = cost + best;
    }
    std::swap(prev, cur);
  }
  const double total = prev[m];
  return total / static_cast<double>(std::max(n, m));
}

std::vector<double> histogram(std::span<const double> x, double lo, double hi, int bins) {
  assert(bins > 0 && hi > lo);
  std::vector<double> h(static_cast<size_t>(bins), 0.0);
  if (x.empty()) return h;
  const double width = (hi - lo) / bins;
  for (double v : x) {
    int b = static_cast<int>(std::floor((v - lo) / width));
    b = std::clamp(b, 0, bins - 1);
    h[static_cast<size_t>(b)] += 1.0;
  }
  for (auto& v : h) v /= static_cast<double>(x.size());
  return h;
}

double wasserstein1(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  // Integrate |F_a^{-1}(q) - F_b^{-1}(q)| over q via the merged quantile grid.
  const size_t n = std::max(sa.size(), sb.size());
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double qa =
        sa[std::min(sa.size() - 1, static_cast<size_t>(q * static_cast<double>(sa.size())))];
    const double qb =
        sb[std::min(sb.size() - 1, static_cast<size_t>(q * static_cast<double>(sb.size())))];
    s += std::abs(qa - qb);
  }
  return s / static_cast<double>(n);
}

double hwd(std::span<const double> real, std::span<const double> generated, int bins) {
  if (real.empty() || generated.empty()) return 0.0;
  // Common support covering both samples.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : real) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : generated) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  const auto hr = histogram(real, lo, hi, bins);
  const auto hg = histogram(generated, lo, hi, bins);
  // W1 between histograms on the bin grid = bin_width * sum |CDF diff|.
  const double width = (hi - lo) / bins;
  double cdf_r = 0.0, cdf_g = 0.0, s = 0.0;
  for (int b = 0; b < bins; ++b) {
    cdf_r += hr[static_cast<size_t>(b)];
    cdf_g += hg[static_cast<size_t>(b)];
    s += std::abs(cdf_r - cdf_g);
  }
  return s * width;
}

std::vector<double> ecdf(std::span<const double> x, std::span<const double> thresholds) {
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double th : thresholds) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), th);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size()));
  }
  return out;
}

SeriesStats series_stats(std::span<const double> x) {
  SeriesStats st;
  st.n = x.size();
  if (x.empty()) return st;
  double s = 0.0, s2 = 0.0;
  for (double v : x) {
    s += v;
    s2 += v * v;
  }
  st.mean = s / static_cast<double>(x.size());
  st.stddev = std::sqrt(std::max(0.0, s2 / static_cast<double>(x.size()) - st.mean * st.mean));
  if (x.size() > 1) {
    double roc = 0.0;
    for (size_t i = 1; i < x.size(); ++i) roc += std::abs(x[i] - x[i - 1]);
    st.roc = roc / static_cast<double>(x.size() - 1);
  }
  return st;
}

std::vector<double> inter_handover_times(std::span<const double> serving_cell,
                                         std::span<const double> t) {
  assert(serving_cell.size() == t.size());
  std::vector<double> out;
  double last_change = t.empty() ? 0.0 : t[0];
  for (size_t i = 1; i < serving_cell.size(); ++i) {
    if (serving_cell[i] != serving_cell[i - 1]) {
      out.push_back(t[i] - last_change);
      last_change = t[i];
    }
  }
  return out;
}

}  // namespace gendt::metrics
