// Context extraction and windowing: turns a trajectory plus a World into the
// conditioning input GenDT consumes — per-cell attribute time series for the
// visible cells (network context) and the 26-attribute environment vector
// per timestep — split into sliding windows ("batches" in the paper's §4.3.3
// sense).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "gendt/nn/mat.h"
#include "gendt/sim/drive_test.h"

namespace gendt::context {

/// Names of the 26 environment attributes (paper Table 11), index-aligned
/// with the env context vector: land-use fractions first, PoI counts after.
std::string_view env_attribute_name(int index);

/// Per-cell attribute count (paper: N_c = 5).
inline constexpr int kCellAttrs = 5;

struct ContextConfig {
  double visible_radius_m = 4000.0;  // d_s: conservative upper bound
  double env_radius_m = 500.0;       // environment aggregation radius
  int max_cells = 8;                 // cap N_b at the nearest-K for tractability
  int window_len = 50;               // L
  int train_step = 5;                // Δt for (overlapping) training windows
  double poi_count_scale = 50.0;     // PoI counts normalized as count/scale
};

/// Normalization statistics for KPI channels, fitted on training data.
struct KpiNorm {
  std::vector<double> mean;  // per channel
  std::vector<double> stddev;

  double normalize(int ch, double v) const { return (v - mean[ch]) / stddev[ch]; }
  double denormalize(int ch, double v) const { return v * stddev[ch] + mean[ch]; }
};

/// Fit per-channel mean/std over a set of records for given KPI channels.
KpiNorm fit_kpi_norm(const std::vector<sim::DriveTestRecord>& records,
                     const std::vector<sim::Kpi>& kpis);

/// One training/generation window: the context (and optionally the target
/// KPI series) over L consecutive samples of a record.
struct Window {
  /// Per visible cell, an [L x kCellAttrs] attribute series:
  /// [rel_east_km, rel_north_km, p_max_norm, azimuth_norm, distance_km].
  std::vector<nn::Mat> cell_attrs;
  /// [L x 26] environment attributes per timestep.
  nn::Mat env;
  /// [L x Nch] normalized KPI targets; empty when building for generation.
  nn::Mat target;
  /// Index of first sample in the source record (for stitching output).
  int start = 0;
  /// Actual length (== window_len except possibly the final window).
  int len = 0;
};

/// Builds windows from records against a fixed world.
class ContextBuilder {
 public:
  ContextBuilder(const sim::World& world, ContextConfig cfg, KpiNorm norm,
                 std::vector<sim::Kpi> kpis);

  /// Windows with targets for training. Overlapping windows with step
  /// cfg.train_step (paper Fig. 8a).
  std::vector<Window> training_windows(const sim::DriveTestRecord& record) const;

  /// Non-overlapping windows (step == L) without targets, for generation
  /// over a bare trajectory.
  std::vector<Window> generation_windows(const geo::Trajectory& trajectory) const;
  /// Same, but from a record (uses its sampled positions; still no target
  /// leakage — targets are filled so fidelity metrics can line up windows).
  std::vector<Window> generation_windows(const sim::DriveTestRecord& record) const;

  const ContextConfig& config() const { return cfg_; }
  const KpiNorm& norm() const { return norm_; }
  const std::vector<sim::Kpi>& kpis() const { return kpis_; }
  int num_channels() const { return static_cast<int>(kpis_.size()); }

 private:
  Window build_window(const std::vector<geo::TrajectoryPoint>& pts, int start, int len,
                      const sim::DriveTestRecord* record) const;

  const sim::World& world_;
  ContextConfig cfg_;
  KpiNorm norm_;
  std::vector<sim::Kpi> kpis_;
};

}  // namespace gendt::context
