#include "gendt/context/context.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gendt::context {

std::string_view env_attribute_name(int index) {
  if (index >= 0 && index < sim::kNumLandUse)
    return sim::land_use_name(static_cast<sim::LandUse>(index));
  if (index < sim::kNumEnvAttributes)
    return sim::poi_name(static_cast<sim::PoiType>(index - sim::kNumLandUse));
  return "?";
}

KpiNorm fit_kpi_norm(const std::vector<sim::DriveTestRecord>& records,
                     const std::vector<sim::Kpi>& kpis) {
  KpiNorm norm;
  norm.mean.assign(kpis.size(), 0.0);
  norm.stddev.assign(kpis.size(), 1.0);
  for (size_t ch = 0; ch < kpis.size(); ++ch) {
    double s = 0.0, s2 = 0.0;
    long n = 0;
    for (const auto& rec : records) {
      for (const auto& m : rec.samples) {
        const double v = m.kpi(kpis[ch]);
        s += v;
        s2 += v * v;
        ++n;
      }
    }
    if (n > 1) {
      const double mean = s / static_cast<double>(n);
      const double var = std::max(1e-9, s2 / static_cast<double>(n) - mean * mean);
      norm.mean[ch] = mean;
      norm.stddev[ch] = std::sqrt(var);
    }
  }
  return norm;
}

ContextBuilder::ContextBuilder(const sim::World& world, ContextConfig cfg, KpiNorm norm,
                               std::vector<sim::Kpi> kpis)
    : world_(world), cfg_(cfg), norm_(std::move(norm)), kpis_(std::move(kpis)) {
  assert(!kpis_.empty());
  assert(static_cast<int>(norm_.mean.size()) == static_cast<int>(kpis_.size()));
}

Window ContextBuilder::build_window(const std::vector<geo::TrajectoryPoint>& pts, int start,
                                    int len, const sim::DriveTestRecord* record) const {
  Window w;
  w.start = start;
  w.len = len;
  const geo::LocalProjection& proj = world_.projection();

  // Positions over the window.
  std::vector<geo::Enu> pos(static_cast<size_t>(len));
  for (int t = 0; t < len; ++t) pos[static_cast<size_t>(t)] = proj.to_enu(pts[start + t].pos);

  // Visible cells: union of cells within d_s of the window's midpoint and
  // endpoints, ranked by mean distance over the window, capped at max_cells.
  std::vector<int> candidates;
  for (int probe : {0, len / 2, len - 1}) {
    for (int ci : world_.cells.cells_within(pos[static_cast<size_t>(probe)], cfg_.visible_radius_m)) {
      if (std::find(candidates.begin(), candidates.end(), ci) == candidates.end())
        candidates.push_back(ci);
    }
  }
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(candidates.size());
  for (int ci : candidates) {
    double mean_d = 0.0;
    for (const auto& p : pos)
      mean_d += geo::distance_m(p, world_.cells.site_enu(static_cast<size_t>(ci)));
    ranked.emplace_back(mean_d / static_cast<double>(len), ci);
  }
  std::sort(ranked.begin(), ranked.end());
  const int n_cells = std::min<int>(cfg_.max_cells, static_cast<int>(ranked.size()));

  // Per-cell attribute series.
  for (int k = 0; k < n_cells; ++k) {
    const int ci = ranked[static_cast<size_t>(k)].second;
    const radio::Cell& cell = world_.cells[static_cast<size_t>(ci)];
    const geo::Enu site = world_.cells.site_enu(static_cast<size_t>(ci));
    nn::Mat attrs(len, kCellAttrs);
    for (int t = 0; t < len; ++t) {
      const geo::Enu& p = pos[static_cast<size_t>(t)];
      attrs(t, 0) = (site.east - p.east) / 1000.0;    // rel. east, km
      attrs(t, 1) = (site.north - p.north) / 1000.0;  // rel. north, km
      attrs(t, 2) = (cell.p_max_dbm - 43.0) / 10.0;   // ~[-0.3, 0.5]
      attrs(t, 3) = cell.azimuth_deg / 180.0 - 1.0;   // [-1, 1)
      attrs(t, 4) = geo::distance_m(p, site) / 1000.0;  // km
    }
    w.cell_attrs.push_back(std::move(attrs));
  }

  // Environment context per timestep.
  w.env = nn::Mat(len, sim::kNumEnvAttributes);
  for (int t = 0; t < len; ++t) {
    const auto frac = world_.land_use->land_use_fractions(pos[static_cast<size_t>(t)],
                                                          cfg_.env_radius_m);
    const auto pois = world_.land_use->poi_counts(pos[static_cast<size_t>(t)], cfg_.env_radius_m);
    for (int i = 0; i < sim::kNumLandUse; ++i) w.env(t, i) = frac[static_cast<size_t>(i)];
    for (int i = 0; i < sim::kNumPoi; ++i) {
      w.env(t, sim::kNumLandUse + i) =
          std::min(2.0, static_cast<double>(pois[static_cast<size_t>(i)]) / cfg_.poi_count_scale);
    }
  }

  // Targets (normalized), when a measured record backs the window.
  if (record != nullptr && !record->samples.empty()) {
    w.target = nn::Mat(len, num_channels());
    for (int t = 0; t < len; ++t) {
      const auto& m = record->samples[static_cast<size_t>(start + t)];
      for (int ch = 0; ch < num_channels(); ++ch) {
        w.target(t, ch) = norm_.normalize(ch, m.kpi(kpis_[static_cast<size_t>(ch)]));
      }
    }
  }
  return w;
}

namespace {
std::vector<geo::TrajectoryPoint> record_points(const sim::DriveTestRecord& rec) {
  std::vector<geo::TrajectoryPoint> pts;
  pts.reserve(rec.samples.size());
  for (const auto& m : rec.samples) pts.push_back({m.t, m.pos});
  return pts;
}
}  // namespace

std::vector<Window> ContextBuilder::training_windows(const sim::DriveTestRecord& record) const {
  std::vector<Window> out;
  const auto pts = record_points(record);
  const int n = static_cast<int>(pts.size());
  const int L = cfg_.window_len;
  if (n < L) return out;
  for (int start = 0; start + L <= n; start += cfg_.train_step) {
    out.push_back(build_window(pts, start, L, &record));
  }
  return out;
}

std::vector<Window> ContextBuilder::generation_windows(const geo::Trajectory& trajectory) const {
  std::vector<Window> out;
  std::vector<geo::TrajectoryPoint> pts(trajectory.points().begin(), trajectory.points().end());
  const int n = static_cast<int>(pts.size());
  const int L = cfg_.window_len;
  for (int start = 0; start < n; start += L) {
    const int len = std::min(L, n - start);
    if (len < 2) break;
    out.push_back(build_window(pts, start, len, nullptr));
  }
  return out;
}

std::vector<Window> ContextBuilder::generation_windows(const sim::DriveTestRecord& record) const {
  std::vector<Window> out;
  const auto pts = record_points(record);
  const int n = static_cast<int>(pts.size());
  const int L = cfg_.window_len;
  for (int start = 0; start < n; start += L) {
    const int len = std::min(L, n - start);
    if (len < 2) break;
    out.push_back(build_window(pts, start, len, &record));
  }
  return out;
}

}  // namespace gendt::context
