#include "gendt/runtime/cancel.h"

#include <chrono>

namespace gendt::runtime {

namespace {
// The single wall-clock read in the tree: everything that makes a decision
// on time does so through the Clock interface, so tests swap in ManualClock
// and stay deterministic.
class SteadyClock final : public Clock {
 public:
  int64_t now_ms() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now()  // determinism-lint: allow(wallclock) the injectable production Clock
                   .time_since_epoch())
        .count();
  }
};
}  // namespace

const Clock& steady_clock() {
  static SteadyClock clock;
  return clock;
}

}  // namespace gendt::runtime
