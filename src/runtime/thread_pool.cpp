#include "gendt/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace gendt::runtime {

namespace {
thread_local bool t_on_worker = false;

// Exceptions escaping fire-and-forget submit() tasks (no join to rethrow at).
std::atomic<uint64_t> g_dropped_task_exceptions{0};

// One fork-join region: completion counter + first captured exception.
struct JoinState {
  Mutex mu;
  CondVar done_cv;
  int pending GENDT_GUARDED_BY(mu) = 0;
  std::exception_ptr error GENDT_GUARDED_BY(mu);

  void finish_one(std::exception_ptr err) GENDT_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (err && !error) error = std::move(err);
    if (--pending == 0) done_cv.notify_all();
  }
  void wait() GENDT_EXCLUDES(mu) {
    MutexLock lock(mu);
    done_cv.wait(lock, mu, [this]() GENDT_REQUIRES(mu) { return pending == 0; });
    if (error) std::rethrow_exception(error);
  }
};
}  // namespace

int Parallelism::resolved() const {
  if (threads == 1) return 1;
  if (threads > 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  MutexLock lock(mu_);
  add_workers_locked(std::max(1, threads));
}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock, then join without it: the
  // workers themselves need mu_ to observe stop_ and drain the queue.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : workers) w.join();
}

int ThreadPool::size() const {
  MutexLock lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::add_workers_locked(int count) {
  workers_.reserve(workers_.size() + static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(lock, mu_, [this]() GENDT_REQUIRES(mu_) { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A raw submit() task has no fork-join state to hand its exception to;
    // letting it escape here would std::terminate the whole process. Contain
    // it and count it — fork-join chunks catch their own exceptions before
    // this layer and rethrow them on the submitting thread.
    try {
      task();
    } catch (...) {
      g_dropped_task_exceptions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

uint64_t ThreadPool::dropped_task_exceptions() {
  return g_dropped_task_exceptions.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(long begin, long end, int max_chunks,
                              const std::function<void(long, long)>& body,
                              const CancelToken* cancel) {
  const long n = end - begin;
  if (n <= 0) return;
  // Chunk boundaries depend only on (n, max_chunks) — identical work units
  // at any pool size, which is what keeps index-seeded RNG schemes stable.
  const int chunks = static_cast<int>(std::min<long>(n, std::max(1, max_chunks)));
  if (chunks <= 1 || t_on_worker) {
    if (cancel != nullptr && cancel->cancelled()) return;
    body(begin, end);
    return;
  }

  auto state = std::make_shared<JoinState>();
  state->pending = chunks;
  const long base = n / chunks, extra = n % chunks;
  long lo = begin;
  for (int c = 0; c < chunks; ++c) {
    const long hi = lo + base + (c < extra ? 1 : 0);
    submit([state, &body, cancel, lo, hi] {
      std::exception_ptr err;
      if (cancel == nullptr || !cancel->cancelled()) {
        try {
          body(lo, hi);
        } catch (...) {
          err = std::current_exception();
        }
      }
      state->finish_one(std::move(err));
    });
    lo = hi;
  }
  state->wait();
}

void ThreadPool::run_tasks(int n, int max_concurrency, const std::function<void(int)>& body,
                           const CancelToken* cancel) {
  parallel_for(
      0, n, max_concurrency,
      [&body, cancel](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          if (cancel != nullptr && cancel->cancelled()) return;
          body(static_cast<int>(i));
        }
      },
      cancel);
}

ThreadPool& ThreadPool::shared() {
  // Magic static: thread-safe construction, joined cleanly at process exit
  // (keeps Leak/ThreadSanitizer runs quiet).
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : static_cast<int>(hw);
  }());
  return pool;
}

void ThreadPool::ensure_shared_workers(int threads) {
  ThreadPool& pool = shared();
  MutexLock lock(pool.mu_);
  const int missing = threads - static_cast<int>(pool.workers_.size());
  if (missing > 0) pool.add_workers_locked(missing);
}

void parallel_for(const Parallelism& par, long n, const std::function<void(long, long)>& body,
                  const CancelToken* cancel) {
  const int width = par.resolved();
  if (n <= 1 || width <= 1 || ThreadPool::on_worker_thread()) {
    if (cancel != nullptr && cancel->cancelled()) return;
    if (n > 0) body(0, n);
    return;
  }
  ThreadPool::ensure_shared_workers(width);
  ThreadPool::shared().parallel_for(0, n, width, body, cancel);
}

void parallel_tasks(const Parallelism& par, int n, const std::function<void(int)>& body,
                    const CancelToken* cancel) {
  parallel_for(
      par, n,
      [&body, cancel](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          if (cancel != nullptr && cancel->cancelled()) return;
          body(static_cast<int>(i));
        }
      },
      cancel);
}

uint64_t derive_stream_seed(uint64_t seed, uint64_t index) {
  // splitmix64 finalizer over seed + golden-ratio-spaced index.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace gendt::runtime
