// Cooperative cancellation and deadlines for long-running generation work.
//
// The pieces compose into the serving layer's time model:
//  * Clock — an injectable monotonic millisecond source. Production code uses
//    steady_clock() (the only wall-clock read in the tree, suppressed for the
//    determinism linter at its single definition); tests and the chaos
//    harness use ManualClock, whose time only moves when the test says so,
//    which is what makes deadline behavior bitwise-reproducible.
//  * CancelToken — a shared flag a submitter flips (cancel()) or a deadline
//    expires (arm_deadline()). Workers poll cancelled() at natural work
//    boundaries — ThreadPool chunk/task granularity, one generation window in
//    the GenDT rollout — so an abandoned request stops consuming CPU instead
//    of running to completion.
//  * CancelledError — thrown by check() so deep call stacks unwind to the
//    owner with the reason (explicit cancel vs. deadline) preserved.
//
// All token state is atomic: one thread may arm/cancel while pool workers
// poll concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace gendt::runtime {

/// Monotonic millisecond time source. Virtual so tests/serving can inject
/// manual time; implementations must be safe to read from several threads.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t now_ms() const = 0;
};

/// The process steady clock (the real time source for production serving).
const Clock& steady_clock();

/// A clock that only moves when told to — the time source for deterministic
/// deadline/chaos tests and for per-request virtual time in the serve layer.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(int64_t start_ms = 0) : t_ms_(start_ms) {}
  int64_t now_ms() const override { return t_ms_.load(std::memory_order_acquire); }
  void advance_ms(int64_t delta_ms) { t_ms_.fetch_add(delta_ms, std::memory_order_acq_rel); }
  void set_ms(int64_t t_ms) { t_ms_.store(t_ms, std::memory_order_release); }

 private:
  std::atomic<int64_t> t_ms_;
};

/// Shared cancellation handle. Cheap to poll (one relaxed load, plus a clock
/// read once a deadline is armed); copyable only by reference — the owner
/// keeps it alive for the duration of the work it governs.
class CancelToken {
 public:
  enum class Reason : uint8_t { kNone = 0, kCancelled = 1, kDeadline = 2 };

  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cooperative cancellation. Idempotent; an explicit cancel takes
  /// precedence over a later deadline expiry in reason().
  void cancel() { flag_.store(true, std::memory_order_release); }

  /// Arm an absolute deadline: the token reads as cancelled (Reason::kDeadline)
  /// once clock.now_ms() >= deadline_ms. May be re-armed; `clock` must outlive
  /// the token's last use.
  void arm_deadline(const Clock& clock, int64_t deadline_ms) {
    deadline_ms_.store(deadline_ms, std::memory_order_release);
    clock_.store(&clock, std::memory_order_release);
  }

  /// Chain this token below `parent`: it reads as cancelled whenever the
  /// parent does (the parent's reason wins over a local deadline). This is
  /// the signal-drain bridge's shape — each request keeps its own token (so
  /// the engine can arm per-request deadlines without cross-talk) while a
  /// single process-wide drain token fans out to all of them. `parent` must
  /// outlive the token's last use; nullptr detaches.
  void set_parent(const CancelToken* parent) {
    parent_.store(parent, std::memory_order_release);
  }

  bool cancelled() const { return reason() != Reason::kNone; }

  Reason reason() const {
    if (flag_.load(std::memory_order_acquire)) return Reason::kCancelled;
    const CancelToken* parent = parent_.load(std::memory_order_acquire);
    if (parent != nullptr) {
      const Reason pr = parent->reason();
      if (pr != Reason::kNone) return pr;
    }
    const Clock* clock = clock_.load(std::memory_order_acquire);
    if (clock != nullptr && clock->now_ms() >= deadline_ms_.load(std::memory_order_acquire))
      return Reason::kDeadline;
    return Reason::kNone;
  }

  /// Milliseconds until the armed deadline (kNoDeadline when none, 0 when
  /// already expired).
  int64_t remaining_ms() const {
    const Clock* clock = clock_.load(std::memory_order_acquire);
    if (clock == nullptr) return kNoDeadline;
    const int64_t left = deadline_ms_.load(std::memory_order_acquire) - clock->now_ms();
    return left > 0 ? left : 0;
  }

  /// Throws CancelledError when the token is cancelled/expired.
  void check() const;

 private:
  std::atomic<bool> flag_{false};
  std::atomic<const CancelToken*> parent_{nullptr};
  std::atomic<const Clock*> clock_{nullptr};
  std::atomic<int64_t> deadline_ms_{kNoDeadline};
};

/// Unwinds a cancelled computation back to its owner; `reason` distinguishes
/// an explicit cancel from a deadline expiry.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelToken::Reason reason)
      : std::runtime_error(reason == CancelToken::Reason::kDeadline ? "deadline exceeded"
                                                                    : "cancelled"),
        reason_(reason) {}
  CancelToken::Reason reason() const { return reason_; }

 private:
  CancelToken::Reason reason_;
};

inline void CancelToken::check() const {
  const Reason r = reason();
  if (r != Reason::kNone) throw CancelledError(r);
}

/// Convenience for optional tokens: no-op on nullptr.
inline void check_cancel(const CancelToken* token) {
  if (token != nullptr) token->check();
}

}  // namespace gendt::runtime
