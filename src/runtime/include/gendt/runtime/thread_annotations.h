// Clang thread-safety-analysis annotation macros (GUARDED_BY, REQUIRES,
// ACQUIRE/RELEASE, ...) in the Abseil style. Under Clang with
// -Wthread-safety the compiler statically proves that every access to an
// annotated field happens with the right capability (mutex) held; under other
// compilers the macros expand to nothing. The annotations only do real work
// on the gendt::runtime::Mutex wrapper (std::mutex itself is not a capability
// under libstdc++), so runtime code takes Mutex/MutexLock from mutex.h rather
// than the std types.
//
// The CMake toplevel turns the analysis on (as an error when GENDT_WERROR)
// whenever the compiler is Clang. On GCC-only boxes the contract is still
// enforced structurally: tools/gendt_lint.py's `rawmutex` pack forbids the
// raw std synchronization types outside runtime/mutex.h, so every lock in
// the tree is an annotated capability the moment a Clang build sees it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GENDT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENDT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Declares a type to be a capability (e.g. a mutex wrapper).
#define GENDT_CAPABILITY(x) GENDT_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime equals a region where the capability
// is held.
#define GENDT_SCOPED_CAPABILITY GENDT_THREAD_ANNOTATION(scoped_lockable)

// Field/variable may only be accessed while holding the given capability.
#define GENDT_GUARDED_BY(x) GENDT_THREAD_ANNOTATION(guarded_by(x))

// Pointee may only be accessed while holding the given capability.
#define GENDT_PT_GUARDED_BY(x) GENDT_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability to be held by the caller.
#define GENDT_REQUIRES(...) \
  GENDT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires the capability and holds it on return.
#define GENDT_ACQUIRE(...) \
  GENDT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the capability (held on entry, not on return).
#define GENDT_RELEASE(...) \
  GENDT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function acquires the capability if (and only if) it returns true.
#define GENDT_TRY_ACQUIRE(...) \
  GENDT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called with the capability held (deadlock guard).
#define GENDT_EXCLUDES(...) GENDT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function returns a reference to the capability guarding its result.
#define GENDT_RETURN_CAPABILITY(x) GENDT_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: body is intentionally exempt from the analysis. Every use
// must carry a comment justifying why it is race-free.
#define GENDT_NO_THREAD_SAFETY_ANALYSIS \
  GENDT_THREAD_ANNOTATION(no_thread_safety_analysis)
