// gendt::runtime — the process-wide compute runtime underneath the nn/core
// layers: a fixed-size worker pool with blocking fork-join helpers, plus the
// Parallelism knob that models/trainers thread through their configs.
//
// Design rules that the rest of the codebase relies on:
//  * Determinism is the caller's job and the pool makes it easy: parallel_for
//    splits an index range into contiguous chunks whose *work* is identical
//    at every thread count — only the executing thread changes. Callers that
//    need bitwise-stable results derive one RNG stream per index (never per
//    thread) and reduce results in index order.
//  * Nested parallelism never deadlocks: any fork-join helper invoked from a
//    pool worker runs inline (serially) on that worker.
//  * Exceptions thrown by a chunk are captured and rethrown on the calling
//    thread after the join (first one wins; the rest are dropped).
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "gendt/runtime/cancel.h"
#include "gendt/runtime/mutex.h"
#include "gendt/runtime/thread_annotations.h"

namespace gendt::runtime {

/// Degree-of-parallelism request, carried inside GenDTConfig / TrainConfig.
/// `threads == 1` means serial (never touches the pool), `0` means "auto"
/// (hardware concurrency), anything else is an explicit worker count.
struct Parallelism {
  int threads = 1;

  /// The effective worker count: >= 1 always.
  int resolved() const;
  bool serial() const { return resolved() <= 1; }
};

/// A fixed-size pool of worker threads draining one shared task queue.
/// Construction spawns the workers; destruction drains the queue and joins.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const GENDT_EXCLUDES(mu_);

  /// Enqueue one fire-and-forget task.
  void submit(std::function<void()> task) GENDT_EXCLUDES(mu_);

  /// Fork-join over [begin, end): the range is split into at most
  /// `max_chunks` contiguous chunks, each executed as body(lo, hi).
  /// Blocks until every chunk finished; rethrows the first chunk exception.
  /// Runs inline when the range is tiny, max_chunks <= 1, or the caller is
  /// itself a pool worker.
  ///
  /// With a non-null `cancel` token, chunks that have not started when the
  /// token trips are skipped (the join still completes normally); chunking is
  /// unchanged, so cancellation never perturbs the work units a non-cancelled
  /// run executes. The caller owns the policy: check the token after the join
  /// to distinguish "finished" from "stopped early".
  void parallel_for(long begin, long end, int max_chunks,
                    const std::function<void(long, long)>& body,
                    const CancelToken* cancel = nullptr);

  /// Convenience: n independent tasks body(0) .. body(n-1), at most
  /// `max_concurrency` in flight conceptually (chunked like parallel_for
  /// with grain 1). Blocks; rethrows the first exception. A tripped `cancel`
  /// token is checked before every task index, including on the inline path.
  void run_tasks(int n, int max_concurrency, const std::function<void(int)>& body,
                 const CancelToken* cancel = nullptr);

  /// True when the calling thread is one of *any* pool's workers.
  static bool on_worker_thread();

  /// Count of exceptions that escaped fire-and-forget submit() tasks. Such
  /// tasks have no join to rethrow at, so the worker loop contains them
  /// (instead of letting them std::terminate the process) and counts them
  /// here. Fork-join helpers never hit this path — their chunk exceptions are
  /// captured and rethrown on the submitting thread.
  static uint64_t dropped_task_exceptions();

  /// The process-wide pool, created on first use. Its size defaults to the
  /// hardware concurrency and grows (never shrinks) to satisfy the largest
  /// `ensure_workers` request, so explicit Parallelism{N} requests get real
  /// threads even on small machines.
  static ThreadPool& shared();
  /// Grow the shared pool to at least `threads` workers.
  static void ensure_shared_workers(int threads);

 private:
  void worker_loop();
  void add_workers_locked(int count) GENDT_REQUIRES(mu_);

  // mu_ guards all pool state. Workers are only ever spawned under mu_ and
  // only joined in the destructor, after stop_ handed them their exit signal.
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GENDT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ GENDT_GUARDED_BY(mu_);
  bool stop_ GENDT_GUARDED_BY(mu_) = false;
};

/// Fork-join helper: split [0, n) across the shared pool honoring `par`.
/// Serial (inline, pool untouched) when par.serial(), n <= 1, or when called
/// from a pool worker. Deterministic chunking: chunk boundaries depend only
/// on n and par.resolved(), never on the pool size. A tripped `cancel` token
/// skips chunks that have not started yet (see ThreadPool::parallel_for).
void parallel_for(const Parallelism& par, long n, const std::function<void(long, long)>& body,
                  const CancelToken* cancel = nullptr);

/// Run n independent index tasks body(0..n-1) with up to par.resolved()
/// in flight. Same serial/nesting rules as parallel_for; a tripped `cancel`
/// token is checked before every task index.
void parallel_tasks(const Parallelism& par, int n, const std::function<void(int)>& body,
                    const CancelToken* cancel = nullptr);

/// Derive an independent, reproducible RNG stream for sub-task `index` of a
/// computation seeded with `seed` (splitmix64 finalizer — avalanches even
/// when seeds/indices differ by one bit).
uint64_t derive_stream_seed(uint64_t seed, uint64_t index);

}  // namespace gendt::runtime
