// Annotated mutex wrappers: thin shims over std::mutex /
// std::condition_variable that carry the Clang thread-safety capability
// attributes from thread_annotations.h. libstdc++'s std::mutex is not a
// capability type, so GUARDED_BY(std_mutex_member) would be vacuous; wrapping
// it gives the analysis something to reason about at zero runtime cost (all
// calls inline to the std operation).
//
// This header is the ONE file allowed to name the std synchronization types:
// tools/gendt_lint.py's `rawmutex` pack flags std::mutex / std::lock_guard /
// std::condition_variable (and friends) everywhere else in src/, so locking
// added anywhere in the tree is forced through these wrappers and stays
// inside -Wthread-safety's view.
#pragma once

#include <condition_variable>
#include <mutex>

#include "gendt/runtime/thread_annotations.h"

namespace gendt::runtime {

/// A std::mutex declared as a thread-safety capability.
class GENDT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GENDT_ACQUIRE() { mu_.lock(); }
  void unlock() GENDT_RELEASE() { mu_.unlock(); }
  bool try_lock() GENDT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable via
  /// MutexLock::native(). Guarded accesses must still go through the
  /// annotated lock()/unlock() paths.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex (scoped capability). Holds the lock for its whole
/// lifetime; native() exposes the underlying unique_lock so a
/// std::condition_variable can wait on it (the capability is considered held
/// across the wait, which matches the guarantee that wait() returns with the
/// lock reacquired — the same contract as absl::CondVar::Wait).
class GENDT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GENDT_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() GENDT_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to the annotated Mutex. wait() requires the
/// caller to hold `mu` (passed both as the lock object and, statically, as
/// the capability) so predicates reading guarded state analyze cleanly.
class CondVar {
 public:
  template <typename Pred>
  void wait(MutexLock& lock, Mutex& mu, Pred pred) GENDT_REQUIRES(mu) {
    (void)mu;
    cv_.wait(lock.native(), pred);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gendt::runtime
