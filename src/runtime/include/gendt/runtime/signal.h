// Signal-to-CancelToken bridge: graceful drain on SIGINT/SIGTERM.
//
// A process that serves work (batch `gendt serve`, the streaming daemon)
// must not die mid-request on Ctrl-C: it should stop admitting, finish or
// deadline-cancel what is in flight, publish final stats, and exit. The
// only thing a signal handler can safely do towards that is flip an atomic
// flag — which is exactly what CancelToken::cancel() is — so the bridge is:
//
//   SignalDrain::install();                       // once, at startup
//   per_request_token.set_parent(&SignalDrain::token());
//
// Every request keeps its own token (deadlines arm per request, no
// cross-talk); the process-wide drain token fans out through set_parent.
// Handlers are installed WITHOUT SA_RESTART, so a signal makes blocking
// poll/read/accept calls return EINTR — the net layer's wrappers surface
// that as a timeout tick, and every serve loop re-checks its token at the
// top of the tick. No self-pipe needed.
#pragma once

#include "gendt/runtime/cancel.h"

namespace gendt::runtime {

class SignalDrain {
 public:
  /// Install SIGINT + SIGTERM handlers that cancel token(). Idempotent;
  /// returns false if a handler could not be installed.
  static bool install();

  /// The process-wide drain token. Valid (and quiescent) before install();
  /// parent per-request tokens to it with CancelToken::set_parent.
  static const CancelToken& token();

  /// Trip the drain token as if a signal had arrived — the hook tests and
  /// in-process drains use instead of raise().
  static void trigger();

  /// True once a drain signal (or trigger()) has been observed.
  static bool draining();
};

}  // namespace gendt::runtime
