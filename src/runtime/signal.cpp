#include "gendt/runtime/signal.h"

#include <csignal>

namespace gendt::runtime {

namespace {

// The drain token is a function-local static so it is constructed before
// first use regardless of translation-unit init order; CancelToken is all
// atomics, so cancel() from a signal handler is async-signal-safe
// (lock-free atomic store, no allocation, no locks).
CancelToken& drain_token() {
  static CancelToken token;
  return token;
}

std::sig_atomic_t g_installed = 0;

extern "C" void gendt_drain_handler(int /*signum*/) { drain_token().cancel(); }

}  // namespace

bool SignalDrain::install() {
  if (g_installed != 0) return true;
  struct sigaction sa = {};
  sa.sa_handler = &gendt_drain_handler;
  sigemptyset(&sa.sa_mask);
  // Deliberately no SA_RESTART: blocking poll/accept/read must come back
  // with EINTR so serve loops reach their token check promptly.
  sa.sa_flags = 0;
  if (sigaction(SIGINT, &sa, nullptr) != 0) return false;
  if (sigaction(SIGTERM, &sa, nullptr) != 0) return false;
  g_installed = 1;
  return true;
}

const CancelToken& SignalDrain::token() { return drain_token(); }

void SignalDrain::trigger() { drain_token().cancel(); }

bool SignalDrain::draining() { return drain_token().cancelled(); }

}  // namespace gendt::runtime
