// CSV import/export for the library's data types. This is how a user brings
// real drive-test measurements, cell tables (e.g. CellMapper exports) and
// trajectories into GenDT, and how generated series leave it.
//
// Formats (header row required, columns in this order):
//   trajectory:  t,lat,lon
//   record:      t,lat,lon,serving_cell,rsrp_dbm,rsrq_db,sinr_db,cqi,
//                throughput_mbps,per
//   cells:       id,lat,lon,p_max_dbm,azimuth_deg,beamwidth_deg,n_rb,earfcn
//   series:      t,<channel-name>...   (one column per KPI channel)
//
// Parsers are strict: any malformed row fails the whole load (returning
// std::nullopt) with the offending line number recoverable via last_error().
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gendt/core/generator.h"
#include "gendt/sim/drive_test.h"

namespace gendt::io {

/// Human-readable description of the last parse failure on this thread.
const std::string& last_error();

/// Maximum accepted length of one CSV line, in bytes (newline excluded).
/// A longer line fails the whole load with a structured error — a binary or
/// truncated file should fail fast at the offending line, not feed megabytes
/// of garbage into the field splitter. Thread-local, like last_error();
/// default 1 MiB. set_max_line_bytes returns the previous limit (0 clamps
/// to 1 so the limit can never be disabled by accident).
size_t max_line_bytes();
size_t set_max_line_bytes(size_t bytes);

// ---- Trajectories ----------------------------------------------------------
bool write_trajectory_csv(const geo::Trajectory& trajectory, const std::string& path);
std::optional<geo::Trajectory> read_trajectory_csv(const std::string& path);

// ---- Drive-test records ----------------------------------------------------
bool write_record_csv(const sim::DriveTestRecord& record, const std::string& path);
std::optional<sim::DriveTestRecord> read_record_csv(const std::string& path);

// ---- Cell tables -----------------------------------------------------------
bool write_cells_csv(const radio::CellTable& cells, const std::string& path);
/// `projection_origin` anchors the local ENU frame of the loaded table.
std::optional<radio::CellTable> read_cells_csv(const std::string& path,
                                               geo::LatLon projection_origin);

// ---- Generated series ------------------------------------------------------
/// Writes t plus one column per channel; `t0`/`period_s` synthesize the time
/// column when the series came from generation windows.
bool write_series_csv(const core::GeneratedSeries& series,
                      const std::vector<std::string>& channel_names, const std::string& path,
                      double t0 = 0.0, double period_s = 1.0);
std::optional<core::GeneratedSeries> read_series_csv(const std::string& path);

}  // namespace gendt::io
