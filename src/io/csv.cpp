#include "gendt/io/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace gendt::io {

namespace {
thread_local std::string g_last_error;
thread_local size_t g_max_line_bytes = 1u << 20;

void set_error(const std::string& path, int line, const std::string& what) {
  g_last_error = path + ":" + std::to_string(line) + ": " + what;
}

// Structured column-count check, separate from per-field parse failures: a
// row with the wrong shape usually means a truncated write or the wrong file
// kind, and the error should say what was found vs. expected.
bool check_columns(const std::string& path, int line, size_t got, size_t want) {
  if (got == want) return true;
  set_error(path, line, "column count mismatch (got " + std::to_string(got) + ", expected " +
                            std::to_string(want) + ")");
  return false;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

bool parse_double(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  // from_chars happily accepts "nan"/"inf"/"infinity", but a non-finite value
  // in a numeric column is corrupt input that would poison every downstream
  // statistic — treat it as a parse error at the offending line instead.
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

bool parse_int(const std::string& s, long& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

// Narrowing guard: the record/cell schemas store several fields as int32/int.
// A long that does not fit makes the static_cast below implementation-defined,
// so out-of-range values are malformed input, not silent wraparound.
template <typename Target>
bool fits(long v) {
  return v >= static_cast<long>(std::numeric_limits<Target>::min()) &&
         v <= static_cast<long>(std::numeric_limits<Target>::max());
}

// Reads all non-empty lines; returns false (with error set) on I/O failure
// or on a line longer than max_line_bytes().
bool read_lines(const std::string& path, std::vector<std::string>& lines) {
  std::ifstream is(path);
  if (!is) {
    set_error(path, 0, "cannot open file");
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
    if (line.size() > g_max_line_bytes) {
      set_error(path, lineno,
                "line of " + std::to_string(line.size()) + " bytes exceeds the " +
                    std::to_string(g_max_line_bytes) + "-byte limit");
      return false;
    }
    if (!line.empty()) lines.push_back(line);
  }
  return true;
}
}  // namespace

const std::string& last_error() { return g_last_error; }

size_t max_line_bytes() { return g_max_line_bytes; }

size_t set_max_line_bytes(size_t bytes) {
  const size_t prev = g_max_line_bytes;
  g_max_line_bytes = bytes == 0 ? 1 : bytes;
  return prev;
}

// ---- Trajectories ----------------------------------------------------------

bool write_trajectory_csv(const geo::Trajectory& trajectory, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "t,lat,lon\n";
  os.precision(10);
  for (const auto& p : trajectory.points())
    os << p.t << ',' << p.pos.lat << ',' << p.pos.lon << '\n';
  return static_cast<bool>(os);
}

std::optional<geo::Trajectory> read_trajectory_csv(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, lines)) return std::nullopt;
  if (lines.empty() || split_csv(lines[0]).size() != 3) {
    set_error(path, 1, "expected header 't,lat,lon'");
    return std::nullopt;
  }
  geo::Trajectory out;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto f = split_csv(lines[i]);
    if (!check_columns(path, static_cast<int>(i + 1), f.size(), 3)) return std::nullopt;
    double t, lat, lon;
    if (!parse_double(f[0], t) || !parse_double(f[1], lat) || !parse_double(f[2], lon)) {
      set_error(path, static_cast<int>(i + 1), "malformed trajectory row");
      return std::nullopt;
    }
    if (!out.empty() && t <= out.back().t) {
      set_error(path, static_cast<int>(i + 1), "timestamps must be strictly increasing");
      return std::nullopt;
    }
    out.push_back({t, {lat, lon}});
  }
  return out;
}

// ---- Drive-test records ----------------------------------------------------

bool write_record_csv(const sim::DriveTestRecord& record, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "t,lat,lon,serving_cell,rsrp_dbm,rsrq_db,sinr_db,cqi,throughput_mbps,per\n";
  os.precision(10);
  for (const auto& m : record.samples) {
    os << m.t << ',' << m.pos.lat << ',' << m.pos.lon << ',' << m.serving_cell << ','
       << m.rsrp_dbm << ',' << m.rsrq_db << ',' << m.sinr_db << ',' << m.cqi << ','
       << m.throughput_mbps << ',' << m.per << '\n';
  }
  return static_cast<bool>(os);
}

std::optional<sim::DriveTestRecord> read_record_csv(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, lines)) return std::nullopt;
  if (lines.empty() || split_csv(lines[0]).size() != 10) {
    set_error(path, 1, "expected 10-column record header");
    return std::nullopt;
  }
  sim::DriveTestRecord rec;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto f = split_csv(lines[i]);
    if (!check_columns(path, static_cast<int>(i + 1), f.size(), 10)) return std::nullopt;
    sim::Measurement m;
    long serving, cqi;
    if (!parse_double(f[0], m.t) || !parse_double(f[1], m.pos.lat) ||
        !parse_double(f[2], m.pos.lon) || !parse_int(f[3], serving) ||
        !parse_double(f[4], m.rsrp_dbm) || !parse_double(f[5], m.rsrq_db) ||
        !parse_double(f[6], m.sinr_db) || !parse_int(f[7], cqi) ||
        !parse_double(f[8], m.throughput_mbps) || !parse_double(f[9], m.per)) {
      set_error(path, static_cast<int>(i + 1), "malformed record row");
      return std::nullopt;
    }
    if (!fits<radio::CellId>(serving) || !fits<int>(cqi)) {
      set_error(path, static_cast<int>(i + 1), "integer field out of range");
      return std::nullopt;
    }
    m.serving_cell = static_cast<radio::CellId>(serving);
    m.cqi = static_cast<int>(cqi);
    rec.samples.push_back(m);
    rec.trajectory.push_back({m.t, m.pos});
  }
  return rec;
}

// ---- Cell tables -----------------------------------------------------------

bool write_cells_csv(const radio::CellTable& cells, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "id,lat,lon,p_max_dbm,azimuth_deg,beamwidth_deg,n_rb,earfcn\n";
  os.precision(10);
  for (const auto& c : cells.cells()) {
    os << c.id << ',' << c.site.lat << ',' << c.site.lon << ',' << c.p_max_dbm << ','
       << c.azimuth_deg << ',' << c.beamwidth_deg << ',' << c.n_rb << ',' << c.earfcn << '\n';
  }
  return static_cast<bool>(os);
}

std::optional<radio::CellTable> read_cells_csv(const std::string& path,
                                               geo::LatLon projection_origin) {
  std::vector<std::string> lines;
  if (!read_lines(path, lines)) return std::nullopt;
  if (lines.empty() || split_csv(lines[0]).size() != 8) {
    set_error(path, 1, "expected 8-column cell header");
    return std::nullopt;
  }
  std::vector<radio::Cell> cells;
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto f = split_csv(lines[i]);
    if (!check_columns(path, static_cast<int>(i + 1), f.size(), 8)) return std::nullopt;
    radio::Cell c;
    long id, n_rb, earfcn;
    if (!parse_int(f[0], id) || !parse_double(f[1], c.site.lat) ||
        !parse_double(f[2], c.site.lon) || !parse_double(f[3], c.p_max_dbm) ||
        !parse_double(f[4], c.azimuth_deg) || !parse_double(f[5], c.beamwidth_deg) ||
        !parse_int(f[6], n_rb) || !parse_int(f[7], earfcn)) {
      set_error(path, static_cast<int>(i + 1), "malformed cell row");
      return std::nullopt;
    }
    if (!fits<radio::CellId>(id) || !fits<int>(n_rb) || !fits<int>(earfcn)) {
      set_error(path, static_cast<int>(i + 1), "integer field out of range");
      return std::nullopt;
    }
    c.id = static_cast<radio::CellId>(id);
    c.n_rb = static_cast<int>(n_rb);
    c.earfcn = static_cast<int>(earfcn);
    cells.push_back(c);
  }
  return radio::CellTable(std::move(cells), projection_origin);
}

// ---- Generated series ------------------------------------------------------

bool write_series_csv(const core::GeneratedSeries& series,
                      const std::vector<std::string>& channel_names, const std::string& path,
                      double t0, double period_s) {
  if (channel_names.size() != series.channels.size()) return false;
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "t";
  for (const auto& n : channel_names) os << ',' << n;
  os << '\n';
  os.precision(10);
  for (size_t i = 0; i < series.length(); ++i) {
    os << (t0 + static_cast<double>(i) * period_s);
    for (const auto& ch : series.channels) os << ',' << ch[i];
    os << '\n';
  }
  return static_cast<bool>(os);
}

std::optional<core::GeneratedSeries> read_series_csv(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, lines)) return std::nullopt;
  if (lines.empty()) {
    set_error(path, 1, "empty series file");
    return std::nullopt;
  }
  const size_t cols = split_csv(lines[0]).size();
  if (cols < 2) {
    set_error(path, 1, "expected t plus at least one channel column");
    return std::nullopt;
  }
  core::GeneratedSeries out;
  out.channels.assign(cols - 1, {});
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto f = split_csv(lines[i]);
    if (!check_columns(path, static_cast<int>(i + 1), f.size(), cols)) return std::nullopt;
    for (size_t c = 1; c < cols; ++c) {
      double v;
      if (!parse_double(f[c], v)) {
        set_error(path, static_cast<int>(i + 1), "malformed numeric field");
        return std::nullopt;
      }
      out.channels[c - 1].push_back(v);
    }
  }
  return out;
}

}  // namespace gendt::io
