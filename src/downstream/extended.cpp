#include "gendt/downstream/extended.h"

#include <algorithm>
#include <cmath>

#include "gendt/nn/optim.h"

namespace gendt::downstream {

using nn::Mat;
using nn::Tensor;

namespace {
void fit_mean_std(const std::vector<double>& v, double& mean, double& stdev) {
  if (v.empty()) return;
  double s = 0.0, s2 = 0.0;
  for (double x : v) {
    s += x;
    s2 += x * x;
  }
  mean = s / static_cast<double>(v.size());
  stdev = std::sqrt(std::max(1e-9, s2 / static_cast<double>(v.size()) - mean * mean));
}

// Shared mini-batch MSE training loop for the small regressors here.
void train_regressor(nn::Mlp& net, std::vector<std::pair<Mat, Mat>>& examples, int epochs,
                     double lr, uint64_t seed) {
  std::mt19937_64 rng(seed);
  nn::Adam opt({.lr = lr, .clip_norm = 5.0});
  const auto params = net.params();
  std::shuffle(examples.begin(), examples.end(), rng);
  if (examples.size() > 4000) examples.resize(4000);
  const int batch = 32;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::shuffle(examples.begin(), examples.end(), rng);
    for (size_t start = 0; start < examples.size(); start += static_cast<size_t>(batch)) {
      const size_t end = std::min(examples.size(), start + static_cast<size_t>(batch));
      for (const auto& p : params) p.tensor.zero_grad();
      for (size_t i = start; i < end; ++i) {
        Tensor loss = nn::mse_loss(net.forward(Tensor::constant(examples[i].first), rng, true),
                                   Tensor::constant(examples[i].second));
        loss = loss * (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      opt.step(params);
    }
  }
}
}  // namespace

// ---- CellLoadEstimator -----------------------------------------------------

CellLoadEstimator::CellLoadEstimator(Config cfg) : cfg_(cfg) {
  std::mt19937_64 rng(cfg_.seed);
  net_ = nn::Mlp({.layer_sizes = {2, cfg_.hidden, cfg_.hidden, 1}}, rng, "cell_load");
}

void CellLoadEstimator::fit(const std::vector<sim::DriveTestRecord>& records) {
  std::vector<double> rsrq, sinr;
  for (const auto& rec : records) {
    for (const auto& m : rec.samples) {
      rsrq.push_back(m.rsrq_db);
      sinr.push_back(m.sinr_db);
    }
  }
  fit_mean_std(rsrq, rsrq_mean_, rsrq_std_);
  fit_mean_std(sinr, sinr_mean_, sinr_std_);

  std::vector<std::pair<Mat, Mat>> examples;
  for (const auto& rec : records) {
    for (const auto& m : rec.samples) {
      Mat x(1, 2);
      x(0, 0) = (m.rsrq_db - rsrq_mean_) / rsrq_std_;
      x(0, 1) = (m.sinr_db - sinr_mean_) / sinr_std_;
      Mat y(1, 1);
      y(0, 0) = m.serving_load;
      examples.emplace_back(std::move(x), std::move(y));
    }
  }
  train_regressor(net_, examples, cfg_.epochs, cfg_.lr, cfg_.seed + 1);
}

std::vector<double> CellLoadEstimator::estimate(const std::vector<double>& rsrq_db,
                                                const std::vector<double>& sinr_db) const {
  assert(rsrq_db.size() == sinr_db.size());
  std::vector<double> out;
  out.reserve(rsrq_db.size());
  std::mt19937_64 rng(0);
  for (size_t i = 0; i < rsrq_db.size(); ++i) {
    Mat x(1, 2);
    x(0, 0) = (rsrq_db[i] - rsrq_mean_) / rsrq_std_;
    x(0, 1) = (sinr_db[i] - sinr_mean_) / sinr_std_;
    const Tensor y = net_.forward(Tensor::constant(std::move(x)), rng, false);
    out.push_back(std::clamp(y.value()(0, 0), 0.0, 1.0));
  }
  return out;
}

// ---- LinkBandwidthPredictor ------------------------------------------------

LinkBandwidthPredictor::LinkBandwidthPredictor(Config cfg) : cfg_(cfg) {
  std::mt19937_64 rng(cfg_.seed);
  net_ = nn::Mlp({.layer_sizes = {5, cfg_.hidden, cfg_.hidden, 1}}, rng, "link_bw");
}

LinkBandwidthPredictor::Features LinkBandwidthPredictor::features_from_record(
    const sim::DriveTestRecord& rec) {
  Features f;
  for (size_t i = 0; i < rec.samples.size(); ++i) {
    const auto& m = rec.samples[i];
    f.rsrp_dbm.push_back(m.rsrp_dbm);
    f.rsrq_db.push_back(m.rsrq_db);
    f.cqi.push_back(static_cast<double>(m.cqi));
    f.handover.push_back(
        i > 0 && rec.samples[i].serving_cell != rec.samples[i - 1].serving_cell ? 1.0 : 0.0);
    f.bler.push_back(m.per);
  }
  return f;
}

nn::Mat LinkBandwidthPredictor::input_row(const Features& f, size_t i) const {
  Mat x(1, 5);
  x(0, 0) = (f.rsrp_dbm[i] + 90.0) / 10.0;
  x(0, 1) = (f.rsrq_db[i] + 12.0) / 3.0;
  x(0, 2) = (f.cqi[i] - 8.0) / 4.0;
  x(0, 3) = f.handover[i];
  x(0, 4) = f.bler[i] * 5.0;
  return x;
}

void LinkBandwidthPredictor::fit(const std::vector<sim::DriveTestRecord>& records) {
  std::vector<double> tput;
  for (const auto& rec : records)
    for (const auto& m : rec.samples) tput.push_back(m.throughput_mbps);
  fit_mean_std(tput, tput_mean_, tput_std_);

  std::vector<std::pair<Mat, Mat>> examples;
  for (const auto& rec : records) {
    const Features f = features_from_record(rec);
    for (size_t i = 0; i < f.rsrp_dbm.size(); ++i) {
      Mat y(1, 1);
      y(0, 0) = (rec.samples[i].throughput_mbps - tput_mean_) / tput_std_;
      examples.emplace_back(input_row(f, i), std::move(y));
    }
  }
  train_regressor(net_, examples, cfg_.epochs, cfg_.lr, cfg_.seed + 1);
}

std::vector<double> LinkBandwidthPredictor::predict(const Features& f) const {
  std::vector<double> out;
  out.reserve(f.rsrp_dbm.size());
  std::mt19937_64 rng(0);
  for (size_t i = 0; i < f.rsrp_dbm.size(); ++i) {
    const Tensor y = net_.forward(Tensor::constant(input_row(f, i)), rng, false);
    out.push_back(std::max(0.0, y.value()(0, 0) * tput_std_ + tput_mean_));
  }
  return out;
}

}  // namespace gendt::downstream
