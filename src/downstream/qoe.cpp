#include "gendt/downstream/qoe.h"

#include <algorithm>
#include <cmath>

#include "gendt/nn/optim.h"

namespace gendt::downstream {

using nn::Mat;
using nn::Tensor;

QoePredictor::QoePredictor(Config cfg, geo::LatLon region_origin)
    : cfg_(cfg), proj_(region_origin) {
  std::mt19937_64 rng(cfg_.seed);
  const int in = cfg_.use_radio_kpis ? 4 : 2;  // [rsrp, rsrq,] east, north
  net_ = nn::Mlp({.layer_sizes = {in, cfg_.hidden, cfg_.hidden, 2}}, rng, "qoe");
}

Mat QoePredictor::input_row(double rsrp, double rsrq, const geo::LatLon& pos) const {
  const geo::Enu e = proj_.to_enu(pos);
  Mat x(1, cfg_.use_radio_kpis ? 4 : 2);
  int col = 0;
  if (cfg_.use_radio_kpis) {
    x(0, col++) = (rsrp - rsrp_mean_) / rsrp_std_;
    x(0, col++) = (rsrq - rsrq_mean_) / rsrq_std_;
  }
  x(0, col++) = e.east / pos_scale_m_;
  x(0, col++) = e.north / pos_scale_m_;
  return x;
}

void QoePredictor::fit(const std::vector<sim::DriveTestRecord>& records) {
  // Fit normalization stats.
  double sr = 0, sr2 = 0, sq = 0, sq2 = 0, st = 0, st2 = 0, sp = 0, sp2 = 0;
  long n = 0;
  for (const auto& rec : records) {
    for (const auto& m : rec.samples) {
      sr += m.rsrp_dbm; sr2 += m.rsrp_dbm * m.rsrp_dbm;
      sq += m.rsrq_db;  sq2 += m.rsrq_db * m.rsrq_db;
      st += m.throughput_mbps; st2 += m.throughput_mbps * m.throughput_mbps;
      sp += m.per; sp2 += m.per * m.per;
      ++n;
    }
  }
  if (n > 1) {
    auto finish = [n](double s, double s2, double& mean, double& stdev) {
      mean = s / static_cast<double>(n);
      stdev = std::sqrt(std::max(1e-9, s2 / static_cast<double>(n) - mean * mean));
    };
    finish(sr, sr2, rsrp_mean_, rsrp_std_);
    finish(sq, sq2, rsrq_mean_, rsrq_std_);
    finish(st, st2, tput_mean_, tput_std_);
    finish(sp, sp2, per_mean_, per_std_);
  }

  std::mt19937_64 rng(cfg_.seed + 1);
  nn::Adam opt({.lr = cfg_.lr, .clip_norm = 5.0});
  const auto params = net_.params();

  struct Example {
    Mat x;
    Mat y;
  };
  std::vector<Example> examples;
  for (const auto& rec : records) {
    for (const auto& m : rec.samples) {
      Mat y(1, 2);
      y(0, 0) = (m.throughput_mbps - tput_mean_) / tput_std_;
      y(0, 1) = (m.per - per_mean_) / per_std_;
      examples.push_back({input_row(m.rsrp_dbm, m.rsrq_db, m.pos), std::move(y)});
    }
  }
  std::shuffle(examples.begin(), examples.end(), rng);
  const size_t cap = 4000;
  if (examples.size() > cap) examples.resize(cap);

  const int batch = 32;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(examples.begin(), examples.end(), rng);
    for (size_t start = 0; start < examples.size(); start += static_cast<size_t>(batch)) {
      const size_t end = std::min(examples.size(), start + static_cast<size_t>(batch));
      for (const auto& p : params) p.tensor.zero_grad();
      for (size_t i = start; i < end; ++i) {
        Tensor pred = net_.forward(Tensor::constant(examples[i].x), rng, true);
        Tensor loss = nn::mse_loss(pred, Tensor::constant(examples[i].y));
        loss = loss * (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      opt.step(params);
    }
  }
}

QoePrediction QoePredictor::predict(const QoeFeatures& f) const {
  assert(f.rsrp.size() == f.rsrq.size() && f.rsrp.size() == f.pos.size());
  QoePrediction out;
  out.throughput_mbps.reserve(f.rsrp.size());
  out.per.reserve(f.rsrp.size());
  std::mt19937_64 rng(0);  // eval mode: dropout off, rng unused
  for (size_t i = 0; i < f.rsrp.size(); ++i) {
    Tensor y = net_.forward(Tensor::constant(input_row(f.rsrp[i], f.rsrq[i], f.pos[i])), rng,
                            /*training=*/false);
    out.throughput_mbps.push_back(std::max(0.0, y.value()(0, 0) * tput_std_ + tput_mean_));
    out.per.push_back(std::clamp(y.value()(0, 1) * per_std_ + per_mean_, 0.0, 1.0));
  }
  return out;
}

QoeFeatures QoePredictor::features_from_record(const sim::DriveTestRecord& rec) {
  QoeFeatures f;
  for (const auto& m : rec.samples) {
    f.rsrp.push_back(m.rsrp_dbm);
    f.rsrq.push_back(m.rsrq_db);
    f.pos.push_back(m.pos);
  }
  return f;
}

}  // namespace gendt::downstream
