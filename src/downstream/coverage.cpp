#include "gendt/downstream/coverage.h"

#include <algorithm>
#include <cmath>

namespace gendt::downstream {

double CoverageMap::covered_fraction(double threshold_dbm) const {
  if (cells.empty()) return 0.0;
  int covered = 0;
  for (const auto& c : cells)
    if (c.mean_rsrp_dbm >= threshold_dbm) ++covered;
  return static_cast<double>(covered) / static_cast<double>(cells.size());
}

const CoverageCell* CoverageMap::weakest() const {
  const CoverageCell* best = nullptr;
  for (const auto& c : cells) {
    if (best == nullptr || c.mean_rsrp_dbm < best->mean_rsrp_dbm) best = &c;
  }
  return best;
}

namespace {
// A small zig-zag probe trajectory centred on `center`, long enough to fill
// one generation window at 1 s sampling.
geo::Trajectory probe_trajectory(const geo::LocalProjection& proj, const geo::Enu& center,
                                 double duration_s, double speed_mps, uint64_t salt) {
  geo::Trajectory out;
  double heading = static_cast<double>(salt % 360) * M_PI / 180.0;
  geo::Enu pos = center;
  for (double t = 0.0; t <= duration_s; t += 1.0) {
    out.push_back({t, proj.to_latlon(pos)});
    heading += 0.15;  // gentle curl keeps the probe near the cell centre
    pos.east += std::sin(heading) * speed_mps;
    pos.north += std::cos(heading) * speed_mps;
  }
  return out;
}
}  // namespace

CoverageMap map_coverage(const core::TimeSeriesGenerator& generator,
                         const context::ContextBuilder& builder,
                         const geo::LocalProjection& projection, geo::Enu min_corner,
                         geo::Enu max_corner, const CoverageConfig& cfg) {
  CoverageMap map;
  map.cell_m = cfg.cell_m;
  uint64_t salt = cfg.seed;
  for (double north = min_corner.north + cfg.cell_m / 2; north <= max_corner.north;
       north += cfg.cell_m) {
    for (double east = min_corner.east + cfg.cell_m / 2; east <= max_corner.east;
         east += cfg.cell_m) {
      const geo::Enu center{east, north};
      std::vector<double> rsrp;
      for (int s = 0; s < cfg.samples_per_cell; ++s) {
        const geo::Trajectory probe = probe_trajectory(projection, center, cfg.probe_duration_s,
                                                       cfg.probe_speed_mps, ++salt);
        const auto windows = builder.generation_windows(probe);
        if (windows.empty()) continue;
        const core::GeneratedSeries series = generator.generate(windows, salt * 31);
        if (series.channels.empty()) continue;
        rsrp.insert(rsrp.end(), series.channels[0].begin(), series.channels[0].end());
      }
      CoverageCell cell;
      cell.center = center;
      cell.samples = static_cast<int>(rsrp.size());
      if (!rsrp.empty()) {
        double sum = 0.0;
        for (double v : rsrp) sum += v;
        cell.mean_rsrp_dbm = sum / static_cast<double>(rsrp.size());
        std::sort(rsrp.begin(), rsrp.end());
        cell.p10_rsrp_dbm = rsrp[rsrp.size() / 10];
      }
      map.cells.push_back(cell);
    }
  }
  return map;
}

}  // namespace gendt::downstream
