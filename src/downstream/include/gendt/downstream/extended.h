// Further use cases from the paper's Appendix C.2, made evaluable by the
// simulator's ground truth:
//
//   CellLoadEstimator      — infer the serving cell's downlink load from
//                            RSRQ + SINR (Chang & Wicaksono; Raida et al.):
//                            RSRQ drops as data REs fill while RSRP holds.
//   LinkBandwidthPredictor — infer achievable downlink bandwidth from the
//                            radio KPIs the paper lists (RSRP, RSRQ, CQI,
//                            handover indicator, BLER), after LinkForecast.
//
// Both are small MLP regressions trained on drive-test measurements; like
// the QoE use case, they can be fed GenDT-generated KPIs instead of real
// ones to run without a measurement campaign.
#pragma once

#include <vector>

#include "gendt/nn/layers.h"
#include "gendt/sim/drive_test.h"

namespace gendt::downstream {

class CellLoadEstimator {
 public:
  struct Config {
    int hidden = 24;
    int epochs = 30;
    double lr = 2e-3;
    uint64_t seed = 41;
  };
  explicit CellLoadEstimator(Config cfg);

  void fit(const std::vector<sim::DriveTestRecord>& records);

  /// Estimated load in [0,1] per sample, from RSRQ (dB) and SINR (dB).
  std::vector<double> estimate(const std::vector<double>& rsrq_db,
                               const std::vector<double>& sinr_db) const;

 private:
  Config cfg_;
  nn::Mlp net_;
  double rsrq_mean_ = -11.0, rsrq_std_ = 3.0;
  double sinr_mean_ = 8.0, sinr_std_ = 6.0;
};

class LinkBandwidthPredictor {
 public:
  struct Config {
    int hidden = 32;
    int epochs = 30;
    double lr = 2e-3;
    uint64_t seed = 43;
  };
  explicit LinkBandwidthPredictor(Config cfg);

  struct Features {
    std::vector<double> rsrp_dbm;
    std::vector<double> rsrq_db;
    std::vector<double> cqi;
    std::vector<double> handover;  // 1 at samples where the serving cell changed
    std::vector<double> bler;      // per-sample block error rate (PER proxy)
  };
  static Features features_from_record(const sim::DriveTestRecord& rec);

  void fit(const std::vector<sim::DriveTestRecord>& records);

  /// Predicted downlink bandwidth (Mbps) per sample.
  std::vector<double> predict(const Features& f) const;

 private:
  nn::Mat input_row(const Features& f, size_t i) const;
  Config cfg_;
  nn::Mlp net_;
  double tput_mean_ = 10.0, tput_std_ = 5.0;
};

}  // namespace gendt::downstream
