// Downstream use case 1 (§6.3.1): QoE prediction. An MLP regression model
// (after Sliwa & Wietfeld) maps radio KPIs + location features to
// application-layer throughput and packet error rate. It is trained on real
// drive-test measurements; at evaluation time the RSRP/RSRQ features can be
// real, GenDT-generated, baseline-generated — or dropped entirely (the
// paper's "RSRP & RSRQ Excluded" row).
#pragma once

#include <vector>

#include "gendt/nn/layers.h"
#include "gendt/sim/drive_test.h"

namespace gendt::downstream {

struct QoeFeatures {
  std::vector<double> rsrp;      // dBm (may be generated)
  std::vector<double> rsrq;      // dB (may be generated)
  std::vector<geo::LatLon> pos;  // device locations
};

struct QoePrediction {
  std::vector<double> throughput_mbps;
  std::vector<double> per;
};

class QoePredictor {
 public:
  struct Config {
    int hidden = 32;
    int epochs = 40;
    double lr = 2e-3;
    bool use_radio_kpis = true;  // false reproduces the "excluded" ablation
    uint64_t seed = 31;
  };

  QoePredictor(Config cfg, geo::LatLon region_origin);

  /// Train on real measurements (uses each sample's true RSRP/RSRQ and the
  /// measured throughput/PER as targets).
  void fit(const std::vector<sim::DriveTestRecord>& records);

  /// Predict QoE for the given features (sizes must agree).
  QoePrediction predict(const QoeFeatures& f) const;

  /// Convenience: features straight from a record's measurements.
  static QoeFeatures features_from_record(const sim::DriveTestRecord& rec);

 private:
  nn::Mat input_row(double rsrp, double rsrq, const geo::LatLon& pos) const;

  Config cfg_;
  geo::LocalProjection proj_;
  nn::Mlp net_;
  // Feature/target normalization fitted on training data.
  double rsrp_mean_ = -90.0, rsrp_std_ = 10.0;
  double rsrq_mean_ = -11.0, rsrq_std_ = 3.0;
  double tput_mean_ = 10.0, tput_std_ = 5.0;
  double per_mean_ = 0.05, per_std_ = 0.1;
  double pos_scale_m_ = 5000.0;
};

}  // namespace gendt::downstream
