// Downstream use case 2 (§6.3.2): handover analysis. GenDT (retrained with
// the serving-cell KPI channel) generates a numeric serving-cell series;
// change points in that series are handovers, and the inter-handover time
// distribution is compared against real drive-test data.
#pragma once

#include <span>
#include <vector>

namespace gendt::downstream {

/// Detect handovers in a *generated* (continuous-valued) serving-cell
/// series: a handover is a jump larger than `threshold` (in the series'
/// units). For real integer series any threshold in (0, 1) recovers exact
/// change points.
std::vector<double> detect_inter_handover_times(std::span<const double> serving_series,
                                                std::span<const double> t, double threshold);

/// Sliding median filter (odd window, edges shrink). Applied to generated
/// serving-cell series before change detection: a handover is a *sustained*
/// level change, so per-sample sampling noise must not trigger one.
std::vector<double> median_filter(std::span<const double> series, int window);

/// Summary of an inter-handover distribution comparison.
struct HandoverComparison {
  double hwd = 0.0;               // HWD between the two duration distributions
  double real_mean_s = 0.0;
  double generated_mean_s = 0.0;
  size_t real_count = 0;
  size_t generated_count = 0;
};

HandoverComparison compare_handover_distributions(std::span<const double> real_durations,
                                                  std::span<const double> generated_durations);

}  // namespace gendt::downstream
