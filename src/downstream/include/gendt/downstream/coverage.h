// Coverage mapping from generated data: the classic drive-test product
// (paper §2.1 relates GenDT to coverage-mapping work). A trained GenDT
// model is swept over a grid of short synthetic probe trajectories; the
// aggregated per-cell statistics form an RSRP coverage map without any
// field measurement.
#pragma once

#include <functional>
#include <vector>

#include "gendt/context/context.h"
#include "gendt/core/generator.h"

namespace gendt::downstream {

struct CoverageCell {
  geo::Enu center;
  double mean_rsrp_dbm = 0.0;
  double p10_rsrp_dbm = 0.0;  // 10th percentile: the "bad corner" statistic
  int samples = 0;
};

struct CoverageMap {
  double cell_m = 0.0;
  std::vector<CoverageCell> cells;  // row-major over the swept area

  /// Fraction of mapped cells whose mean RSRP is at or above `threshold`.
  double covered_fraction(double threshold_dbm) const;
  /// The weakest mapped cell (lowest mean RSRP); nullptr when empty.
  const CoverageCell* weakest() const;
};

struct CoverageConfig {
  double cell_m = 400.0;       // map resolution
  double probe_duration_s = 30.0;  // per-cell probe trajectory length
  double probe_speed_mps = 1.4;    // pedestrian-style probe
  int samples_per_cell = 1;        // stochastic generations to aggregate
  uint64_t seed = 71;
};

/// Sweep the rectangle [min, max] (ENU metres) with probe trajectories and
/// aggregate the given generator's RSRP channel (channel 0 by convention).
/// `builder` supplies context for the probes against the live world.
CoverageMap map_coverage(const core::TimeSeriesGenerator& generator,
                         const context::ContextBuilder& builder,
                         const geo::LocalProjection& projection, geo::Enu min_corner,
                         geo::Enu max_corner, const CoverageConfig& cfg = CoverageConfig{});

}  // namespace gendt::downstream
