#include "gendt/downstream/handover.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gendt/metrics/metrics.h"

namespace gendt::downstream {

std::vector<double> detect_inter_handover_times(std::span<const double> serving_series,
                                                std::span<const double> t, double threshold) {
  assert(serving_series.size() == t.size());
  std::vector<double> out;
  if (serving_series.empty()) return out;
  double last_change = t[0];
  for (size_t i = 1; i < serving_series.size(); ++i) {
    if (std::abs(serving_series[i] - serving_series[i - 1]) > threshold) {
      out.push_back(t[i] - last_change);
      last_change = t[i];
    }
  }
  return out;
}

std::vector<double> median_filter(std::span<const double> series, int window) {
  assert(window >= 1 && window % 2 == 1);
  std::vector<double> out(series.size());
  const int half = window / 2;
  std::vector<double> buf;
  for (size_t i = 0; i < series.size(); ++i) {
    const size_t lo = i >= static_cast<size_t>(half) ? i - static_cast<size_t>(half) : 0;
    const size_t hi = std::min(series.size(), i + static_cast<size_t>(half) + 1);
    buf.assign(series.begin() + static_cast<long>(lo), series.begin() + static_cast<long>(hi));
    std::nth_element(buf.begin(), buf.begin() + static_cast<long>(buf.size() / 2), buf.end());
    out[i] = buf[buf.size() / 2];
  }
  return out;
}

HandoverComparison compare_handover_distributions(std::span<const double> real_durations,
                                                  std::span<const double> generated_durations) {
  HandoverComparison cmp;
  cmp.real_count = real_durations.size();
  cmp.generated_count = generated_durations.size();
  cmp.real_mean_s = metrics::series_stats(real_durations).mean;
  cmp.generated_mean_s = metrics::series_stats(generated_durations).mean;
  cmp.hwd = metrics::hwd(real_durations, generated_durations, 30);
  return cmp;
}

}  // namespace gendt::downstream
