#include "gendt/core/stream_session.h"

#include <algorithm>
#include <cmath>

#include "gendt/radio/units.h"

namespace gendt::core {

StreamSession::StreamSession(const GenDTModel& model, context::KpiNorm norm,
                             std::vector<sim::Kpi> kpis, std::vector<context::Window> windows,
                             uint64_t seed, int chunk_windows)
    : model_(&model),
      norm_(std::move(norm)),
      kpis_(std::move(kpis)),
      windows_(std::move(windows)),
      chunk_windows_(std::max(1, chunk_windows)),
      session_(model) {
  state_.reset(seed);
}

GeneratedSeries StreamSession::next_chunk(const runtime::CancelToken* cancel) {
  const int nch = model_->config().num_channels;
  GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch), {});
  if (done()) return out;

  const size_t take =
      std::min(static_cast<size_t>(chunk_windows_), windows_.size() - next_window_);
  const std::vector<context::Window> chunk(
      windows_.begin() + static_cast<long>(next_window_),
      windows_.begin() + static_cast<long>(next_window_ + take));

  // Roll forward on a copy; commit only on success. A drain/deadline cancel
  // mid-chunk must leave the session at the pre-chunk boundary so a later
  // RESUME regenerates the identical chunk.
  InferStreamState st = state_;
  const std::vector<WindowSample> samples =
      session_.run_stream(chunk, st, /*mc_dropout=*/false, cancel);

  // Denormalization replicates GenDTGenerator::generate bit-for-bit: plain
  // denormalize, plus the CQI integer snap when channel semantics are
  // declared. With kpis_ empty this is exactly the `gendt generate` loop.
  for (const auto& s : samples) {
    for (int t = 0; t < s.output.rows(); ++t) {
      for (int ch = 0; ch < nch; ++ch) {
        double v = norm_.denormalize(ch, s.output(t, ch));
        if (static_cast<size_t>(ch) < kpis_.size() &&
            kpis_[static_cast<size_t>(ch)] == sim::Kpi::kCqi) {
          v = std::clamp(std::round(v), static_cast<double>(radio::kCqiMin),
                         static_cast<double>(radio::kCqiMax));
        }
        out.channels[static_cast<size_t>(ch)].push_back(v);
      }
    }
  }

  state_ = std::move(st);
  next_window_ += take;
  ++next_chunk_;
  return out;
}

}  // namespace gendt::core
