// Uncertainty-driven measurement selection (paper §6.2.2): starting from one
// geographic subset, repeatedly pick the next training subset either by the
// model-uncertainty measure or at random, retrain, and track fidelity on a
// held-out long trajectory.
#pragma once

#include "gendt/core/model.h"
#include "gendt/metrics/metrics.h"

namespace gendt::core {

enum class SelectionStrategy { kUncertainty, kRandom };

struct ActiveLearningStep {
  int subsets_used = 0;
  double fraction_used = 0.0;  // measurement-effort metric (§5.1)
  double mae = 0.0;            // fidelity on the evaluation series (channel 0)
  double dtw = 0.0;
  double hwd = 0.0;
  int picked_subset = -1;      // index selected at this step (-1 for the seed)
};

struct ActiveLearningConfig {
  GenDTConfig model;
  TrainConfig initial_train;       // epochs for the first fit
  TrainConfig incremental_train;   // epochs per added subset (continue training)
  int max_steps = 10;              // subsets to accumulate (incl. the seed)
  int mc_samples = 4;
  uint64_t seed = 5;
};

/// Runs the campaign. `subset_windows[i]` are the training windows of
/// geographic subset i; `eval_windows` are the held-out generation windows
/// (with targets) used for fidelity tracking; `norm` denormalizes for
/// metric computation.
std::vector<ActiveLearningStep> run_active_learning(
    const std::vector<std::vector<context::Window>>& subset_windows,
    const std::vector<context::Window>& eval_windows, const context::KpiNorm& norm,
    SelectionStrategy strategy, const ActiveLearningConfig& cfg);

}  // namespace gendt::core
