// StreamSession: chunked, seam-free, resumable generation.
//
// The paper's windowed generator stitches windows naively and pays ~2x seam
// discontinuities at the boundaries (EXPERIMENTS.md Table 8). A
// StreamSession instead carries the full cross-window state — the ResGen
// autoregressive tail and the rollout RNG, i.e. core::InferStreamState —
// across chunk boundaries, so a stream emitted chunk-by-chunk is bitwise
// identical to one long generate() over the same windows: seam-free by
// construction, not by smoothing.
//
// snapshot()/restore() capture that state at a chunk boundary. The serving
// layer snapshots after every ACKed chunk; a client that disconnects and
// RESUMEs replays from the snapshot and receives exactly the bytes the
// uninterrupted stream would have carried (stream_server_test pins all
// three equalities: resumed == uninterrupted == single-shot generate).
//
// A session is single-user, like the InferenceSession it owns. next_chunk()
// is transactional: on cancellation (drain, deadline) the session state is
// untouched, so the chunk can be regenerated or resumed later.
#pragma once

#include "gendt/core/infer_session.h"
#include "gendt/core/model.h"

namespace gendt::core {

class StreamSession {
 public:
  /// Chunk-boundary state: everything needed to regenerate the remainder of
  /// the stream bit-for-bit. Plain value type — copy to snapshot.
  struct Snapshot {
    InferStreamState state;
    size_t next_window = 0;
    uint64_t next_chunk = 0;
  };

  /// The model must outlive the session. `kpis` (optional, may be empty)
  /// declares channel semantics for denormalization: with it, values are
  /// denormalized + snapped exactly like GenDTGenerator::generate; without
  /// it, plain denormalization — the `gendt generate` CSV path.
  StreamSession(const GenDTModel& model, context::KpiNorm norm, std::vector<sim::Kpi> kpis,
                std::vector<context::Window> windows, uint64_t seed, int chunk_windows);

  /// Generate the next up-to-chunk_windows windows, denormalized to
  /// physical units. Transactional: a CancelledError (or any throw) leaves
  /// the session exactly at the pre-call boundary.
  GeneratedSeries next_chunk(const runtime::CancelToken* cancel = nullptr);

  bool done() const { return next_window_ >= windows_.size(); }
  size_t next_window() const { return next_window_; }
  uint64_t next_chunk_index() const { return next_chunk_; }
  int chunk_windows() const { return chunk_windows_; }
  size_t total_windows() const { return windows_.size(); }
  int num_channels() const { return model_->config().num_channels; }

  Snapshot snapshot() const { return Snapshot{state_, next_window_, next_chunk_}; }
  void restore(const Snapshot& snap) {
    state_ = snap.state;
    next_window_ = snap.next_window;
    next_chunk_ = snap.next_chunk;
  }

 private:
  const GenDTModel* model_;
  context::KpiNorm norm_;
  std::vector<sim::Kpi> kpis_;
  std::vector<context::Window> windows_;
  int chunk_windows_;
  InferenceSession session_;
  InferStreamState state_;
  size_t next_window_ = 0;
  uint64_t next_chunk_ = 0;
};

}  // namespace gendt::core
