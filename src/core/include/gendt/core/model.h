// The GenDT conditional generative model (paper §4).
//
// Generator (Fig. 6):
//   G^n  — GNN-node network: one LSTM, weights shared across cells, run over
//          each visible cell's [attributes ++ noise z0] series.
//   G^a  — aggregation network: LSTM over the mean of the node hidden
//          states, projecting to the Nch KPI channels.
//   G^r  — ResGen (Fig. 7): an autoregressive MLP over
//          [env context ++ noise z1 ++ last m KPI values] with dropout
//          before the head, emitting a Gaussian (mu, log sigma) per channel;
//          a reparameterized sample is the residual added to G^a's output.
// Both LSTMs carry SRNN-style stochastic layers (§4.3.4, Appendix A.2).
//
// Discriminator: single-layer LSTM over [x_t ++ h_avg_t] -> logit
// (§4.3.5); trained adversarially, with overall generator loss
// L = L_MSE + lambda * L_GAN.
//
// Ablation flags reproduce Table 12's variants: no ResGen / no SRNN /
// no GAN loss / no batching.
#pragma once

#include <functional>
#include <memory>

#include "gendt/core/generator.h"
#include "gendt/nn/layers.h"
#include "gendt/nn/optim.h"
#include "gendt/nn/pack.h"
#include "gendt/nn/serialize.h"
#include "gendt/runtime/thread_pool.h"

namespace gendt::core {

struct GenDTConfig {
  int num_channels = 4;       // Nch: KPI count
  int hidden = 32;            // H (paper uses 100; smaller trains CPU-fast)
  int noise_dim_node = 4;     // Nz0
  double noise_scale_node = 0.3;  // std of z0 (de-noising aid, not variation)
  int noise_dim_res = 4;      // Nz1
  int resgen_lookback = 3;    // m: autoregressive KPI history fed to ResGen
  /// Scheduled sampling: probability of feeding the model's own output
  /// (instead of the teacher-forced real value) into ResGen's recent-value
  /// tail during training. Counters exposure bias at generation time.
  double feedback_prob = 0.25;
  int resgen_hidden = 48;
  double resgen_dropout = 0.25;
  nn::StochasticConfig stochastic{.enabled = true, .a_h = 1.2, .a_c = 1.2};
  bool use_resgen = true;     // ablation: "No ResGen"
  bool use_gan = true;        // ablation: "No GAN loss"
  double lambda_gan = 0.1;
  /// Weight of the Gaussian NLL that calibrates ResGen's (mu, sigma) to the
  /// observed residual (target minus aggregation output). This is what makes
  /// the generated series' dispersion match the data.
  double nll_weight = 0.5;
  uint64_t init_seed = 1;
  /// Worker threads for inference-side fan-out: the per-cell G^n rollout
  /// inside forward(), MC-dropout uncertainty passes, and per-trajectory
  /// generation. 0 = all hardware threads, 1 = serial. Results are bitwise
  /// identical at every setting: every parallel unit draws from its own
  /// index-derived RNG stream and is reduced in index order.
  runtime::Parallelism parallelism{.threads = 0};
};

/// Output of one generated window in normalized units, plus the ResGen
/// distribution parameters (used for the uncertainty measure).
struct WindowSample {
  nn::Mat output;     // [len x Nch] sampled series (stochastic)
  nn::Mat mean;       // [len x Nch] noise-free expectation: G^a + ResGen mu
  nn::Mat res_mu;     // [len x Nch]
  nn::Mat res_sigma;  // [len x Nch]
};

class GenDTModel {
 public:
  explicit GenDTModel(const GenDTConfig& cfg);

  const GenDTConfig& config() const { return cfg_; }

  /// Raw sub-network views for the tape-free InferenceSession (read-only;
  /// the fast path shares weights with the graph path, never copies them).
  const nn::LstmCell& node_cell() const { return node_cell_; }
  const nn::LstmNetwork& agg_net() const { return agg_net_; }
  const nn::Mlp& resgen() const { return resgen_; }

  /// All trainable generator parameters.
  std::vector<nn::NamedParam> generator_params() const;
  /// Discriminator parameters.
  std::vector<nn::NamedParam> discriminator_params() const;

  /// Forward pass over one window.
  ///
  /// `prev_kpis` is the [m x Nch] tail of KPI values preceding the window
  /// (zeros at a trajectory start) — this is what makes generation
  /// autoregressive *across* batches. During training, teacher forcing uses
  /// the real target for ResGen's recent-value input; during generation the
  /// model's own output is fed back.
  ///
  /// `mc_dropout` keeps ResGen's dropout active (uncertainty sampling).
  struct Forward {
    std::vector<nn::Tensor> outputs;  // per step [1 x Nch]
    std::vector<nn::Tensor> h_avg;    // per step [1 x H] (discriminator context)
    nn::Mat res_mu;                   // [len x Nch]
    nn::Mat res_sigma;                // [len x Nch]
    // Graph handles used by the training losses (empty without ResGen):
    std::vector<nn::Tensor> agg_out_t;        // per step [1 x Nch]
    std::vector<nn::Tensor> res_mu_t;         // per step [1 x Nch]
    std::vector<nn::Tensor> res_log_sigma_t;  // per step [1 x Nch]
  };
  Forward forward(const context::Window& window, const nn::Mat& prev_kpis,
                  std::mt19937_64& rng, bool training, bool mc_dropout = false) const;

  /// Discriminator logit for a KPI-window sequence given the h_avg context
  /// sequence (the high-dimensional representation of c, per §4.3.5).
  nn::Tensor discriminate(const std::vector<nn::Tensor>& x_rows,
                          const std::vector<nn::Tensor>& h_avg,
                          std::mt19937_64& rng) const;

  /// Generate normalized KPI series over consecutive windows, carrying the
  /// autoregressive tail across window boundaries. Windows form one
  /// autoregressive chain, so they are generated in order; parallelism
  /// applies inside each forward (per-cell rollout).
  ///
  /// A non-null `cancel` token is polled before every window — the rollout's
  /// natural work boundary — and unwinds with runtime::CancelledError when it
  /// trips, so an expired/abandoned serve request stops paying for windows
  /// nobody will read. Cancellation never alters produced values: every
  /// window that IS generated has the same bits as in an uncancelled run.
  std::vector<WindowSample> sample_windows(const std::vector<context::Window>& windows,
                                           uint64_t seed, bool mc_dropout = false,
                                           const runtime::CancelToken* cancel = nullptr) const;

  /// Request-level fan-out: generate several independent trajectories (each
  /// a window chain) on the worker pool. Trajectory i uses the RNG stream
  /// derive_stream_seed(seed, i), so results match a serial run bitwise and
  /// do not depend on the thread count. `cancel` is polled per trajectory
  /// and per window; on trip the first observing task throws
  /// runtime::CancelledError, which the fork-join rethrows here.
  std::vector<std::vector<WindowSample>> sample_trajectories(
      const std::vector<std::vector<context::Window>>& trajectories, uint64_t seed,
      bool mc_dropout = false, const runtime::CancelToken* cancel = nullptr) const;

  /// Atomic whole-model checkpoint (nn::save_checkpoint under the hood).
  bool save(const std::string& path) const;
  /// Transactional load: on any failure the model is untouched and the
  /// result says exactly what was wrong (bad magic, truncation, CRC
  /// mismatch, unknown param, shape mismatch, duplicate name, ...).
  nn::LoadResult load(const std::string& path, nn::LoadMode mode = nn::LoadMode::kStrict);

 private:
  GenDTConfig cfg_;
  nn::LstmCell node_cell_;       // G^n (shared across cells)
  nn::LstmNetwork agg_net_;      // G^a
  nn::Mlp resgen_;               // G^r trunk -> [mu, log_sigma] x Nch
  nn::LstmNetwork disc_net_;     // discriminator trunk
  nn::Linear disc_head_;         // final logit
};

/// Resumable training state emitted at every epoch boundary: the cursor and
/// the Adam slots for both optimizers (records named "adam.gen/..." and
/// "adam.disc/..."). Together with the model parameters this is everything
/// a fresh process needs to continue the run bit-for-bit (each epoch runs
/// on its own derive_stream_seed(seed, epoch) RNG stream, so no generator
/// internals need to be persisted).
struct TrainCheckpoint {
  int epochs_done = 0;  ///< epochs completed; resume with start_epoch = this
  std::vector<nn::TensorRecord> opt_state;
};

/// GenDT training (alternating generator / discriminator updates).
struct TrainConfig {
  int epochs = 12;
  int windows_per_step = 8;  // gradient accumulation
  double lr_gen = 2e-3;
  double lr_disc = 1e-3;
  uint64_t seed = 99;
  bool verbose = false;
  /// Worker threads for the per-window forward/backward of each
  /// accumulation step (0 = all hardware threads, 1 = serial). Each worker
  /// owns a full model replica and gradient buffer; per-window gradients are
  /// reduced into the shared parameters in window order, and every window
  /// runs on its own RNG stream — training is bitwise identical at any
  /// thread count.
  runtime::Parallelism parallelism{.threads = 0};
  /// First epoch to run (resume cursor). Epoch e always draws from the RNG
  /// stream derive_stream_seed(seed, e), so running epochs [k, epochs) on a
  /// restored model + optimizer state is bitwise identical to the tail of
  /// an uninterrupted [0, epochs) run.
  int start_epoch = 0;
  /// Adam slots from a prior TrainCheckpoint ("adam.gen/..." +
  /// "adam.disc/..." records). Empty = fresh optimizers.
  std::vector<nn::TensorRecord> resume_opt_state = {};
  /// Called after every completed epoch with the state needed to resume
  /// from that boundary; the CLI uses this to write a checkpoint per epoch.
  std::function<void(const TrainCheckpoint&)> on_epoch_end = {};
};

struct TrainStats {
  std::vector<double> mse_per_epoch;
  std::vector<double> gan_per_epoch;
  /// Non-empty when training refused to start (malformed resume state).
  std::string error;
};

TrainStats train_gendt(GenDTModel& model, const std::vector<context::Window>& windows,
                       const TrainConfig& cfg);

/// Model uncertainty U(G_theta) (§6.2.1): MC-dropout std of ResGen's
/// Gaussian parameters, averaged over time and channels.
double model_uncertainty(const GenDTModel& model, const std::vector<context::Window>& windows,
                         int mc_samples = 5, uint64_t seed = 1);

class InferenceSession;         // gendt/core/infer_session.h
class BatchedInferenceSession;  // gendt/core/batched_infer_session.h

/// TimeSeriesGenerator adapter around GenDTModel (fits + denormalizes).
///
/// generate() runs on the tape-free InferenceSession fast path by default
/// (bitwise identical to the Tensor graph — see infer_session.h); sessions
/// are pooled so concurrent serve requests reuse warm workspaces instead of
/// re-allocating per call. set_fast_path(false) routes through
/// GenDTModel::sample_windows for A/B parity checks.
class GenDTGenerator final : public TimeSeriesGenerator {
 public:
  // Both out-of-line: InferenceSession is incomplete here, and member
  // construction/destruction must see its definition.
  GenDTGenerator(GenDTConfig model_cfg, TrainConfig train_cfg, context::KpiNorm norm);
  ~GenDTGenerator() override;

  /// Declare the KPI meaning of each channel. Discrete KPIs (CQI) are
  /// snapped to their integer grid after denormalization — the paper notes
  /// CQI generation is really a classification over 1..15.
  void set_kpis(std::vector<sim::Kpi> kpis) { kpis_ = std::move(kpis); }
  /// Channel semantics declared via set_kpis (empty when never declared —
  /// denormalization then applies no per-KPI snapping).
  const std::vector<sim::Kpi>& kpis() const { return kpis_; }

  std::string name() const override { return "GenDT"; }
  void fit(const std::vector<context::Window>& train_windows) override {
    train_gendt(model_, train_windows, train_cfg_);
  }
  GeneratedSeries generate(const std::vector<context::Window>& windows,
                           uint64_t seed) const override;
  /// Cancellable path: polls `cancel` before every window of the rollout.
  GeneratedSeries generate(const std::vector<context::Window>& windows, uint64_t seed,
                           const runtime::CancelToken* cancel) const override;
  /// Lane-batched generation on a pooled BatchedInferenceSession: all items
  /// roll out in lockstep so the hot loop runs [B x d] GEMMs, and every item
  /// gets the exact bits of its single-item generate() call (per-lane RNG
  /// streams — see batched_infer_session.h). Falls back to the serial
  /// default on the reference (non-fast) path or if the batched rollout
  /// fails as a whole.
  std::vector<GenerateBatchResult> generate_batch(
      const std::vector<GenerateBatchItem>& items) const override;

  GenDTModel& model() { return model_; }
  const GenDTModel& model() const { return model_; }
  const context::KpiNorm& norm() const { return norm_; }

  /// Toggle the tape-free fast path (on by default). Switching drops the
  /// warm session pool; both settings produce the same bits. Safe to call
  /// concurrently with generate() — the flag lives under the pool lock.
  void set_fast_path(bool on) GENDT_EXCLUDES(session_mu_);
  bool fast_path() const GENDT_EXCLUDES(session_mu_) {
    runtime::MutexLock lock(session_mu_);
    return fast_path_;
  }

  /// Grow the warm-session pool to `count` InferenceSessions so the first
  /// `count` concurrent requests skip session construction. The serving
  /// layer calls this when a model is (hot-)loaded into the registry, so a
  /// freshly swapped-in version answers its first requests from warm state
  /// instead of paying cold-start under traffic. No-op on the reference
  /// (non-fast) path, which holds no pool.
  void prewarm(size_t count) GENDT_EXCLUDES(session_mu_);

  /// Point the model's parameters at a mapped GDTPACK1 weight arena
  /// (zero-copy read-only views — see gendt/nn/pack.h). On success the
  /// generator takes ownership of the mapping (the views alias it) and
  /// becomes inference-only: fit() on packed weights asserts in debug
  /// builds. On failure the model is untouched.
  nn::LoadResult load_packed(nn::PackedModel pack) GENDT_EXCLUDES(session_mu_);
  bool packed() const { return pack_ != nullptr; }

  /// High-water workspace bytes pinned by the warm session pools (single-lane
  /// + batched) — what the serve layer logs at startup so the memory cost of
  /// prewarming and lane batching is visible.
  size_t warm_peak_bytes() const GENDT_EXCLUDES(session_mu_);

 private:
  /// Fast-path sample_windows: leases a warm InferenceSession from the pool
  /// (building one on first use) and always returns it, even on cancellation.
  /// Takes session_mu_ only for the lease/return — never across the rollout.
  std::vector<WindowSample> sample_fast(const std::vector<context::Window>& windows,
                                        uint64_t seed,
                                        const runtime::CancelToken* cancel) const
      GENDT_EXCLUDES(session_mu_);

  GenDTModel model_;
  TrainConfig train_cfg_;
  context::KpiNorm norm_;
  std::vector<sim::Kpi> kpis_;  // optional channel semantics
  // Non-null after load_packed(): the mapping the parameter views alias.
  // Held for the generator's whole lifetime; Mat destructors never touch a
  // view's bytes, so member destruction order is not load-bearing.
  std::unique_ptr<nn::PackedModel> pack_;
  // Warm InferenceSessions, leased one per in-flight generate() call.
  // generate() is const (TimeSeriesGenerator contract) and called from many
  // serve workers at once, hence the mutable pool + its own lock. The
  // fast_path_ route flag shares the lock: set_fast_path() must both flip it
  // and drop the pool atomically (a session must never straddle a route
  // switch), and generate() reads it from those same serve workers.
  mutable runtime::Mutex session_mu_;
  bool fast_path_ GENDT_GUARDED_BY(session_mu_) = true;
  mutable std::vector<std::unique_ptr<InferenceSession>> sessions_
      GENDT_GUARDED_BY(session_mu_);
  // Warm BatchedInferenceSessions for generate_batch(), leased under the
  // same lock/route rules as sessions_ (dropped on route switch and weight
  // swap alongside them).
  mutable std::vector<std::unique_ptr<BatchedInferenceSession>> batch_sessions_
      GENDT_GUARDED_BY(session_mu_);
};

}  // namespace gendt::core
