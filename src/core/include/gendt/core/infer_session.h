// Tape-free generation: InferenceSession runs GenDTModel's whole rollout —
// per-cell G^n, aggregation LSTM, autoregressive ResGen — on reusable
// Workspace buffers (gendt/nn/infer.h) instead of the autograd Tensor graph.
//
// Guarantees:
//  * Bitwise parity: run(windows, seed, mc_dropout) returns the exact bits
//    of GenDTModel::sample_windows(windows, seed, mc_dropout), at every
//    thread count. The kernels replay the graph's FP op sequence and RNG
//    draw order (enforced by gen_parity_test).
//  * No steady-state allocation: after the first window of a given shape
//    (warmup), further windows, MC-dropout passes and run() calls reuse the
//    same buffers — allocations() stops moving. Only the returned
//    WindowSample Mats are freshly allocated (they are the product).
//  * Same cancellation contract as sample_windows: `cancel` is polled before
//    every window; produced windows are unaffected by a cancellation.
//
// A session is single-user (not thread-safe) but cheap to pool:
// GenDTGenerator keeps a pool of sessions and leases one per request, so
// batched serving reuses warm buffers across requests. The thread-safety
// story is ownership transfer, not locking: a session is handed out and
// returned under GenDTGenerator::session_mu_ (GUARDED_BY-annotated pool),
// and between those two points exactly one request thread owns it — which
// is why this class holds no lock of its own and the rawmutex lint rule
// has nothing to flag here. The pool mutex is never held across run().
#pragma once

#include <random>

#include "gendt/core/model.h"
#include "gendt/nn/infer.h"

namespace gendt::core {

/// The cross-window generation state of a windowed rollout: the
/// autoregressive ResGen tail (last m KPI rows) plus the window-level RNG.
/// The per-cell and aggregation LSTM h/c states are zeroed at every window
/// boundary (see run_window), so this struct IS the complete carried state —
/// copying it snapshots a stream at a chunk boundary, and restoring the copy
/// replays the remainder bit-for-bit. That is the contract core::StreamSession
/// builds seam-free RESUME on.
struct InferStreamState {
  std::mt19937_64 rng{0};  // placeholder seed; reset() seeds it for real
  nn::Mat tail;            // [m x nch]; meaningful once have_tail
  bool have_tail = false;

  /// Rewind to the start-of-stream state for `seed` (what run() uses).
  void reset(uint64_t seed) {
    rng.seed(seed);
    have_tail = false;
  }
};

class InferenceSession {
 public:
  /// The model must outlive the session; weights are read, never copied.
  explicit InferenceSession(const GenDTModel& model) : model_(&model) {}

  /// Fast-path equivalent of GenDTModel::sample_windows (same seed, same
  /// bits, same cancellation semantics).
  std::vector<WindowSample> run(const std::vector<context::Window>& windows, uint64_t seed,
                                bool mc_dropout = false,
                                const runtime::CancelToken* cancel = nullptr);

  /// Incremental run(): generate `windows` continuing from `state`, leaving
  /// `state` at the boundary after the last produced window. Splitting a
  /// window list across any number of run_stream calls — with the state
  /// snapshot/restored anywhere between them — yields exactly the bits of a
  /// single run() over the whole list (run() is implemented on top of this).
  /// On cancellation `state` still reflects every window that WAS produced.
  std::vector<WindowSample> run_stream(const std::vector<context::Window>& windows,
                                       InferStreamState& state, bool mc_dropout = false,
                                       const runtime::CancelToken* cancel = nullptr);

  /// Total workspace Mat (re)allocations across all internal workspaces.
  /// Constant across repeat run() calls on same-shaped inputs.
  size_t allocations() const;

  /// High-water workspace bytes across all internal workspaces (see
  /// Workspace::peak_bytes) — what a warm pooled session pins in memory.
  size_t peak_bytes() const;

 private:
  void run_window(const context::Window& w, const nn::Mat* prev_tail, std::mt19937_64& rng,
                  bool mc_dropout, WindowSample& s);

  const GenDTModel* model_;
  nn::infer::Workspace ws_;                    // window-level buffers
  std::vector<nn::infer::Workspace> cell_ws_;  // one per cell slot (parallel rollout)
  std::vector<uint64_t> cell_seeds_;
};

}  // namespace gendt::core
