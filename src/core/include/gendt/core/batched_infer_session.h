// Lane-batched tape-free generation: BatchedInferenceSession runs B
// independent trajectories' rollouts (per-cell G^n, aggregation LSTM,
// autoregressive ResGen) in LOCKSTEP, so the hot loop's products are real
// [B x d] GEMMs through the blocked/AVX2 matmul kernels instead of B
// matrix-vector ops (see nn/infer.h "Lane-batched kernels").
//
// Guarantees:
//  * Lane-bitwise parity: lane l's samples are the exact bits of a
//    single-lane InferenceSession::run(*lanes[l].windows, lanes[l].seed,
//    mc_dropout) — regardless of batch composition, lane count, or thread
//    count (enforced by gen_batch_parity_test). Every RNG draw for a lane
//    comes from that lane's own stream in the single-lane order, and the
//    batched matmul computes each row with the identical per-element
//    accumulation chain as the single-row kernels.
//  * Lane retirement/compaction at window boundaries: lanes march window
//    round by window round. A lane whose window list is exhausted (or whose
//    cancel token tripped) retires at the round boundary and the batch
//    compacts; within a round, ragged window LENGTHS are handled by marking
//    finished rows retired (null lane RNG) — they ride dead in the shared
//    GEMMs but draw nothing and their state stays put.
//  * No steady-state allocation: repeating a run over same-shaped lanes
//    reuses every workspace buffer — allocations() stops moving and
//    peak_bytes() (linear in B) is constant.
//  * Per-lane cancellation: lanes[l].cancel is polled at every window
//    boundary. A tripped lane retires with cancelled=true, keeping every
//    window it DID produce (bit-identical to an uncancelled run's prefix);
//    the other lanes are unaffected. Nothing throws for per-lane trips.
#pragma once

#include <random>

#include "gendt/core/infer_session.h"
#include "gendt/core/model.h"
#include "gendt/nn/infer.h"

namespace gendt::core {

/// One lane of a batched rollout: an independent trajectory's window chain
/// plus its RNG stream seed (callers fan a grid out with
/// runtime::derive_stream_seed(seed, lane_index)).
struct BatchLane {
  const std::vector<context::Window>* windows = nullptr;
  uint64_t seed = 0;
  /// Optional per-lane cancellation; polled at window boundaries.
  const runtime::CancelToken* cancel = nullptr;
};

/// Per-lane result, keyed by the original lane index.
struct BatchLaneResult {
  std::vector<WindowSample> samples;  ///< windows produced before retirement
  bool cancelled = false;             ///< lane retired early on its token
};

class BatchedInferenceSession {
 public:
  /// The model must outlive the session; weights are read, never copied.
  explicit BatchedInferenceSession(const GenDTModel& model) : model_(&model) {}

  /// Run every lane to completion (or cancellation) in lockstep window
  /// rounds. results[l] corresponds to lanes[l].
  std::vector<BatchLaneResult> run(const std::vector<BatchLane>& lanes, bool mc_dropout = false);

  /// Total workspace Mat (re)allocations across all internal workspaces.
  /// Constant across repeat run() calls on same-shaped lane sets.
  size_t allocations() const;

  /// High-water workspace bytes across all internal workspaces — linear in
  /// the lane count (see Workspace::peak_bytes).
  size_t peak_bytes() const;

 private:
  struct LaneCtx;  // defined in the .cpp: per-lane rollout state

  void run_round(const std::vector<LaneCtx*>& act, int round, bool mc_dropout);

  const GenDTModel* model_;
  nn::infer::Workspace ws_;         // fixed batch-wide slots + MLP trunk
  nn::infer::Workspace hist_ws_;    // per-(lane,cell) hidden histories
  nn::infer::Workspace havg_ws_;    // per-lane pooled hidden states
  nn::infer::Workspace aggout_ws_;  // per-lane aggregation outputs
  nn::infer::Workspace recent_ws_;  // per-lane ResGen lookback
};

/// Fast-path model uncertainty (paper §6.2.1): the exact bits of
/// model_uncertainty(), computed by running all MC-dropout passes as lanes
/// of ONE batched rollout instead of mc_samples independent sample_windows
/// fan-outs. First concrete step toward fleet-scale candidate scoring
/// (ROADMAP item 5). Defined in model.cpp so the reduction shares the
/// reference reduction's code and FP compilation flags.
double model_uncertainty_fast(const GenDTModel& model, const std::vector<context::Window>& windows,
                              int mc_samples = 5, uint64_t seed = 1);

}  // namespace gendt::core
