// Common interface for conditional KPI time-series generators — GenDT and
// every baseline implement it, so the evaluation harness treats them
// uniformly.
#pragma once

#include <string>
#include <vector>

#include "gendt/context/context.h"
#include "gendt/runtime/cancel.h"

namespace gendt::core {

/// Generated multi-KPI series in physical (denormalized) units.
struct GeneratedSeries {
  /// channels[ch][t] — one series per KPI channel, aligned with the input
  /// windows' sample order.
  std::vector<std::vector<double>> channels;

  size_t length() const { return channels.empty() ? 0 : channels.front().size(); }
};

/// One request of a batched generate_batch() call: an independent window
/// list + seed (+ optional cancellation), exactly the arguments of one
/// generate() call.
struct GenerateBatchItem {
  const std::vector<context::Window>* windows = nullptr;
  uint64_t seed = 0;
  const runtime::CancelToken* cancel = nullptr;
};

/// Per-item result of generate_batch(), keyed by the item's index.
struct GenerateBatchResult {
  GeneratedSeries series;  ///< valid only when ok
  bool ok = false;
  std::string error;  ///< failure reason when !ok (cancellation included)
};

/// A trained conditional generator: maps context windows for a target
/// trajectory to synthetic KPI series.
class TimeSeriesGenerator {
 public:
  virtual ~TimeSeriesGenerator() = default;

  virtual std::string name() const = 0;

  /// Fit on training windows (targets must be present).
  virtual void fit(const std::vector<context::Window>& train_windows) = 0;

  /// Generate series for the given (non-overlapping) generation windows.
  /// `seed` controls the sampling noise; different seeds give different
  /// stochastic realizations.
  virtual GeneratedSeries generate(const std::vector<context::Window>& windows,
                                   uint64_t seed) const = 0;

  /// Cancellable generation: implementations that can stop mid-series poll
  /// `cancel` at window granularity and unwind with runtime::CancelledError
  /// once it trips (GenDT does; see GenDTModel::sample_windows). The default
  /// checks once up front and then runs the plain generate() to completion —
  /// correct for cheap baselines whose whole pass is one "window" of work.
  /// A null `cancel` is the plain uncancellable call.
  virtual GeneratedSeries generate(const std::vector<context::Window>& windows, uint64_t seed,
                                   const runtime::CancelToken* cancel) const {
    runtime::check_cancel(cancel);
    return generate(windows, seed);
  }

  /// Generate several independent requests at once. results[i] corresponds
  /// to items[i], and MUST hold the exact bits of the matching single-item
  /// generate(items[i].windows, items[i].seed, items[i].cancel) call —
  /// batching is a throughput optimization, never a semantics change (the
  /// serve layer's lane_batch mode leans on this, pinned by
  /// serve_engine_test). Never throws for per-item failures: each item
  /// carries its own ok/error. The default runs the items serially.
  virtual std::vector<GenerateBatchResult> generate_batch(
      const std::vector<GenerateBatchItem>& items) const {
    std::vector<GenerateBatchResult> results(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      try {
        results[i].series = generate(*items[i].windows, items[i].seed, items[i].cancel);
        results[i].ok = true;
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    }
    return results;
  }
};

/// Extract the real (denormalized) KPI series aligned with the given
/// generation windows — the ground truth for fidelity metrics.
GeneratedSeries real_series(const std::vector<context::Window>& windows,
                            const context::KpiNorm& norm);

}  // namespace gendt::core
