#include "gendt/core/model.h"

#include <algorithm>

#include "gendt/core/batched_infer_session.h"
#include "gendt/core/infer_session.h"
#include <atomic>
#include <cmath>
#include <memory>

namespace gendt::core {

using nn::Mat;
using nn::Tensor;

GeneratedSeries real_series(const std::vector<context::Window>& windows,
                            const context::KpiNorm& norm) {
  GeneratedSeries out;
  if (windows.empty()) return out;
  const int nch = windows.front().target.cols();
  out.channels.assign(static_cast<size_t>(nch), {});
  for (const auto& w : windows) {
    for (int t = 0; t < w.len; ++t) {
      for (int ch = 0; ch < nch; ++ch) {
        out.channels[static_cast<size_t>(ch)].push_back(norm.denormalize(ch, w.target(t, ch)));
      }
    }
  }
  return out;
}

namespace {
constexpr int kCellAttrs = context::kCellAttrs;

Mat gaussian_noise(int rows, int cols, std::mt19937_64& rng) {
  Mat m(rows, cols);
  std::normal_distribution<double> g(0.0, 1.0);
  for (size_t i = 0; i < m.size(); ++i) m[i] = g(rng);
  return m;
}
}  // namespace

GenDTModel::GenDTModel(const GenDTConfig& cfg) : cfg_(cfg) {
  std::mt19937_64 rng(cfg.init_seed);
  node_cell_ = nn::LstmCell(kCellAttrs + cfg.noise_dim_node, cfg.hidden, rng, "gendt.node");
  agg_net_ = nn::LstmNetwork(cfg.hidden, cfg.hidden, cfg.num_channels, rng, "gendt.agg");
  const int res_in = sim::kNumEnvAttributes + cfg.noise_dim_res +
                     cfg.resgen_lookback * cfg.num_channels;
  resgen_ = nn::Mlp({.layer_sizes = {res_in, cfg.resgen_hidden, cfg.resgen_hidden,
                                     2 * cfg.num_channels},
                     .leaky_slope = 0.01,
                     .dropout_p = cfg.resgen_dropout},
                    rng, "gendt.resgen");
  // Start the residual noise small: the head's log_sigma outputs get a low
  // bias so sigma ~ exp(-2) of a (normalized) KPI std. Training then grows
  // it where the data demands stochasticity, instead of having to fight an
  // O(1)-sigma residual down with the MSE term.
  for (auto& p : resgen_.params()) {
    if (p.name.ends_with("fc2.bias")) {
      nn::Mat& b = p.tensor.mutable_value();
      for (int ch = 0; ch < cfg.num_channels; ++ch) b(0, cfg.num_channels + ch) = -2.0;
    }
  }
  disc_net_ = nn::LstmNetwork(cfg.num_channels + cfg.hidden, cfg.hidden, cfg.hidden, rng,
                              "gendt.disc");
  disc_head_ = nn::Linear(cfg.hidden, 1, rng, "gendt.disc_head");
}

std::vector<nn::NamedParam> GenDTModel::generator_params() const {
  std::vector<nn::NamedParam> out = node_cell_.params();
  for (auto& p : agg_net_.params()) out.push_back(p);
  if (cfg_.use_resgen)
    for (auto& p : resgen_.params()) out.push_back(p);
  return out;
}

std::vector<nn::NamedParam> GenDTModel::discriminator_params() const {
  std::vector<nn::NamedParam> out = disc_net_.params();
  for (auto& p : disc_head_.params()) out.push_back(p);
  return out;
}

GenDTModel::Forward GenDTModel::forward(const context::Window& window, const Mat& prev_kpis,
                                        std::mt19937_64& rng, bool training,
                                        bool mc_dropout) const {
  Forward fwd;
  const int len = window.len;
  const int nch = cfg_.num_channels;
  const int n_cells = static_cast<int>(window.cell_attrs.size());

  // ---- G^n: shared node LSTM over each cell's attribute series ----------
  // Hidden states per step per cell; averaged into h_avg (graph pooling).
  // Cells are independent given the (read-only) shared weights, so their
  // rollouts fan out across the worker pool. Each cell runs on its own RNG
  // stream, seeded from the window stream in cell order — the math is
  // bitwise identical at every thread count.
  std::vector<std::vector<Tensor>> cell_hidden(static_cast<size_t>(std::max(n_cells, 0)));
  std::vector<uint64_t> cell_seed(static_cast<size_t>(std::max(n_cells, 0)));
  for (int ci = 0; ci < n_cells; ++ci) cell_seed[static_cast<size_t>(ci)] = rng();
  runtime::parallel_tasks(cfg_.parallelism, n_cells, [&](int ci) {
    std::mt19937_64 cell_rng(cell_seed[static_cast<size_t>(ci)]);
    std::normal_distribution<double> g01(0.0, 1.0);
    nn::LstmCell::State st = node_cell_.initial_state();
    auto& hs = cell_hidden[static_cast<size_t>(ci)];
    hs.reserve(static_cast<size_t>(len));
    for (int t = 0; t < len; ++t) {
      // Noise is sampled straight into the input row (no z0 temporary).
      Mat x(1, kCellAttrs + cfg_.noise_dim_node);
      for (int a = 0; a < kCellAttrs; ++a)
        x(0, a) = window.cell_attrs[static_cast<size_t>(ci)](t, a);
      for (int a = 0; a < cfg_.noise_dim_node; ++a)
        x(0, kCellAttrs + a) = cfg_.noise_scale_node * g01(cell_rng);
      st = node_cell_.step(Tensor::constant(std::move(x)), st, cfg_.stochastic, cell_rng);
      hs.push_back(st.h);
    }
  });

  fwd.h_avg.reserve(static_cast<size_t>(len));
  for (int t = 0; t < len; ++t) {
    if (n_cells == 0) {
      fwd.h_avg.push_back(Tensor::zeros(1, cfg_.hidden));
      continue;
    }
    Tensor sum = cell_hidden[0][static_cast<size_t>(t)];
    for (int ci = 1; ci < n_cells; ++ci) sum = sum + cell_hidden[static_cast<size_t>(ci)][static_cast<size_t>(t)];
    fwd.h_avg.push_back(sum * (1.0 / static_cast<double>(n_cells)));
  }

  // ---- G^a: aggregation LSTM over h_avg ----------------------------------
  std::vector<Tensor> agg_out = agg_net_.forward(fwd.h_avg, cfg_.stochastic, rng);

  // ---- G^r: autoregressive residual generator ----------------------------
  fwd.res_mu = Mat::zeros(len, nch);
  fwd.res_sigma = Mat::zeros(len, nch);
  fwd.outputs.reserve(static_cast<size_t>(len));

  // Rolling window of the last m KPI rows (constant inputs to ResGen).
  std::vector<Mat> recent;
  for (int i = 0; i < cfg_.resgen_lookback; ++i) {
    Mat row(1, nch);
    if (!prev_kpis.empty()) {
      const int src = prev_kpis.rows() - cfg_.resgen_lookback + i;
      if (src >= 0)
        for (int ch = 0; ch < nch; ++ch) row(0, ch) = prev_kpis(src, ch);
    }
    recent.push_back(std::move(row));
  }

  for (int t = 0; t < len; ++t) {
    Tensor out_t = agg_out[static_cast<size_t>(t)];
    if (cfg_.use_resgen) {
      Mat u(1, sim::kNumEnvAttributes + cfg_.noise_dim_res + cfg_.resgen_lookback * nch);
      int col = 0;
      for (int a = 0; a < sim::kNumEnvAttributes; ++a) u(0, col++) = window.env(t, a);
      const Mat z1 = gaussian_noise(1, cfg_.noise_dim_res, rng);
      for (int a = 0; a < cfg_.noise_dim_res; ++a) u(0, col++) = z1(0, a);
      for (const auto& r : recent)
        for (int ch = 0; ch < nch; ++ch) u(0, col++) = r(0, ch);

      const Tensor head = resgen_.forward(Tensor::constant(std::move(u)), rng,
                                          training || mc_dropout);
      const Tensor mu = nn::slice_cols(head, 0, nch);
      // Bound log_sigma smoothly to (-4, 4): keeps exp() finite whatever the
      // optimizer does to the head weights mid-training.
      const Tensor log_sigma = nn::tanh_t(nn::slice_cols(head, nch, 2 * nch) * 0.25) * 4.0;
      const Tensor sigma = nn::exp_t(log_sigma);
      // Reparameterized residual sample.
      const Tensor eps = Tensor::constant(gaussian_noise(1, nch, rng));
      fwd.agg_out_t.push_back(out_t);
      fwd.res_mu_t.push_back(mu);
      fwd.res_log_sigma_t.push_back(log_sigma);
      out_t = out_t + mu + sigma * eps;

      for (int ch = 0; ch < nch; ++ch) {
        fwd.res_mu(t, ch) = mu.value()(0, ch);
        fwd.res_sigma(t, ch) = sigma.value()(0, ch);
      }
    }
    fwd.outputs.push_back(out_t);

    // Advance the autoregressive tail: teacher forcing during training,
    // except for scheduled-sampling steps that rehearse generation-time
    // feedback (exposure-bias mitigation).
    Mat next_row(1, nch);
    bool use_real = training && !window.target.empty();
    if (use_real && cfg_.feedback_prob > 0.0) {
      std::bernoulli_distribution feed_back(cfg_.feedback_prob);
      if (feed_back(rng)) use_real = false;
    }
    if (use_real) {
      for (int ch = 0; ch < nch; ++ch) next_row(0, ch) = window.target(t, ch);
    } else {
      for (int ch = 0; ch < nch; ++ch) next_row(0, ch) = out_t.value()(0, ch);
    }
    recent.erase(recent.begin());
    recent.push_back(std::move(next_row));
  }
  return fwd;
}

Tensor GenDTModel::discriminate(const std::vector<Tensor>& x_rows,
                                const std::vector<Tensor>& h_avg,
                                std::mt19937_64& rng) const {
  assert(x_rows.size() == h_avg.size());
  std::vector<Tensor> inputs;
  inputs.reserve(x_rows.size());
  for (size_t t = 0; t < x_rows.size(); ++t) {
    // Context enters as a constant: the discriminator judges x given c and
    // must not backprop into the generator's context representation.
    inputs.push_back(nn::concat_cols(x_rows[t], nn::detach(h_avg[t])));
  }
  const auto hs = disc_net_.hidden_sequence(inputs, nn::StochasticConfig{}, rng);
  return disc_head_.forward(hs.back());
}

std::vector<std::vector<WindowSample>> GenDTModel::sample_trajectories(
    const std::vector<std::vector<context::Window>>& trajectories, uint64_t seed,
    bool mc_dropout, const runtime::CancelToken* cancel) const {
  std::vector<std::vector<WindowSample>> out(trajectories.size());
  runtime::parallel_tasks(
      cfg_.parallelism, static_cast<int>(trajectories.size()),
      [&](int ti) {
        out[static_cast<size_t>(ti)] = sample_windows(
            trajectories[static_cast<size_t>(ti)],
            runtime::derive_stream_seed(seed, static_cast<uint64_t>(ti)), mc_dropout, cancel);
      },
      cancel);
  // Skipped tasks produce no exception; surface the cancellation uniformly.
  runtime::check_cancel(cancel);
  return out;
}

std::vector<WindowSample> GenDTModel::sample_windows(const std::vector<context::Window>& windows,
                                                     uint64_t seed, bool mc_dropout,
                                                     const runtime::CancelToken* cancel) const {
  std::mt19937_64 rng(seed);
  std::vector<WindowSample> out;
  out.reserve(windows.size());
  Mat tail;  // last m generated rows, carried across windows
  for (const auto& w : windows) {
    runtime::check_cancel(cancel);
    Forward fwd = forward(w, tail, rng, /*training=*/false, mc_dropout);
    WindowSample s;
    s.output = Mat(w.len, cfg_.num_channels);
    s.mean = Mat(w.len, cfg_.num_channels);
    for (int t = 0; t < w.len; ++t) {
      for (int ch = 0; ch < cfg_.num_channels; ++ch) {
        s.output(t, ch) = fwd.outputs[static_cast<size_t>(t)].value()(0, ch);
        s.mean(t, ch) =
            fwd.agg_out_t.empty()
                ? s.output(t, ch)
                : fwd.agg_out_t[static_cast<size_t>(t)].value()(0, ch) + fwd.res_mu(t, ch);
      }
    }
    s.res_mu = std::move(fwd.res_mu);
    s.res_sigma = std::move(fwd.res_sigma);

    // Update the autoregressive tail from this window's end.
    const int m = cfg_.resgen_lookback;
    tail = Mat(m, cfg_.num_channels);
    for (int i = 0; i < m; ++i) {
      const int src = std::max(0, w.len - m + i);
      for (int ch = 0; ch < cfg_.num_channels; ++ch) tail(i, ch) = s.output(src, ch);
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool GenDTModel::save(const std::string& path) const {
  auto params = generator_params();
  for (auto& p : discriminator_params()) params.push_back(p);
  if (!cfg_.use_resgen)  // keep checkpoints complete regardless of ablation
    for (auto& p : resgen_.params()) params.push_back(p);
  return nn::save_params(params, path);
}

nn::LoadResult GenDTModel::load(const std::string& path, nn::LoadMode mode) {
  auto params = generator_params();
  for (auto& p : discriminator_params()) params.push_back(p);
  if (!cfg_.use_resgen)
    for (auto& p : resgen_.params()) params.push_back(p);
  return nn::load_params(params, path, mode);
}

namespace {

// One training worker: a full model replica whose parameter nodes act as the
// private gradient buffer for the windows this worker processes. Replicas
// share nothing with the master model, so per-window backward passes never
// race on the master's grad buffers.
struct TrainWorker {
  explicit TrainWorker(const GenDTConfig& cfg)
      : model(cfg),
        gen_params(model.generator_params()),
        disc_params(model.discriminator_params()) {}

  GenDTModel model;
  std::vector<nn::NamedParam> gen_params;
  std::vector<nn::NamedParam> disc_params;

  // Overwrite this replica's parameter values with the master's (same param
  // order by construction — both sides enumerate the same module tree).
  void sync_from(const std::vector<nn::NamedParam>& master_gen,
                 const std::vector<nn::NamedParam>& master_disc) {
    assert(gen_params.size() == master_gen.size());
    assert(disc_params.size() == master_disc.size());
    for (size_t i = 0; i < master_gen.size(); ++i)
      gen_params[i].tensor.mutable_value() = master_gen[i].tensor.value();
    for (size_t i = 0; i < master_disc.size(); ++i)
      disc_params[i].tensor.mutable_value() = master_disc[i].tensor.value();
  }
};

void snapshot_grads(const std::vector<nn::NamedParam>& params, std::vector<Mat>& out) {
  out.resize(params.size());
  for (size_t i = 0; i < params.size(); ++i) out[i] = params[i].tensor.grad();
}

// Ordered reduction: master grads = sum of per-window snapshots in window
// index order. The order is what pins the FP rounding sequence — summing in
// completion order would make results depend on thread scheduling.
void reduce_grads(const std::vector<nn::NamedParam>& params,
                  const std::vector<std::vector<Mat>>& snapshots, int count) {
  for (auto& p : params) p.tensor.zero_grad();
  for (int i = 0; i < count; ++i) {
    const auto& snap = snapshots[static_cast<size_t>(i)];
    for (size_t j = 0; j < params.size(); ++j)
      if (!snap[j].empty()) params[j].tensor.accumulate_grad(snap[j]);
  }
}

}  // namespace

TrainStats train_gendt(GenDTModel& model, const std::vector<context::Window>& windows,
                       const TrainConfig& cfg) {
  TrainStats stats;
  if (windows.empty()) return stats;

  nn::Adam gen_opt({.lr = cfg.lr_gen, .clip_norm = 5.0});
  nn::Adam disc_opt({.lr = cfg.lr_disc, .clip_norm = 5.0});
  const auto gen_params = model.generator_params();
  const auto disc_params = model.discriminator_params();
  if (!cfg.resume_opt_state.empty()) {
    // Transactional restore of both optimizers' Adam slots; a malformed
    // record set refuses to train rather than silently restarting Adam
    // from step 0 (which would break resume determinism).
    if (!gen_opt.import_state(gen_params, "adam.gen", cfg.resume_opt_state) ||
        !disc_opt.import_state(disc_params, "adam.disc", cfg.resume_opt_state)) {
      stats.error = "malformed resume optimizer state (adam.gen/adam.disc records)";
      return stats;
    }
  }
  const bool use_gan = model.config().use_gan;
  const double lambda = model.config().lambda_gan;
  const int nch = model.config().num_channels;

  // Every thread count — including 1 — runs the same replica / snapshot /
  // ordered-reduction path. A serial "fast path" accumulating directly into
  // the master grads would produce a *different* FP rounding sequence
  // (addition is not associative), breaking bitwise equality across thread
  // counts, which runtime_determinism_test enforces.
  const int batch_cap = std::max(1, cfg.windows_per_step);
  const int pool_width = std::min(cfg.parallelism.resolved(), batch_cap);
  const runtime::Parallelism train_par{.threads = pool_width};
  std::vector<std::unique_ptr<TrainWorker>> workers;
  workers.reserve(static_cast<size_t>(pool_width));
  for (int i = 0; i < pool_width; ++i)
    workers.push_back(std::make_unique<TrainWorker>(model.config()));

  std::vector<size_t> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Per-window slots for the current accumulation step. Workers write only
  // their own windows' slots; the main thread reads them after the join.
  std::vector<uint64_t> win_seed(static_cast<size_t>(batch_cap));
  std::vector<std::vector<Mat>> win_grads(static_cast<size_t>(batch_cap));
  std::vector<double> win_mse(static_cast<size_t>(batch_cap), 0.0);
  std::vector<double> win_gan(static_cast<size_t>(batch_cap), 0.0);

  for (int epoch = cfg.start_epoch; epoch < cfg.epochs; ++epoch) {
    // Every epoch runs on its own derived RNG stream: the shuffle order and
    // all per-window seeds below are a pure function of (seed, epoch), so a
    // run resumed at an epoch boundary replays the remaining epochs
    // bit-for-bit without persisting any generator internals.
    std::mt19937_64 rng(runtime::derive_stream_seed(cfg.seed, static_cast<uint64_t>(epoch)));
    // Re-derive the permutation from identity so it depends only on this
    // epoch's stream, not on how many epochs ran before in this process.
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    double mse_sum = 0.0, gan_sum = 0.0;
    int steps = 0;

    for (size_t start = 0; start < order.size(); start += static_cast<size_t>(batch_cap)) {
      const size_t end = std::min(order.size(), start + static_cast<size_t>(batch_cap));
      const int batch = static_cast<int>(end - start);
      const double inv_batch = 1.0 / static_cast<double>(batch);

      // ---- Generator update -------------------------------------------
      // Per-window seeds come off the master stream on this thread, in
      // window order, before any parallel work starts: the stream consumed
      // by each window is a pure function of (cfg.seed, step, index).
      for (int i = 0; i < batch; ++i) win_seed[static_cast<size_t>(i)] = rng();
      for (auto& wk : workers) wk->sync_from(gen_params, disc_params);
      {
        // Replicas hold identical values, so which replica serves which
        // chunk cannot affect the math — checkout order is free to race.
        std::atomic<int> next_worker{0};
        runtime::parallel_for(train_par, batch, [&](long lo, long hi) {
          TrainWorker& wk = *workers[static_cast<size_t>(next_worker.fetch_add(1))];
          for (long i = lo; i < hi; ++i) {
            const context::Window& w = windows[order[start + static_cast<size_t>(i)]];
            std::mt19937_64 wrng(win_seed[static_cast<size_t>(i)]);
            for (auto& p : wk.gen_params) p.tensor.zero_grad();
            auto fwd = wk.model.forward(w, Mat{}, wrng, /*training=*/true);
            std::vector<Tensor> rows = fwd.outputs;
            Tensor pred = nn::concat_rows(rows);
            Tensor target = Tensor::constant(w.target);
            Tensor loss = nn::mse_loss(pred, target);
            win_mse[static_cast<size_t>(i)] = loss.item();
            win_gan[static_cast<size_t>(i)] = 0.0;
            if (!fwd.res_mu_t.empty() && wk.model.config().nll_weight > 0.0) {
              // Calibrate ResGen's Gaussian to the residual the aggregation
              // network leaves behind: residual target = x - G^a(c), with
              // the aggregation output detached so the NLL only shapes
              // ResGen.
              std::vector<Tensor> resid;
              resid.reserve(rows.size());
              for (int t = 0; t < w.len; ++t) {
                Mat row(1, nch);
                for (int ch = 0; ch < nch; ++ch) row(0, ch) = w.target(t, ch);
                resid.push_back(Tensor::constant(std::move(row)) -
                                nn::detach(fwd.agg_out_t[static_cast<size_t>(t)]));
              }
              Tensor nll = nn::gaussian_nll(nn::concat_rows(fwd.res_mu_t),
                                            nn::concat_rows(fwd.res_log_sigma_t),
                                            nn::concat_rows(resid));
              loss = loss + nll * wk.model.config().nll_weight;
            }
            if (use_gan) {
              Tensor fake_logit = wk.model.discriminate(rows, fwd.h_avg, wrng);
              // Non-saturating generator loss: push fake towards "real".
              Tensor ones = Tensor::constant(Mat::ones(1, 1));
              Tensor g_gan = nn::bce_with_logits(fake_logit, ones);
              win_gan[static_cast<size_t>(i)] = g_gan.item();
              loss = loss + g_gan * lambda;
            }
            loss = loss * inv_batch;
            loss.backward();
            snapshot_grads(wk.gen_params, win_grads[static_cast<size_t>(i)]);
          }
        });
      }
      reduce_grads(gen_params, win_grads, batch);
      gen_opt.step(gen_params);

      double batch_mse = 0.0, batch_gan = 0.0;
      for (int i = 0; i < batch; ++i) {
        batch_mse += win_mse[static_cast<size_t>(i)];
        batch_gan += win_gan[static_cast<size_t>(i)];
      }

      // ---- Discriminator update ----------------------------------------
      if (use_gan) {
        for (int i = 0; i < batch; ++i) win_seed[static_cast<size_t>(i)] = rng();
        // Re-sync: the generator step above changed the master's gen params.
        for (auto& wk : workers) wk->sync_from(gen_params, disc_params);
        std::atomic<int> next_worker{0};
        runtime::parallel_for(train_par, batch, [&](long lo, long hi) {
          TrainWorker& wk = *workers[static_cast<size_t>(next_worker.fetch_add(1))];
          for (long i = lo; i < hi; ++i) {
            const context::Window& w = windows[order[start + static_cast<size_t>(i)]];
            std::mt19937_64 wrng(win_seed[static_cast<size_t>(i)]);
            for (auto& p : wk.disc_params) p.tensor.zero_grad();
            auto fwd = wk.model.forward(w, Mat{}, wrng, /*training=*/true);
            // Fake sequence, detached so only D updates here.
            std::vector<Tensor> fake_rows;
            fake_rows.reserve(fwd.outputs.size());
            for (const auto& o : fwd.outputs) fake_rows.push_back(nn::detach(o));
            std::vector<Tensor> real_rows;
            real_rows.reserve(static_cast<size_t>(w.len));
            for (int t = 0; t < w.len; ++t) {
              Mat row(1, nch);
              for (int ch = 0; ch < nch; ++ch) row(0, ch) = w.target(t, ch);
              real_rows.push_back(Tensor::constant(std::move(row)));
            }
            Tensor real_logit = wk.model.discriminate(real_rows, fwd.h_avg, wrng);
            Tensor fake_logit = wk.model.discriminate(fake_rows, fwd.h_avg, wrng);
            Tensor ones = Tensor::constant(Mat::ones(1, 1));
            Tensor zeros = Tensor::constant(Mat::zeros(1, 1));
            Tensor d_loss = (nn::bce_with_logits(real_logit, ones) +
                             nn::bce_with_logits(fake_logit, zeros)) *
                            (0.5 * inv_batch);
            d_loss.backward();
            snapshot_grads(wk.disc_params, win_grads[static_cast<size_t>(i)]);
          }
        });
        reduce_grads(disc_params, win_grads, batch);
        disc_opt.step(disc_params);
      }

      mse_sum += batch_mse * inv_batch;
      gan_sum += batch_gan * inv_batch;
      ++steps;
    }
    stats.mse_per_epoch.push_back(mse_sum / std::max(1, steps));
    stats.gan_per_epoch.push_back(gan_sum / std::max(1, steps));
    if (cfg.verbose) {
      std::fprintf(stderr, "[gendt] epoch %d mse=%.4f gan=%.4f\n", epoch,
                   stats.mse_per_epoch.back(), stats.gan_per_epoch.back());
    }
    if (cfg.on_epoch_end) {
      TrainCheckpoint tc;
      tc.epochs_done = epoch + 1;
      gen_opt.export_state(gen_params, "adam.gen", tc.opt_state);
      disc_opt.export_state(disc_params, "adam.disc", tc.opt_state);
      cfg.on_epoch_end(tc);
    }
  }
  return stats;
}

namespace {

// Shared MC-dropout reduction behind model_uncertainty and
// model_uncertainty_fast. Both variants MUST reduce through this one
// function, in this TU (default FP flags): the fast variant's bitwise-parity
// claim covers the reduction as well as the passes.
double uncertainty_reduce(const std::vector<std::vector<WindowSample>>& passes,
                          const std::vector<context::Window>& windows, int nch, int mc_samples) {
  double acc = 0.0;
  long count = 0;
  for (size_t wi = 0; wi < windows.size(); ++wi) {
    const int len = windows[wi].len;
    for (int t = 0; t < len; ++t) {
      for (int ch = 0; ch < nch; ++ch) {
        double mu_s = 0.0, mu_s2 = 0.0, sg_s = 0.0, sg_s2 = 0.0;
        for (int s = 0; s < mc_samples; ++s) {
          const double mu = passes[static_cast<size_t>(s)][wi].res_mu(t, ch);
          const double sg = passes[static_cast<size_t>(s)][wi].res_sigma(t, ch);
          mu_s += mu;
          mu_s2 += mu * mu;
          sg_s += sg;
          sg_s2 += sg * sg;
        }
        const double n = static_cast<double>(mc_samples);
        const double mu_var = std::max(0.0, mu_s2 / n - (mu_s / n) * (mu_s / n));
        const double sg_var = std::max(0.0, sg_s2 / n - (sg_s / n) * (sg_s / n));
        acc += std::sqrt(mu_var) + std::sqrt(sg_var);
        ++count;
      }
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace

double model_uncertainty(const GenDTModel& model, const std::vector<context::Window>& windows,
                         int mc_samples, uint64_t seed) {
  if (windows.empty() || mc_samples < 2 || !model.config().use_resgen) return 0.0;
  const int nch = model.config().num_channels;

  // Collect ResGen parameters across MC-dropout passes. Passes are mutually
  // independent (each gets its own seed and writes its own slot), so they
  // fan out across the worker pool; the reduction below reads the slots in
  // index order either way.
  std::vector<std::vector<WindowSample>> passes(static_cast<size_t>(mc_samples));
  runtime::parallel_tasks(model.config().parallelism, mc_samples, [&](int s) {
    passes[static_cast<size_t>(s)] = model.sample_windows(
        windows, seed + static_cast<uint64_t>(s) * 7919, /*mc_dropout=*/true);
  });

  return uncertainty_reduce(passes, windows, nch, mc_samples);
}

double model_uncertainty_fast(const GenDTModel& model, const std::vector<context::Window>& windows,
                              int mc_samples, uint64_t seed) {
  if (windows.empty() || mc_samples < 2 || !model.config().use_resgen) return 0.0;
  const int nch = model.config().num_channels;

  // Every MC-dropout pass is one lane of a single batched rollout: lane s
  // runs on the same derived seed as the reference pass s, and lane-bitwise
  // parity (batched_infer_session.h) + fast-path parity (infer_session.h)
  // make each lane's samples the exact bits of that sample_windows call — so
  // this returns model_uncertainty()'s exact value with the hot loop on
  // [mc_samples x d] GEMMs instead of mc_samples independent rollouts.
  std::vector<BatchLane> lanes(static_cast<size_t>(mc_samples));
  for (int s = 0; s < mc_samples; ++s) {
    lanes[static_cast<size_t>(s)].windows = &windows;
    lanes[static_cast<size_t>(s)].seed = seed + static_cast<uint64_t>(s) * 7919;
  }
  BatchedInferenceSession session(model);
  std::vector<BatchLaneResult> lane_results = session.run(lanes, /*mc_dropout=*/true);

  std::vector<std::vector<WindowSample>> passes(static_cast<size_t>(mc_samples));
  for (int s = 0; s < mc_samples; ++s)
    passes[static_cast<size_t>(s)] = std::move(lane_results[static_cast<size_t>(s)].samples);
  return uncertainty_reduce(passes, windows, nch, mc_samples);
}

GenDTGenerator::GenDTGenerator(GenDTConfig model_cfg, TrainConfig train_cfg,
                               context::KpiNorm norm)
    : model_(model_cfg), train_cfg_(train_cfg), norm_(std::move(norm)) {}

GenDTGenerator::~GenDTGenerator() = default;

void GenDTGenerator::set_fast_path(bool on) {
  runtime::MutexLock lock(session_mu_);
  if (fast_path_ != on) {
    sessions_.clear();
    batch_sessions_.clear();
  }
  fast_path_ = on;
}

void GenDTGenerator::prewarm(size_t count) {
  runtime::MutexLock lock(session_mu_);
  if (!fast_path_) return;  // the reference path holds no pool
  while (sessions_.size() < count)
    sessions_.push_back(std::make_unique<InferenceSession>(model_));
}

nn::LoadResult GenDTGenerator::load_packed(nn::PackedModel pack) {
  std::vector<nn::NamedParam> params = model_.generator_params();
  for (auto& p : model_.discriminator_params()) params.push_back(p);
  nn::LoadResult res = nn::apply_packed(params, pack, nn::LoadMode::kStrict);
  if (!res.ok()) return res;  // transactional: nothing was modified
  pack_ = std::make_unique<nn::PackedModel>(std::move(pack));
  // Drop warm sessions, mirroring set_fast_path: no session may straddle a
  // weight swap.
  runtime::MutexLock lock(session_mu_);
  sessions_.clear();
  batch_sessions_.clear();
  return res;
}

size_t GenDTGenerator::warm_peak_bytes() const {
  runtime::MutexLock lock(session_mu_);
  size_t bytes = 0;
  for (const auto& s : sessions_) bytes += s->peak_bytes();
  for (const auto& s : batch_sessions_) bytes += s->peak_bytes();
  return bytes;
}

std::vector<WindowSample> GenDTGenerator::sample_fast(
    const std::vector<context::Window>& windows, uint64_t seed,
    const runtime::CancelToken* cancel) const {
  // Lease a warm session from the pool (or build one); return it even when
  // the rollout unwinds with CancelledError, so cancellations don't leak the
  // warmed buffers.
  std::unique_ptr<InferenceSession> session;
  {
    runtime::MutexLock lock(session_mu_);
    if (!sessions_.empty()) {
      session = std::move(sessions_.back());
      sessions_.pop_back();
    }
  }
  if (!session) session = std::make_unique<InferenceSession>(model_);
  auto pool_return = [this, &session]() {
    runtime::MutexLock lock(session_mu_);
    sessions_.push_back(std::move(session));
  };
  try {
    auto samples = session->run(windows, seed, /*mc_dropout=*/false, cancel);
    pool_return();
    return samples;
  } catch (...) {
    pool_return();
    throw;
  }
}

GeneratedSeries GenDTGenerator::generate(const std::vector<context::Window>& windows,
                                         uint64_t seed) const {
  return generate(windows, seed, nullptr);
}

namespace {

// Denormalization shared by generate() and generate_batch(): per-channel
// inverse normalization plus the discrete-KPI snap (CQI classification grid).
// One function so the batched path's "same bits as generate()" claim covers
// the physical-unit conversion too.
GeneratedSeries denormalize_samples(const std::vector<WindowSample>& samples,
                                    const context::KpiNorm& norm,
                                    const std::vector<sim::Kpi>& kpis, int nch) {
  GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch), {});
  for (const auto& s : samples) {
    for (int t = 0; t < s.output.rows(); ++t) {
      for (int ch = 0; ch < nch; ++ch) {
        double v = norm.denormalize(ch, s.output(t, ch));
        if (static_cast<size_t>(ch) < kpis.size() && kpis[static_cast<size_t>(ch)] == sim::Kpi::kCqi) {
          v = std::clamp(std::round(v), static_cast<double>(radio::kCqiMin),
                         static_cast<double>(radio::kCqiMax));
        }
        out.channels[static_cast<size_t>(ch)].push_back(v);
      }
    }
  }
  return out;
}

}  // namespace

GeneratedSeries GenDTGenerator::generate(const std::vector<context::Window>& windows,
                                         uint64_t seed,
                                         const runtime::CancelToken* cancel) const {
  const int nch = model_.config().num_channels;
  // Snapshot the route flag under the pool lock (serve workers call this
  // concurrently with set_fast_path); never hold it across the rollout.
  bool fast;
  {
    runtime::MutexLock lock(session_mu_);
    fast = fast_path_;
  }
  const std::vector<WindowSample> samples =
      fast ? sample_fast(windows, seed, cancel)
           : model_.sample_windows(windows, seed, /*mc_dropout=*/false, cancel);
  return denormalize_samples(samples, norm_, kpis_, nch);
}

std::vector<GenerateBatchResult> GenDTGenerator::generate_batch(
    const std::vector<GenerateBatchItem>& items) const {
  bool fast;
  {
    runtime::MutexLock lock(session_mu_);
    fast = fast_path_;
  }
  // The reference path has no batched rollout; the serial default already is
  // the contract (exact per-item generate() bits).
  if (!fast || items.empty()) return TimeSeriesGenerator::generate_batch(items);

  std::vector<BatchLane> lanes(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    lanes[i].windows = items[i].windows;
    lanes[i].seed = items[i].seed;
    lanes[i].cancel = items[i].cancel;
  }

  // Lease a warm batched session (same pool discipline as sample_fast:
  // session_mu_ held only for the lease/return, never across the rollout).
  std::unique_ptr<BatchedInferenceSession> session;
  {
    runtime::MutexLock lock(session_mu_);
    if (!batch_sessions_.empty()) {
      session = std::move(batch_sessions_.back());
      batch_sessions_.pop_back();
    }
  }
  if (!session) session = std::make_unique<BatchedInferenceSession>(model_);
  auto pool_return = [this, &session]() {
    runtime::MutexLock lock(session_mu_);
    batch_sessions_.push_back(std::move(session));
  };

  std::vector<BatchLaneResult> lane_results;
  try {
    lane_results = session->run(lanes, /*mc_dropout=*/false);
    pool_return();
  } catch (...) {
    pool_return();
    // A whole-batch failure (e.g. a malformed window tripping a shape check)
    // must not fail innocent items: re-run serially so each item carries its
    // own ok/error — and the survivors still get their exact generate() bits.
    return TimeSeriesGenerator::generate_batch(items);
  }

  const int nch = model_.config().num_channels;
  std::vector<GenerateBatchResult> results(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (lane_results[i].cancelled) {
      results[i].error = "cancelled";
      continue;
    }
    results[i].series = denormalize_samples(lane_results[i].samples, norm_, kpis_, nch);
    results[i].ok = true;
  }
  return results;
}

}  // namespace gendt::core
