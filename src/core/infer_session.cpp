// InferenceSession: the tape-free rollout. This file compiles with
// -ffp-contract=off (src/core/CMakeLists.txt) for the same reason as
// src/nn/infer.cpp — the residual combine below must round its mul and adds
// exactly like the graph's separate hadamard/add ops.
#include "gendt/core/infer_session.h"

#include <algorithm>
#include <cmath>

#include "gendt/nn/checks.h"
#include "gendt/runtime/cancel.h"
#include "gendt/sim/landuse.h"

namespace gendt::core {

using nn::Mat;
using nn::infer::Lease;

namespace {

// Window-level workspace slots. The MLP trunk uses [kMlpBase, kMlpBase + L]
// for its hidden activations, so kMlpBase must stay last.
enum MainSlot : int {
  // (the cross-window autoregressive tail lives in InferStreamState, not in
  // a workspace slot, so chunk-boundary snapshots are plain struct copies)
  kHavg = 0,   // [len x H] pooled node hidden states
  kAggH,       // [1 x H]
  kAggC,       // [1 x H]
  kAggX,       // [1 x H] h_avg row fed to the aggregation cell
  kAggGates,   // [1 x 4H]
  kAggScratch, // [1 x H] perturbation noise
  kAggOut,     // [len x nch] projected aggregation outputs
  kHeadRow,    // [1 x nch] per-step projection before copy-out
  kRecent,     // [m x nch] rolling ResGen lookback
  kU,          // [1 x res_in] ResGen input row
  kResHead,    // [1 x 2*nch] ResGen head (mu ++ raw log_sigma)
  kEps,        // [1 x nch] reparameterization noise
  kMlpBase,    // first MLP activation slot
};

// Per-cell workspace slots (each cell slot owns a private Workspace so the
// rollout can fan out with no shared mutable state).
enum CellSlot : int {
  kCellHist = 0,  // [len x H] hidden state per step (pooled afterwards)
  kCellH,         // [1 x H]
  kCellC,         // [1 x H]
  kCellX,         // [1 x in]
  kCellGates,     // [1 x 4H]
  kCellScratch,   // [1 x H]
};

// Fresh standard-normal draws, replaying model.cpp's gaussian_noise (a new
// distribution per call — no cached polar-method value carries over).
void gaussian_fill(double* dst, int n, std::mt19937_64& rng) {
  std::normal_distribution<double> g(0.0, 1.0);
  for (int i = 0; i < n; ++i) dst[i] = g(rng);
}

}  // namespace

size_t InferenceSession::allocations() const {
  size_t n = ws_.allocations();
  for (const auto& cws : cell_ws_) n += cws.allocations();
  return n;
}

size_t InferenceSession::peak_bytes() const {
  size_t bytes = ws_.peak_bytes();
  for (const auto& cws : cell_ws_) bytes += cws.peak_bytes();
  return bytes;
}

std::vector<WindowSample> InferenceSession::run(const std::vector<context::Window>& windows,
                                                uint64_t seed, bool mc_dropout,
                                                const runtime::CancelToken* cancel) {
  InferStreamState state;
  state.reset(seed);
  return run_stream(windows, state, mc_dropout, cancel);
}

std::vector<WindowSample> InferenceSession::run_stream(
    const std::vector<context::Window>& windows, InferStreamState& state, bool mc_dropout,
    const runtime::CancelToken* cancel) {
  const GenDTConfig& cfg = model_->config();
  const int m = cfg.resgen_lookback;
  const int nch = cfg.num_channels;

  // The tail lives in the state (not a workspace lease) so a struct copy of
  // `state` is a complete chunk-boundary snapshot.
  if (state.tail.rows() != m || state.tail.cols() != nch) state.tail = Mat::zeros(m, nch);
  std::vector<WindowSample> out;
  out.reserve(windows.size());

  for (const auto& w : windows) {
    runtime::check_cancel(cancel);
    WindowSample s;
    run_window(w, state.have_tail ? &state.tail : nullptr, state.rng, mc_dropout, s);

    for (int i = 0; i < m; ++i) {
      const int src = std::max(0, w.len - m + i);
      for (int ch = 0; ch < nch; ++ch) state.tail(i, ch) = s.output(src, ch);
    }
    state.have_tail = true;
    out.push_back(std::move(s));
  }
  return out;
}

void InferenceSession::run_window(const context::Window& w, const Mat* prev_tail,
                                  std::mt19937_64& rng, bool mc_dropout, WindowSample& s) {
  const GenDTConfig& cfg = model_->config();
  const int len = w.len;
  const int H = cfg.hidden;
  const int nch = cfg.num_channels;
  const int m = cfg.resgen_lookback;
  const int n_cells = static_cast<int>(w.cell_attrs.size());
  const int node_in = context::kCellAttrs + cfg.noise_dim_node;

  // ---- G^n: per-cell rollout on private workspaces -----------------------
  // Same fan-out and per-cell seed scheme as GenDTModel::forward: seeds come
  // off the window stream in cell order before any parallel work, so the
  // math never depends on scheduling.
  if (static_cast<int>(cell_ws_.size()) < n_cells) cell_ws_.resize(static_cast<size_t>(n_cells));
  cell_seeds_.resize(static_cast<size_t>(std::max(n_cells, 0)));
  for (int ci = 0; ci < n_cells; ++ci) cell_seeds_[static_cast<size_t>(ci)] = rng();

  // Hidden-state histories outlive the parallel region (pooled below), so
  // they are checked out up front on this thread; each task leases only its
  // own cell's step buffers.
  std::vector<Lease> hists;
  hists.reserve(static_cast<size_t>(n_cells));
  for (int ci = 0; ci < n_cells; ++ci)
    hists.emplace_back(cell_ws_[static_cast<size_t>(ci)], kCellHist, len, H);

  const nn::LstmCell& node = model_->node_cell();
  runtime::parallel_tasks(cfg.parallelism, n_cells, [&](int ci) {
    nn::infer::Workspace& cws = cell_ws_[static_cast<size_t>(ci)];
    Mat& hist = hists[static_cast<size_t>(ci)].mat();
    Lease h(cws, kCellH, 1, H);
    Lease c(cws, kCellC, 1, H);
    Lease x(cws, kCellX, 1, node_in);
    Lease gates(cws, kCellGates, 1, 4 * H);
    Lease scratch(cws, kCellScratch, 1, H);
    h.mat().set_zero();
    c.mat().set_zero();

    std::mt19937_64 cell_rng(cell_seeds_[static_cast<size_t>(ci)]);
    std::normal_distribution<double> g01(0.0, 1.0);  // persists across steps
    const Mat& attrs = w.cell_attrs[static_cast<size_t>(ci)];
    for (int t = 0; t < len; ++t) {
      for (int a = 0; a < context::kCellAttrs; ++a) x.mat()(0, a) = attrs(t, a);
      for (int a = 0; a < cfg.noise_dim_node; ++a)
        x.mat()(0, context::kCellAttrs + a) = cfg.noise_scale_node * g01(cell_rng);
      nn::infer::lstm_step_fwd(node, x.mat(), cfg.stochastic, cell_rng, h.mat(), c.mat(),
                               gates.mat(), scratch.mat());
      const double* hp = h.mat().data().data();
      for (int j = 0; j < H; ++j) hist(t, j) = hp[j];
    }
  });

  // ---- Graph pooling: h_avg = mean over cells, summed in cell order ------
  Lease havg(ws_, kHavg, len, H);
  if (n_cells == 0) {
    havg.mat().set_zero();
  } else {
    const double inv = 1.0 / static_cast<double>(n_cells);
    for (int t = 0; t < len; ++t) {
      for (int j = 0; j < H; ++j) {
        double sum = hists[0].mat()(t, j);
        for (int ci = 1; ci < n_cells; ++ci) sum += hists[static_cast<size_t>(ci)].mat()(t, j);
        havg.mat()(t, j) = sum * inv;
      }
    }
  }
  hists.clear();  // release the per-cell histories

  // ---- G^a: aggregation LSTM + head ------------------------------------
  // The head projection consumes no RNG, so projecting inside the step loop
  // (instead of after the full rollout like LstmNetwork::forward) leaves
  // both the stream and the values untouched.
  const nn::LstmCell& agg_cell = model_->agg_net().cell();
  const nn::Linear& agg_head = model_->agg_net().head();
  Lease agg_out(ws_, kAggOut, len, nch);
  {
    Lease ah(ws_, kAggH, 1, H);
    Lease ac(ws_, kAggC, 1, H);
    Lease ax(ws_, kAggX, 1, H);
    Lease agates(ws_, kAggGates, 1, 4 * H);
    Lease ascratch(ws_, kAggScratch, 1, H);
    Lease head_row(ws_, kHeadRow, 1, nch);
    ah.mat().set_zero();
    ac.mat().set_zero();
    for (int t = 0; t < len; ++t) {
      for (int j = 0; j < H; ++j) ax.mat()(0, j) = havg.mat()(t, j);
      nn::infer::lstm_step_fwd(agg_cell, ax.mat(), cfg.stochastic, rng, ah.mat(), ac.mat(),
                               agates.mat(), ascratch.mat());
      nn::infer::linear_fwd(ah.mat(), agg_head, head_row.mat());
      for (int ch = 0; ch < nch; ++ch) agg_out.mat()(t, ch) = head_row.mat()(0, ch);
    }
  }

  // ---- G^r: autoregressive residual ------------------------------------
  s.output = Mat(len, nch);
  s.mean = Mat(len, nch);
  s.res_mu = Mat::zeros(len, nch);
  s.res_sigma = Mat::zeros(len, nch);

  if (!cfg.use_resgen) {
    for (int t = 0; t < len; ++t) {
      for (int ch = 0; ch < nch; ++ch) {
        s.output(t, ch) = agg_out.mat()(t, ch);
        s.mean(t, ch) = s.output(t, ch);
      }
    }
    return;
  }

  const nn::Mlp& resgen = model_->resgen();
  const int res_in = sim::kNumEnvAttributes + cfg.noise_dim_res + m * nch;
  Lease recent(ws_, kRecent, m, nch);
  recent.mat().set_zero();
  if (prev_tail != nullptr) {
    for (int i = 0; i < m; ++i) {
      const int src = prev_tail->rows() - m + i;
      if (src >= 0)
        for (int ch = 0; ch < nch; ++ch) recent.mat()(i, ch) = (*prev_tail)(src, ch);
    }
  }

  Lease u(ws_, kU, 1, res_in);
  Lease head(ws_, kResHead, 1, 2 * nch);
  Lease eps(ws_, kEps, 1, nch);
  for (int t = 0; t < len; ++t) {
    int col = 0;
    for (int a = 0; a < sim::kNumEnvAttributes; ++a) u.mat()(0, col++) = w.env(t, a);
    gaussian_fill(u.mat().data().data() + col, cfg.noise_dim_res, rng);  // z1
    col += cfg.noise_dim_res;
    for (int r = 0; r < m; ++r)
      for (int ch = 0; ch < nch; ++ch) u.mat()(0, col++) = recent.mat()(r, ch);

    // Draw order per step matches forward(): z1, then the dropout mask
    // inside the MLP (MC dropout only), then eps.
    nn::infer::mlp_fwd(resgen, u.mat(), rng, /*training=*/mc_dropout, ws_, kMlpBase,
                       head.mat());
    for (int ch = 0; ch < nch; ++ch) {
      const double mu = head.mat()(0, ch);
      // log_sigma = tanh(raw * 0.25) * 4.0, sigma = exp(log_sigma) — the
      // graph's scale / tanh / scale / exp ops, in order.
      const double log_sigma = std::tanh(head.mat()(0, nch + ch) * 0.25) * 4.0;
      s.res_mu(t, ch) = mu;
      s.res_sigma(t, ch) = std::exp(log_sigma);
    }
    gaussian_fill(eps.mat().data().data(), nch, rng);
    for (int ch = 0; ch < nch; ++ch) {
      const double agg_v = agg_out.mat()(t, ch);
      // out = (agg + mu) + sigma*eps; mean = agg + mu (same adds as the
      // graph's left-associated `out_t + mu + sigma * eps`).
      const double mean_v = agg_v + s.res_mu(t, ch);
      s.mean(t, ch) = mean_v;
      s.output(t, ch) = mean_v + s.res_sigma(t, ch) * eps.mat()(0, ch);
    }

    for (int r = 0; r + 1 < m; ++r)
      for (int ch = 0; ch < nch; ++ch) recent.mat()(r, ch) = recent.mat()(r + 1, ch);
    for (int ch = 0; ch < nch; ++ch) recent.mat()(m - 1, ch) = s.output(t, ch);
  }
}

}  // namespace gendt::core
