// BatchedInferenceSession: the lane-batched tape-free rollout. This file
// compiles with -ffp-contract=off (src/core/CMakeLists.txt) for the same
// reason as infer_session.cpp — the residual combine below must round its
// mul and adds exactly like the graph's separate hadamard/add ops, or the
// lane-bitwise-parity contract breaks.
//
// Structure of one window ROUND (all active lanes, lockstep):
//   1. per lane, in lane order: draw the per-cell seeds off the lane stream
//      (cell order), exactly like the single-lane run_window prologue.
//   2. G^n over ALL (lane, cell) pairs as one [P x *] batch: per timestep,
//      live pairs fill their input row (attrs + z0 draws from the pair's
//      private rng) and one lstm_step_fwd_batch advances every live pair.
//   3. per lane: pool its own cells' histories in cell order (h_avg).
//   4. G^a over the active lanes as one [L x *] batch: perturbation draws
//      come from each lane's window stream; the head projects the whole
//      batch in one linear_fwd.
//   5. G^r lockstep: per timestep, live lanes assemble u rows (env ++ z1 ++
//      recent), one mlp_fwd_batch runs the trunk with per-lane dropout
//      masks, then each live lane reparameterizes and advances its recent
//      tail.
//   6. per lane: update the cross-window tail state, emit the WindowSample.
//
// Ragged lengths inside a round: a row whose lane's window is shorter than
// the round's longest simply rides retired (null rng) in the shared GEMMs —
// no draws, no state updates, values dead. Ragged window COUNTS compact at
// round boundaries: exhausted/cancelled lanes leave the active set.
#include "gendt/core/batched_infer_session.h"

#include <algorithm>
#include <cmath>

#include "gendt/nn/checks.h"
#include "gendt/runtime/cancel.h"
#include "gendt/sim/landuse.h"

namespace gendt::core {

using nn::Mat;
using nn::infer::Lease;

namespace {

// Fixed batch-wide workspace slots in ws_. The ResGen trunk uses
// [kMlpBase, kMlpBase + L] so kMlpBase must stay last.
enum BatchSlot : int {
  kGnX = 0,      // [P x node_in] per-(lane,cell) G^n inputs
  kGnH,          // [P x H]
  kGnC,          // [P x H]
  kGnGates,      // [P x 4H]
  kGnScratch,    // [P x H]
  kAggH,         // [L x H]
  kAggC,         // [L x H]
  kAggX,         // [L x H] pooled rows fed to the aggregation cell
  kAggGates,     // [L x 4H]
  kAggScratch,   // [L x H]
  kHeadRows,     // [L x nch] batched head projection
  kU,            // [L x res_in] ResGen input rows
  kResHead,      // [L x 2*nch] ResGen head (mu ++ raw log_sigma)
  kEps,          // [L x nch] reparameterization noise
  kMlpBase,      // first MLP activation slot
};

// Fresh standard-normal draws, replaying model.cpp's gaussian_noise (a new
// distribution per call — no cached polar-method value carries over).
void gaussian_fill(double* dst, int n, std::mt19937_64& rng) {
  std::normal_distribution<double> g(0.0, 1.0);
  for (int i = 0; i < n; ++i) dst[i] = g(rng);
}

}  // namespace

// Per-lane rollout state for one run(): the carried stream state (rng +
// autoregressive tail — the same InferStreamState the streaming layer
// snapshots) plus result bookkeeping.
struct BatchedInferenceSession::LaneCtx {
  const BatchLane* lane = nullptr;
  int index = 0;  // original lane index (results key)
  InferStreamState state;
  BatchLaneResult* result = nullptr;
  // Round-scoped: the window being generated and its in-progress sample.
  const context::Window* w = nullptr;
  WindowSample sample;
};

size_t BatchedInferenceSession::allocations() const {
  return ws_.allocations() + hist_ws_.allocations() + havg_ws_.allocations() +
         aggout_ws_.allocations() + recent_ws_.allocations();
}

size_t BatchedInferenceSession::peak_bytes() const {
  return ws_.peak_bytes() + hist_ws_.peak_bytes() + havg_ws_.peak_bytes() +
         aggout_ws_.peak_bytes() + recent_ws_.peak_bytes();
}

std::vector<BatchLaneResult> BatchedInferenceSession::run(const std::vector<BatchLane>& lanes,
                                                          bool mc_dropout) {
  const GenDTConfig& cfg = model_->config();
  const int m = cfg.resgen_lookback;
  const int nch = cfg.num_channels;

  std::vector<BatchLaneResult> results(lanes.size());
  std::vector<LaneCtx> ctx(lanes.size());
  std::vector<LaneCtx*> act;
  act.reserve(lanes.size());
  for (size_t l = 0; l < lanes.size(); ++l) {
    GENDT_CHECK(lanes[l].windows != nullptr, "BatchLane with null windows");
    assert(lanes[l].windows != nullptr);
    ctx[l].lane = &lanes[l];
    ctx[l].index = static_cast<int>(l);
    ctx[l].state.reset(lanes[l].seed);
    ctx[l].state.tail = Mat::zeros(m, nch);
    ctx[l].result = &results[l];
    act.push_back(&ctx[l]);
  }

  for (int round = 0; !act.empty(); ++round) {
    // Window-boundary retirement/compaction: poll each lane's token and
    // window count in lane order. Retired lanes keep what they produced.
    std::vector<LaneCtx*> live;
    live.reserve(act.size());
    for (LaneCtx* lc : act) {
      if (lc->lane->cancel != nullptr && lc->lane->cancel->cancelled()) {
        lc->result->cancelled = true;
        continue;
      }
      if (static_cast<size_t>(round) >= lc->lane->windows->size()) continue;
      lc->w = &(*lc->lane->windows)[static_cast<size_t>(round)];
      live.push_back(lc);
    }
    act.swap(live);
    if (act.empty()) break;

    run_round(act, round, mc_dropout);

    // Cross-window tail update + sample emission, per lane (same math as
    // InferenceSession::run_stream's boundary step).
    for (LaneCtx* lc : act) {
      const int len = lc->w->len;
      for (int i = 0; i < m; ++i) {
        const int src = std::max(0, len - m + i);
        for (int ch = 0; ch < nch; ++ch) lc->state.tail(i, ch) = lc->sample.output(src, ch);
      }
      lc->state.have_tail = true;
      lc->result->samples.push_back(std::move(lc->sample));
      lc->sample = WindowSample{};
    }
  }
  return results;
}

void BatchedInferenceSession::run_round(const std::vector<LaneCtx*>& act, int /*round*/,
                                        bool mc_dropout) {
  const GenDTConfig& cfg = model_->config();
  const int L = static_cast<int>(act.size());
  const int H = cfg.hidden;
  const int nch = cfg.num_channels;
  const int m = cfg.resgen_lookback;
  const int node_in = context::kCellAttrs + cfg.noise_dim_node;

  int max_len = 0;
  for (const LaneCtx* lc : act) max_len = std::max(max_len, lc->w->len);

  // ---- Per-cell seed draws, lane order / cell order ----------------------
  // Matches the single-lane prologue exactly: each lane's seeds come off its
  // own window stream in cell order before any rollout work.
  struct Pair {
    LaneCtx* lc;
    int ci;
    std::mt19937_64 rng;  // gendt-lint: allow(unseeded-mt19937) aggregate-constructed from the lane stream
    std::normal_distribution<double> g01{0.0, 1.0};  // persists across steps
  };
  std::vector<Pair> pairs;
  for (LaneCtx* lc : act) {
    const int n_cells = static_cast<int>(lc->w->cell_attrs.size());
    for (int ci = 0; ci < n_cells; ++ci) {
      pairs.push_back(Pair{lc, ci, std::mt19937_64{lc->state.rng()}});
    }
  }
  const int P = static_cast<int>(pairs.size());

  // ---- G^n: all (lane, cell) pairs in one [P x *] batch ------------------
  std::vector<Lease> hists;
  hists.reserve(pairs.size());
  for (int p = 0; p < P; ++p) hists.emplace_back(hist_ws_, p, pairs[static_cast<size_t>(p)].lc->w->len, H);

  const nn::LstmCell& node = model_->node_cell();
  if (P > 0) {
    Lease x(ws_, kGnX, P, node_in);
    Lease h(ws_, kGnH, P, H);
    Lease c(ws_, kGnC, P, H);
    Lease gates(ws_, kGnGates, P, 4 * H);
    Lease scratch(ws_, kGnScratch, P, H);
    h.mat().set_zero();
    c.mat().set_zero();
    x.mat().set_zero();  // retired rows must stay finite in the shared GEMM

    std::vector<std::mt19937_64*> rngs(pairs.size());
    for (int t = 0; t < max_len; ++t) {
      for (int p = 0; p < P; ++p) {
        Pair& pr = pairs[static_cast<size_t>(p)];
        if (t >= pr.lc->w->len) {
          rngs[static_cast<size_t>(p)] = nullptr;  // rides dead this step
          continue;
        }
        rngs[static_cast<size_t>(p)] = &pr.rng;
        const Mat& attrs = pr.lc->w->cell_attrs[static_cast<size_t>(pr.ci)];
        for (int a = 0; a < context::kCellAttrs; ++a) x.mat()(p, a) = attrs(t, a);
        for (int a = 0; a < cfg.noise_dim_node; ++a)
          x.mat()(p, context::kCellAttrs + a) = cfg.noise_scale_node * pr.g01(pr.rng);
      }
      nn::infer::lstm_step_fwd_batch(node, x.mat(), cfg.stochastic, rngs.data(), h.mat(), c.mat(),
                                     gates.mat(), scratch.mat());
      for (int p = 0; p < P; ++p) {
        if (rngs[static_cast<size_t>(p)] == nullptr) continue;
        const double* hp = h.mat().data().data() + static_cast<size_t>(p) * static_cast<size_t>(H);
        Mat& hist = hists[static_cast<size_t>(p)].mat();
        for (int j = 0; j < H; ++j) hist(t, j) = hp[j];
      }
    }
  }

  // ---- Graph pooling per lane: h_avg = mean over its cells, cell order ---
  std::vector<Lease> havgs;
  havgs.reserve(act.size());
  for (int li = 0; li < L; ++li) havgs.emplace_back(havg_ws_, li, act[static_cast<size_t>(li)]->w->len, H);
  {
    int pair_base = 0;
    for (int li = 0; li < L; ++li) {
      LaneCtx* lc = act[static_cast<size_t>(li)];
      const int len = lc->w->len;
      const int n_cells = static_cast<int>(lc->w->cell_attrs.size());
      Mat& havg = havgs[static_cast<size_t>(li)].mat();
      if (n_cells == 0) {
        havg.set_zero();
      } else {
        const double inv = 1.0 / static_cast<double>(n_cells);
        for (int t = 0; t < len; ++t) {
          for (int j = 0; j < H; ++j) {
            double sum = hists[static_cast<size_t>(pair_base)].mat()(t, j);
            for (int ci = 1; ci < n_cells; ++ci)
              sum += hists[static_cast<size_t>(pair_base + ci)].mat()(t, j);
            havg(t, j) = sum * inv;
          }
        }
      }
      pair_base += n_cells;
    }
  }
  hists.clear();  // release the per-pair histories

  // ---- G^a: aggregation LSTM + head over the [L x *] lane batch ----------
  std::vector<Lease> agg_outs;
  agg_outs.reserve(act.size());
  for (int li = 0; li < L; ++li)
    agg_outs.emplace_back(aggout_ws_, li, act[static_cast<size_t>(li)]->w->len, nch);
  {
    Lease ah(ws_, kAggH, L, H);
    Lease ac(ws_, kAggC, L, H);
    Lease ax(ws_, kAggX, L, H);
    Lease agates(ws_, kAggGates, L, 4 * H);
    Lease ascratch(ws_, kAggScratch, L, H);
    Lease head_rows(ws_, kHeadRows, L, nch);
    ah.mat().set_zero();
    ac.mat().set_zero();
    ax.mat().set_zero();

    const nn::LstmCell& agg_cell = model_->agg_net().cell();
    const nn::Linear& agg_head = model_->agg_net().head();
    std::vector<std::mt19937_64*> rngs(act.size());
    for (int t = 0; t < max_len; ++t) {
      for (int li = 0; li < L; ++li) {
        LaneCtx* lc = act[static_cast<size_t>(li)];
        if (t >= lc->w->len) {
          rngs[static_cast<size_t>(li)] = nullptr;
          continue;
        }
        rngs[static_cast<size_t>(li)] = &lc->state.rng;
        const Mat& havg = havgs[static_cast<size_t>(li)].mat();
        for (int j = 0; j < H; ++j) ax.mat()(li, j) = havg(t, j);
      }
      nn::infer::lstm_step_fwd_batch(agg_cell, ax.mat(), cfg.stochastic, rngs.data(), ah.mat(),
                                     ac.mat(), agates.mat(), ascratch.mat());
      // The head consumes no RNG, so projecting the whole batch per step
      // (one GEMM) leaves both the streams and the values untouched.
      nn::infer::linear_fwd(ah.mat(), agg_head, head_rows.mat());
      for (int li = 0; li < L; ++li) {
        if (rngs[static_cast<size_t>(li)] == nullptr) continue;
        Mat& agg_out = agg_outs[static_cast<size_t>(li)].mat();
        for (int ch = 0; ch < nch; ++ch) agg_out(t, ch) = head_rows.mat()(li, ch);
      }
    }
  }
  havgs.clear();

  // ---- G^r: autoregressive residual, lockstep over lanes -----------------
  for (int li = 0; li < L; ++li) {
    LaneCtx* lc = act[static_cast<size_t>(li)];
    const int len = lc->w->len;
    lc->sample.output = Mat(len, nch);
    lc->sample.mean = Mat(len, nch);
    lc->sample.res_mu = Mat::zeros(len, nch);
    lc->sample.res_sigma = Mat::zeros(len, nch);
  }

  if (!cfg.use_resgen) {
    for (int li = 0; li < L; ++li) {
      LaneCtx* lc = act[static_cast<size_t>(li)];
      const Mat& agg_out = agg_outs[static_cast<size_t>(li)].mat();
      for (int t = 0; t < lc->w->len; ++t) {
        for (int ch = 0; ch < nch; ++ch) {
          lc->sample.output(t, ch) = agg_out(t, ch);
          lc->sample.mean(t, ch) = lc->sample.output(t, ch);
        }
      }
    }
    return;
  }

  const nn::Mlp& resgen = model_->resgen();
  const int res_in = sim::kNumEnvAttributes + cfg.noise_dim_res + m * nch;
  std::vector<Lease> recents;
  recents.reserve(act.size());
  for (int li = 0; li < L; ++li) {
    recents.emplace_back(recent_ws_, li, m, nch);
    Mat& recent = recents[static_cast<size_t>(li)].mat();
    recent.set_zero();
    LaneCtx* lc = act[static_cast<size_t>(li)];
    if (lc->state.have_tail) {
      // state.tail is [m x nch], so the single-lane prev_tail copy reduces
      // to a straight copy here.
      for (int i = 0; i < m; ++i)
        for (int ch = 0; ch < nch; ++ch) recent(i, ch) = lc->state.tail(i, ch);
    }
  }

  Lease u(ws_, kU, L, res_in);
  Lease head(ws_, kResHead, L, 2 * nch);
  Lease eps(ws_, kEps, L, nch);
  u.mat().set_zero();
  std::vector<std::mt19937_64*> rngs(act.size());
  for (int t = 0; t < max_len; ++t) {
    for (int li = 0; li < L; ++li) {
      LaneCtx* lc = act[static_cast<size_t>(li)];
      if (t >= lc->w->len) {
        rngs[static_cast<size_t>(li)] = nullptr;
        continue;
      }
      rngs[static_cast<size_t>(li)] = &lc->state.rng;
      const Mat& recent = recents[static_cast<size_t>(li)].mat();
      double* urow = u.mat().data().data() + static_cast<size_t>(li) * static_cast<size_t>(res_in);
      int col = 0;
      for (int a = 0; a < sim::kNumEnvAttributes; ++a) urow[col++] = lc->w->env(t, a);
      gaussian_fill(urow + col, cfg.noise_dim_res, lc->state.rng);  // z1
      col += cfg.noise_dim_res;
      for (int r = 0; r < m; ++r)
        for (int ch = 0; ch < nch; ++ch) urow[col++] = recent(r, ch);
    }
    // Per-lane draw order stays z1 (above), dropout mask (inside, per row,
    // MC dropout only), then eps (below) — same as the single-lane step.
    nn::infer::mlp_fwd_batch(resgen, u.mat(), rngs.data(), /*training=*/mc_dropout, ws_, kMlpBase,
                             head.mat());
    for (int li = 0; li < L; ++li) {
      if (rngs[static_cast<size_t>(li)] == nullptr) continue;
      LaneCtx* lc = act[static_cast<size_t>(li)];
      WindowSample& s = lc->sample;
      for (int ch = 0; ch < nch; ++ch) {
        const double mu = head.mat()(li, ch);
        // log_sigma = tanh(raw * 0.25) * 4.0, sigma = exp(log_sigma) — the
        // graph's scale / tanh / scale / exp ops, in order.
        const double log_sigma = std::tanh(head.mat()(li, nch + ch) * 0.25) * 4.0;
        s.res_mu(t, ch) = mu;
        s.res_sigma(t, ch) = std::exp(log_sigma);
      }
      double* erow = eps.mat().data().data() + static_cast<size_t>(li) * static_cast<size_t>(nch);
      gaussian_fill(erow, nch, lc->state.rng);
      const Mat& agg_out = agg_outs[static_cast<size_t>(li)].mat();
      Mat& recent = recents[static_cast<size_t>(li)].mat();
      for (int ch = 0; ch < nch; ++ch) {
        const double agg_v = agg_out(t, ch);
        // out = (agg + mu) + sigma*eps; mean = agg + mu (same adds as the
        // graph's left-associated `out_t + mu + sigma * eps`).
        const double mean_v = agg_v + s.res_mu(t, ch);
        s.mean(t, ch) = mean_v;
        s.output(t, ch) = mean_v + s.res_sigma(t, ch) * erow[ch];
      }
      for (int r = 0; r + 1 < m; ++r)
        for (int ch = 0; ch < nch; ++ch) recent(r, ch) = recent(r + 1, ch);
      for (int ch = 0; ch < nch; ++ch) recent(m - 1, ch) = s.output(t, ch);
    }
  }
}

}  // namespace gendt::core
