#include "gendt/core/active_learning.h"

#include <algorithm>
#include <numeric>

#include "gendt/core/batched_infer_session.h"

namespace gendt::core {

namespace {
size_t window_samples(const std::vector<context::Window>& windows) {
  size_t n = 0;
  for (const auto& w : windows) n += static_cast<size_t>(w.len);
  return n;
}

ActiveLearningStep evaluate(const GenDTModel& model, const std::vector<context::Window>& eval,
                            const context::KpiNorm& norm, uint64_t seed) {
  ActiveLearningStep step;
  GeneratedSeries truth = real_series(eval, norm);
  // Denormalized generated series, channel 0 (RSRP by convention).
  std::vector<double> gen;
  for (const auto& s : model.sample_windows(eval, seed)) {
    for (int t = 0; t < s.output.rows(); ++t) gen.push_back(norm.denormalize(0, s.output(t, 0)));
  }
  const auto& real = truth.channels[0];
  step.mae = metrics::mae(real, gen);
  step.dtw = metrics::dtw(real, gen, /*band=*/30);
  step.hwd = metrics::hwd(real, gen);
  return step;
}
}  // namespace

std::vector<ActiveLearningStep> run_active_learning(
    const std::vector<std::vector<context::Window>>& subset_windows,
    const std::vector<context::Window>& eval_windows, const context::KpiNorm& norm,
    SelectionStrategy strategy, const ActiveLearningConfig& cfg) {
  std::vector<ActiveLearningStep> steps;
  if (subset_windows.empty() || eval_windows.empty()) return steps;
  std::mt19937_64 rng(cfg.seed);

  size_t total_samples = 0;
  for (const auto& s : subset_windows) total_samples += window_samples(s);

  GenDTModel model(cfg.model);
  std::vector<context::Window> train_pool = subset_windows.front();
  std::vector<int> remaining;
  for (int i = 1; i < static_cast<int>(subset_windows.size()); ++i) remaining.push_back(i);

  // Seed step: fit on subset 0.
  TrainConfig tc = cfg.initial_train;
  tc.seed = cfg.seed;
  train_gendt(model, train_pool, tc);

  size_t used_samples = window_samples(subset_windows.front());
  {
    ActiveLearningStep st = evaluate(model, eval_windows, norm, cfg.seed + 1);
    st.subsets_used = 1;
    st.fraction_used =
        static_cast<double>(used_samples) / static_cast<double>(std::max<size_t>(1, total_samples));
    steps.push_back(st);
  }

  for (int step_i = 1; step_i < cfg.max_steps && !remaining.empty(); ++step_i) {
    int pick_pos = 0;
    if (strategy == SelectionStrategy::kUncertainty) {
      // Evaluate model uncertainty over each candidate subset; take the max.
      // The fast variant packs all MC-dropout passes into one lane-batched
      // rollout and returns model_uncertainty()'s exact value (pinned by
      // gen_batch_parity_test) — the per-candidate cost that dominates this
      // loop and ROADMAP item 5's 10^4-candidate scoring.
      double best_u = -1.0;
      for (size_t r = 0; r < remaining.size(); ++r) {
        const double u =
            model_uncertainty_fast(model, subset_windows[static_cast<size_t>(remaining[r])],
                                   cfg.mc_samples, cfg.seed + 100 + static_cast<uint64_t>(r));
        if (u > best_u) {
          best_u = u;
          pick_pos = static_cast<int>(r);
        }
      }
    } else {
      std::uniform_int_distribution<size_t> pick(0, remaining.size() - 1);
      pick_pos = static_cast<int>(pick(rng));
    }
    const int subset = remaining[static_cast<size_t>(pick_pos)];
    remaining.erase(remaining.begin() + pick_pos);

    const auto& add = subset_windows[static_cast<size_t>(subset)];
    train_pool.insert(train_pool.end(), add.begin(), add.end());
    used_samples += window_samples(add);

    TrainConfig inc = cfg.incremental_train;
    inc.seed = cfg.seed + static_cast<uint64_t>(step_i) * 131;
    train_gendt(model, train_pool, inc);  // continue training, warm parameters

    ActiveLearningStep st = evaluate(model, eval_windows, norm,
                                     cfg.seed + 1000 + static_cast<uint64_t>(step_i));
    st.subsets_used = step_i + 1;
    st.fraction_used =
        static_cast<double>(used_samples) / static_cast<double>(std::max<size_t>(1, total_samples));
    st.picked_subset = subset;
    steps.push_back(st);
  }
  return steps;
}

}  // namespace gendt::core
