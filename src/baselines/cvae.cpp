#include "gendt/baselines/cvae.h"

#include <algorithm>
#include <cmath>

namespace gendt::baselines {

using nn::Mat;
using nn::Tensor;

CvaeGenerator::CvaeGenerator(Config cfg, context::KpiNorm norm, int num_channels)
    : cfg_(cfg), norm_(std::move(norm)), nch_(num_channels) {
  std::mt19937_64 rng(cfg_.seed);
  const int ctx_dim = DoppelGANger::context_dim();
  encoder_ = nn::Mlp({.layer_sizes = {3 * nch_ + ctx_dim, cfg_.enc_hidden, 2 * cfg_.latent}},
                     rng, "cvae.enc");
  dec_cell_ = nn::LstmCell(ctx_dim + cfg_.latent, cfg_.hidden, rng, "cvae.dec");
  dec_head_ = nn::Linear(cfg_.hidden, nch_, rng, "cvae.dec_head");
}

Mat CvaeGenerator::window_summary(const context::Window& w, int num_channels) {
  Mat s(1, 3 * num_channels);
  for (int ch = 0; ch < num_channels; ++ch) {
    double sum = 0.0, sum2 = 0.0, roc = 0.0;
    for (int t = 0; t < w.len; ++t) {
      const double v = w.target(t, ch);
      sum += v;
      sum2 += v * v;
      if (t > 0) roc += std::abs(v - w.target(t - 1, ch));
    }
    const double n = static_cast<double>(w.len);
    const double mean = sum / n;
    s(0, 3 * ch) = mean;
    s(0, 3 * ch + 1) = std::sqrt(std::max(0.0, sum2 / n - mean * mean));
    s(0, 3 * ch + 2) = w.len > 1 ? roc / (n - 1.0) : 0.0;
  }
  return s;
}

std::vector<Tensor> CvaeGenerator::decode(const Mat& ctx, const Tensor& z, int len) const {
  const int ctx_dim = DoppelGANger::context_dim();
  auto st = dec_cell_.initial_state();
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(len));
  for (int t = 0; t < len; ++t) {
    Mat c(1, ctx_dim);
    for (int a = 0; a < ctx_dim; ++a) c(0, a) = ctx(0, a);
    Tensor in = nn::concat_cols(Tensor::constant(std::move(c)), z);
    st = dec_cell_.step(in, st);
    rows.push_back(dec_head_.forward(st.h));
  }
  return rows;
}

void CvaeGenerator::fit(const std::vector<context::Window>& train_windows) {
  std::mt19937_64 rng(cfg_.seed + 1);
  nn::Adam opt({.lr = cfg_.lr, .clip_norm = 5.0});
  std::vector<nn::NamedParam> params = encoder_.params();
  for (auto& p : dec_cell_.params()) params.push_back(p);
  for (auto& p : dec_head_.params()) params.push_back(p);
  std::normal_distribution<double> gauss(0.0, 1.0);

  std::vector<size_t> order(train_windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(cfg_.windows_per_step)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(cfg_.windows_per_step));
      for (const auto& p : params) p.tensor.zero_grad();
      for (size_t k = start; k < end; ++k) {
        const auto& w = train_windows[order[k]];
        const Mat ctx = DoppelGANger::window_context(w);

        // Encoder input: window summary of x ++ static context.
        Mat enc_in(1, 3 * nch_ + DoppelGANger::context_dim());
        const Mat summary = window_summary(w, nch_);
        int col = 0;
        for (size_t i = 0; i < summary.size(); ++i) enc_in(0, col++) = summary[i];
        for (int a = 0; a < DoppelGANger::context_dim(); ++a) enc_in(0, col++) = ctx(0, a);
        Tensor enc_out = encoder_.forward(Tensor::constant(std::move(enc_in)), rng, true);
        Tensor mu = nn::slice_cols(enc_out, 0, cfg_.latent);
        // Bounded log-variance for optimizer safety (same trick as ResGen).
        Tensor log_var =
            nn::tanh_t(nn::slice_cols(enc_out, cfg_.latent, 2 * cfg_.latent) * 0.25) * 4.0;

        // Reparameterized z.
        Mat eps(1, cfg_.latent);
        for (size_t i = 0; i < eps.size(); ++i) eps[i] = gauss(rng);
        Tensor z = mu + nn::exp_t(log_var * 0.5) * Tensor::constant(std::move(eps));

        auto rows = decode(ctx, z, w.len);
        Tensor recon = nn::mse_loss(nn::concat_rows(rows), Tensor::constant(w.target));
        // KL(q || N(0, I)) = -0.5 * sum(1 + log var - mu^2 - var)
        Tensor kl = nn::sum(nn::exp_t(log_var) + mu * mu - log_var + (-1.0) *
                            Tensor::constant(Mat::ones(1, cfg_.latent))) * 0.5;
        Tensor loss = (recon + kl * (cfg_.beta / static_cast<double>(cfg_.latent))) *
                      (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      opt.step(params);
    }
  }
}

core::GeneratedSeries CvaeGenerator::generate(const std::vector<context::Window>& windows,
                                              uint64_t seed) const {
  core::GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch_), {});
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (const auto& w : windows) {
    const Mat ctx = DoppelGANger::window_context(w);
    Mat zv(1, cfg_.latent);
    for (size_t i = 0; i < zv.size(); ++i) zv[i] = gauss(rng);
    auto rows = decode(ctx, Tensor::constant(std::move(zv)), w.len);
    for (const auto& r : rows)
      for (int ch = 0; ch < nch_; ++ch)
        out.channels[static_cast<size_t>(ch)].push_back(norm_.denormalize(ch, r.value()(0, ch)));
  }
  return out;
}

}  // namespace gendt::baselines
