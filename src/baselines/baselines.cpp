#include "gendt/baselines/baselines.h"

#include <algorithm>
#include <cmath>

namespace gendt::baselines {

using nn::Mat;
using nn::Tensor;

// ---------------------------------------------------------------------------
// FDaS
// ---------------------------------------------------------------------------

void FDaS::fit(const std::vector<context::Window>& train_windows) {
  samples_.clear();
  if (train_windows.empty()) return;
  const int nch = train_windows.front().target.cols();
  samples_.assign(static_cast<size_t>(nch), {});
  for (const auto& w : train_windows) {
    // Skip overlap duplication: windows may overlap, but for a distribution
    // fit the duplication only reweights interior samples slightly.
    for (int t = 0; t < w.len; ++t)
      for (int ch = 0; ch < nch; ++ch)
        samples_[static_cast<size_t>(ch)].push_back(w.target(t, ch));
  }
}

GeneratedSeries FDaS::generate(const std::vector<context::Window>& windows,
                               uint64_t seed) const {
  GeneratedSeries out;
  out.channels.assign(samples_.size(), {});
  std::mt19937_64 rng(seed);
  for (const auto& w : windows) {
    for (int t = 0; t < w.len; ++t) {
      for (size_t ch = 0; ch < samples_.size(); ++ch) {
        const auto& pool = samples_[ch];
        double v = 0.0;
        if (!pool.empty()) {
          std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
          v = pool[pick(rng)];
        }
        out.channels[ch].push_back(norm_.denormalize(static_cast<int>(ch), v));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

MlpRegressor::MlpRegressor(Config cfg, context::KpiNorm norm, int num_channels)
    : cfg_(cfg), norm_(std::move(norm)), nch_(num_channels) {
  std::mt19937_64 rng(cfg_.seed);
  const int in = cfg_.cells_in_features * context::kCellAttrs + sim::kNumEnvAttributes;
  net_ = nn::Mlp({.layer_sizes = {in, cfg_.hidden, cfg_.hidden, nch_}}, rng, "mlp_baseline");
}

Mat MlpRegressor::features(const context::Window& w, int t) const {
  Mat f(1, cfg_.cells_in_features * context::kCellAttrs + sim::kNumEnvAttributes);
  int col = 0;
  for (int k = 0; k < cfg_.cells_in_features; ++k) {
    for (int a = 0; a < context::kCellAttrs; ++a) {
      f(0, col++) = k < static_cast<int>(w.cell_attrs.size())
                        ? w.cell_attrs[static_cast<size_t>(k)](t, a)
                        : 0.0;
    }
  }
  for (int a = 0; a < sim::kNumEnvAttributes; ++a) f(0, col++) = w.env(t, a);
  return f;
}

void MlpRegressor::fit(const std::vector<context::Window>& train_windows) {
  std::mt19937_64 rng(cfg_.seed + 1);
  nn::Adam opt({.lr = cfg_.lr, .clip_norm = 5.0});
  const auto params = net_.params();

  // Flatten to per-timestep examples; subsample to bound cost.
  struct Example {
    const context::Window* w;
    int t;
  };
  std::vector<Example> examples;
  for (const auto& w : train_windows)
    for (int t = 0; t < w.len; ++t) examples.push_back({&w, t});
  std::shuffle(examples.begin(), examples.end(), rng);
  const size_t cap = 4000;
  if (examples.size() > cap) examples.resize(cap);

  const int batch = 32;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(examples.begin(), examples.end(), rng);
    for (size_t start = 0; start < examples.size(); start += static_cast<size_t>(batch)) {
      const size_t end = std::min(examples.size(), start + static_cast<size_t>(batch));
      for (const auto& p : params) p.tensor.zero_grad();
      for (size_t i = start; i < end; ++i) {
        const auto& ex = examples[i];
        Tensor x = Tensor::constant(features(*ex.w, ex.t));
        Mat target(1, nch_);
        for (int ch = 0; ch < nch_; ++ch) target(0, ch) = ex.w->target(ex.t, ch);
        Tensor loss = nn::mse_loss(net_.forward(x, rng, true), Tensor::constant(std::move(target)));
        loss = loss * (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      opt.step(params);
    }
  }
}

GeneratedSeries MlpRegressor::generate(const std::vector<context::Window>& windows,
                                       uint64_t seed) const {
  GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch_), {});
  std::mt19937_64 rng(seed);
  for (const auto& w : windows) {
    for (int t = 0; t < w.len; ++t) {
      Tensor y = net_.forward(Tensor::constant(features(w, t)), rng, false);
      for (int ch = 0; ch < nch_; ++ch)
        out.channels[static_cast<size_t>(ch)].push_back(norm_.denormalize(ch, y.value()(0, ch)));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LSTM-GNN
// ---------------------------------------------------------------------------

LstmGnnPredictor::LstmGnnPredictor(Config cfg, context::KpiNorm norm, int num_channels)
    : cfg_(cfg), norm_(std::move(norm)), nch_(num_channels) {
  std::mt19937_64 rng(cfg_.seed);
  node_cell_ = nn::LstmCell(context::kCellAttrs, cfg_.hidden, rng, "lstmgnn.node");
  agg_cell_ = nn::LstmCell(cfg_.hidden, cfg_.hidden, rng, "lstmgnn.agg");
  head_ = nn::Linear(cfg_.hidden, nch_, rng, "lstmgnn.head");
}

std::vector<Tensor> LstmGnnPredictor::forward(const context::Window& w,
                                              nn::LstmCell::State& node_state,
                                              nn::LstmCell::State& agg_state) const {
  // One shared node state pooled over cells per step: a deliberately simpler
  // scheme than GenDT's per-cell unroll (this is the *baseline*).
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(w.len));
  const int n_cells = static_cast<int>(w.cell_attrs.size());
  for (int t = 0; t < w.len; ++t) {
    Tensor pooled = Tensor::zeros(1, cfg_.hidden);
    if (n_cells > 0) {
      for (int ci = 0; ci < n_cells; ++ci) {
        Mat x(1, context::kCellAttrs);
        for (int a = 0; a < context::kCellAttrs; ++a)
          x(0, a) = w.cell_attrs[static_cast<size_t>(ci)](t, a);
        auto st = node_cell_.step(Tensor::constant(std::move(x)), node_state);
        pooled = pooled + st.h;
        if (ci == n_cells - 1) node_state = st;  // carry one representative state
      }
      pooled = pooled * (1.0 / static_cast<double>(n_cells));
    }
    agg_state = agg_cell_.step(pooled, agg_state);
    out.push_back(head_.forward(agg_state.h));
  }
  return out;
}

void LstmGnnPredictor::fit(const std::vector<context::Window>& train_windows) {
  std::mt19937_64 rng(cfg_.seed + 1);
  nn::Adam opt({.lr = cfg_.lr, .clip_norm = 5.0});
  std::vector<nn::NamedParam> params = node_cell_.params();
  for (auto& p : agg_cell_.params()) params.push_back(p);
  for (auto& p : head_.params()) params.push_back(p);

  std::vector<size_t> order(train_windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(cfg_.windows_per_step)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(cfg_.windows_per_step));
      for (const auto& p : params) p.tensor.zero_grad();
      for (size_t k = start; k < end; ++k) {
        const auto& w = train_windows[order[k]];
        auto node_st = node_cell_.initial_state();
        auto agg_st = agg_cell_.initial_state();
        auto rows = forward(w, node_st, agg_st);
        Tensor loss = nn::mse_loss(nn::concat_rows(rows), Tensor::constant(w.target));
        loss = loss * (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      opt.step(params);
    }
  }
}

GeneratedSeries LstmGnnPredictor::generate(const std::vector<context::Window>& windows,
                                           uint64_t /*seed*/) const {
  GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch_), {});
  // One continuous pass over the entire series (no batch mechanism): state
  // carries across windows — the long-series weakness the paper calls out.
  auto node_st = node_cell_.initial_state();
  auto agg_st = agg_cell_.initial_state();
  for (const auto& w : windows) {
    auto rows = forward(w, node_st, agg_st);
    // Detach to keep the inference graph from growing across windows.
    node_st = {nn::detach(node_st.h), nn::detach(node_st.c)};
    agg_st = {nn::detach(agg_st.h), nn::detach(agg_st.c)};
    for (const auto& r : rows)
      for (int ch = 0; ch < nch_; ++ch)
        out.channels[static_cast<size_t>(ch)].push_back(norm_.denormalize(ch, r.value()(0, ch)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DoppelGANger
// ---------------------------------------------------------------------------

DoppelGANger::DoppelGANger(Config cfg, context::KpiNorm norm, int num_channels)
    : cfg_(cfg), norm_(std::move(norm)), nch_(num_channels) {
  std::mt19937_64 rng(cfg_.seed);
  gen_cell_ = nn::LstmCell(context_dim() + cfg_.noise_dim, cfg_.hidden, rng, "dg.gen");
  gen_head_ = nn::Linear(cfg_.hidden, nch_, rng, "dg.gen_head");
  disc_cell_ = nn::LstmCell(nch_ + context_dim(), cfg_.hidden, rng, "dg.disc");
  disc_head_ = nn::Linear(cfg_.hidden, 1, rng, "dg.disc_head");
  ctx_gen_ = nn::Mlp({.layer_sizes = {cfg_.ctx_noise_dim, cfg_.ctx_hidden, cfg_.ctx_hidden,
                                      context_dim()}},
                     rng, "dg.ctx_gen");
  ctx_disc_ = nn::Mlp({.layer_sizes = {context_dim(), cfg_.ctx_hidden, 1}}, rng, "dg.ctx_disc");
}

Mat DoppelGANger::window_context(const context::Window& w) {
  Mat ctx(1, context_dim());
  if (!w.cell_attrs.empty()) {
    for (int a = 0; a < context::kCellAttrs; ++a) {
      double s = 0.0;
      for (int t = 0; t < w.len; ++t) s += w.cell_attrs[0](t, a);
      ctx(0, a) = s / static_cast<double>(w.len);
    }
  }
  for (int a = 0; a < sim::kNumEnvAttributes; ++a) {
    double s = 0.0;
    for (int t = 0; t < w.len; ++t) s += w.env(t, a);
    ctx(0, context::kCellAttrs + a) = s / static_cast<double>(w.len);
  }
  return ctx;
}

std::vector<Tensor> DoppelGANger::unroll(const Mat& ctx, int len, std::mt19937_64& rng) const {
  std::normal_distribution<double> g(0.0, 1.0);
  auto st = gen_cell_.initial_state();
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(len));
  for (int t = 0; t < len; ++t) {
    Mat x(1, context_dim() + cfg_.noise_dim);
    for (int a = 0; a < context_dim(); ++a) x(0, a) = ctx(0, a);
    for (int a = 0; a < cfg_.noise_dim; ++a) x(0, context_dim() + a) = g(rng);
    st = gen_cell_.step(Tensor::constant(std::move(x)), st);
    rows.push_back(gen_head_.forward(st.h));
  }
  return rows;
}

void DoppelGANger::fit(const std::vector<context::Window>& train_windows) {
  std::mt19937_64 rng(cfg_.seed + 1);
  nn::Adam gen_opt({.lr = cfg_.lr, .clip_norm = 5.0});
  nn::Adam disc_opt({.lr = cfg_.lr * 0.5, .clip_norm = 5.0});
  std::vector<nn::NamedParam> gen_params = gen_cell_.params();
  for (auto& p : gen_head_.params()) gen_params.push_back(p);
  std::vector<nn::NamedParam> disc_params = disc_cell_.params();
  for (auto& p : disc_head_.params()) disc_params.push_back(p);

  // Stage 1 (original DG): fit the metadata GAN over window contexts.
  fit_context_gan(train_windows, rng);

  auto discriminate = [&](const std::vector<Tensor>& rows, const Mat& ctx) {
    auto st = disc_cell_.initial_state();
    for (const auto& r : rows) {
      Mat c = ctx;
      Tensor in = nn::concat_cols(r, Tensor::constant(std::move(c)));
      st = disc_cell_.step(in, st);
    }
    return disc_head_.forward(st.h);
  };

  std::vector<size_t> order(train_windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(cfg_.windows_per_step)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(cfg_.windows_per_step));

      // Generator step: MSE + GAN against the real window context.
      for (const auto& p : gen_params) p.tensor.zero_grad();
      for (size_t k = start; k < end; ++k) {
        const auto& w = train_windows[order[k]];
        const Mat ctx = window_context(w);
        auto rows = unroll(ctx, w.len, rng);
        Tensor loss = nn::mse_loss(nn::concat_rows(rows), Tensor::constant(w.target));
        Tensor ones = Tensor::constant(Mat::ones(1, 1));
        loss = loss + nn::bce_with_logits(discriminate(rows, ctx), ones) * cfg_.lambda_gan;
        loss = loss * (1.0 / static_cast<double>(end - start));
        loss.backward();
      }
      gen_opt.step(gen_params);

      // Discriminator step.
      for (const auto& p : disc_params) p.tensor.zero_grad();
      for (size_t k = start; k < end; ++k) {
        const auto& w = train_windows[order[k]];
        const Mat ctx = window_context(w);
        auto fake = unroll(ctx, w.len, rng);
        for (auto& r : fake) r = nn::detach(r);
        std::vector<Tensor> real;
        real.reserve(static_cast<size_t>(w.len));
        for (int t = 0; t < w.len; ++t) {
          Mat row(1, nch_);
          for (int ch = 0; ch < nch_; ++ch) row(0, ch) = w.target(t, ch);
          real.push_back(Tensor::constant(std::move(row)));
        }
        Tensor ones = Tensor::constant(Mat::ones(1, 1));
        Tensor zeros = Tensor::constant(Mat::zeros(1, 1));
        Tensor d_loss = (nn::bce_with_logits(discriminate(real, ctx), ones) +
                         nn::bce_with_logits(discriminate(fake, ctx), zeros)) *
                        (0.5 / static_cast<double>(end - start));
        d_loss.backward();
      }
      disc_opt.step(disc_params);
    }
  }
}

void DoppelGANger::fit_context_gan(const std::vector<context::Window>& train_windows,
                                   std::mt19937_64& rng) {
  ctx_mean_.assign(static_cast<size_t>(context_dim()), 0.0);
  ctx_std_.assign(static_cast<size_t>(context_dim()), 1.0);
  if (train_windows.empty()) return;

  // Normalization for the GAN's working space.
  std::vector<double> s(static_cast<size_t>(context_dim()), 0.0),
      s2(static_cast<size_t>(context_dim()), 0.0);
  std::vector<Mat> real_ctx;
  real_ctx.reserve(train_windows.size());
  for (const auto& w : train_windows) {
    Mat c = window_context(w);
    for (int a = 0; a < context_dim(); ++a) {
      s[static_cast<size_t>(a)] += c(0, a);
      s2[static_cast<size_t>(a)] += c(0, a) * c(0, a);
    }
    real_ctx.push_back(std::move(c));
  }
  const double n = static_cast<double>(train_windows.size());
  for (int a = 0; a < context_dim(); ++a) {
    ctx_mean_[static_cast<size_t>(a)] = s[static_cast<size_t>(a)] / n;
    ctx_std_[static_cast<size_t>(a)] = std::sqrt(std::max(
        1e-9, s2[static_cast<size_t>(a)] / n - ctx_mean_[static_cast<size_t>(a)] *
                                                   ctx_mean_[static_cast<size_t>(a)]));
  }
  for (auto& c : real_ctx)
    for (int a = 0; a < context_dim(); ++a)
      c(0, a) = (c(0, a) - ctx_mean_[static_cast<size_t>(a)]) / ctx_std_[static_cast<size_t>(a)];

  // Adversarial training of the metadata GAN (MLP G vs MLP D).
  nn::Adam g_opt({.lr = cfg_.lr, .clip_norm = 5.0});
  nn::Adam d_opt({.lr = cfg_.lr * 0.5, .clip_norm = 5.0});
  const auto g_params = ctx_gen_.params();
  const auto d_params = ctx_disc_.params();
  std::normal_distribution<double> gauss(0.0, 1.0);
  const int batch = 16;
  Tensor ones = Tensor::constant(Mat::ones(1, 1));
  Tensor zeros = Tensor::constant(Mat::zeros(1, 1));
  std::uniform_int_distribution<size_t> pick_real(0, real_ctx.size() - 1);
  for (int epoch = 0; epoch < cfg_.ctx_epochs; ++epoch) {
    // Generator step: adversarial loss + feature matching (first moment of
    // a real mini-batch), which keeps the metadata GAN's means anchored.
    for (const auto& p : g_params) p.tensor.zero_grad();
    Mat real_batch_mean(1, context_dim());
    for (int k = 0; k < batch; ++k) {
      const Mat& rc = real_ctx[pick_real(rng)];
      for (int a = 0; a < context_dim(); ++a) real_batch_mean(0, a) += rc(0, a) / batch;
    }
    std::vector<Tensor> fakes;
    for (int k = 0; k < batch; ++k) {
      Mat z(1, cfg_.ctx_noise_dim);
      for (size_t i = 0; i < z.size(); ++i) z[i] = gauss(rng);
      Tensor fake = ctx_gen_.forward(Tensor::constant(std::move(z)), rng, true);
      fakes.push_back(fake);
      Tensor loss = nn::bce_with_logits(ctx_disc_.forward(fake, rng, true), ones);
      loss = loss * (1.0 / batch);
      loss.backward();
    }
    Tensor fake_mean = fakes[0];
    for (size_t k = 1; k < fakes.size(); ++k) fake_mean = fake_mean + fakes[k];
    fake_mean = fake_mean * (1.0 / static_cast<double>(fakes.size()));
    Tensor fm = nn::mse_loss(fake_mean, Tensor::constant(std::move(real_batch_mean)));
    fm.backward();
    g_opt.step(g_params);

    // Discriminator step.
    for (const auto& p : d_params) p.tensor.zero_grad();
    std::uniform_int_distribution<size_t> pick(0, real_ctx.size() - 1);
    for (int k = 0; k < batch; ++k) {
      Mat z(1, cfg_.ctx_noise_dim);
      for (size_t i = 0; i < z.size(); ++i) z[i] = gauss(rng);
      Tensor fake = nn::detach(ctx_gen_.forward(Tensor::constant(std::move(z)), rng, true));
      Mat rc = real_ctx[pick(rng)];
      Tensor d_loss =
          (nn::bce_with_logits(ctx_disc_.forward(Tensor::constant(std::move(rc)), rng, true),
                               ones) +
           nn::bce_with_logits(ctx_disc_.forward(fake, rng, true), zeros)) *
          (0.5 / batch);
      d_loss.backward();
    }
    d_opt.step(d_params);
  }
}

nn::Mat DoppelGANger::sample_context(std::mt19937_64& rng) const {
  std::normal_distribution<double> gauss(0.0, 1.0);
  Mat z(1, cfg_.ctx_noise_dim);
  for (size_t i = 0; i < z.size(); ++i) z[i] = gauss(rng);
  const Tensor c = ctx_gen_.forward(Tensor::constant(std::move(z)), rng, false);
  Mat out(1, context_dim());
  for (int a = 0; a < context_dim(); ++a) {
    out(0, a) = c.value()(0, a) * ctx_std_[static_cast<size_t>(a)] +
                ctx_mean_[static_cast<size_t>(a)];
  }
  return out;
}

GeneratedSeries DoppelGANger::generate(const std::vector<context::Window>& windows,
                                       uint64_t seed) const {
  GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(nch_), {});
  std::mt19937_64 rng(seed);
  for (const auto& w : windows) {
    // Original DG draws the context from the stage-1 metadata GAN instead
    // of reading the real one.
    Mat ctx = cfg_.use_real_context ? window_context(w) : sample_context(rng);
    auto rows = unroll(ctx, w.len, rng);
    for (const auto& r : rows)
      for (int ch = 0; ch < nch_; ++ch)
        out.channels[static_cast<size_t>(ch)].push_back(norm_.denormalize(ch, r.value()(0, ch)));
  }
  return out;
}

std::vector<std::unique_ptr<TimeSeriesGenerator>> make_all_baselines(
    const context::KpiNorm& norm, int num_channels, uint64_t seed) {
  std::vector<std::unique_ptr<TimeSeriesGenerator>> out;
  out.push_back(std::make_unique<FDaS>(norm));
  out.push_back(std::make_unique<MlpRegressor>(
      MlpRegressor::Config{.seed = seed + 1}, norm, num_channels));
  out.push_back(std::make_unique<LstmGnnPredictor>(
      LstmGnnPredictor::Config{.seed = seed + 2}, norm, num_channels));
  out.push_back(std::make_unique<DoppelGANger>(
      DoppelGANger::Config{.use_real_context = false, .seed = seed + 3}, norm, num_channels));
  out.push_back(std::make_unique<DoppelGANger>(
      DoppelGANger::Config{.use_real_context = true, .seed = seed + 4}, norm, num_channels));
  return out;
}

}  // namespace gendt::baselines
