// Baseline generators from the paper's §5.2, all behind the common
// TimeSeriesGenerator interface:
//
//   FDaS          — fit a per-KPI distribution (ignoring time & context) by
//                   maximum likelihood over the empirical sample; i.i.d.
//                   sampling at generation.
//   MLP           — per-timestep regression context -> KPI (no temporal
//                   model, no stochasticity).
//   LSTM-GNN      — GNN+LSTM *prediction* model (deterministic, MSE-only,
//                   no batching/noise) after Tong et al.
//   Orig. DG      — DoppelGANger: a context generator is sampled in place of
//                   the real context at generation time; time-series
//                   generator is an LSTM conditioned on a *static* per-window
//                   context vector (DG's metadata) — its documented weakness
//                   for dynamic network context.
//   Real Cont. DG — the paper's optimized variant: same time-series
//                   generator, but fed the real (still static per-window)
//                   context.
#pragma once

#include <memory>

#include "gendt/core/model.h"

namespace gendt::baselines {

using core::GeneratedSeries;
using core::TimeSeriesGenerator;

/// Fit Distribution and Sample.
class FDaS final : public TimeSeriesGenerator {
 public:
  explicit FDaS(context::KpiNorm norm) : norm_(std::move(norm)) {}
  std::string name() const override { return "FDaS"; }
  void fit(const std::vector<context::Window>& train_windows) override;
  GeneratedSeries generate(const std::vector<context::Window>& windows,
                           uint64_t seed) const override;

 private:
  context::KpiNorm norm_;
  // Empirical sample per channel (normalized units); sampling with
  // replacement IS the MLE of the nonparametric distribution.
  std::vector<std::vector<double>> samples_;
};

/// Per-timestep MLP regression over the instantaneous context.
class MlpRegressor final : public TimeSeriesGenerator {
 public:
  struct Config {
    int hidden = 48;
    int cells_in_features = 3;  // nearest-K cells flattened into the input
    int epochs = 30;
    double lr = 2e-3;
    uint64_t seed = 11;
  };
  MlpRegressor(Config cfg, context::KpiNorm norm, int num_channels);
  std::string name() const override { return "MLP"; }
  void fit(const std::vector<context::Window>& train_windows) override;
  GeneratedSeries generate(const std::vector<context::Window>& windows,
                           uint64_t seed) const override;

 private:
  nn::Mat features(const context::Window& w, int t) const;
  Config cfg_;
  context::KpiNorm norm_;
  int nch_;
  nn::Mlp net_;
};

/// GNN + LSTM prediction model (deterministic, trained with MSE only,
/// generates the full series in one continuous pass).
class LstmGnnPredictor final : public TimeSeriesGenerator {
 public:
  struct Config {
    int hidden = 32;
    int epochs = 12;
    int windows_per_step = 8;
    double lr = 2e-3;
    uint64_t seed = 13;
  };
  LstmGnnPredictor(Config cfg, context::KpiNorm norm, int num_channels);
  std::string name() const override { return "LSTM-GNN"; }
  void fit(const std::vector<context::Window>& train_windows) override;
  GeneratedSeries generate(const std::vector<context::Window>& windows,
                           uint64_t seed) const override;

 private:
  std::vector<nn::Tensor> forward(const context::Window& w, nn::LstmCell::State& node_state,
                                  nn::LstmCell::State& agg_state) const;
  Config cfg_;
  context::KpiNorm norm_;
  int nch_;
  nn::LstmCell node_cell_;
  nn::LstmCell agg_cell_;
  nn::Linear head_;
};

/// DoppelGANger-style generator. `use_real_context=false` gives the original
/// DG (context sampled from the learned context model at generation time);
/// true gives the paper's "Real Context DG" variant.
class DoppelGANger final : public TimeSeriesGenerator {
 public:
  struct Config {
    int hidden = 32;
    int noise_dim = 4;
    int epochs = 12;
    int windows_per_step = 8;
    double lr = 2e-3;
    double lambda_gan = 0.1;
    bool use_real_context = false;
    // Stage-1 metadata GAN (original DG): an MLP GAN over per-window
    // context vectors, trained before the time-series stage.
    int ctx_noise_dim = 8;
    int ctx_hidden = 32;
    int ctx_epochs = 60;
    uint64_t seed = 15;
  };
  DoppelGANger(Config cfg, context::KpiNorm norm, int num_channels);
  std::string name() const override {
    return cfg_.use_real_context ? "Real Cont. DG" : "Orig. DG";
  }
  void fit(const std::vector<context::Window>& train_windows) override;
  GeneratedSeries generate(const std::vector<context::Window>& windows,
                           uint64_t seed) const override;

  /// The static per-window context vector (DG metadata): window-mean cell
  /// attributes of the nearest cell ++ window-mean environment attributes.
  static nn::Mat window_context(const context::Window& w);
  static int context_dim() { return context::kCellAttrs + sim::kNumEnvAttributes; }

  /// Draw one synthetic context vector from the stage-1 metadata GAN.
  nn::Mat sample_context(std::mt19937_64& rng) const;

 private:
  std::vector<nn::Tensor> unroll(const nn::Mat& ctx, int len, std::mt19937_64& rng) const;
  void fit_context_gan(const std::vector<context::Window>& train_windows,
                       std::mt19937_64& rng);

  Config cfg_;
  context::KpiNorm norm_;
  int nch_;
  nn::LstmCell gen_cell_;
  nn::Linear gen_head_;
  nn::LstmCell disc_cell_;
  nn::Linear disc_head_;
  // Stage-1 metadata GAN (original DG): generates per-window context
  // vectors in normalized space; ctx_mean_/ctx_std_ hold the normalization.
  nn::Mlp ctx_gen_;
  nn::Mlp ctx_disc_;
  std::vector<double> ctx_mean_;
  std::vector<double> ctx_std_;
};

/// Convenience: construct all five baselines for an evaluation run.
std::vector<std::unique_ptr<TimeSeriesGenerator>> make_all_baselines(
    const context::KpiNorm& norm, int num_channels, uint64_t seed);

}  // namespace gendt::baselines
