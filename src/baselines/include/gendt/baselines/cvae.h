// Conditional VAE baseline — the other deep-generative family the paper's
// §2.1 discusses (GANs vs VAEs). Not part of the paper's evaluated baseline
// set (and therefore not in make_all_baselines or the bench tables); offered
// as an extension for comparing generative families on the same interface.
//
// Architecture:
//   encoder  q(z | x, c): MLP over [flattened window stats of x ++ static
//            window context c] -> (mu_z, log var_z), z in R^latent.
//   decoder  p(x | z, c): LSTM unrolled over [c ++ z] per step -> KPI rows.
// Trained on the ELBO: reconstruction MSE + beta * KL(q || N(0, I)).
// Generation samples z ~ N(0, I) per window, conditioned on the real
// context — directly comparable to Real-Context DG.
#pragma once

#include "gendt/baselines/baselines.h"

namespace gendt::baselines {

class CvaeGenerator final : public core::TimeSeriesGenerator {
 public:
  struct Config {
    int latent = 6;
    int hidden = 32;
    int enc_hidden = 48;
    int epochs = 12;
    int windows_per_step = 8;
    double lr = 2e-3;
    double beta = 0.05;  // KL weight (beta-VAE style, < 1 favours fidelity)
    uint64_t seed = 19;
  };

  CvaeGenerator(Config cfg, context::KpiNorm norm, int num_channels);

  std::string name() const override { return "CVAE"; }
  void fit(const std::vector<context::Window>& train_windows) override;
  core::GeneratedSeries generate(const std::vector<context::Window>& windows,
                                 uint64_t seed) const override;

  /// Per-window summary of x fed to the encoder: per-channel mean, std and
  /// mean |first difference| (3 * Nch values).
  static nn::Mat window_summary(const context::Window& w, int num_channels);

 private:
  std::vector<nn::Tensor> decode(const nn::Mat& ctx, const nn::Tensor& z, int len) const;

  Config cfg_;
  context::KpiNorm norm_;
  int nch_;
  nn::Mlp encoder_;        // -> [mu_z ++ log var_z]
  nn::LstmCell dec_cell_;
  nn::Linear dec_head_;
};

}  // namespace gendt::baselines
