#include "gendt/net/socket.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gendt::net {

namespace {

bool fill_addr(const std::string& path, sockaddr_un& addr, std::string* error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

FdGuard unix_listen(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return FdGuard();
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = errno_message("socket");
    return FdGuard();
  }
  // A stale socket file from a previous run blocks bind(); remove it. A
  // live daemon on the same path is indistinguishable here — callers who
  // care probe with unix_connect first.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = errno_message("bind " + path);
    return FdGuard();
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = errno_message("listen " + path);
    return FdGuard();
  }
  return fd;
}

FdGuard unix_connect(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return FdGuard();
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = errno_message("socket");
    return FdGuard();
  }
  int r;
  do {
    r = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    if (error != nullptr) *error = errno_message("connect " + path);
    return FdGuard();
  }
  return fd;
}

FdGuard accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return FdGuard(fd);
    if (errno != EINTR) return FdGuard();
  }
}

bool socket_pair(FdGuard& a, FdGuard& b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  a.reset(fds[0]);
  b.reset(fds[1]);
  return true;
}

}  // namespace gendt::net
