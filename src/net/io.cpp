#include "gendt/net/io.h"

#include <cerrno>
#include <fcntl.h>
#include <vector>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gendt::net {

void FdGuard::reset(int fd) {
  if (fd_ >= 0) {
    int r;
    do {
      r = ::close(fd_);
    } while (r != 0 && errno == EINTR);
  }
  fd_ = fd;
}

long read_some(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

long write_some(int fd, const void* buf, size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, len);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

bool write_all(int fd, const void* buf, size_t len, const runtime::CancelToken* cancel) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    if (cancel != nullptr && cancel->cancelled()) return false;
    const long n = write_some(fd, p + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_writable(fd, 100) < 0) return false;
      continue;
    }
    return false;  // 0-byte write or hard error
  }
  return true;
}

bool read_exact(int fd, void* buf, size_t len, const runtime::CancelToken* cancel) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    if (cancel != nullptr && cancel->cancelled()) return false;
    const long n = read_some(fd, p + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_readable(fd, 100) < 0) return false;
      continue;
    }
    return false;  // EOF mid-message or hard error
  }
  return true;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

namespace {
int wait_event(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  if (r == 0) return 0;
  if ((pfd.revents & POLLNVAL) != 0) return -1;
  return 1;  // readable/writable/HUP/ERR — caller's next read/write resolves it
}
}  // namespace

int wait_readable(int fd, int timeout_ms) { return wait_event(fd, POLLIN, timeout_ms); }

int wait_writable(int fd, int timeout_ms) { return wait_event(fd, POLLOUT, timeout_ms); }

int poll_fds(PollItem* items, size_t n, int timeout_ms) {
  std::vector<struct pollfd> pfds(n);
  for (size_t i = 0; i < n; ++i) {
    pfds[i].fd = items[i].fd;
    pfds[i].events = static_cast<short>((items[i].want_read ? POLLIN : 0) |
                                        (items[i].want_write ? POLLOUT : 0));
    pfds[i].revents = 0;
  }
  const int r = ::poll(pfds.data(), n, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  int ready = 0;
  for (size_t i = 0; i < n; ++i) {
    items[i].readable = (pfds[i].revents & POLLIN) != 0;
    items[i].writable = (pfds[i].revents & POLLOUT) != 0;
    items[i].hangup = (pfds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    if (items[i].readable || items[i].writable || items[i].hangup) ++ready;
  }
  return ready;
}

}  // namespace gendt::net
