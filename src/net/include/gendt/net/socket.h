// Unix-domain stream sockets for the gendt streaming daemon.
//
// The daemon listens on a filesystem socket (local, permission-guarded, no
// port juggling in tests); clients connect by path. socket_pair() gives the
// in-process tests a connected fd pair with no filesystem involvement at
// all — the server adopts one end, the client under test the other.
#pragma once

#include <string>

#include "gendt/net/io.h"

namespace gendt::net {

/// Bind + listen on a Unix-domain stream socket at `path` (an existing
/// stale socket file is replaced). Invalid guard + `error` on failure.
FdGuard unix_listen(const std::string& path, int backlog, std::string* error);

/// Connect to a Unix-domain stream socket. Invalid guard + `error` on
/// failure (including a daemon that is not up yet).
FdGuard unix_connect(const std::string& path, std::string* error);

/// Accept one pending connection from a listening fd, EINTR retried.
/// Invalid guard when nothing is pending (EAGAIN on a non-blocking
/// listener) or on error.
FdGuard accept_connection(int listen_fd);

/// A connected AF_UNIX stream pair (both ends blocking). False on failure.
bool socket_pair(FdGuard& a, FdGuard& b);

}  // namespace gendt::net
