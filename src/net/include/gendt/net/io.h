// Portable poll-based I/O primitives for the serving layer.
//
// This module owns every raw read/write/recv/send in the tree (enforced by
// the gendt_lint `rawio` rule): the wrappers here retry EINTR, never raise
// SIGPIPE (writes go through send(MSG_NOSIGNAL)), and surface partial
// transfers explicitly, so callers above src/net can reason about short
// reads/writes without ever touching errno themselves. Depends only on
// src/runtime (for CancelToken-aware full-transfer loops).
#pragma once

#include <cstddef>
#include <cstdint>

#include "gendt/runtime/cancel.h"

namespace gendt::net {

/// RAII file descriptor. Move-only; closes on destruction (retrying EINTR).
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  FdGuard(FdGuard&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Close the held fd (if any) and take ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// One read(2), EINTR retried. Returns bytes read (0 = orderly EOF), or -1
/// with errno preserved (EAGAIN/EWOULDBLOCK on a drained non-blocking fd).
long read_some(int fd, void* buf, size_t len);

/// One send/write, EINTR retried, SIGPIPE suppressed (MSG_NOSIGNAL; falls
/// back to write(2) for non-socket fds). Returns bytes written or -1 with
/// errno preserved.
long write_some(int fd, const void* buf, size_t len);

/// Write the whole buffer to a blocking fd, looping over partial writes and
/// waiting for writability between attempts. False on error, peer close, or
/// a tripped `cancel` token (checked between attempts).
bool write_all(int fd, const void* buf, size_t len,
               const runtime::CancelToken* cancel = nullptr);

/// Read exactly `len` bytes from a blocking fd (same loop discipline as
/// write_all). False on EOF, error, or cancellation.
bool read_exact(int fd, void* buf, size_t len, const runtime::CancelToken* cancel = nullptr);

/// O_NONBLOCK on/off. False on fcntl failure.
bool set_nonblocking(int fd, bool on);

/// poll(2) a single fd for readability. 1 = readable/hup, 0 = timeout or
/// EINTR (callers treat a signal wake as a tick and re-check their cancel
/// token), -1 = error.
int wait_readable(int fd, int timeout_ms);

/// poll(2) a single fd for writability. Same return convention.
int wait_writable(int fd, int timeout_ms);

/// One entry of a poll_fds() set. `readable`/`writable`/`hangup` are outputs;
/// hangup also covers POLLERR/POLLNVAL so callers treat it as "close me".
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

/// poll(2) a whole fd set (the event-loop primitive). Returns the number of
/// entries with any output flag set, 0 on timeout or EINTR, -1 on error.
int poll_fds(PollItem* items, size_t n, int timeout_ms);

}  // namespace gendt::net
