#include "gendt/geo/geo.h"

#include <algorithm>
#include <cassert>

namespace gendt::geo {

double haversine_m(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad, lat2 = b.lat * kDegToRad;
  const double dlat = lat2 - lat1;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0), s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double bearing_deg(const Enu& a, const Enu& b) {
  const double deg = std::atan2(b.east - a.east, b.north - a.north) * kRadToDeg;
  return deg < 0.0 ? deg + 360.0 : deg;
}

double angle_diff_deg(double a_deg, double b_deg) {
  double d = std::fmod(std::abs(a_deg - b_deg), 360.0);
  return d > 180.0 ? 360.0 - d : d;
}

Trajectory::Trajectory(std::vector<TrajectoryPoint> points) : points_(std::move(points)) {
  for (size_t i = 1; i < points_.size(); ++i) assert(points_[i].t > points_[i - 1].t);
}

void Trajectory::push_back(TrajectoryPoint p) {
  assert(points_.empty() || p.t > points_.back().t);
  points_.push_back(p);
}

double Trajectory::duration_s() const {
  return points_.size() < 2 ? 0.0 : points_.back().t - points_.front().t;
}

double Trajectory::length_m() const {
  double len = 0.0;
  for (size_t i = 1; i < points_.size(); ++i)
    len += haversine_m(points_[i - 1].pos, points_[i].pos);
  return len;
}

double Trajectory::mean_speed_mps() const {
  const double d = duration_s();
  return d > 0.0 ? length_m() / d : 0.0;
}

std::optional<LatLon> Trajectory::at(double t) const {
  if (points_.empty() || t < points_.front().t || t > points_.back().t) return std::nullopt;
  auto it = std::lower_bound(points_.begin(), points_.end(), t,
                             [](const TrajectoryPoint& p, double tv) { return p.t < tv; });
  if (it == points_.begin()) return it->pos;
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  const double f = (t - lo.t) / (hi.t - lo.t);
  return LatLon{lo.pos.lat + f * (hi.pos.lat - lo.pos.lat),
                lo.pos.lon + f * (hi.pos.lon - lo.pos.lon)};
}

Trajectory Trajectory::resample(double period_s) const {
  assert(period_s > 0.0);
  Trajectory out;
  if (points_.empty()) return out;
  for (double t = points_.front().t; t <= points_.back().t + 1e-9; t += period_s) {
    auto pos = at(std::min(t, points_.back().t));
    if (pos) out.push_back({t, *pos});
  }
  return out;
}

Trajectory Trajectory::append(const Trajectory& other, double gap_s) const {
  Trajectory out = *this;
  if (other.empty()) return out;
  const double shift =
      (out.empty() ? 0.0 : out.back().t + gap_s) - other.front().t +
      (out.empty() ? 0.0 : 1e-6);  // keep strictly increasing when gap_s == 0
  for (const auto& p : other.points()) out.push_back({p.t + shift, p.pos});
  return out;
}

}  // namespace gendt::geo
