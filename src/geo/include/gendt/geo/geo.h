// Geographic primitives: WGS-84 lat/lon points, a local East-North (ENU)
// tangent-plane projection, and timestamped trajectories.
//
// All distances are metres, all times seconds, all angles degrees unless a
// name says otherwise.
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <vector>

namespace gendt::geo {

inline constexpr double kEarthRadiusM = 6371000.0;
inline constexpr double kDegToRad = M_PI / 180.0;
inline constexpr double kRadToDeg = 180.0 / M_PI;

struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Local metric coordinates relative to a projection origin.
struct Enu {
  double east = 0.0;
  double north = 0.0;
};

inline double hypot2(double dx, double dy) { return std::sqrt(dx * dx + dy * dy); }

/// Great-circle distance (haversine), metres.
double haversine_m(const LatLon& a, const LatLon& b);

/// Equirectangular local projection around a fixed origin: accurate to well
/// under 0.1% for the tens-of-km regions drive tests cover.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon origin)
      : origin_(origin), cos_lat0_(std::cos(origin.lat * kDegToRad)) {}

  Enu to_enu(const LatLon& p) const {
    return {(p.lon - origin_.lon) * kDegToRad * kEarthRadiusM * cos_lat0_,
            (p.lat - origin_.lat) * kDegToRad * kEarthRadiusM};
  }
  LatLon to_latlon(const Enu& e) const {
    return {origin_.lat + e.north / kEarthRadiusM * kRadToDeg,
            origin_.lon + e.east / (kEarthRadiusM * cos_lat0_) * kRadToDeg};
  }
  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat0_;
};

/// Euclidean distance in the local plane, metres.
inline double distance_m(const Enu& a, const Enu& b) {
  return hypot2(a.east - b.east, a.north - b.north);
}

/// Bearing from `a` to `b` in degrees clockwise from north, [0, 360).
double bearing_deg(const Enu& a, const Enu& b);

/// Smallest absolute angular difference between two bearings, degrees [0,180].
double angle_diff_deg(double a_deg, double b_deg);

/// One sample of a measurement trajectory.
struct TrajectoryPoint {
  double t = 0.0;  // seconds since trajectory start
  LatLon pos;
};

/// A timestamped sequence of locations — the paper's notion of "trajectory"
/// (implicitly encodes mobility). Points must be strictly increasing in t.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<TrajectoryPoint> points);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TrajectoryPoint& operator[](size_t i) const { return points_[i]; }
  std::span<const TrajectoryPoint> points() const { return points_; }
  const TrajectoryPoint& front() const { return points_.front(); }
  const TrajectoryPoint& back() const { return points_.back(); }

  void push_back(TrajectoryPoint p);

  /// Total duration (s); 0 for <2 points.
  double duration_s() const;
  /// Total path length (m) along great circles.
  double length_m() const;
  /// Mean speed (m/s); 0 for degenerate trajectories.
  double mean_speed_mps() const;

  /// Position at time t by linear interpolation; nullopt outside [t0, tN].
  std::optional<LatLon> at(double t) const;

  /// Resample at a fixed period; returns a new trajectory starting at the
  /// original t0. `period_s` must be > 0.
  Trajectory resample(double period_s) const;

  /// Concatenate `other` after this one, shifting its times by gap_s after
  /// this trajectory's end. Used to build multi-scenario routes.
  Trajectory append(const Trajectory& other, double gap_s = 0.0) const;

 private:
  std::vector<TrajectoryPoint> points_;
};

}  // namespace gendt::geo
