#include "gendt/sim/landuse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <random>

namespace gendt::sim {

std::string_view land_use_name(LandUse lu) {
  switch (lu) {
    case LandUse::kContinuousUrban: return "Continuous Urban";
    case LandUse::kHighDenseUrban: return "High Dense Urban";
    case LandUse::kMediumDenseUrban: return "Medium Dense Urban";
    case LandUse::kLowDenseUrban: return "Low Dense Urban";
    case LandUse::kVeryLowDenseUrban: return "Very-Low Dense Urban";
    case LandUse::kIsolatedStructures: return "Isolated Structures";
    case LandUse::kGreenUrban: return "Green Urban";
    case LandUse::kIndustrialCommercial: return "Industrial/Commercial";
    case LandUse::kAirSeaPorts: return "Air/Sea Ports";
    case LandUse::kLeisureFacilities: return "Leisure Facilities";
    case LandUse::kBarrenLands: return "Barren Lands";
    case LandUse::kSea: return "Sea";
  }
  return "?";
}

std::string_view poi_name(PoiType p) {
  switch (p) {
    case PoiType::kTourism: return "Tourism";
    case PoiType::kCafe: return "Cafe";
    case PoiType::kParking: return "Parking";
    case PoiType::kRestaurant: return "Restaurant";
    case PoiType::kPostPolice: return "Post/Police";
    case PoiType::kTrafficSignal: return "Traffic Signal";
    case PoiType::kOffice: return "Office";
    case PoiType::kPublicTransport: return "Public Transport";
    case PoiType::kShop: return "Shop";
    case PoiType::kPrimaryRoads: return "Primary Roads";
    case PoiType::kSecondaryRoads: return "Secondary Roads";
    case PoiType::kMotorways: return "Motorways";
    case PoiType::kRailwayStations: return "Railway Stations";
    case PoiType::kTramStops: return "Tram Stops";
  }
  return "?";
}

radio::Clutter clutter_for(LandUse lu) {
  switch (lu) {
    case LandUse::kContinuousUrban:
      return radio::Clutter::kDenseUrban;
    case LandUse::kHighDenseUrban:
    case LandUse::kMediumDenseUrban:
    case LandUse::kIndustrialCommercial:
      return radio::Clutter::kUrban;
    case LandUse::kLowDenseUrban:
    case LandUse::kVeryLowDenseUrban:
    case LandUse::kIsolatedStructures:
    case LandUse::kGreenUrban:
    case LandUse::kLeisureFacilities:
      return radio::Clutter::kSuburban;
    case LandUse::kAirSeaPorts:
    case LandUse::kBarrenLands:
    case LandUse::kSea:
      return radio::Clutter::kOpen;
  }
  return radio::Clutter::kOpen;
}

namespace {
// Deterministic per-grid-cell hash in [0,1).
double cell_hash01(uint64_t seed, long gx, long gy, uint64_t salt) {
  uint64_t z = seed ^ (static_cast<uint64_t>(gx) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(gy) * 0xc2b2ae3d27d4eb4fULL) ^ (salt * 0x165667b19e3779f9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) / 9007199254740992.0;
}

double point_segment_distance(const geo::Enu& p, const geo::Enu& a, const geo::Enu& b) {
  const double vx = b.east - a.east, vy = b.north - a.north;
  const double wx = p.east - a.east, wy = p.north - a.north;
  const double vv = vx * vx + vy * vy;
  const double t = vv > 0.0 ? std::clamp((wx * vx + wy * vy) / vv, 0.0, 1.0) : 0.0;
  return geo::hypot2(wx - t * vx, wy - t * vy);
}
}  // namespace

LandUseMap::LandUseMap(const RegionConfig& cfg, double cell_m) : cfg_(cfg), cell_m_(cell_m) {
  grid_n_ = static_cast<long>(std::ceil(2.0 * cfg_.extent_m / cell_m_));
  grid_.assign(static_cast<size_t>(grid_n_) * grid_n_, LandUse::kBarrenLands);
  rasterize();
  scatter_pois();
}

int LandUseMap::index(long gx, long gy) const {
  gx = std::clamp(gx, 0L, grid_n_ - 1);
  gy = std::clamp(gy, 0L, grid_n_ - 1);
  return static_cast<int>(gy * grid_n_ + gx);
}

double LandUseMap::distance_to_highway_m(const geo::Enu& pos) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& hw : cfg_.highways) {
    for (size_t i = 1; i < hw.waypoints.size(); ++i) {
      best = std::min(best, point_segment_distance(pos, hw.waypoints[i - 1], hw.waypoints[i]));
    }
  }
  return best;
}

void LandUseMap::rasterize() {
  for (long gy = 0; gy < grid_n_; ++gy) {
    for (long gx = 0; gx < grid_n_; ++gx) {
      const geo::Enu pos{-cfg_.extent_m + (static_cast<double>(gx) + 0.5) * cell_m_,
                         -cfg_.extent_m + (static_cast<double>(gy) + 0.5) * cell_m_};
      // Distance to nearest city centre, normalized by that city's radius.
      double best_r = std::numeric_limits<double>::infinity();
      for (const auto& city : cfg_.cities) {
        const double r = geo::distance_m(pos, city.center) / city.radius_m;
        best_r = std::min(best_r, r);
      }
      const double noise = cell_hash01(cfg_.seed, gx, gy, 1);
      // Radial ring model with hash jitter on the ring boundaries.
      const double r = best_r + 0.15 * (noise - 0.5);
      LandUse lu;
      if (r < 0.12)
        lu = LandUse::kContinuousUrban;
      else if (r < 0.30)
        lu = LandUse::kHighDenseUrban;
      else if (r < 0.55)
        lu = LandUse::kMediumDenseUrban;
      else if (r < 0.80)
        lu = LandUse::kLowDenseUrban;
      else if (r < 1.00)
        lu = LandUse::kVeryLowDenseUrban;
      else if (r < 1.25)
        lu = LandUse::kGreenUrban;
      else
        lu = LandUse::kBarrenLands;

      // Sprinkle special classes deterministically inside the urban rings.
      const double special = cell_hash01(cfg_.seed, gx, gy, 2);
      if (r < 1.0) {
        if (special < 0.04)
          lu = LandUse::kIndustrialCommercial;
        else if (special < 0.06)
          lu = LandUse::kLeisureFacilities;
        else if (special < 0.07)
          lu = LandUse::kGreenUrban;
      } else {
        if (special < 0.02) lu = LandUse::kIsolatedStructures;
        if (special >= 0.02 && special < 0.025) lu = LandUse::kAirSeaPorts;
      }
      // Highway corridors outside cities read as isolated structures strip.
      if (r >= 1.0 && distance_to_highway_m(pos) < 150.0) lu = LandUse::kIsolatedStructures;

      grid_[static_cast<size_t>(index(gx, gy))] = lu;
    }
  }
}

LandUse LandUseMap::at(const geo::Enu& pos) const {
  const long gx = static_cast<long>(std::floor((pos.east + cfg_.extent_m) / cell_m_));
  const long gy = static_cast<long>(std::floor((pos.north + cfg_.extent_m) / cell_m_));
  return grid_[static_cast<size_t>(index(gx, gy))];
}

std::array<double, kNumLandUse> LandUseMap::land_use_fractions(const geo::Enu& pos,
                                                               double radius_m) const {
  std::array<double, kNumLandUse> frac{};
  int total = 0;
  const long span = std::max(1L, static_cast<long>(std::ceil(radius_m / cell_m_)));
  const long cx = static_cast<long>(std::floor((pos.east + cfg_.extent_m) / cell_m_));
  const long cy = static_cast<long>(std::floor((pos.north + cfg_.extent_m) / cell_m_));
  for (long dy = -span; dy <= span; ++dy) {
    for (long dx = -span; dx <= span; ++dx) {
      const double dist = cell_m_ * geo::hypot2(static_cast<double>(dx), static_cast<double>(dy));
      if (dist > radius_m) continue;
      frac[static_cast<size_t>(grid_[static_cast<size_t>(index(cx + dx, cy + dy))])] += 1.0;
      ++total;
    }
  }
  if (total > 0)
    for (auto& f : frac) f /= static_cast<double>(total);
  return frac;
}

void LandUseMap::scatter_pois() {
  std::mt19937_64 rng(cfg_.seed ^ 0x9d2c5680ULL);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  // Expected PoI count per raster cell by land use, per category.
  auto rate = [](LandUse lu, PoiType p) -> double {
    const bool core = lu == LandUse::kContinuousUrban || lu == LandUse::kHighDenseUrban;
    const bool mid = lu == LandUse::kMediumDenseUrban || lu == LandUse::kIndustrialCommercial;
    const bool low = lu == LandUse::kLowDenseUrban || lu == LandUse::kVeryLowDenseUrban;
    switch (p) {
      case PoiType::kCafe: return core ? 0.12 : mid ? 0.04 : low ? 0.01 : 0.0;
      case PoiType::kRestaurant: return core ? 0.15 : mid ? 0.05 : low ? 0.015 : 0.0;
      case PoiType::kShop: return core ? 0.25 : mid ? 0.08 : low ? 0.02 : 0.0;
      case PoiType::kOffice: return core ? 0.10 : mid ? 0.06 : 0.0;
      case PoiType::kTourism: return core ? 0.05 : 0.005;
      case PoiType::kParking: return core ? 0.08 : mid ? 0.05 : low ? 0.02 : 0.002;
      case PoiType::kPostPolice: return core ? 0.02 : mid ? 0.01 : 0.002;
      case PoiType::kTrafficSignal: return core ? 0.12 : mid ? 0.06 : low ? 0.02 : 0.0;
      case PoiType::kPublicTransport: return core ? 0.10 : mid ? 0.05 : low ? 0.02 : 0.001;
      case PoiType::kRailwayStations: return core ? 0.008 : mid ? 0.003 : 0.0005;
      case PoiType::kTramStops: return core ? 0.05 : mid ? 0.015 : 0.0;
      case PoiType::kPrimaryRoads: return core ? 0.06 : mid ? 0.04 : low ? 0.02 : 0.002;
      case PoiType::kSecondaryRoads: return core ? 0.10 : mid ? 0.08 : low ? 0.05 : 0.005;
      case PoiType::kMotorways: return 0.0;  // handled along highways below
    }
    return 0.0;
  };

  for (long gy = 0; gy < grid_n_; ++gy) {
    for (long gx = 0; gx < grid_n_; ++gx) {
      const LandUse lu = grid_[static_cast<size_t>(index(gx, gy))];
      const geo::Enu base{-cfg_.extent_m + static_cast<double>(gx) * cell_m_,
                          -cfg_.extent_m + static_cast<double>(gy) * cell_m_};
      for (int p = 0; p < kNumPoi; ++p) {
        const double lambda = rate(lu, static_cast<PoiType>(p));
        if (lambda <= 0.0) continue;
        std::poisson_distribution<int> pois_count(lambda);
        const int n = pois_count(rng);
        for (int k = 0; k < n; ++k) {
          pois_.push_back({static_cast<PoiType>(p),
                           {base.east + u01(rng) * cell_m_, base.north + u01(rng) * cell_m_}});
        }
      }
    }
  }
  // Motorway markers every ~250 m along highway polylines.
  for (const auto& hw : cfg_.highways) {
    for (size_t i = 1; i < hw.waypoints.size(); ++i) {
      const geo::Enu& a = hw.waypoints[i - 1];
      const geo::Enu& b = hw.waypoints[i];
      const double len = geo::distance_m(a, b);
      const int n = std::max(1, static_cast<int>(len / 250.0));
      for (int k = 0; k <= n; ++k) {
        const double f = static_cast<double>(k) / n;
        pois_.push_back({PoiType::kMotorways,
                         {a.east + f * (b.east - a.east), a.north + f * (b.north - a.north)}});
      }
    }
  }

  // Build the spatial hash for radius queries.
  buckets_per_side_ = static_cast<long>(std::ceil(2.0 * cfg_.extent_m / bucket_m_)) + 1;
  poi_buckets_.assign(static_cast<size_t>(buckets_per_side_) * buckets_per_side_, {});
  for (size_t i = 0; i < pois_.size(); ++i) {
    const long bx = std::clamp(
        static_cast<long>((pois_[i].pos.east + cfg_.extent_m) / bucket_m_), 0L, buckets_per_side_ - 1);
    const long by = std::clamp(
        static_cast<long>((pois_[i].pos.north + cfg_.extent_m) / bucket_m_), 0L, buckets_per_side_ - 1);
    poi_buckets_[static_cast<size_t>(by * buckets_per_side_ + bx)].push_back(
        static_cast<int32_t>(i));
  }
}

std::array<int, kNumPoi> LandUseMap::poi_counts(const geo::Enu& pos, double radius_m) const {
  std::array<int, kNumPoi> counts{};
  const long span = static_cast<long>(std::ceil(radius_m / bucket_m_));
  const long cx = std::clamp(static_cast<long>((pos.east + cfg_.extent_m) / bucket_m_), 0L,
                             buckets_per_side_ - 1);
  const long cy = std::clamp(static_cast<long>((pos.north + cfg_.extent_m) / bucket_m_), 0L,
                             buckets_per_side_ - 1);
  for (long by = std::max(0L, cy - span); by <= std::min(buckets_per_side_ - 1, cy + span); ++by) {
    for (long bx = std::max(0L, cx - span); bx <= std::min(buckets_per_side_ - 1, cx + span);
         ++bx) {
      for (int32_t i : poi_buckets_[static_cast<size_t>(by * buckets_per_side_ + bx)]) {
        if (geo::distance_m(pos, pois_[static_cast<size_t>(i)].pos) <= radius_m)
          ++counts[static_cast<size_t>(pois_[static_cast<size_t>(i)].type)];
      }
    }
  }
  return counts;
}

}  // namespace gendt::sim
