#include "gendt/sim/world.h"

#include <cmath>
#include <random>

namespace gendt::sim {

double site_density_per_km2(LandUse lu) {
  switch (lu) {
    case LandUse::kContinuousUrban: return 9.0;
    case LandUse::kHighDenseUrban: return 6.0;
    case LandUse::kMediumDenseUrban: return 3.5;
    case LandUse::kIndustrialCommercial: return 3.0;
    case LandUse::kLowDenseUrban: return 2.0;
    case LandUse::kLeisureFacilities: return 1.5;
    case LandUse::kVeryLowDenseUrban: return 1.0;
    case LandUse::kGreenUrban: return 0.8;
    case LandUse::kAirSeaPorts: return 0.8;
    case LandUse::kIsolatedStructures: return 0.5;
    case LandUse::kBarrenLands: return 0.15;
    case LandUse::kSea: return 0.0;
  }
  return 0.0;
}

radio::CellTable deploy_cells(const LandUseMap& map, const DeploymentConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const RegionConfig& region = map.config();
  const geo::LocalProjection proj(region.origin);

  std::vector<geo::Enu> sites;

  // Poisson placement over a coarse lattice: expected sites per tile follows
  // the land use at the tile centre.
  const double tile_m = 250.0;
  const double tile_km2 = tile_m * tile_m / 1e6;
  auto city_density_scale = [&region](const geo::Enu& p) {
    // Inside (or near) a city, inherit that city's relative deployment
    // density; elsewhere nominal.
    double scale = 1.0;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& city : region.cities) {
      const double d = geo::distance_m(p, city.center);
      if (d < 1.3 * city.radius_m && d < best) {
        best = d;
        scale = city.density_scale;
      }
    }
    return scale;
  };

  for (double north = -region.extent_m; north < region.extent_m; north += tile_m) {
    for (double east = -region.extent_m; east < region.extent_m; east += tile_m) {
      const geo::Enu centre{east + tile_m / 2, north + tile_m / 2};
      const double lambda =
          site_density_per_km2(map.at(centre)) * tile_km2 * city_density_scale(centre);
      if (lambda <= 0.0) continue;
      std::poisson_distribution<int> count(lambda);
      const int n = count(rng);
      for (int i = 0; i < n; ++i)
        sites.push_back({east + u01(rng) * tile_m, north + u01(rng) * tile_m});
    }
  }

  // Highway chain: a site roughly every 2.5 km along each highway, offset
  // sideways a little, but only where density placement left a gap.
  for (const auto& hw : region.highways) {
    for (size_t i = 1; i < hw.waypoints.size(); ++i) {
      const geo::Enu& a = hw.waypoints[i - 1];
      const geo::Enu& b = hw.waypoints[i];
      const double len = geo::distance_m(a, b);
      const int n = std::max(1, static_cast<int>(len / 2500.0));
      for (int k = 0; k <= n; ++k) {
        const double f = static_cast<double>(k) / n;
        geo::Enu p{a.east + f * (b.east - a.east), a.north + f * (b.north - a.north)};
        p.east += (u01(rng) - 0.5) * 600.0;
        p.north += (u01(rng) - 0.5) * 600.0;
        bool near_existing = false;
        for (const auto& s : sites) {
          if (geo::distance_m(s, p) < 1200.0) {
            near_existing = true;
            break;
          }
        }
        if (!near_existing) sites.push_back(p);
      }
    }
  }

  // Three sectors per site at 0/120/240 degrees plus per-site jitter.
  std::vector<radio::Cell> cells;
  cells.reserve(sites.size() * 3);
  radio::CellId next_id = 1;
  std::normal_distribution<double> jitter(0.0, cfg.azimuth_jitter_deg);
  for (const auto& s : sites) {
    const double base_az = u01(rng) * 120.0;
    for (int sector = 0; sector < 3; ++sector) {
      radio::Cell c;
      c.id = next_id++;
      c.site = proj.to_latlon(s);
      c.p_max_dbm = cfg.p_max_dbm + (u01(rng) - 0.5) * 2.0;  // slight per-cell power spread
      c.azimuth_deg = std::fmod(base_az + 120.0 * sector + jitter(rng) + 360.0, 360.0);
      cells.push_back(c);
    }
  }
  return radio::CellTable(std::move(cells), region.origin);
}

World make_world(const RegionConfig& region, const DeploymentConfig& deployment) {
  World w;
  w.region = region;
  w.land_use = std::make_shared<LandUseMap>(region);
  w.deployment = deployment;
  w.cells = deploy_cells(*w.land_use, deployment);
  return w;
}

}  // namespace gendt::sim
