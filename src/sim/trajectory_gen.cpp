#include "gendt/sim/trajectory_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gendt::sim {

std::string_view scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kWalk: return "Walk";
    case Scenario::kBus: return "Bus";
    case Scenario::kTram: return "Tram";
    case Scenario::kCityDriving1: return "City Driving 1";
    case Scenario::kCityDriving2: return "City Driving 2";
    case Scenario::kHighway1: return "Highway 1";
    case Scenario::kHighway2: return "Highway 2";
    case Scenario::kLongComplex: return "Long Complex";
  }
  return "?";
}

MobilityProfile mobility_profile(Scenario s) {
  switch (s) {
    case Scenario::kWalk:
      return {.mean_speed_mps = 1.4, .speed_jitter = 0.3, .heading_persistence = 0.85,
              .sample_period_s = 1.0};
    case Scenario::kBus:
      return {.mean_speed_mps = 6.5, .speed_jitter = 0.4, .heading_persistence = 0.93,
              .sample_period_s = 1.0, .stop_probability = 0.02, .stop_duration_s = 15.0};
    case Scenario::kTram:
      return {.mean_speed_mps = 12.5, .speed_jitter = 0.25, .heading_persistence = 0.97,
              .sample_period_s = 1.0, .stop_probability = 0.015, .stop_duration_s = 20.0};
    case Scenario::kCityDriving1:
      return {.mean_speed_mps = 9.1, .speed_jitter = 0.45, .heading_persistence = 0.92,
              .sample_period_s = 3.8, .period_jitter_s = 0.8};
    case Scenario::kCityDriving2:
      return {.mean_speed_mps = 9.8, .speed_jitter = 0.45, .heading_persistence = 0.92,
              .sample_period_s = 3.5, .period_jitter_s = 0.8};
    case Scenario::kHighway1:
      return {.mean_speed_mps = 26.7, .speed_jitter = 0.12, .heading_persistence = 0.995,
              .sample_period_s = 2.1, .period_jitter_s = 0.4};
    case Scenario::kHighway2:
      return {.mean_speed_mps = 31.1, .speed_jitter = 0.10, .heading_persistence = 0.995,
              .sample_period_s = 2.3, .period_jitter_s = 0.4};
    case Scenario::kLongComplex:
      return {.mean_speed_mps = 18.0, .speed_jitter = 0.3, .heading_persistence = 0.97,
              .sample_period_s = 2.5, .period_jitter_s = 0.5};
  }
  return {};
}

namespace {
double next_period(const MobilityProfile& p, std::mt19937_64& rng) {
  if (p.period_jitter_s <= 0.0) return p.sample_period_s;
  std::uniform_real_distribution<double> j(-p.period_jitter_s, p.period_jitter_s);
  return std::max(0.5, p.sample_period_s + j(rng));
}
}  // namespace

geo::Trajectory random_route(const geo::LocalProjection& proj, const geo::Enu& center,
                             double radius_m, const MobilityProfile& profile, double duration_s,
                             std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  geo::Enu pos = center;
  double heading = u01(rng) * 2.0 * M_PI;
  double t = 0.0;
  double stop_until = -1.0;

  geo::Trajectory out;
  out.push_back({t, proj.to_latlon(pos)});
  while (t < duration_s) {
    const double dt = next_period(profile, rng);
    t += dt;
    if (t < stop_until) {  // dwelling at a stop
      out.push_back({t, proj.to_latlon(pos)});
      continue;
    }
    if (profile.stop_probability > 0.0 && u01(rng) < profile.stop_probability) {
      stop_until = t + profile.stop_duration_s * (0.5 + u01(rng));
    }
    // Correlated heading: blend a random turn into the current heading.
    const double turn = (1.0 - profile.heading_persistence) * gauss(rng) * M_PI;
    heading += turn;
    const double speed =
        std::max(0.1, profile.mean_speed_mps * (1.0 + profile.speed_jitter * gauss(rng)));
    geo::Enu next{pos.east + std::sin(heading) * speed * dt,
                  pos.north + std::cos(heading) * speed * dt};
    // Reflect at the disc boundary: steer back towards the centre.
    if (geo::distance_m(next, center) > radius_m) {
      heading = std::atan2(center.east - pos.east, center.north - pos.north) +
                (u01(rng) - 0.5) * 0.8;
      next = {pos.east + std::sin(heading) * speed * dt,
              pos.north + std::cos(heading) * speed * dt};
    }
    pos = next;
    out.push_back({t, proj.to_latlon(pos)});
  }
  return out;
}

geo::Trajectory polyline_route(const geo::LocalProjection& proj,
                               const std::vector<geo::Enu>& waypoints,
                               const MobilityProfile& profile, std::mt19937_64& rng,
                               double lateral_jitter_m) {
  assert(waypoints.size() >= 2);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  geo::Trajectory out;
  double t = 0.0;
  size_t seg = 1;
  geo::Enu pos = waypoints.front();
  out.push_back({t, proj.to_latlon(pos)});
  double stop_until = -1.0;

  while (seg < waypoints.size()) {
    const double dt = next_period(profile, rng);
    t += dt;
    if (t < stop_until) {
      out.push_back({t, proj.to_latlon(pos)});
      continue;
    }
    if (profile.stop_probability > 0.0 && u01(rng) < profile.stop_probability) {
      stop_until = t + profile.stop_duration_s * (0.5 + u01(rng));
    }
    double remaining =
        std::max(0.1, profile.mean_speed_mps * (1.0 + profile.speed_jitter * gauss(rng))) * dt;
    while (remaining > 0.0 && seg < waypoints.size()) {
      const geo::Enu& target = waypoints[seg];
      const double d = geo::distance_m(pos, target);
      if (d <= remaining) {
        pos = target;
        remaining -= d;
        ++seg;
      } else {
        const double f = remaining / d;
        pos = {pos.east + f * (target.east - pos.east), pos.north + f * (target.north - pos.north)};
        remaining = 0.0;
      }
    }
    geo::Enu sample = pos;
    sample.east += gauss(rng) * lateral_jitter_m;
    sample.north += gauss(rng) * lateral_jitter_m;
    out.push_back({t, proj.to_latlon(sample)});
  }
  return out;
}

geo::Trajectory scenario_trajectory(const RegionConfig& region, const RoadNetwork& roads,
                                    Scenario s, double duration_s, std::mt19937_64& rng,
                                    int city_index) {
  const geo::LocalProjection proj(region.origin);
  const MobilityProfile profile = mobility_profile(s);
  std::uniform_int_distribution<int> line_pick(0, 999);

  auto ride_polyline = [&](std::vector<geo::Enu> wps, const MobilityProfile& p,
                           double lateral_m) {
    if (wps.size() < 2) return geo::Trajectory{};
    geo::Trajectory tr = polyline_route(proj, wps, p, rng, lateral_m);
    while (tr.duration_s() < duration_s) {
      std::reverse(wps.begin(), wps.end());
      tr = tr.append(polyline_route(proj, wps, p, rng, lateral_m), 20.0);
    }
    return tr;
  };

  switch (s) {
    case Scenario::kWalk:
      // Pedestrians are not street-bound; keep the free-space walk.
      return scenario_trajectory(region, s, duration_s, rng, city_index);
    case Scenario::kBus:
      return ride_polyline(roads.transit_line(city_index, 100 + line_pick(rng) % 5), profile,
                           5.0);
    case Scenario::kTram:
      return ride_polyline(roads.transit_line(city_index, 200 + line_pick(rng) % 3), profile,
                           2.0);
    case Scenario::kCityDriving1:
    case Scenario::kCityDriving2: {
      const double min_len = profile.mean_speed_mps * duration_s;
      auto route = roads.random_city_route(city_index, min_len, rng);
      if (route.size() < 2) return scenario_trajectory(region, s, duration_s, rng, city_index);
      return polyline_route(proj, route, profile, rng, 4.0);
    }
    case Scenario::kHighway1:
    case Scenario::kHighway2:
      // Highways were already polylines; same treatment as the free variant.
      return scenario_trajectory(region, s, duration_s, rng, city_index);
    case Scenario::kLongComplex: {
      geo::Trajectory tr;
      const int n_city = static_cast<int>(region.cities.size());
      MobilityProfile city_profile = mobility_profile(Scenario::kCityDriving1);
      MobilityProfile hw_profile = mobility_profile(Scenario::kHighway1);
      for (int i = 0; i < n_city; ++i) {
        const double leg_s = duration_s / (2.0 * n_city);
        auto route = roads.random_city_route(i, city_profile.mean_speed_mps * leg_s, rng);
        if (route.size() >= 2) {
          geo::Trajectory leg = polyline_route(proj, route, city_profile, rng, 4.0);
          tr = tr.empty() ? leg : tr.append(leg, 5.0);
        }
        if (i + 1 < n_city && !region.highways.empty()) {
          const auto& hw = region.highways[static_cast<size_t>(i) % region.highways.size()];
          tr = tr.append(polyline_route(proj, hw.waypoints, hw_profile, rng, 3.0), 5.0);
        }
      }
      if (tr.empty()) return scenario_trajectory(region, s, duration_s, rng, city_index);
      return tr;
    }
  }
  return {};
}

geo::Trajectory scenario_trajectory(const RegionConfig& region, Scenario s, double duration_s,
                                    std::mt19937_64& rng, int city_index) {
  const geo::LocalProjection proj(region.origin);
  const MobilityProfile profile = mobility_profile(s);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  auto city_center = [&](int i) {
    assert(!region.cities.empty());
    return region.cities[static_cast<size_t>(i) % region.cities.size()].center;
  };
  auto city_radius = [&](int i) {
    return region.cities[static_cast<size_t>(i) % region.cities.size()].radius_m;
  };

  switch (s) {
    case Scenario::kWalk:
      return random_route(proj, city_center(city_index), 0.35 * city_radius(city_index), profile,
                          duration_s, rng);
    case Scenario::kBus:
    case Scenario::kCityDriving1:
    case Scenario::kCityDriving2:
      return random_route(proj, city_center(city_index), 0.8 * city_radius(city_index), profile,
                          duration_s, rng);
    case Scenario::kTram: {
      // Tram: fixed polyline through the city centre; back and forth.
      const geo::Enu c = city_center(city_index);
      const double r = 0.7 * city_radius(city_index);
      const double ang = u01(rng) * 2.0 * M_PI;
      std::vector<geo::Enu> line;
      for (double f = -1.0; f <= 1.001; f += 0.25) {
        line.push_back({c.east + f * r * std::sin(ang) + (u01(rng) - 0.5) * 300.0,
                        c.north + f * r * std::cos(ang) + (u01(rng) - 0.5) * 300.0});
      }
      geo::Trajectory tr = polyline_route(proj, line, profile, rng);
      while (tr.duration_s() < duration_s) {
        std::reverse(line.begin(), line.end());
        tr = tr.append(polyline_route(proj, line, profile, rng), 20.0);
      }
      return tr;
    }
    case Scenario::kHighway1:
    case Scenario::kHighway2: {
      assert(!region.highways.empty());
      const auto& hw =
          region.highways[static_cast<size_t>(city_index) % region.highways.size()];
      geo::Trajectory tr = polyline_route(proj, hw.waypoints, profile, rng, 3.0);
      std::vector<geo::Enu> wps = hw.waypoints;
      while (tr.duration_s() < duration_s) {
        std::reverse(wps.begin(), wps.end());
        tr = tr.append(polyline_route(proj, wps, profile, rng, 3.0), 30.0);
      }
      return tr;
    }
    case Scenario::kLongComplex: {
      // City A driving -> highway -> city B -> highway -> city C.
      geo::Trajectory tr;
      const int n_city = static_cast<int>(region.cities.size());
      for (int i = 0; i < n_city; ++i) {
        MobilityProfile city = mobility_profile(Scenario::kCityDriving1);
        geo::Trajectory leg = random_route(proj, city_center(i), 0.7 * city_radius(i), city,
                                           duration_s / (2.0 * n_city), rng);
        tr = tr.empty() ? leg : tr.append(leg, 5.0);
        if (i + 1 < n_city && !region.highways.empty()) {
          const auto& hw = region.highways[static_cast<size_t>(i) % region.highways.size()];
          MobilityProfile hwp = mobility_profile(Scenario::kHighway1);
          tr = tr.append(polyline_route(proj, hw.waypoints, hwp, rng, 3.0), 5.0);
        }
      }
      return tr;
    }
  }
  return {};
}

}  // namespace gendt::sim
