#include "gendt/sim/roads.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace gendt::sim {

RoadNetwork::RoadNetwork(const RegionConfig& region, double block_m) : region_(region) {
  std::mt19937_64 rng(region.seed ^ 0x70adULL);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  city_nodes_.resize(region.cities.size());

  // Per-city jittered grid of intersections.
  for (size_t ci = 0; ci < region.cities.size(); ++ci) {
    const CityConfig& city = region.cities[ci];
    const long half = static_cast<long>(city.radius_m / block_m);
    // Index grid (gx, gy) -> node id for this city, -1 where outside radius.
    const long side = 2 * half + 1;
    std::vector<int32_t> grid(static_cast<size_t>(side * side), -1);
    auto grid_at = [&](long gx, long gy) -> int32_t& {
      return grid[static_cast<size_t>((gy + half) * side + (gx + half))];
    };
    for (long gy = -half; gy <= half; ++gy) {
      for (long gx = -half; gx <= half; ++gx) {
        const double jitter_x = (u01(rng) - 0.5) * 0.35 * block_m;
        const double jitter_y = (u01(rng) - 0.5) * 0.35 * block_m;
        const geo::Enu pos{city.center.east + static_cast<double>(gx) * block_m + jitter_x,
                           city.center.north + static_cast<double>(gy) * block_m + jitter_y};
        if (geo::distance_m(pos, city.center) > city.radius_m) continue;
        grid_at(gx, gy) = static_cast<int32_t>(nodes_.size());
        nodes_.push_back({pos});
        city_nodes_[ci].push_back(grid_at(gx, gy));
      }
    }
    // 4-neighbour secondary streets; every ~4th row/column is primary.
    for (long gy = -half; gy <= half; ++gy) {
      for (long gx = -half; gx <= half; ++gx) {
        const int32_t n = grid_at(gx, gy);
        if (n < 0) continue;
        if (gx < half && grid_at(gx + 1, gy) >= 0) {
          add_edge(n, grid_at(gx + 1, gy),
                   ((gy + half) % 4 == 0) ? RoadClass::kPrimary : RoadClass::kSecondary);
        }
        if (gy < half && grid_at(gx, gy + 1) >= 0) {
          add_edge(n, grid_at(gx, gy + 1),
                   ((gx + half) % 4 == 0) ? RoadClass::kPrimary : RoadClass::kSecondary);
        }
      }
    }
  }

  // Highways: motorway chains stitched to the nearest city intersection at
  // each end.
  for (const auto& hw : region.highways) {
    int32_t prev = -1;
    for (const auto& wp : hw.waypoints) {
      const int32_t n = static_cast<int32_t>(nodes_.size());
      nodes_.push_back({wp});
      adjacency_.resize(nodes_.size());
      if (prev >= 0) add_edge(prev, n, RoadClass::kMotorway);
      prev = n;
    }
  }
  adjacency_.resize(nodes_.size());
  for (const auto& hw : region.highways) {
    // Stitch both endpoints to the nearest non-motorway node.
    for (const geo::Enu& endpoint : {hw.waypoints.front(), hw.waypoints.back()}) {
      int32_t best = -1;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t ci = 0; ci < city_nodes_.size(); ++ci) {
        for (int32_t n : city_nodes_[ci]) {
          const double d = geo::distance_m(nodes_[static_cast<size_t>(n)].pos, endpoint);
          if (d < best_d) {
            best_d = d;
            best = n;
          }
        }
      }
      if (best >= 0) {
        // Endpoint node id: find the node at that exact position.
        for (size_t n = 0; n < nodes_.size(); ++n) {
          if (nodes_[n].pos.east == endpoint.east && nodes_[n].pos.north == endpoint.north) {
            add_edge(static_cast<int32_t>(n), best, RoadClass::kPrimary);
            break;
          }
        }
      }
    }
  }
}

void RoadNetwork::add_edge(int32_t a, int32_t b, RoadClass cls) {
  assert(a >= 0 && b >= 0 && a != b);
  if (adjacency_.size() < nodes_.size()) adjacency_.resize(nodes_.size());
  RoadEdge e;
  e.a = a;
  e.b = b;
  e.cls = cls;
  e.length_m = geo::distance_m(nodes_[static_cast<size_t>(a)].pos,
                               nodes_[static_cast<size_t>(b)].pos);
  adjacency_[static_cast<size_t>(a)].emplace_back(b, e.length_m);
  adjacency_[static_cast<size_t>(b)].emplace_back(a, e.length_m);
  edges_.push_back(e);
}

int32_t RoadNetwork::nearest_node(const geo::Enu& pos) const {
  int32_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const double d = geo::distance_m(nodes_[n].pos, pos);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int32_t>(n);
    }
  }
  return best;
}

std::vector<int32_t> RoadNetwork::shortest_path(int32_t from, int32_t to) const {
  if (from < 0 || to < 0 || from >= static_cast<int32_t>(nodes_.size()) ||
      to >= static_cast<int32_t>(nodes_.size()))
    return {};
  const geo::Enu goal = nodes_[static_cast<size_t>(to)].pos;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(nodes_.size(), kInf);
  std::vector<int32_t> parent(nodes_.size(), -1);
  using Item = std::pair<double, int32_t>;  // (f = g + h, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> open;
  g[static_cast<size_t>(from)] = 0.0;
  open.emplace(geo::distance_m(nodes_[static_cast<size_t>(from)].pos, goal), from);
  while (!open.empty()) {
    const auto [f, n] = open.top();
    open.pop();
    if (n == to) break;
    const double gn = g[static_cast<size_t>(n)];
    if (f - geo::distance_m(nodes_[static_cast<size_t>(n)].pos, goal) > gn + 1e-9) continue;
    for (const auto& [nbr, len] : adjacency_[static_cast<size_t>(n)]) {
      const double cand = gn + len;
      if (cand < g[static_cast<size_t>(nbr)]) {
        g[static_cast<size_t>(nbr)] = cand;
        parent[static_cast<size_t>(nbr)] = n;
        open.emplace(cand + geo::distance_m(nodes_[static_cast<size_t>(nbr)].pos, goal), nbr);
      }
    }
  }
  if (g[static_cast<size_t>(to)] == kInf) return {};
  std::vector<int32_t> path;
  for (int32_t n = to; n >= 0; n = parent[static_cast<size_t>(n)]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<geo::Enu> RoadNetwork::path_polyline(const std::vector<int32_t>& path) const {
  std::vector<geo::Enu> out;
  out.reserve(path.size());
  for (int32_t n : path) out.push_back(nodes_[static_cast<size_t>(n)].pos);
  return out;
}

const std::vector<int32_t>& RoadNetwork::city_nodes(int city_index) const {
  static const std::vector<int32_t> empty;
  if (city_index < 0 || city_index >= static_cast<int>(city_nodes_.size())) return empty;
  return city_nodes_[static_cast<size_t>(city_index)];
}

std::vector<geo::Enu> RoadNetwork::random_city_route(int city_index, double min_length_m,
                                                     std::mt19937_64& rng) const {
  const auto& pool = city_nodes(city_index);
  if (pool.size() < 2) return {};
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  std::vector<geo::Enu> out;
  int32_t current = pool[pick(rng)];
  double length = 0.0;
  int guard = 0;
  while (length < min_length_m && ++guard < 64) {
    int32_t target = pool[pick(rng)];
    if (target == current) continue;
    const auto path = shortest_path(current, target);
    if (path.size() < 2) continue;
    auto poly = path_polyline(path);
    if (!out.empty()) poly.erase(poly.begin());  // avoid duplicating the junction
    for (size_t i = 0; i < poly.size(); ++i) {
      if (!out.empty()) length += geo::distance_m(out.back(), poly[i]);
      out.push_back(poly[i]);
    }
    current = target;
  }
  return out;
}

std::vector<geo::Enu> RoadNetwork::transit_line(int city_index, int line_id) const {
  const auto& pool = city_nodes(city_index);
  if (pool.size() < 2) return {};
  // Deterministic pseudo-random endpoints from line_id: a line crossing the
  // city through (near) the centre.
  std::mt19937_64 rng(static_cast<uint64_t>(line_id) * 2654435761ULL + 17);
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  const int32_t a = pool[pick(rng)];
  // Choose b far from a for a proper line.
  int32_t b = a;
  double best = -1.0;
  for (int trial = 0; trial < 12; ++trial) {
    const int32_t cand = pool[pick(rng)];
    const double d = geo::distance_m(nodes_[static_cast<size_t>(a)].pos,
                                     nodes_[static_cast<size_t>(cand)].pos);
    if (d > best) {
      best = d;
      b = cand;
    }
  }
  return path_polyline(shortest_path(a, b));
}

}  // namespace gendt::sim
