#include "gendt/sim/dataset.h"

#include <algorithm>
#include <cmath>

namespace gendt::sim {

size_t Dataset::total_samples() const {
  size_t n = 0;
  for (const auto& r : train) n += r.samples.size();
  for (const auto& r : test) n += r.samples.size();
  return n;
}

namespace {

RegionConfig region_a(uint64_t seed) {
  RegionConfig r;
  r.origin = {55.95, -3.19};  // single mid-size city, "country A"
  r.extent_m = 8000.0;
  r.cities.push_back({{0.0, 0.0}, 3500.0});
  r.seed = seed;
  return r;
}

RegionConfig region_b(uint64_t seed) {
  RegionConfig r;
  r.origin = {51.51, 7.47};  // Dortmund-like multi-city region
  r.extent_m = 24000.0;
  // Heterogeneous deployments: training covers cities 0-1; the long complex
  // route also crosses the sparse city 2 and the dense city 3, giving the
  // §6.1.3 distribution shift between training and the complex route.
  r.cities.push_back({{0.0, 0.0}, 4500.0, 1.0});          // city 0 (centre)
  r.cities.push_back({{-15000.0, 9000.0}, 3200.0, 1.0});  // city 1
  r.cities.push_back({{14000.0, 11000.0}, 3000.0, 0.45}); // city 2 (sparse)
  r.cities.push_back({{9000.0, -14000.0}, 2800.0, 2.0});  // city 3 (dense)
  r.highways.push_back({{{-1500.0, 2500.0},
                         {-6000.0, 5000.0},
                         {-11000.0, 7500.0},
                         {-15000.0, 9000.0}}});
  r.highways.push_back({{{2000.0, 2500.0},
                         {7000.0, 6500.0},
                         {11000.0, 9000.0},
                         {14000.0, 11000.0}}});
  r.highways.push_back({{{2000.0, -2500.0},
                         {5000.0, -8000.0},
                         {9000.0, -14000.0}}});
  r.seed = seed;
  return r;
}

Dataset build(const RegionConfig& region, const std::vector<Scenario>& scenarios,
              const std::vector<Kpi>& kpis, const DatasetScale& scale) {
  Dataset ds;
  ds.world = make_world(region, DeploymentConfig{.seed = region.seed ^ 0xdeadULL});
  ds.sim_config.seed = region.seed ^ 0xbeefULL;
  ds.kpis = kpis;
  DriveTestSimulator sim(ds.world, ds.sim_config);
  const RoadNetwork roads(region);

  std::mt19937_64 rng(scale.seed);
  uint64_t run_seed = scale.seed * 1000;
  for (Scenario s : scenarios) {
    // City index per scenario: city driving 1/2 and highway 1/2 use
    // different cities/highways, mirroring the paper's distinct areas.
    int city = 0;
    if (s == Scenario::kCityDriving2) city = 1;
    if (s == Scenario::kHighway1) city = 0;
    if (s == Scenario::kHighway2) city = 1;

    for (int k = 0; k < scale.records_per_scenario; ++k) {
      geo::Trajectory tr =
          scenario_trajectory(region, roads, s, scale.train_duration_s, rng, city);
      ds.train.push_back(sim.run(tr, s, ++run_seed));
    }
    // Test trajectories: same scenario type, separate random routes (and for
    // city scenarios a different part of the street grid via fresh draws).
    geo::Trajectory tst =
        scenario_trajectory(region, roads, s, scale.test_duration_s, rng, city);
    ds.test.push_back(sim.run(tst, s, ++run_seed));
  }
  return ds;
}

}  // namespace

Dataset make_dataset_a(const DatasetScale& scale) {
  return build(region_a(scale.seed ^ 0xA), {Scenario::kWalk, Scenario::kBus, Scenario::kTram},
               {Kpi::kRsrp, Kpi::kRsrq, Kpi::kSinr, Kpi::kCqi}, scale);
}

Dataset make_dataset_b(const DatasetScale& scale) {
  return build(region_b(scale.seed ^ 0xB),
               {Scenario::kCityDriving1, Scenario::kCityDriving2, Scenario::kHighway1,
                Scenario::kHighway2},
               {Kpi::kRsrp, Kpi::kRsrq}, scale);
}

DriveTestRecord make_long_complex_record(const Dataset& dataset_b, double duration_s,
                                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RoadNetwork roads(dataset_b.world.region);
  geo::Trajectory tr = scenario_trajectory(dataset_b.world.region, roads,
                                           Scenario::kLongComplex, duration_s, rng);
  DriveTestSimulator sim(dataset_b.world, dataset_b.sim_config);
  return sim.run(tr, Scenario::kLongComplex, seed ^ 0x10c0ULL);
}

std::vector<std::vector<DriveTestRecord>> geographic_subsets(const Dataset& dataset_b,
                                                             int n_subsets) {
  // Slice every training record into contiguous chunks and assign chunks to
  // subsets round-robin by spatial cell, so each subset covers a distinct
  // part of the region. A chunk inherits its subset from the grid cell of
  // its first sample, which keeps subsets geographically coherent.
  std::vector<std::vector<DriveTestRecord>> subsets(static_cast<size_t>(n_subsets));
  const geo::LocalProjection proj(dataset_b.world.region.origin);
  const double grid_m = dataset_b.world.region.extent_m / std::sqrt(static_cast<double>(n_subsets));

  auto subset_of = [&](const geo::LatLon& p) {
    const geo::Enu e = proj.to_enu(p);
    const long gx = static_cast<long>(std::floor((e.east + dataset_b.world.region.extent_m) / grid_m));
    const long gy = static_cast<long>(std::floor((e.north + dataset_b.world.region.extent_m) / grid_m));
    const long h = gx * 31 + gy * 17;
    return static_cast<int>(((h % n_subsets) + n_subsets) % n_subsets);
  };

  for (const auto& rec : dataset_b.train) {
    size_t i = 0;
    while (i < rec.samples.size()) {
      const int target = subset_of(rec.samples[i].pos);
      size_t j = i;
      while (j < rec.samples.size() && subset_of(rec.samples[j].pos) == target) ++j;
      if (j - i >= 20) {  // ignore tiny slivers
        DriveTestRecord chunk;
        chunk.scenario = rec.scenario;
        chunk.samples.assign(rec.samples.begin() + static_cast<long>(i),
                             rec.samples.begin() + static_cast<long>(j));
        geo::Trajectory tr;
        for (const auto& m : chunk.samples) tr.push_back({m.t, m.pos});
        chunk.trajectory = std::move(tr);
        subsets[static_cast<size_t>(target)].push_back(std::move(chunk));
      }
      i = j;
    }
  }
  // Drop empty subsets (possible at small scales) by compacting.
  std::vector<std::vector<DriveTestRecord>> out;
  for (auto& s : subsets)
    if (!s.empty()) out.push_back(std::move(s));
  return out;
}

}  // namespace gendt::sim
