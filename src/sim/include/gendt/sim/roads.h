// Street network substrate: a per-region road graph with A* routing.
// Vehicle scenarios (bus, tram, city driving) follow streets instead of
// free-space random walks, which is what real drive-test trajectories do.
//
// Construction is procedural and deterministic in the region seed:
//  * each city gets a jittered grid of intersections inside its radius,
//    connected to 4-neighbours (secondary roads); a subset of longer
//    through-links form primary roads;
//  * highway polylines are imported as motorway edges and stitched to the
//    nearest city intersections.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "gendt/sim/landuse.h"

namespace gendt::sim {

enum class RoadClass : uint8_t { kSecondary = 0, kPrimary, kMotorway };

struct RoadNode {
  geo::Enu pos;
};

struct RoadEdge {
  int32_t a = 0;
  int32_t b = 0;
  RoadClass cls = RoadClass::kSecondary;
  double length_m = 0.0;
};

class RoadNetwork {
 public:
  /// Build the network for a region. `block_m` is the nominal city block
  /// edge length.
  RoadNetwork(const RegionConfig& region, double block_m = 280.0);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<RoadNode>& nodes() const { return nodes_; }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Nearest node to a position; -1 only when the network is empty.
  int32_t nearest_node(const geo::Enu& pos) const;

  /// A* shortest path (by length) between two nodes; empty if unreachable.
  std::vector<int32_t> shortest_path(int32_t from, int32_t to) const;

  /// Polyline for a node path.
  std::vector<geo::Enu> path_polyline(const std::vector<int32_t>& path) const;

  /// Random street route inside city `city_index`: picks distinct random
  /// intersections and routes between them until the polyline reaches
  /// roughly `min_length_m`. Empty if the city has no nodes.
  std::vector<geo::Enu> random_city_route(int city_index, double min_length_m,
                                          std::mt19937_64& rng) const;

  /// A fixed loop line (bus/tram) through city `city_index`: deterministic
  /// for a given `line_id`, so repeated runs ride the same line.
  std::vector<geo::Enu> transit_line(int city_index, int line_id) const;

  /// Nodes belonging to a city (by construction).
  const std::vector<int32_t>& city_nodes(int city_index) const;

 private:
  void add_edge(int32_t a, int32_t b, RoadClass cls);

  const RegionConfig region_;
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<std::pair<int32_t, double>>> adjacency_;  // node -> (nbr, len)
  std::vector<std::vector<int32_t>> city_nodes_;
};

}  // namespace gendt::sim
