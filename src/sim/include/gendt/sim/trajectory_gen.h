// Scenario trajectory generators. Each produces a timestamped route with the
// mobility characteristics the paper reports per scenario (Tables 1-2):
// walk ~1.4 m/s @1 s, bus ~5.6 m/s @1 s (with stops), tram ~11.5 m/s @1 s,
// city driving ~9-10 m/s @~3.5 s, highway ~27-31 m/s @~2.2 s.
#pragma once

#include <random>

#include "gendt/geo/geo.h"
#include "gendt/sim/landuse.h"
#include "gendt/sim/roads.h"

namespace gendt::sim {

/// The seven measurement scenarios of the paper (Fig. 4 cases 1-7), plus the
/// long multi-city trajectory of §6.1.3.
enum class Scenario {
  kWalk = 0,        // Dataset A
  kBus,             // Dataset A
  kTram,            // Dataset A
  kCityDriving1,    // Dataset B
  kCityDriving2,    // Dataset B
  kHighway1,        // Dataset B
  kHighway2,        // Dataset B
  kLongComplex,     // Dataset B §6.1.3
};
std::string_view scenario_name(Scenario s);

struct MobilityProfile {
  double mean_speed_mps = 1.4;
  double speed_jitter = 0.3;        // fraction of mean
  double heading_persistence = 0.9; // 0 = random walk, 1 = straight line
  double sample_period_s = 1.0;
  double period_jitter_s = 0.0;     // Android-API-like sampling jitter
  double stop_probability = 0.0;    // chance to dwell per segment (bus stops)
  double stop_duration_s = 15.0;
};

MobilityProfile mobility_profile(Scenario s);

/// Correlated random walk inside a disc around `center`; reflects at the
/// boundary. Base generator for walk/bus/tram/city scenarios.
geo::Trajectory random_route(const geo::LocalProjection& proj, const geo::Enu& center,
                             double radius_m, const MobilityProfile& profile, double duration_s,
                             std::mt19937_64& rng);

/// Route that follows a polyline (tram line, highway) at the profile's speed
/// with lateral jitter.
geo::Trajectory polyline_route(const geo::LocalProjection& proj,
                               const std::vector<geo::Enu>& waypoints,
                               const MobilityProfile& profile, std::mt19937_64& rng,
                               double lateral_jitter_m = 6.0);

/// Convenience: build a scenario trajectory inside a region.
/// For kWalk/kBus/kTram/kCityDriving* the route stays inside the city whose
/// index is `city_index`; for kHighway* it follows highway `city_index`; for
/// kLongComplex it chains city driving and highways across all cities.
/// This free-space variant routes vehicles with correlated random walks.
geo::Trajectory scenario_trajectory(const RegionConfig& region, Scenario s, double duration_s,
                                    std::mt19937_64& rng, int city_index = 0);

/// Road-following variant: vehicle scenarios (bus/tram/city driving and the
/// city legs of kLongComplex) follow the street graph — buses and trams ride
/// fixed transit lines, cars take A* routes between random intersections.
/// Walking remains free-space (pedestrians are not bound to streets).
geo::Trajectory scenario_trajectory(const RegionConfig& region, const RoadNetwork& roads,
                                    Scenario s, double duration_s, std::mt19937_64& rng,
                                    int city_index = 0);

}  // namespace gendt::sim
