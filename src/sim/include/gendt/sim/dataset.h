// Dataset builders mirroring the paper's two measurement datasets:
//   Dataset A — walk / bus / tram in one city, 1 s granularity,
//               KPIs: RSRP, RSRQ, SINR, CQI (+ throughput, PER for QoE).
//   Dataset B — city driving x2 + highway x2 over a multi-city region,
//               2-4 s granularity, KPIs: RSRP, RSRQ only; also provides the
//               2230 s "long and complex" trajectory of §6.1.3 and the 23
//               geographic subsets used for the §6.2 active-learning study.
#pragma once

#include <vector>

#include "gendt/sim/drive_test.h"

namespace gendt::sim {

struct Dataset {
  World world;
  SimConfig sim_config;
  std::vector<DriveTestRecord> train;
  std::vector<DriveTestRecord> test;
  std::vector<Kpi> kpis;  // KPI channels this dataset provides

  /// All records (train + test views are disjoint trajectories).
  size_t total_samples() const;
};

struct DatasetScale {
  /// Seconds of driving per scenario record. The paper's datasets hold
  /// 14k-46k samples per scenario; the default here is laptop-scale but the
  /// builders accept any size.
  double train_duration_s = 900.0;
  double test_duration_s = 300.0;
  int records_per_scenario = 2;  // independent trajectories per scenario
  uint64_t seed = 42;
};

/// Dataset A: single-city region; scenarios walk, bus, tram.
Dataset make_dataset_a(const DatasetScale& scale = DatasetScale{});

/// Dataset B: four-city region with connecting highways; scenarios
/// city-driving 1/2 (different cities) and highway 1/2 (different highways).
Dataset make_dataset_b(const DatasetScale& scale = DatasetScale{});

/// The §6.1.3 long complex trajectory over Dataset B's world: city driving
/// and highway legs across three cities, ~`duration_s` seconds total.
DriveTestRecord make_long_complex_record(const Dataset& dataset_b, double duration_s = 2230.0,
                                         uint64_t seed = 7);

/// Split Dataset B's training records into `n_subsets` geographically
/// disjoint subsets (by slicing each record at positional cluster
/// boundaries), the §6.2 active-learning pools.
std::vector<std::vector<DriveTestRecord>> geographic_subsets(const Dataset& dataset_b,
                                                             int n_subsets = 23);

}  // namespace gendt::sim
