// Procedural environment model: a land-use raster (Urban-Atlas-like classes)
// and a point-of-interest scatter (OSM-like categories). Together these
// supply the paper's 26-attribute environment context (Table 11).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "gendt/geo/geo.h"
#include "gendt/radio/propagation.h"

namespace gendt::sim {

/// Land-use classes (12), mirroring the Copernicus Urban Atlas subset the
/// paper uses as environment context.
enum class LandUse : uint8_t {
  kContinuousUrban = 0,
  kHighDenseUrban,
  kMediumDenseUrban,
  kLowDenseUrban,
  kVeryLowDenseUrban,
  kIsolatedStructures,
  kGreenUrban,
  kIndustrialCommercial,
  kAirSeaPorts,
  kLeisureFacilities,
  kBarrenLands,
  kSea,
};
inline constexpr int kNumLandUse = 12;

/// Point-of-interest categories (14), mirroring the paper's OSM attributes.
enum class PoiType : uint8_t {
  kTourism = 0,
  kCafe,
  kParking,
  kRestaurant,
  kPostPolice,
  kTrafficSignal,
  kOffice,
  kPublicTransport,
  kShop,
  kPrimaryRoads,
  kSecondaryRoads,
  kMotorways,
  kRailwayStations,
  kTramStops,
};
inline constexpr int kNumPoi = 14;
inline constexpr int kNumEnvAttributes = kNumLandUse + kNumPoi;  // 26

std::string_view land_use_name(LandUse lu);
std::string_view poi_name(PoiType p);

/// Radio clutter class implied by a land-use class.
radio::Clutter clutter_for(LandUse lu);

/// A city in the synthetic region: a radial density model centred on
/// `center` with urban rings out to `radius_m`.
struct CityConfig {
  geo::Enu center;
  double radius_m = 4000.0;
  /// Relative cell-deployment density (1 = nominal). Heterogeneous values
  /// across cities create the distribution shift between regions that real
  /// multi-city datasets exhibit.
  double density_scale = 1.0;
};

/// A highway: polyline between cities; influences land use (corridor) and
/// motorway PoIs.
struct HighwayConfig {
  std::vector<geo::Enu> waypoints;
};

struct RegionConfig {
  geo::LatLon origin;               // projection origin (region anchor)
  double extent_m = 20000.0;        // half-width of the modelled square
  std::vector<CityConfig> cities;
  std::vector<HighwayConfig> highways;
  uint64_t seed = 1;
};

/// Raster of land-use classes over the region plus PoI points; immutable
/// after construction.
class LandUseMap {
 public:
  LandUseMap(const RegionConfig& cfg, double cell_m = 100.0);

  LandUse at(const geo::Enu& pos) const;
  double cell_size_m() const { return cell_m_; }
  const RegionConfig& config() const { return cfg_; }

  /// Fraction of area of each land-use class within `radius_m` of pos
  /// (sampled on the raster). Sums to 1 over classes.
  std::array<double, kNumLandUse> land_use_fractions(const geo::Enu& pos, double radius_m) const;

  /// Count of each PoI category within `radius_m` of pos.
  std::array<int, kNumPoi> poi_counts(const geo::Enu& pos, double radius_m) const;

  struct Poi {
    PoiType type;
    geo::Enu pos;
  };
  const std::vector<Poi>& pois() const { return pois_; }

  /// Distance from pos to the nearest highway polyline; +inf if none.
  double distance_to_highway_m(const geo::Enu& pos) const;

 private:
  int index(long gx, long gy) const;
  void rasterize();
  void scatter_pois();

  RegionConfig cfg_;
  double cell_m_;
  long grid_n_;  // cells per side
  std::vector<LandUse> grid_;
  std::vector<Poi> pois_;
  // PoI spatial hash: bucket -> indices into pois_.
  double bucket_m_ = 500.0;
  long buckets_per_side_ = 0;
  std::vector<std::vector<int32_t>> poi_buckets_;
};

}  // namespace gendt::sim
