// A World bundles everything a drive test happens in: the land-use /
// PoI environment, the deployed cells, and the propagation configuration.
#pragma once

#include <memory>

#include "gendt/radio/cell.h"
#include "gendt/radio/propagation.h"
#include "gendt/sim/landuse.h"

namespace gendt::sim {

/// Target cell-site density (sites per km^2) by land use. Each site carries
/// three sectors, so cell density is 3x site density. Tuned so the paper's
/// Fig. 4 ordering holds: dense city >> suburban >> highway/rural.
double site_density_per_km2(LandUse lu);

struct DeploymentConfig {
  double antenna_gain_dbi = 15.0;   // boresight gain on top of p_max
  double p_max_dbm = 46.0;          // macro cells
  double azimuth_jitter_deg = 20.0; // per-site orientation randomness
  uint64_t seed = 17;
};

/// Generates a sectorized deployment over the region: Poisson site placement
/// with land-use-dependent intensity plus a sparse chain of sites along
/// highways so rural corridors keep coverage.
radio::CellTable deploy_cells(const LandUseMap& map, const DeploymentConfig& cfg);

struct World {
  RegionConfig region;
  std::shared_ptr<const LandUseMap> land_use;
  radio::CellTable cells;
  DeploymentConfig deployment;
  radio::PathlossParams pathloss;

  const geo::LocalProjection& projection() const { return cells.projection(); }
};

/// Build a world from a region config (rasterize land use, scatter PoIs,
/// deploy cells).
World make_world(const RegionConfig& region, const DeploymentConfig& deployment = {});

}  // namespace gendt::sim
