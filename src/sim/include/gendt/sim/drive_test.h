// DriveTestSimulator: walks a trajectory through a World and produces the
// ground-truth multi-KPI measurement series a tool like Nemo Handy would
// record — RSRP/RSRQ/SINR/CQI plus serving cell, downlink throughput and
// packet error rate.
//
// Physics per sample:
//   rx_i  = p_max_i + G_ant + G_sector(bearing) - PL(dist, clutter)
//           - S_field(cell, pos) - S_proc(cell, moved) - fading
//   serving = A3-event handover (hysteresis + time-to-trigger) over rx_i
//   RSRP  = per-resource-element rx of the serving cell
//   RSSI  = serving + co-channel interference (load-weighted) + noise
//   RSRQ  = 10 log10(N_RB · RSRP / RSSI)
//   SINR  = serving / (interference + noise)
//   CQI   = link mapping of smoothed SINR
//   tput  = bandwidth · spectral_efficiency(CQI) · (1 - BLER) · share
//   PER   = BLER after one HARQ retransmission
#pragma once

#include <map>
#include <vector>

#include "gendt/radio/units.h"
#include "gendt/sim/trajectory_gen.h"
#include "gendt/sim/world.h"

namespace gendt::sim {

/// KPI channels the simulator (and GenDT) speak about.
enum class Kpi {
  kRsrp = 0,
  kRsrq,
  kSinr,
  kCqi,
  kServingCell,
  kThroughput,
  kPer,
  kCellLoad,  // serving cell's downlink load (ground truth for Appendix C.2)
};
std::string_view kpi_name(Kpi k);

struct Measurement {
  double t = 0.0;
  geo::LatLon pos;
  radio::CellId serving_cell = radio::kNoCell;
  double rsrp_dbm = 0.0;
  double rsrq_db = 0.0;
  double sinr_db = 0.0;
  int cqi = 1;
  double throughput_mbps = 0.0;
  double per = 0.0;
  double serving_load = 0.0;  // [0,1]; what cell-load estimation predicts

  double kpi(Kpi k) const;
};

/// One drive test run: the trajectory plus its measurement series.
struct DriveTestRecord {
  Scenario scenario = Scenario::kWalk;
  geo::Trajectory trajectory;
  std::vector<Measurement> samples;

  std::vector<double> kpi_series(Kpi k) const;
  /// Average dwell time at a serving cell (s), the Table 1/2 statistic.
  double avg_serving_cell_duration_s() const;
};

struct SimConfig {
  double handover_hysteresis_db = 4.5;
  int handover_ttt_samples = 3;       // time-to-trigger, in samples
  double noise_figure_db = 7.0;
  double fast_fading_sigma_db = 1.0;
  double shadow_field_sigma_db = 7.0;  // static spatial component
  double shadow_field_grid_m = 90.0;
  double shadow_process_sigma_db = 3.5;  // per-visit temporal component
  double shadow_decorrelation_m = 80.0;
  double interference_radius_m = 8000.0;  // cells considered for RSSI/SINR
  /// 3GPP TS 36.331 L3 filter coefficient k: reported RSRP/RSRQ are
  /// exponentially smoothed with a = 1/2^(k/4). k=0 disables filtering
  /// (raw per-sample measurements). Real tools report filtered values,
  /// which is why measured KPI series are much smoother than raw fading.
  int l3_filter_k = 4;
  double bandwidth_mhz = 10.0;
  double mean_cell_load = 0.45;          // long-run average of the OU load
  double load_volatility = 0.04;         // OU step scale
  uint64_t seed = 1234;
};

/// Simulates measurements along trajectories. Holds per-cell shadowing and
/// load state; distinct `run_seed`s model distinct measurement campaigns
/// over the same (fixed) world, reproducing the stochastic repeats of the
/// paper's Fig. 1.
class DriveTestSimulator {
 public:
  DriveTestSimulator(const World& world, SimConfig cfg = SimConfig{});

  /// Run one drive test over the trajectory. `run_seed` controls the
  /// visit-specific randomness (temporal shadowing, fading, loads).
  DriveTestRecord run(const geo::Trajectory& trajectory, Scenario scenario,
                      uint64_t run_seed) const;

  /// Per-resource-element received power (dBm) from a given cell at a
  /// position, excluding visit-specific randomness (the deterministic part
  /// used by both the simulator and sanity checks).
  double median_rsrp_dbm(int cell_index, const geo::Enu& pos) const;

  const World& world() const { return world_; }
  const SimConfig& config() const { return cfg_; }

  /// Thermal noise per resource element (dBm) incl. noise figure.
  double noise_per_re_dbm() const;

 private:
  const World& world_;
  SimConfig cfg_;
  radio::ShadowingField shadow_field_;
};

}  // namespace gendt::sim
