#include "gendt/sim/drive_test.h"

#include <algorithm>
#include <cmath>

namespace gendt::sim {

std::string_view kpi_name(Kpi k) {
  switch (k) {
    case Kpi::kRsrp: return "RSRP";
    case Kpi::kRsrq: return "RSRQ";
    case Kpi::kSinr: return "SINR";
    case Kpi::kCqi: return "CQI";
    case Kpi::kServingCell: return "ServingCell";
    case Kpi::kThroughput: return "Throughput";
    case Kpi::kPer: return "PER";
    case Kpi::kCellLoad: return "CellLoad";
  }
  return "?";
}

double Measurement::kpi(Kpi k) const {
  switch (k) {
    case Kpi::kRsrp: return rsrp_dbm;
    case Kpi::kRsrq: return rsrq_db;
    case Kpi::kSinr: return sinr_db;
    case Kpi::kCqi: return static_cast<double>(cqi);
    case Kpi::kServingCell: return static_cast<double>(serving_cell);
    case Kpi::kThroughput: return throughput_mbps;
    case Kpi::kPer: return per;
    case Kpi::kCellLoad: return serving_load;
  }
  return 0.0;
}

std::vector<double> DriveTestRecord::kpi_series(Kpi k) const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& m : samples) out.push_back(m.kpi(k));
  return out;
}

double DriveTestRecord::avg_serving_cell_duration_s() const {
  if (samples.size() < 2) return 0.0;
  int handovers = 0;
  for (size_t i = 1; i < samples.size(); ++i)
    if (samples[i].serving_cell != samples[i - 1].serving_cell) ++handovers;
  const double duration = samples.back().t - samples.front().t;
  return duration / static_cast<double>(handovers + 1);
}

DriveTestSimulator::DriveTestSimulator(const World& world, SimConfig cfg)
    : world_(world),
      cfg_(cfg),
      shadow_field_(cfg.shadow_field_sigma_db, cfg.shadow_field_grid_m,
                    cfg.seed ^ 0xabcdef12345ULL) {}

double DriveTestSimulator::noise_per_re_dbm() const {
  // Thermal floor over one 15 kHz resource element plus receiver NF.
  return -174.0 + 10.0 * std::log10(15000.0) + cfg_.noise_figure_db;
}

double DriveTestSimulator::median_rsrp_dbm(int cell_index, const geo::Enu& pos) const {
  const radio::Cell& cell = world_.cells[static_cast<size_t>(cell_index)];
  const geo::Enu site = world_.cells.site_enu(static_cast<size_t>(cell_index));
  const double dist = geo::distance_m(pos, site);
  const double bearing = geo::bearing_deg(site, pos);
  const radio::Clutter clutter = clutter_for(world_.land_use->at(pos));
  const double pl = radio::pathloss_cost231_db(dist, clutter, world_.pathloss);
  const double per_re_tx = cell.p_max_dbm - 10.0 * std::log10(12.0 * cell.n_rb);
  return per_re_tx + world_.deployment.antenna_gain_dbi +
         radio::sector_gain_db(bearing, cell.azimuth_deg, cell.beamwidth_deg) - pl -
         shadow_field_.at(cell_index, pos);
}

DriveTestRecord DriveTestSimulator::run(const geo::Trajectory& trajectory, Scenario scenario,
                                        uint64_t run_seed) const {
  DriveTestRecord rec;
  rec.scenario = scenario;
  rec.trajectory = trajectory;
  if (trajectory.empty()) return rec;

  std::mt19937_64 rng(run_seed ^ cfg_.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  const geo::LocalProjection& proj = world_.projection();
  const double noise_re_mw = radio::dbm_to_mw(noise_per_re_dbm());

  // Visit-specific state, lazily created per encountered cell.
  std::map<int, radio::ShadowingProcess> shadow_proc;
  std::map<int, double> cell_load;  // Ornstein-Uhlenbeck around mean load

  auto shadow_for = [&](int ci, double moved) -> double {
    auto it = shadow_proc.find(ci);
    if (it == shadow_proc.end()) {
      it = shadow_proc
               .emplace(ci, radio::ShadowingProcess(cfg_.shadow_process_sigma_db,
                                                    cfg_.shadow_decorrelation_m,
                                                    run_seed ^ (0x51edULL * (ci + 7))))
               .first;
    }
    return it->second.next(moved);
  };
  auto load_for = [&](int ci) -> double {
    auto [it, fresh] = cell_load.try_emplace(ci, -1.0);
    if (fresh || it->second < 0.0) {
      it->second = std::clamp(cfg_.mean_cell_load + 0.25 * gauss(rng), 0.05, 0.95);
    } else {
      // OU step towards the mean. Load evolves over minutes, not samples:
      // slow reversion + small steps keep it estimable from smoothed KPIs.
      it->second = std::clamp(it->second + 0.03 * (cfg_.mean_cell_load - it->second) +
                                  cfg_.load_volatility * gauss(rng),
                              0.05, 0.95);
    }
    return it->second;
  };

  radio::CellId serving = radio::kNoCell;
  int serving_index = -1;
  int a3_counter = 0;
  int a3_candidate = -1;
  geo::Enu prev_pos{};
  bool have_prev = false;
  double smoothed_sinr_db = 0.0;
  bool have_sinr = false;
  // L3 filter state for the reported RSRP/RSRQ (3GPP 36.331, dB domain).
  const double l3_a = cfg_.l3_filter_k > 0
                          ? 1.0 / std::pow(2.0, static_cast<double>(cfg_.l3_filter_k) / 4.0)
                          : 1.0;
  double l3_rsrp = 0.0, l3_rsrq = 0.0;
  bool have_l3 = false;

  for (const auto& pt : trajectory.points()) {
    const geo::Enu pos = proj.to_enu(pt.pos);
    const double moved = have_prev ? geo::distance_m(pos, prev_pos) : 0.0;
    prev_pos = pos;
    have_prev = true;

    const std::vector<int> visible = world_.cells.cells_within(pos, cfg_.interference_radius_m);
    if (visible.empty()) continue;  // dead zone: tools log a gap, we skip

    // Per-RE received power (mW) from each visible cell.
    std::vector<double> rx_mw(visible.size());
    double best_dbm = -1e9;
    int best_pos_in_visible = -1;
    for (size_t vi = 0; vi < visible.size(); ++vi) {
      const int ci = visible[vi];
      const double fading = cfg_.fast_fading_sigma_db * gauss(rng);
      const double dbm = median_rsrp_dbm(ci, pos) - shadow_for(ci, moved) + fading;
      rx_mw[vi] = radio::dbm_to_mw(dbm);
      if (dbm > best_dbm) {
        best_dbm = dbm;
        best_pos_in_visible = static_cast<int>(vi);
      }
    }
    const int best_ci = visible[static_cast<size_t>(best_pos_in_visible)];

    // Serving-cell maintenance via A3 event.
    const int serving_before = serving_index;
    int serving_vi = -1;
    if (serving_index >= 0) {
      for (size_t vi = 0; vi < visible.size(); ++vi)
        if (visible[vi] == serving_index) serving_vi = static_cast<int>(vi);
    }
    if (serving_vi < 0) {
      // Initial attach or serving dropped out of range: take the strongest.
      serving_index = best_ci;
      serving = world_.cells[static_cast<size_t>(best_ci)].id;
      serving_vi = best_pos_in_visible;
      a3_counter = 0;
      a3_candidate = -1;
    } else {
      const double serving_dbm = radio::mw_to_dbm(rx_mw[static_cast<size_t>(serving_vi)]);
      if (best_ci != serving_index && best_dbm > serving_dbm + cfg_.handover_hysteresis_db) {
        if (a3_candidate == best_ci) {
          ++a3_counter;
        } else {
          a3_candidate = best_ci;
          a3_counter = 1;
        }
        if (a3_counter >= cfg_.handover_ttt_samples) {
          serving_index = best_ci;
          serving = world_.cells[static_cast<size_t>(best_ci)].id;
          serving_vi = best_pos_in_visible;
          a3_counter = 0;
          a3_candidate = -1;
        }
      } else {
        a3_counter = 0;
        a3_candidate = -1;
      }
    }

    const radio::Cell& scell = world_.cells[static_cast<size_t>(serving_index)];
    const double rsrp_mw = rx_mw[static_cast<size_t>(serving_vi)];
    const double rsrp_raw = radio::clamp_rsrp(radio::mw_to_dbm(rsrp_mw));
    // Reported RSRP is the L3-filtered value; the filter resets on handover
    // (measurements of a new serving cell start a fresh filter per 36.331).
    if (serving_index != serving_before) have_l3 = false;
    if (!have_l3) {
      l3_rsrp = rsrp_raw;
      have_l3 = true;
    } else {
      l3_rsrp = (1.0 - l3_a) * l3_rsrp + l3_a * rsrp_raw;
    }
    const double rsrp_dbm = l3_rsrp;

    // Interference: co-channel cells, weighted by their downlink load.
    double interf_mw = 0.0;
    for (size_t vi = 0; vi < visible.size(); ++vi) {
      if (static_cast<int>(vi) == serving_vi) continue;
      interf_mw += load_for(visible[vi]) * rx_mw[vi];
    }
    const double serving_load = load_for(serving_index);

    // RSSI over the measurement bandwidth: per-RE serving power on all REs
    // (reference + loaded data REs) plus interference and noise.
    const double rssi_mw =
        12.0 * scell.n_rb * ((0.3 + 0.7 * serving_load) * rsrp_mw + interf_mw + noise_re_mw);
    const double rssi_dbm = radio::mw_to_dbm(rssi_mw);
    const double rsrq_raw =
        radio::clamp_rsrq(radio::rsrq_db(rsrp_raw, rssi_dbm, scell.n_rb));
    if (l3_rsrq == 0.0 || serving_index != serving_before) l3_rsrq = rsrq_raw;
    l3_rsrq = (1.0 - l3_a) * l3_rsrq + l3_a * rsrq_raw;
    const double rsrq = radio::clamp_rsrq(l3_rsrq);

    const double sinr_lin = rsrp_mw / (interf_mw + noise_re_mw);
    const double sinr_db = std::clamp(radio::linear_to_db(sinr_lin), -10.0, 30.0);

    // CQI tracks a lightly smoothed SINR (UE filtering), discretized.
    smoothed_sinr_db = have_sinr ? 0.7 * smoothed_sinr_db + 0.3 * sinr_db : sinr_db;
    have_sinr = true;
    const int cqi = radio::cqi_from_sinr_db(smoothed_sinr_db);

    // Downlink throughput for a single active user sharing with the load.
    const double eff = radio::spectral_efficiency_from_cqi(cqi);
    const double bler = radio::block_error_rate(sinr_db, cqi);
    const double share = std::clamp(1.0 - 0.8 * serving_load, 0.1, 1.0);
    const double tput =
        cfg_.bandwidth_mhz * eff * (1.0 - bler) * share * (0.9 + 0.2 * u01(rng));

    // PER after one HARQ retransmission; floor of residual protocol loss.
    const double per = std::clamp(bler * bler + 0.002, 0.0, 1.0);

    Measurement m;
    m.t = pt.t;
    m.pos = pt.pos;
    m.serving_cell = serving;
    m.rsrp_dbm = rsrp_dbm;
    m.rsrq_db = rsrq;
    m.sinr_db = sinr_db;
    m.cqi = cqi;
    m.throughput_mbps = tput;
    m.per = per;
    m.serving_load = serving_load;
    rec.samples.push_back(m);
  }
  return rec;
}

}  // namespace gendt::sim
