#include "gendt/radio/cell.h"

#include <algorithm>
#include <cmath>

namespace gendt::radio {

double sector_gain_db(double bearing_to_ue_deg, double azimuth_deg, double beamwidth_deg) {
  constexpr double kMaxAttenuationDb = 25.0;
  const double phi = geo::angle_diff_deg(bearing_to_ue_deg, azimuth_deg);
  const double att = 12.0 * (phi / beamwidth_deg) * (phi / beamwidth_deg);
  return -std::min(att, kMaxAttenuationDb);
}

CellTable::CellTable(std::vector<Cell> cells, geo::LatLon projection_origin)
    : cells_(std::move(cells)), proj_(projection_origin) {
  site_enu_.reserve(cells_.size());
  for (const auto& c : cells_) site_enu_.push_back(proj_.to_enu(c.site));
}

const Cell* CellTable::find(CellId id) const {
  const int i = index_of(id);
  return i >= 0 ? &cells_[static_cast<size_t>(i)] : nullptr;
}

int CellTable::index_of(CellId id) const {
  for (size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].id == id) return static_cast<int>(i);
  return -1;
}

std::vector<int> CellTable::cells_within(const geo::Enu& pos, double radius_m) const {
  std::vector<int> out;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (geo::distance_m(pos, site_enu_[i]) <= radius_m) out.push_back(static_cast<int>(i));
  }
  return out;
}

double CellTable::density_per_km2(const geo::Enu& pos, double radius_m) const {
  const double area_km2 = M_PI * radius_m * radius_m / 1e6;
  return static_cast<double>(cells_within(pos, radius_m).size()) / area_km2;
}

}  // namespace gendt::radio
