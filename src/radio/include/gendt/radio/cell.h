// Cell sites and sector antennas. A "cell" here matches the paper's network
// context unit: one sector at a site, described by location, max transmit
// power and boresight direction.
#pragma once

#include <cstdint>
#include <vector>

#include "gendt/geo/geo.h"

namespace gendt::radio {

using CellId = int32_t;
inline constexpr CellId kNoCell = -1;

struct Cell {
  CellId id = kNoCell;
  geo::LatLon site;       // tower location
  double p_max_dbm = 46.0;   // max transmit power (typ. macro: 43-46 dBm)
  double azimuth_deg = 0.0;  // sector boresight, clockwise from north
  double beamwidth_deg = 65.0;  // 3 dB horizontal beamwidth
  int n_rb = 50;             // resource blocks (10 MHz carrier)
  int earfcn = 1300;         // carrier id; cells on the same EARFCN interfere
};

/// 3GPP TR 36.814 style horizontal sector pattern:
/// A(phi) = -min(12 * (phi/phi_3dB)^2, A_max) with A_max = 25 dB (plus a
/// small constant boresight gain handled by the caller via p_max).
double sector_gain_db(double bearing_to_ue_deg, double azimuth_deg, double beamwidth_deg);

/// Table of all deployed cells with spatial lookup.
class CellTable {
 public:
  CellTable() = default;
  explicit CellTable(std::vector<Cell> cells, geo::LatLon projection_origin);

  size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }
  const Cell& operator[](size_t i) const { return cells_[i]; }
  const std::vector<Cell>& cells() const { return cells_; }
  const geo::LocalProjection& projection() const { return proj_; }
  const geo::Enu& site_enu(size_t i) const { return site_enu_[i]; }

  /// Find cell by id; nullptr if unknown.
  const Cell* find(CellId id) const;
  /// Index of cell by id; -1 if unknown.
  int index_of(CellId id) const;

  /// Indices of cells within `radius_m` of the given position — the paper's
  /// "visible cells within d_s" network context (Fig. 3).
  std::vector<int> cells_within(const geo::Enu& pos, double radius_m) const;

  /// Cell count per km^2 within `radius_m` of pos (paper Fig. 4 metric).
  double density_per_km2(const geo::Enu& pos, double radius_m) const;

 private:
  std::vector<Cell> cells_;
  std::vector<geo::Enu> site_enu_;
  geo::LocalProjection proj_{geo::LatLon{}};
};

}  // namespace gendt::radio
