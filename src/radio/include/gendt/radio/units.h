// dB/linear conversions and LTE KPI relations from the paper's §2.2.
#pragma once

#include <algorithm>
#include <cmath>

namespace gendt::radio {

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }
inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }
inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

/// LTE KPI plausible ranges used for clamping and normalization.
inline constexpr double kRsrpGoodDbm = -44.0;
inline constexpr double kRsrpBadDbm = -140.0;
inline constexpr double kRsrqGoodDb = -3.0;
inline constexpr double kRsrqBadDb = -19.5;
inline constexpr int kCqiMin = 1;
inline constexpr int kCqiMax = 15;

/// RSRP(dBm) = RSSI(dBm) - 10*log10(12 * N_RB)  (paper §2.2).
inline double rsrp_from_rssi_dbm(double rssi_dbm, int n_rb) {
  return rssi_dbm - 10.0 * std::log10(12.0 * n_rb);
}
inline double rssi_from_rsrp_dbm(double rsrp_dbm, int n_rb) {
  return rsrp_dbm + 10.0 * std::log10(12.0 * n_rb);
}

/// RSRQ(dB) = 10*log10(N_RB * RSRP_lin / RSSI_lin) — the standard 3GPP form
/// of the paper's RSRQ relation in linear units.
inline double rsrq_db(double rsrp_dbm, double rssi_dbm, int n_rb) {
  return 10.0 * std::log10(static_cast<double>(n_rb)) + rsrp_dbm - rssi_dbm;
}

inline double clamp_rsrp(double dbm) { return std::clamp(dbm, kRsrpBadDbm, kRsrpGoodDbm); }
inline double clamp_rsrq(double db) { return std::clamp(db, kRsrqBadDb, kRsrqGoodDb); }

/// SINR (dB) -> CQI index per a standard LTE link-level mapping: roughly one
/// CQI step per 2 dB, CQI 1 at about -6 dB, CQI 15 from about 20 dB up.
int cqi_from_sinr_db(double sinr_db);

/// CQI -> spectral efficiency (bits/s/Hz) per 3GPP 36.213 Table 7.2.3-1.
double spectral_efficiency_from_cqi(int cqi);

/// Transport block error probability for a given SINR when transmitting at
/// the MCS chosen for `cqi`: a logistic waterfall centred where the CQI's
/// SNR requirement sits. Used by the simulator's PER ground truth.
double block_error_rate(double sinr_db, int cqi);

}  // namespace gendt::radio
