// Radio propagation models used by the drive-test simulator: clutter-aware
// empirical pathloss plus spatially correlated log-normal shadowing.
#pragma once

#include <random>

#include "gendt/geo/geo.h"

namespace gendt::radio {

/// Clutter classes mirroring the land-use categories that matter for
/// propagation (the simulator maps its 12 land-use types onto these).
enum class Clutter {
  kOpen,        // fields, water, barren
  kSuburban,    // low/very-low density urban, green urban
  kUrban,       // medium/high density urban
  kDenseUrban,  // continuous urban, high-rise commercial
};

struct PathlossParams {
  double frequency_mhz = 1800.0;
  double base_station_height_m = 30.0;
  double ue_height_m = 1.5;
};

/// COST-231 Hata median pathloss (dB) for the given clutter class.
/// Valid for 1500-2000 MHz, distances clamped to >= 20 m.
double pathloss_cost231_db(double distance_m, Clutter clutter,
                           const PathlossParams& params = PathlossParams{});

/// Simple log-distance model: PL = pl0 + 10*n*log10(d/d0).
double pathloss_log_distance_db(double distance_m, double exponent, double pl0_db = 58.0,
                                double d0_m = 10.0);

/// Spatially correlated log-normal shadowing (Gudmundson 1991): correlation
/// between two points distance d apart is exp(-d / d_corr). Implemented as a
/// per-cell Gauss-Markov process driven by the distance the UE moved since
/// the previous sample, so repeated traversals of a route decorrelate while
/// nearby samples in one pass stay correlated.
class ShadowingProcess {
 public:
  ShadowingProcess(double sigma_db, double decorrelation_m, uint64_t seed);

  /// Shadowing value (dB) at a new position `moved_m` metres from the
  /// previous sample. First call draws from the stationary distribution.
  double next(double moved_m);

  /// Forget correlation state (e.g. new trajectory).
  void reset();

  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  double decorr_m_;
  std::mt19937_64 rng_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  bool has_prev_ = false;
  double prev_db_ = 0.0;
};

/// Deterministic spatial shadowing field: a fixed pseudo-random function of
/// (cell, position) built from smoothed lattice noise. Unlike
/// ShadowingProcess this gives the *same* obstruction at the same place on
/// every visit — modelling buildings/terrain — while ShadowingProcess models
/// visit-to-visit variation. The simulator sums both.
class ShadowingField {
 public:
  ShadowingField(double sigma_db, double grid_m, uint64_t seed)
      : sigma_db_(sigma_db), grid_m_(grid_m), seed_(seed) {}

  /// Value (dB) for a cell at a location; smooth in `pos`.
  double at(int cell_index, const geo::Enu& pos) const;

 private:
  double lattice(int cell_index, long ix, long iy) const;
  double sigma_db_;
  double grid_m_;
  uint64_t seed_;
};

}  // namespace gendt::radio
