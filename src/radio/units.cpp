#include "gendt/radio/units.h"

#include <array>

namespace gendt::radio {

int cqi_from_sinr_db(double sinr_db) {
  // Linear map: CQI 1 at <= -6 dB, one step per ~1.9 dB, CQI 15 at >= 20.6 dB.
  const double cqi = 1.0 + (sinr_db + 6.0) / 1.9;
  return std::clamp(static_cast<int>(std::floor(cqi)), kCqiMin, kCqiMax);
}

double spectral_efficiency_from_cqi(int cqi) {
  // 3GPP TS 36.213 Table 7.2.3-1 (CQI index -> efficiency, bits/s/Hz).
  static constexpr std::array<double, 16> kEff = {
      0.0,     0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
      1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547};
  const int idx = std::clamp(cqi, 0, 15);
  return kEff[static_cast<size_t>(idx)];
}

double block_error_rate(double sinr_db, int cqi) {
  // SNR (dB) at which each CQI's MCS hits ~10% BLER (the CQI definition
  // point), consistent with the cqi_from_sinr_db mapping above.
  const double snr_req_db = -6.0 + 1.9 * (std::clamp(cqi, kCqiMin, kCqiMax) - 1);
  // Logistic waterfall: ~0.5 at 1.5 dB below requirement, ~0.1 at the
  // requirement, dropping steeply above it.
  const double margin = sinr_db - snr_req_db;
  const double bler = 1.0 / (1.0 + std::exp(1.5 * (margin + 1.5)));
  return std::clamp(bler, 0.0, 1.0);
}

}  // namespace gendt::radio
