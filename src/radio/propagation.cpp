#include "gendt/radio/propagation.h"

#include <algorithm>
#include <cmath>

namespace gendt::radio {

double pathloss_cost231_db(double distance_m, Clutter clutter, const PathlossParams& p) {
  const double d_km = std::max(distance_m, 20.0) / 1000.0;
  const double f = p.frequency_mhz;
  const double hb = p.base_station_height_m;
  const double hm = p.ue_height_m;

  // Mobile antenna correction for medium/small city.
  const double a_hm = (1.1 * std::log10(f) - 0.7) * hm - (1.56 * std::log10(f) - 0.8);
  // Metropolitan correction constant.
  const double cm = (clutter == Clutter::kDenseUrban) ? 3.0 : 0.0;

  double pl = 46.3 + 33.9 * std::log10(f) - 13.82 * std::log10(hb) - a_hm +
              (44.9 - 6.55 * std::log10(hb)) * std::log10(d_km) + cm;

  // Standard suburban/open-area offsets relative to the urban median.
  switch (clutter) {
    case Clutter::kOpen:
      pl -= 18.0;
      break;
    case Clutter::kSuburban:
      pl -= 8.0;
      break;
    case Clutter::kUrban:
    case Clutter::kDenseUrban:
      break;
  }
  return pl;
}

double pathloss_log_distance_db(double distance_m, double exponent, double pl0_db, double d0_m) {
  const double d = std::max(distance_m, d0_m);
  return pl0_db + 10.0 * exponent * std::log10(d / d0_m);
}

ShadowingProcess::ShadowingProcess(double sigma_db, double decorrelation_m, uint64_t seed)
    : sigma_db_(sigma_db), decorr_m_(decorrelation_m), rng_(seed) {}

double ShadowingProcess::next(double moved_m) {
  if (!has_prev_) {
    prev_db_ = sigma_db_ * normal_(rng_);
    has_prev_ = true;
    return prev_db_;
  }
  const double rho = std::exp(-std::max(moved_m, 0.0) / decorr_m_);
  prev_db_ = rho * prev_db_ + sigma_db_ * std::sqrt(1.0 - rho * rho) * normal_(rng_);
  return prev_db_;
}

void ShadowingProcess::reset() { has_prev_ = false; }

double ShadowingField::lattice(int cell_index, long ix, long iy) const {
  // SplitMix64-style hash of (seed, cell, lattice cell) -> N(0,1)-ish value
  // via the sum of two uniforms (triangular, std ~ sqrt(1/6)*2) scaled up.
  uint64_t h = seed_;
  auto mix = [&h](uint64_t v) {
    h += 0x9e3779b97f4a7c15ULL + v;
    uint64_t z = h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
    return h;
  };
  mix(static_cast<uint64_t>(cell_index) + 1);
  mix(static_cast<uint64_t>(ix) * 2654435761ULL + 12345);
  const uint64_t r = mix(static_cast<uint64_t>(iy) * 40503ULL + 6789);
  const double u1 = static_cast<double>(r >> 32) / 4294967296.0;
  const double u2 = static_cast<double>(r & 0xffffffffULL) / 4294967296.0;
  // Sum of 2 uniforms centred: mean 0, std sqrt(2/12); scale to unit std.
  return ((u1 + u2) - 1.0) / std::sqrt(2.0 / 12.0);
}

double ShadowingField::at(int cell_index, const geo::Enu& pos) const {
  // Bilinear interpolation over the lattice -> smooth field.
  const double gx = pos.east / grid_m_;
  const double gy = pos.north / grid_m_;
  const long x0 = static_cast<long>(std::floor(gx));
  const long y0 = static_cast<long>(std::floor(gy));
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  const double v00 = lattice(cell_index, x0, y0);
  const double v10 = lattice(cell_index, x0 + 1, y0);
  const double v01 = lattice(cell_index, x0, y0 + 1);
  const double v11 = lattice(cell_index, x0 + 1, y0 + 1);
  const double v = v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) + v01 * (1 - fx) * fy +
                   v11 * fx * fy;
  return sigma_db_ * v;
}

}  // namespace gendt::radio
