// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) shared by the
// GDTCKPT checkpoint and GDTPACK weight-arena formats. Slice-by-8
// implementation: processes 8 input bytes per iteration (~4-5x the
// byte-at-a-time table walk on the multi-MB tensor payloads both formats
// checksum) while producing exactly the same values — the algorithm is an
// algebraic refactoring of the classic table loop, not a different CRC.
// Not installed: internal to src/nn.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gendt::nn::detail {

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t n);

}  // namespace gendt::nn::detail
