#include "crc32.h"

#include <array>
#include <cstring>

namespace gendt::nn::detail {

namespace {

// table[0] is the classic byte-at-a-time CRC-32 table; table[k] advances a
// byte through k additional zero bytes, which is what lets one iteration
// fold 8 input bytes: crc32(a || b) decomposes into per-byte lookups at
// different zero-extension depths.
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t n) {
  const auto& t = crc_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  // 8 bytes per step: XOR the low word into the CRC, then combine all eight
  // bytes via tables at matching zero-extension depths.
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, data, sizeof(lo));
    std::memcpy(&hi, data + 4, sizeof(hi));
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][(c >> 24) & 0xFFu] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][(hi >> 24) & 0xFFu];
    data += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gendt::nn::detail
