#include "gendt/nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "gendt/nn/checks.h"

namespace gendt::nn {

Tensor::Tensor(Mat value, bool requires_grad) : node_(std::make_shared<detail::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Tensor Tensor::zeros(int rows, int cols, bool requires_grad) {
  return Tensor(Mat::zeros(rows, cols), requires_grad);
}

void Tensor::zero_grad() const {
  if (node_) {
    node_->ensure_grad();
    node_->grad.set_zero();
  }
}

void Tensor::accumulate_grad(const Mat& g) const {
  assert(defined());
  node_->ensure_grad();
  node_->grad.add_scaled(g, 1.0);
}

Tensor make_op(Mat value, std::vector<Tensor> parents,
               std::function<void(detail::Node&)> backward_fn) {
  // Poison detection: a NaN/Inf op output aborts here, at the op that
  // produced it, rather than corrupting the loss steps later.
  check_finite(value, "autograd op (forward)");
  Tensor out(std::move(value), false);
  bool any_grad = false;
  out.node_->parents.reserve(parents.size());
  for (const auto& p : parents) {
    if (p.defined()) {
      any_grad = any_grad || p.node()->requires_grad;
      out.node_->parents.push_back(p.node());
    }
  }
  if (any_grad) {
    out.node_->requires_grad = true;
    out.node_->backward_fn = std::move(backward_fn);
  } else {
    out.node_->parents.clear();  // pure-inference subgraphs free eagerly
  }
  return out;
}

void Tensor::backward() {
  assert(defined() && rows() == 1 && cols() == 1);
  if (!node_->requires_grad) return;

  // Topological order over nodes that require grad.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, size_t>> stack;  // node, next-parent idx
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      detail::Node* p = n->parents[idx++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // order is now children-after-parents; reverse for backprop.
  std::reverse(order.begin(), order.end());

  for (detail::Node* n : order) n->ensure_grad();
  node_->grad(0, 0) = 1.0;
  const bool poison_check = debug_checks_enabled();
  for (detail::Node* n : order) {
    if (!n->backward_fn) continue;
    n->backward_fn(*n);
    if (poison_check) {
      // backward_fn accumulated into the parents' grads: poison-check those
      // buffers so a NaN gradient is pinned to the op that emitted it.
      for (const auto& p : n->parents) {
        if (p->requires_grad && !p->grad.empty())
          check_finite(p->grad, "autograd op (backward)");
      }
    }
  }
}

namespace {
// Accumulate g into parent's grad if it participates in autograd.
void accum(const std::shared_ptr<detail::Node>& p, const Mat& g) {
  if (!p->requires_grad) return;
  p->ensure_grad();
  p->grad.add_scaled(g, 1.0);
}

Tensor unary_ew(const Tensor& a, const std::function<double(double)>& f,
                const std::function<double(double, double)>& dfdx_of_x_y) {
  const Mat& x = a.value();
  Mat y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) y[i] = f(x[i]);
  auto an = a.node();
  return make_op(std::move(y), {a}, [an, dfdx_of_x_y](detail::Node& out) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (size_t i = 0; i < out.value.size(); ++i)
      an->grad[i] += out.grad[i] * dfdx_of_x_y(an->value[i], out.value[i]);
  });
}
}  // namespace

Tensor operator+(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  auto an = a.node(), bn = b.node();
  return make_op(a.value() + b.value(), {a, b}, [an, bn](detail::Node& out) {
    accum(an, out.grad);
    accum(bn, out.grad);
  });
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  auto an = a.node(), bn = b.node();
  return make_op(a.value() - b.value(), {a, b}, [an, bn](detail::Node& out) {
    accum(an, out.grad);
    if (bn->requires_grad) {
      bn->ensure_grad();
      bn->grad.add_scaled(out.grad, -1.0);
    }
  });
}

Tensor operator*(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  auto an = a.node(), bn = b.node();
  return make_op(hadamard(a.value(), b.value()), {a, b}, [an, bn](detail::Node& out) {
    if (an->requires_grad) accum(an, hadamard(out.grad, bn->value));
    if (bn->requires_grad) accum(bn, hadamard(out.grad, an->value));
  });
}

Tensor operator*(const Tensor& a, double s) {
  auto an = a.node();
  return make_op(a.value() * s, {a}, [an, s](detail::Node& out) {
    if (an->requires_grad) accum(an, out.grad * s);
  });
}

Tensor operator+(const Tensor& a, double s) {
  Mat v = a.value();
  for (size_t i = 0; i < v.size(); ++i) v[i] += s;
  auto an = a.node();
  return make_op(std::move(v), {a}, [an](detail::Node& out) { accum(an, out.grad); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  GENDT_CHECK(a.value().cols() == b.value().rows(),
              "matmul shape mismatch: A " + shape_str(a.value()) + " * B " +
                  shape_str(b.value()));
  auto an = a.node(), bn = b.node();
  return make_op(matmul(a.value(), b.value()), {a, b}, [an, bn](detail::Node& out) {
    // dA += dC * B^T ; dB += A^T * dC — accumulated in place, no temporary.
    if (an->requires_grad) {
      an->ensure_grad();
      matmul_nt_acc(out.grad, bn->value, an->grad);
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      matmul_tn_acc(an->value, out.grad, bn->grad);
    }
  });
}

Tensor affine2(const Tensor& x1, const Tensor& w1, const Tensor& x2, const Tensor& w2,
               const Tensor& b) {
  GENDT_CHECK(x1.rows() == x2.rows(), "affine2 row mismatch: x1 " + shape_str(x1.value()) +
                                          " vs x2 " + shape_str(x2.value()));
  GENDT_CHECK(x1.cols() == w1.rows() && x2.cols() == w2.rows(),
              "affine2 inner-dim mismatch: x1 " + shape_str(x1.value()) + " * w1 " +
                  shape_str(w1.value()) + ", x2 " + shape_str(x2.value()) + " * w2 " +
                  shape_str(w2.value()));
  GENDT_CHECK(w1.cols() == w2.cols() && w1.cols() == b.cols() && b.rows() == 1,
              "affine2 output/bias mismatch: w1 " + shape_str(w1.value()) + ", w2 " +
                  shape_str(w2.value()) + ", b " + shape_str(b.value()));
  assert(x1.rows() == x2.rows());
  assert(x1.cols() == w1.rows() && x2.cols() == w2.rows());
  assert(w1.cols() == w2.cols() && w1.cols() == b.cols() && b.rows() == 1);
  const int rows = x1.rows(), cols = w1.cols();
  // y starts as the broadcast bias, then both products accumulate into it.
  Mat y(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) y(r, c) = b.value()(0, c);
  matmul_acc(x1.value(), w1.value(), y);
  matmul_acc(x2.value(), w2.value(), y);
  auto x1n = x1.node(), w1n = w1.node(), x2n = x2.node(), w2n = w2.node(), bn = b.node();
  return make_op(std::move(y), {x1, w1, x2, w2, b}, [x1n, w1n, x2n, w2n, bn](detail::Node& out) {
    if (x1n->requires_grad) {
      x1n->ensure_grad();
      matmul_nt_acc(out.grad, w1n->value, x1n->grad);
    }
    if (w1n->requires_grad) {
      w1n->ensure_grad();
      matmul_tn_acc(x1n->value, out.grad, w1n->grad);
    }
    if (x2n->requires_grad) {
      x2n->ensure_grad();
      matmul_nt_acc(out.grad, w2n->value, x2n->grad);
    }
    if (w2n->requires_grad) {
      w2n->ensure_grad();
      matmul_tn_acc(x2n->value, out.grad, w2n->grad);
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      for (int r = 0; r < out.grad.rows(); ++r)
        for (int c = 0; c < out.grad.cols(); ++c) bn->grad(0, c) += out.grad(r, c);
    }
  });
}

Tensor divide(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  Mat v(a.rows(), a.cols());
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] / b.value()[i];
  auto an = a.node(), bn = b.node();
  return make_op(std::move(v), {a, b}, [an, bn](detail::Node& out) {
    if (an->requires_grad) {
      an->ensure_grad();
      for (size_t i = 0; i < out.value.size(); ++i)
        an->grad[i] += out.grad[i] / bn->value[i];
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      for (size_t i = 0; i < out.value.size(); ++i)
        bn->grad[i] -= out.grad[i] * an->value[i] / (bn->value[i] * bn->value[i]);
    }
  });
}

Tensor sigmoid(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor tanh_t(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Tensor relu(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor leaky_relu(const Tensor& a, double negative_slope) {
  return unary_ew(
      a, [negative_slope](double x) { return x > 0.0 ? x : negative_slope * x; },
      [negative_slope](double x, double) { return x > 0.0 ? 1.0 : negative_slope; });
}

Tensor exp_t(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return std::exp(x); }, [](double, double y) { return y; });
}

Tensor log_t(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return std::log(x); }, [](double x, double) { return 1.0 / x; });
}

Tensor softplus(const Tensor& a) {
  return unary_ew(
      a,
      [](double x) { return x > 30.0 ? x : std::log1p(std::exp(x)); },
      [](double x, double) { return 1.0 / (1.0 + std::exp(-x)); });
}

Tensor square(const Tensor& a) {
  return unary_ew(
      a, [](double x) { return x * x; }, [](double x, double) { return 2.0 * x; });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int rows = parts.front().rows();
  int cols = 0;
  for (const auto& p : parts) {
    assert(p.rows() == rows);
    cols += p.cols();
  }
  Mat v(rows, cols);
  int off = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < p.cols(); ++c) v(r, off + c) = p.value()(r, c);
    off += p.cols();
  }
  std::vector<std::shared_ptr<detail::Node>> pn;
  pn.reserve(parts.size());
  for (const auto& p : parts) pn.push_back(p.node());
  return make_op(std::move(v), parts, [pn](detail::Node& out) {
    int off2 = 0;
    for (const auto& p : pn) {
      const int pc = p->value.cols();
      if (p->requires_grad) {
        p->ensure_grad();
        for (int r = 0; r < p->value.rows(); ++r)
          for (int c = 0; c < pc; ++c) p->grad(r, c) += out.grad(r, off2 + c);
      }
      off2 += pc;
    }
  });
}

Tensor slice_cols(const Tensor& a, int c0, int c1) {
  assert(c0 >= 0 && c0 < c1 && c1 <= a.cols());
  Mat v(a.rows(), c1 - c0);
  for (int r = 0; r < a.rows(); ++r)
    for (int c = c0; c < c1; ++c) v(r, c - c0) = a.value()(r, c);
  auto an = a.node();
  return make_op(std::move(v), {a}, [an, c0](detail::Node& out) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (int r = 0; r < out.value.rows(); ++r)
      for (int c = 0; c < out.value.cols(); ++c) an->grad(r, c0 + c) += out.grad(r, c);
  });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int cols = parts.front().cols();
  int rows = 0;
  for (const auto& p : parts) {
    assert(p.cols() == cols);
    rows += p.rows();
  }
  Mat v(rows, cols);
  int off = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < p.rows(); ++r)
      for (int c = 0; c < cols; ++c) v(off + r, c) = p.value()(r, c);
    off += p.rows();
  }
  std::vector<std::shared_ptr<detail::Node>> pn;
  pn.reserve(parts.size());
  for (const auto& p : parts) pn.push_back(p.node());
  return make_op(std::move(v), parts, [pn](detail::Node& out) {
    int off2 = 0;
    for (const auto& p : pn) {
      const int pr = p->value.rows();
      if (p->requires_grad) {
        p->ensure_grad();
        for (int r = 0; r < pr; ++r)
          for (int c = 0; c < p->value.cols(); ++c) p->grad(r, c) += out.grad(off2 + r, c);
      }
      off2 += pr;
    }
  });
}

Tensor sum(const Tensor& a) {
  Mat v(1, 1);
  v(0, 0) = a.value().sum();
  auto an = a.node();
  return make_op(std::move(v), {a}, [an](detail::Node& out) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    const double g = out.grad(0, 0);
    for (size_t i = 0; i < an->grad.size(); ++i) an->grad[i] += g;
  });
}

Tensor mean(const Tensor& a) {
  const double n = static_cast<double>(a.value().size());
  return sum(a) * (1.0 / n);
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  assert(pred.value().same_shape(target.value()));
  const size_t n = pred.value().size();
  Mat v(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target.value()[i];
    s += d * d;
  }
  v(0, 0) = s / static_cast<double>(n);
  auto pn = pred.node(), tn = target.node();
  return make_op(std::move(v), {pred, target}, [pn, tn, n](detail::Node& out) {
    const double g = out.grad(0, 0) * 2.0 / static_cast<double>(n);
    if (pn->requires_grad) {
      pn->ensure_grad();
      for (size_t i = 0; i < n; ++i) pn->grad[i] += g * (pn->value[i] - tn->value[i]);
    }
    if (tn->requires_grad) {
      tn->ensure_grad();
      for (size_t i = 0; i < n; ++i) tn->grad[i] -= g * (pn->value[i] - tn->value[i]);
    }
  });
}

Tensor bce_with_logits(const Tensor& logits, const Tensor& targets) {
  assert(logits.value().same_shape(targets.value()));
  const size_t n = logits.value().size();
  Mat v(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = logits.value()[i];
    const double t = targets.value()[i];
    // Numerically stable: max(x,0) - x*t + log(1+exp(-|x|))
    s += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x)));
  }
  v(0, 0) = s / static_cast<double>(n);
  auto ln = logits.node(), tn = targets.node();
  return make_op(std::move(v), {logits, targets}, [ln, tn, n](detail::Node& out) {
    if (!ln->requires_grad) return;
    ln->ensure_grad();
    const double g = out.grad(0, 0) / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      const double p = 1.0 / (1.0 + std::exp(-ln->value[i]));
      ln->grad[i] += g * (p - tn->value[i]);
    }
  });
}

Tensor gaussian_nll(const Tensor& mu, const Tensor& log_sigma, const Tensor& target) {
  assert(mu.value().same_shape(target.value()));
  assert(mu.value().same_shape(log_sigma.value()));
  const size_t n = mu.value().size();
  Mat v(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double ls = log_sigma.value()[i];
    const double d = target.value()[i] - mu.value()[i];
    s += ls + 0.5 * d * d * std::exp(-2.0 * ls);
  }
  v(0, 0) = s / static_cast<double>(n);
  auto mn = mu.node(), sn = log_sigma.node(), tn = target.node();
  return make_op(std::move(v), {mu, log_sigma, target}, [mn, sn, tn, n](detail::Node& out) {
    const double g = out.grad(0, 0) / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      const double ls = sn->value[i];
      const double inv_var = std::exp(-2.0 * ls);
      const double d = tn->value[i] - mn->value[i];
      if (mn->requires_grad) {
        mn->ensure_grad();
        mn->grad[i] += g * (-d * inv_var);
      }
      if (sn->requires_grad) {
        sn->ensure_grad();
        sn->grad[i] += g * (1.0 - d * d * inv_var);
      }
    }
  });
}

Tensor dropout(const Tensor& a, double p, std::mt19937_64& rng, bool training) {
  if (!training || p <= 0.0) return a;
  assert(p < 1.0);
  Mat mask(a.rows(), a.cols());
  std::bernoulli_distribution keep(1.0 - p);
  const double scale = 1.0 / (1.0 - p);
  for (size_t i = 0; i < mask.size(); ++i) mask[i] = keep(rng) ? scale : 0.0;
  return a * Tensor::constant(std::move(mask));
}

Tensor detach(const Tensor& a) { return Tensor::constant(a.value()); }

double gradient_check(const std::function<Tensor()>& loss_fn, Tensor param, double eps) {
  Tensor loss = loss_fn();
  param.zero_grad();
  loss.backward();
  Mat analytic = param.grad();

  double max_diff = 0.0;
  Mat& v = param.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) {
    const double orig = v[i];
    v[i] = orig + eps;
    const double lp = loss_fn().item();
    v[i] = orig - eps;
    const double lm = loss_fn().item();
    v[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    max_diff = std::max(max_diff, std::abs(numeric - analytic[i]));
  }
  return max_diff;
}

}  // namespace gendt::nn
