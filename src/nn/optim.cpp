#include "gendt/nn/optim.h"

#include <cmath>

#include "gendt/nn/checks.h"

namespace gendt::nn {

Adam::Adam() : Adam(Config{}) {}

void clip_grad_norm(const std::vector<NamedParam>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double sq = 0.0;
  for (const auto& p : params) {
    const Mat& g = p.tensor.grad();
    for (size_t i = 0; i < g.size(); ++i) sq += g[i] * g[i];
  }
  const double norm = std::sqrt(sq);
  GENDT_CHECK(std::isfinite(norm),
              "clip_grad_norm: non-finite gradient norm (NaN/Inf gradient upstream)");
  // With checks off, skip scaling: max_norm / NaN would poison *every*
  // parameter's gradient in this step, turning one bad gradient into a
  // fully corrupted model.
  if (!std::isfinite(norm)) return;
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (const auto& p : params) {
    // grad() is const-view; mutate through the node.
    Mat& g = p.tensor.node()->grad;
    for (size_t i = 0; i < g.size(); ++i) g[i] *= scale;
  }
}

void Sgd::step(const std::vector<NamedParam>& params) {
  clip_grad_norm(params, cfg_.clip_norm);
  for (const auto& p : params) {
    Mat& v = p.tensor.node()->value;
    const Mat& g = p.tensor.grad();
    if (g.empty()) continue;
    v.add_scaled(g, -cfg_.lr);
  }
}

void Adam::step(const std::vector<NamedParam>& params) {
  clip_grad_norm(params, cfg_.clip_norm);
  for (const auto& p : params) {
    const Mat& g = p.tensor.grad();
    if (g.empty()) continue;
    Mat& v = p.tensor.node()->value;
    Slot& s = state_[p.name];
    if (s.m.empty()) {
      s.m = Mat::zeros(v.rows(), v.cols());
      s.v = Mat::zeros(v.rows(), v.cols());
    }
    ++s.t;
    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(s.t));
    for (size_t i = 0; i < v.size(); ++i) {
      s.m[i] = cfg_.beta1 * s.m[i] + (1.0 - cfg_.beta1) * g[i];
      s.v[i] = cfg_.beta2 * s.v[i] + (1.0 - cfg_.beta2) * g[i] * g[i];
      const double mhat = s.m[i] / bc1;
      const double vhat = s.v[i] / bc2;
      v[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
  }
}

void Adam::export_state(const std::vector<NamedParam>& params, const std::string& prefix,
                        std::vector<TensorRecord>& out) const {
  for (const auto& p : params) {
    const auto it = state_.find(p.name);
    if (it == state_.end() || it->second.m.empty()) continue;
    const Slot& s = it->second;
    out.push_back({prefix + "/" + p.name + "/m", s.m});
    out.push_back({prefix + "/" + p.name + "/v", s.v});
    out.push_back({prefix + "/" + p.name + "/t", Mat::full(1, 1, static_cast<double>(s.t))});
  }
}

bool Adam::import_state(const std::vector<NamedParam>& params, const std::string& prefix,
                        const std::vector<TensorRecord>& records) {
  const std::string pre = prefix + "/";
  std::unordered_map<std::string, const Mat*> by_name;
  for (const auto& r : records) {
    if (r.name.rfind(pre, 0) != 0) continue;  // another optimizer's records
    if (!by_name.emplace(r.name, &r.value).second) return false;  // duplicate
  }

  // Stage everything, validate everything, then commit — a malformed record
  // set must not leave a half-restored optimizer.
  std::unordered_map<std::string, Slot> staged;
  size_t used = 0;
  for (const auto& p : params) {
    const auto mi = by_name.find(pre + p.name + "/m");
    const auto vi = by_name.find(pre + p.name + "/v");
    const auto ti = by_name.find(pre + p.name + "/t");
    const int present = (mi != by_name.end()) + (vi != by_name.end()) + (ti != by_name.end());
    if (present == 0) continue;  // parameter never stepped before the save
    if (present != 3) return false;
    const Mat& value = p.tensor.value();
    if (!mi->second->same_shape(value) || !vi->second->same_shape(value)) return false;
    if (ti->second->rows() != 1 || ti->second->cols() != 1) return false;
    const double td = (*ti->second)(0, 0);
    // t must be an exact non-negative step count (doubles are exact well
    // past any reachable step index).
    if (!(td >= 0.0) || td != std::floor(td) || td > 9.0e15) return false;
    Slot s;
    s.m = *mi->second;
    s.v = *vi->second;
    s.t = static_cast<long>(td);
    staged.emplace(p.name, std::move(s));
    used += 3;
  }
  if (used != by_name.size()) return false;  // records naming unknown params
  state_ = std::move(staged);
  return true;
}

}  // namespace gendt::nn
