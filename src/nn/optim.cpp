#include "gendt/nn/optim.h"

#include <cmath>

namespace gendt::nn {

Adam::Adam() : Adam(Config{}) {}

void clip_grad_norm(const std::vector<NamedParam>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double sq = 0.0;
  for (const auto& p : params) {
    const Mat& g = p.tensor.grad();
    for (size_t i = 0; i < g.size(); ++i) sq += g[i] * g[i];
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (const auto& p : params) {
    // grad() is const-view; mutate through the node.
    Mat& g = p.tensor.node()->grad;
    for (size_t i = 0; i < g.size(); ++i) g[i] *= scale;
  }
}

void Sgd::step(const std::vector<NamedParam>& params) {
  clip_grad_norm(params, cfg_.clip_norm);
  for (const auto& p : params) {
    Mat& v = p.tensor.node()->value;
    const Mat& g = p.tensor.grad();
    if (g.empty()) continue;
    v.add_scaled(g, -cfg_.lr);
  }
}

void Adam::step(const std::vector<NamedParam>& params) {
  clip_grad_norm(params, cfg_.clip_norm);
  for (const auto& p : params) {
    const Mat& g = p.tensor.grad();
    if (g.empty()) continue;
    Mat& v = p.tensor.node()->value;
    Slot& s = state_[p.tensor.id()];
    if (s.m.empty()) {
      s.m = Mat::zeros(v.rows(), v.cols());
      s.v = Mat::zeros(v.rows(), v.cols());
    }
    ++s.t;
    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(s.t));
    for (size_t i = 0; i < v.size(); ++i) {
      s.m[i] = cfg_.beta1 * s.m[i] + (1.0 - cfg_.beta1) * g[i];
      s.v[i] = cfg_.beta2 * s.v[i] + (1.0 - cfg_.beta2) * g[i] * g[i];
      const double mhat = s.m[i] / bc1;
      const double vhat = s.v[i] / bc2;
      v[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
  }
}

}  // namespace gendt::nn
