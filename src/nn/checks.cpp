#include "gendt/nn/checks.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gendt::nn {

namespace {

bool env_default() {
  // Startup-time config read: evaluated once to seed the checks-enabled
  // default before threads exist; nothing in the process calls setenv, so
  // the concurrency-mt-unsafe hazard cannot occur.
  const char* v = std::getenv("GENDT_DEBUG_CHECKS");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') {
#ifdef GENDT_DEBUG_CHECKS
    return true;  // build-wide default requested via CMake option
#else
    return false;
#endif
  }
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& flag() {
  static std::atomic<bool> enabled{env_default()};
  return enabled;
}

}  // namespace

bool debug_checks_enabled() { return flag().load(std::memory_order_relaxed); }

void set_debug_checks(bool enabled) { flag().store(enabled, std::memory_order_relaxed); }

void check_failed(const char* file, int line, const char* condition,
                  const std::string& message) {
  std::fprintf(stderr, "GENDT_CHECK failed: %s\n  %s\n  at %s:%d\n", condition,
               message.c_str(), file, line);
  std::fflush(stderr);
  std::abort();
}

std::string shape_str(const Mat& m) {
  // snprintf instead of string operator+ chains: GCC 12's -Wrestrict fires a
  // false positive (PR105329) on concatenated std::string temporaries.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[%dx%d]", m.rows(), m.cols());
  return buf;
}

void check_finite(const Mat& m, const char* where) {
  if (!debug_checks_enabled()) return;
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m[i])) {
      const size_t r = m.cols() > 0 ? i / static_cast<size_t>(m.cols()) : 0;
      const size_t c = m.cols() > 0 ? i % static_cast<size_t>(m.cols()) : 0;
      check_failed(where, 0, "std::isfinite(element)",
                   std::string("non-finite value ") + std::to_string(m[i]) + " at (" +
                       std::to_string(r) + "," + std::to_string(c) + ") of " + shape_str(m) +
                       " produced by " + where);
    }
  }
}

}  // namespace gendt::nn
