#include "gendt/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "gendt/nn/checks.h"

namespace gendt::nn {

void Module::zero_grad() {
  for (auto& p : params()) p.tensor.zero_grad();
}

size_t Module::param_count() const {
  size_t n = 0;
  for (const auto& p : params()) n += p.tensor.value().size();
  return n;
}

Linear::Linear(int in_features, int out_features, std::mt19937_64& rng, std::string name)
    : in_(in_features), out_(out_features), name_(std::move(name)) {
  // Xavier/Glorot init keeps activations in range for tanh/sigmoid heads.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_features + out_features));
  weight_ = Tensor(Mat::randn(in_features, out_features, rng, stddev), /*requires_grad=*/true);
  bias_ = Tensor(Mat::zeros(1, out_features), /*requires_grad=*/true);
}

Tensor Linear::forward(const Tensor& x) const {
  GENDT_CHECK(x.cols() == in_, name_ + ": input " + shape_str(x.value()) + " does not match " +
                                   std::to_string(in_) + " input features");
  assert(x.cols() == in_);
  return matmul(x, weight_) + bias_;
}

std::vector<NamedParam> Linear::params() const {
  return {{name_ + ".weight", weight_}, {name_ + ".bias", bias_}};
}

Mlp::Mlp(Config cfg, std::mt19937_64& rng, std::string name) : cfg_(std::move(cfg)) {
  assert(cfg_.layer_sizes.size() >= 2);
  layers_.reserve(cfg_.layer_sizes.size() - 1);
  for (size_t i = 0; i + 1 < cfg_.layer_sizes.size(); ++i) {
    layers_.emplace_back(cfg_.layer_sizes[i], cfg_.layer_sizes[i + 1], rng,
                         name + ".fc" + std::to_string(i));
  }
}

Tensor Mlp::forward(const Tensor& x, std::mt19937_64& rng, bool training) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = (i + 1 == layers_.size());
    if (last && cfg_.dropout_p > 0.0) h = dropout(h, cfg_.dropout_p, rng, training);
    h = layers_[i].forward(h);
    if (!last) h = leaky_relu(h, cfg_.leaky_slope);
  }
  return h;
}

std::vector<NamedParam> Mlp::params() const {
  std::vector<NamedParam> out;
  for (const auto& l : layers_) {
    auto p = l.params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

LstmCell::LstmCell(int input_size, int hidden_size, std::mt19937_64& rng, std::string name)
    : input_(input_size), hidden_(hidden_size), name_(std::move(name)) {
  const double sx = std::sqrt(1.0 / static_cast<double>(input_size));
  const double sh = std::sqrt(1.0 / static_cast<double>(hidden_size));
  wx_ = Tensor(Mat::uniform(input_size, 4 * hidden_size, rng, -sx, sx), true);
  wh_ = Tensor(Mat::uniform(hidden_size, 4 * hidden_size, rng, -sh, sh), true);
  Mat b = Mat::zeros(1, 4 * hidden_size);
  // Forget-gate bias of 1 aids gradient flow on long windows.
  for (int j = hidden_size; j < 2 * hidden_size; ++j) b(0, j) = 1.0;
  b_ = Tensor(std::move(b), true);
}

LstmCell::State LstmCell::initial_state() const {
  return {Tensor::zeros(1, hidden_), Tensor::zeros(1, hidden_)};
}

Tensor stochastic_perturb(const Tensor& s, double intensity, std::mt19937_64& rng) {
  if (intensity <= 0.0) return s;
  const Mat& v = s.value();
  // Noise amplitude adapts to the state: U[0, mean(|s|)] per dimension.
  double mean_abs = 0.0;
  for (size_t i = 0; i < v.size(); ++i) mean_abs += std::abs(v[i]);
  mean_abs /= static_cast<double>(v.size());
  if (mean_abs <= 0.0) return s;

  Mat noise(v.rows(), v.cols());
  std::uniform_real_distribution<double> dist(0.0, mean_abs);
  for (size_t i = 0; i < noise.size(); ++i) noise[i] = intensity * dist(rng);

  // Sum-preserving rescale; the scale is a constant w.r.t. the graph.
  // Clamped: when the signed sums nearly cancel, the raw ratio explodes and
  // destabilizes both training and generation.
  const double sum_before = v.sum();
  const double sum_after = sum_before + noise.sum();
  double scale = (std::abs(sum_after) > 1e-12) ? sum_before / sum_after : 1.0;
  scale = std::clamp(scale, 0.5, 2.0);
  return (s + Tensor::constant(std::move(noise))) * scale;
}

LstmCell::State LstmCell::step(const Tensor& x, const State& prev,
                               const StochasticConfig& stochastic, std::mt19937_64& rng) const {
  GENDT_CHECK(x.cols() == input_, name_ + ": step input " + shape_str(x.value()) +
                                      " does not match input size " + std::to_string(input_));
  GENDT_CHECK(prev.h.cols() == hidden_ && prev.c.cols() == hidden_,
              name_ + ": state h " + shape_str(prev.h.value()) + " / c " +
                  shape_str(prev.c.value()) + " does not match hidden size " +
                  std::to_string(hidden_));
  assert(x.cols() == input_);
  Tensor h_in = prev.h;
  Tensor c_in = prev.c;
  if (stochastic.enabled) {
    h_in = stochastic_perturb(h_in, stochastic.a_h, rng);
    c_in = stochastic_perturb(c_in, stochastic.a_c, rng);
  }
  // Fused gate preactivation: one [1 x 4H] allocation for x*wx + h*wh + b.
  Tensor gates = affine2(x, wx_, h_in, wh_, b_);
  const int H = hidden_;
  Tensor i = sigmoid(slice_cols(gates, 0, H));
  Tensor f = sigmoid(slice_cols(gates, H, 2 * H));
  Tensor g = tanh_t(slice_cols(gates, 2 * H, 3 * H));
  Tensor o = sigmoid(slice_cols(gates, 3 * H, 4 * H));
  Tensor c = f * c_in + i * g;
  Tensor h = o * tanh_t(c);
  return {h, c};
}

std::vector<NamedParam> LstmCell::params() const {
  return {{name_ + ".wx", wx_}, {name_ + ".wh", wh_}, {name_ + ".b", b_}};
}

GruCell::GruCell(int input_size, int hidden_size, std::mt19937_64& rng, std::string name)
    : input_(input_size), hidden_(hidden_size), name_(std::move(name)) {
  const double sx = std::sqrt(1.0 / static_cast<double>(input_size));
  const double sh = std::sqrt(1.0 / static_cast<double>(hidden_size));
  wx_ = Tensor(Mat::uniform(input_size, 3 * hidden_size, rng, -sx, sx), true);
  wh_ = Tensor(Mat::uniform(hidden_size, 3 * hidden_size, rng, -sh, sh), true);
  b_ = Tensor(Mat::zeros(1, 3 * hidden_size), true);
  bh_ = Tensor(Mat::zeros(1, 3 * hidden_size), true);
}

Tensor GruCell::initial_state() const { return Tensor::zeros(1, hidden_); }

Tensor GruCell::step(const Tensor& x, const Tensor& h) const {
  GENDT_CHECK(x.cols() == input_ && h.cols() == hidden_,
              name_ + ": step input " + shape_str(x.value()) + " / state " +
                  shape_str(h.value()) + " does not match [" + std::to_string(input_) + ", " +
                  std::to_string(hidden_) + "]");
  assert(x.cols() == input_ && h.cols() == hidden_);
  const int H = hidden_;
  Tensor gx = matmul(x, wx_) + b_;
  Tensor gh = matmul(h, wh_) + bh_;
  Tensor r = sigmoid(slice_cols(gx, 0, H) + slice_cols(gh, 0, H));
  Tensor z = sigmoid(slice_cols(gx, H, 2 * H) + slice_cols(gh, H, 2 * H));
  Tensor n = tanh_t(slice_cols(gx, 2 * H, 3 * H) + r * slice_cols(gh, 2 * H, 3 * H));
  // h' = (1 - z) * n + z * h
  return n + z * (h - n);
}

std::vector<NamedParam> GruCell::params() const {
  return {{name_ + ".wx", wx_}, {name_ + ".wh", wh_}, {name_ + ".b", b_}, {name_ + ".bh", bh_}};
}

LstmNetwork::LstmNetwork(int input_size, int hidden_size, int output_size, std::mt19937_64& rng,
                         std::string name)
    : cell_(input_size, hidden_size, rng, name + ".cell"),
      head_(hidden_size, output_size, rng, name + ".head") {}

std::vector<Tensor> LstmNetwork::hidden_sequence(const std::vector<Tensor>& inputs,
                                                 const StochasticConfig& stochastic,
                                                 std::mt19937_64& rng) const {
  std::vector<Tensor> hs;
  hs.reserve(inputs.size());
  LstmCell::State state = cell_.initial_state();
  for (const auto& x : inputs) {
    state = cell_.step(x, state, stochastic, rng);
    hs.push_back(state.h);
  }
  return hs;
}

std::vector<Tensor> LstmNetwork::forward(const std::vector<Tensor>& inputs,
                                         const StochasticConfig& stochastic,
                                         std::mt19937_64& rng) const {
  std::vector<Tensor> out;
  out.reserve(inputs.size());
  for (const auto& h : hidden_sequence(inputs, stochastic, rng)) out.push_back(head_.forward(h));
  return out;
}

std::vector<NamedParam> LstmNetwork::params() const {
  std::vector<NamedParam> out = cell_.params();
  auto hp = head_.params();
  out.insert(out.end(), hp.begin(), hp.end());
  return out;
}

}  // namespace gendt::nn
