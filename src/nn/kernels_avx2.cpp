// AVX2/FMA kernel route. This is the ONLY translation unit in the tree that
// may use vector intrinsics directly (tools/lint_determinism.py enforces it);
// everything else reaches these kernels through the gendt::nn::simd dispatch
// table. Compiled with -mavx2 -mfma on x86 builds (see src/nn/CMakeLists.txt)
// and empty elsewhere.
//
// Determinism contract (same as the scalar route, minus cross-route bit
// equality): every output element accumulates its products in ascending-k
// order with a fixed operation sequence — one FMA per (k, element) — so
// results are bitwise identical at every tile split, row pairing, and thread
// count. What differs from the scalar route is the rounding itself: FMA
// rounds a*b+c once where the scalar kernels round the product and the sum
// separately, and the gate nonlinearity uses a vector exp/tanh instead of
// libm. Both deltas are covered by the tolerance gate in simd_parity_test.
#include "kernels_internal.h"

#ifdef GENDT_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace gendt::nn::detail {

namespace {

// y[0:n) += a * x[0:n) — 4-wide FMA body with a scalar-FMA tail. Ascending j;
// each element sees exactly one fma(a, x[j], y[j]).
inline void axpy1(double a, const double* __restrict x, double* __restrict y, int n) {
  const __m256d va = _mm256_set1_pd(a);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vy = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + j), _mm256_loadu_pd(y + j));
    _mm256_storeu_pd(y + j, vy);
  }
  for (; j < n; ++j) y[j] = std::fma(a, x[j], y[j]);
}

// Two-row variant sharing the x loads: y0 += a0*x, y1 += a1*x. Per-element
// arithmetic is identical to two axpy1 calls — pairing only improves the
// flops-per-byte of the B row — so results do not depend on how rows pair.
inline void axpy2(double a0, double a1, const double* __restrict x, double* __restrict y0,
                  double* __restrict y1, int n) {
  const __m256d va0 = _mm256_set1_pd(a0);
  const __m256d va1 = _mm256_set1_pd(a1);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vx = _mm256_loadu_pd(x + j);
    _mm256_storeu_pd(y0 + j, _mm256_fmadd_pd(va0, vx, _mm256_loadu_pd(y0 + j)));
    _mm256_storeu_pd(y1 + j, _mm256_fmadd_pd(va1, vx, _mm256_loadu_pd(y1 + j)));
  }
  for (; j < n; ++j) {
    y0[j] = std::fma(a0, x[j], y0[j]);
    y1[j] = std::fma(a1, x[j], y1[j]);
  }
}

// Row-paired tile body shared by the NN and (packed) NT kernels. The zero
// skip mirrors the scalar kernels: a zero A element contributes nothing,
// never a 0*x FMA (which would turn an Inf/NaN in x into a NaN the scalar
// route does not produce).
//
// The main body register-blocks C: a 2-row x 16-column block lives in 8 ymm
// accumulators for the whole depth tile, so C memory traffic drops from one
// load+store per (k, row) to one per tile — that, not the FMA count, is what
// the plain axpy sweep was bound on. Per element the arithmetic is the same
// single ascending-k FMA chain as the axpy path, so the blocking changes no
// bits, only where the partial sums live.
inline void tile_rows(const double* __restrict a, const double* __restrict brows,
                      double* __restrict c, long r0, long r1, int K, int N, int kk, int kend,
                      int jj, int jw, long brow_stride, int brow_base) {
  long i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* __restrict arow0 = a + i * K;
    const double* __restrict arow1 = arow0 + K;
    double* __restrict crow0 = c + i * N + jj;
    double* __restrict crow1 = crow0 + N;
    int j = 0;
    for (; j + 16 <= jw; j += 16) {
      __m256d c00 = _mm256_loadu_pd(crow0 + j);
      __m256d c01 = _mm256_loadu_pd(crow0 + j + 4);
      __m256d c02 = _mm256_loadu_pd(crow0 + j + 8);
      __m256d c03 = _mm256_loadu_pd(crow0 + j + 12);
      __m256d c10 = _mm256_loadu_pd(crow1 + j);
      __m256d c11 = _mm256_loadu_pd(crow1 + j + 4);
      __m256d c12 = _mm256_loadu_pd(crow1 + j + 8);
      __m256d c13 = _mm256_loadu_pd(crow1 + j + 12);
      for (int k = kk; k < kend; ++k) {
        const double a0 = arow0[k];
        const double a1 = arow1[k];
        if (a0 == 0.0 && a1 == 0.0) continue;
        const double* __restrict x = brows + static_cast<long>(k - brow_base) * brow_stride + j;
        const __m256d x0 = _mm256_loadu_pd(x);
        const __m256d x1 = _mm256_loadu_pd(x + 4);
        const __m256d x2 = _mm256_loadu_pd(x + 8);
        const __m256d x3 = _mm256_loadu_pd(x + 12);
        if (a0 != 0.0) {
          const __m256d va0 = _mm256_set1_pd(a0);
          c00 = _mm256_fmadd_pd(va0, x0, c00);
          c01 = _mm256_fmadd_pd(va0, x1, c01);
          c02 = _mm256_fmadd_pd(va0, x2, c02);
          c03 = _mm256_fmadd_pd(va0, x3, c03);
        }
        if (a1 != 0.0) {
          const __m256d va1 = _mm256_set1_pd(a1);
          c10 = _mm256_fmadd_pd(va1, x0, c10);
          c11 = _mm256_fmadd_pd(va1, x1, c11);
          c12 = _mm256_fmadd_pd(va1, x2, c12);
          c13 = _mm256_fmadd_pd(va1, x3, c13);
        }
      }
      _mm256_storeu_pd(crow0 + j, c00);
      _mm256_storeu_pd(crow0 + j + 4, c01);
      _mm256_storeu_pd(crow0 + j + 8, c02);
      _mm256_storeu_pd(crow0 + j + 12, c03);
      _mm256_storeu_pd(crow1 + j, c10);
      _mm256_storeu_pd(crow1 + j + 4, c11);
      _mm256_storeu_pd(crow1 + j + 8, c12);
      _mm256_storeu_pd(crow1 + j + 12, c13);
    }
    if (j < jw) {
      for (int k = kk; k < kend; ++k) {
        const double a0 = arow0[k];
        const double a1 = arow1[k];
        const double* __restrict x =
            brows + static_cast<long>(k - brow_base) * brow_stride + j;
        if (a0 != 0.0 && a1 != 0.0) {
          axpy2(a0, a1, x, crow0 + j, crow1 + j, jw - j);
        } else if (a0 != 0.0) {
          axpy1(a0, x, crow0 + j, jw - j);
        } else if (a1 != 0.0) {
          axpy1(a1, x, crow1 + j, jw - j);
        }
      }
    }
  }
  if (i < r1) {
    const double* __restrict arow = a + i * K;
    double* __restrict crow = c + i * N + jj;
    for (int k = kk; k < kend; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      axpy1(aik, brows + static_cast<long>(k - brow_base) * brow_stride, crow, jw);
    }
  }
}

}  // namespace

void mm_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K, int N) {
  for (int kk = 0; kk < K; kk += kDepthTile) {
    const int kend = std::min(K, kk + kDepthTile);
    for (int jj = 0; jj < N; jj += kColTile) {
      const int jend = std::min(N, jj + kColTile);
      // brows = B offset to the tile's column window; stride N walks k rows.
      tile_rows(a, b + jj, c, r0, r1, K, N, kk, kend, jj, jend - jj, N, 0);
    }
  }
}

void mm_nt_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K,
                     int N) {
  // Same tile packing as the scalar NT kernel: each [k x j] tile of B^T is
  // relocated into a contiguous buffer so the inner loop is a unit-stride
  // axpy. Packing moves values, never reorders any element's k-summation.
  thread_local std::vector<double> pack;
  pack.resize(static_cast<size_t>(kDepthTile) * kColTile);
  double* __restrict pk = pack.data();
  for (int kk = 0; kk < K; kk += kDepthTile) {
    const int kend = std::min(K, kk + kDepthTile);
    for (int jj = 0; jj < N; jj += kColTile) {
      const int jend = std::min(N, jj + kColTile);
      const int jw = jend - jj;
      for (int j = jj; j < jend; ++j) {
        const double* __restrict brow = b + static_cast<long>(j) * K;
        for (int k = kk; k < kend; ++k)
          pk[static_cast<size_t>(k - kk) * static_cast<size_t>(jw) + static_cast<size_t>(j - jj)] =
              brow[k];
      }
      tile_rows(a, pk, c, r0, r1, K, N, kk, kend, jj, jw, jw, kk);
    }
  }
}

void mm_tn_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K, int M,
                     int N) {
  for (int jj = 0; jj < N; jj += kColTile) {
    const int jend = std::min(N, jj + kColTile);
    const int jw = jend - jj;
    long i = r0;
    for (; i + 2 <= r1; i += 2) {
      double* __restrict crow0 = c + i * N + jj;
      double* __restrict crow1 = crow0 + N;
      for (int k = 0; k < K; ++k) {
        const double* __restrict apair = a + static_cast<long>(k) * M + i;
        const double a0 = apair[0];
        const double a1 = apair[1];
        const double* __restrict brow = b + static_cast<long>(k) * N + jj;
        if (a0 != 0.0 && a1 != 0.0) {
          axpy2(a0, a1, brow, crow0, crow1, jw);
        } else if (a0 != 0.0) {
          axpy1(a0, brow, crow0, jw);
        } else if (a1 != 0.0) {
          axpy1(a1, brow, crow1, jw);
        }
      }
    }
    if (i < r1) {
      double* __restrict crow = c + i * N + jj;
      for (int k = 0; k < K; ++k) {
        const double aki = a[static_cast<long>(k) * M + i];
        if (aki == 0.0) continue;
        axpy1(aki, b + static_cast<long>(k) * N + jj, crow, jw);
      }
    }
  }
}

// ---- Vector transcendentals ----------------------------------------------
//
// Cephes-style exp for 4 doubles (~1 ulp): range-reduce by log2(e), evaluate
// the P/Q rational on the residual, scale by 2^n through the exponent bits.
// tanh and sigmoid derive from it; both saturate correctly for large |x|
// because exp's input clamp keeps 2^n representable.

namespace {

const __m256d kOne = _mm256_set1_pd(1.0);

inline __m256d exp256(__m256d x) {
  const __m256d hi = _mm256_set1_pd(709.437);
  const __m256d lo = _mm256_set1_pd(-709.436139303);
  x = _mm256_min_pd(_mm256_max_pd(x, lo), hi);

  // n = floor(x * log2(e) + 0.5)
  __m256d n = _mm256_floor_pd(
      _mm256_fmadd_pd(x, _mm256_set1_pd(1.4426950408889634073599), _mm256_set1_pd(0.5)));
  // r = x - n*ln(2), split high/low for accuracy.
  x = _mm256_fnmadd_pd(n, _mm256_set1_pd(6.93145751953125e-1), x);
  x = _mm256_fnmadd_pd(n, _mm256_set1_pd(1.42860682030941723212e-6), x);

  const __m256d xx = _mm256_mul_pd(x, x);
  __m256d px = _mm256_set1_pd(1.26177193074810590878e-4);
  px = _mm256_fmadd_pd(px, xx, _mm256_set1_pd(3.02994407707441961300e-2));
  px = _mm256_fmadd_pd(px, xx, _mm256_set1_pd(9.99999999999999999910e-1));
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_set1_pd(3.00198505138664455042e-6);
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.52448340349684104192e-3));
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.27265548208155028766e-1));
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.00000000000000000005e0));
  __m256d e = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), kOne);

  // e *= 2^n via the exponent field. |n| <= 1023 after the input clamp.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));
}

inline __m256d sigmoid256(__m256d x) {
  const __m256d e = exp256(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(kOne, _mm256_add_pd(kOne, e));
}

inline __m256d tanh256(__m256d x) {
  // sign-symmetric: tanh(x) = sign(x) * (1 - e) / (1 + e), e = exp(-2|x|).
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_mask);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);
  const __m256d e = exp256(_mm256_mul_pd(ax, _mm256_set1_pd(-2.0)));
  const __m256d r = _mm256_div_pd(_mm256_sub_pd(kOne, e), _mm256_add_pd(kOne, e));
  return _mm256_or_pd(r, sign);
}

}  // namespace

void lstm_gates_avx2(const double* g, double* h, double* c, int H) {
  int j = 0;
  for (; j + 4 <= H; j += 4) {
    const __m256d ig = sigmoid256(_mm256_loadu_pd(g + j));
    const __m256d fg = sigmoid256(_mm256_loadu_pd(g + H + j));
    const __m256d gg = tanh256(_mm256_loadu_pd(g + 2 * H + j));
    const __m256d og = sigmoid256(_mm256_loadu_pd(g + 3 * H + j));
    const __m256d cn = _mm256_fmadd_pd(ig, gg, _mm256_mul_pd(fg, _mm256_loadu_pd(c + j)));
    _mm256_storeu_pd(c + j, cn);
    _mm256_storeu_pd(h + j, _mm256_mul_pd(og, tanh256(cn)));
  }
  // libm tail: H is fixed per model, so which elements take the tail is a
  // pure function of the architecture — still deterministic per route.
  for (; j < H; ++j) {
    const double ig = 1.0 / (1.0 + std::exp(-g[j]));
    const double fg = 1.0 / (1.0 + std::exp(-g[H + j]));
    const double gg = std::tanh(g[2 * H + j]);
    const double og = 1.0 / (1.0 + std::exp(-g[3 * H + j]));
    const double cn = std::fma(ig, gg, fg * c[j]);
    c[j] = cn;
    h[j] = og * std::tanh(cn);
  }
}

void affine2_row_avx2(const double* x1, const double* w1, int k1, const double* x2,
                      const double* w2, int k2, const double* b, double* y, int n) {
  std::copy(b, b + n, y);
  for (int k = 0; k < k1; ++k) {
    const double a = x1[k];
    if (a != 0.0) axpy1(a, w1 + static_cast<long>(k) * n, y, n);
  }
  for (int k = 0; k < k2; ++k) {
    const double a = x2[k];
    if (a != 0.0) axpy1(a, w2 + static_cast<long>(k) * n, y, n);
  }
}

}  // namespace gendt::nn::detail

#else  // !GENDT_HAVE_AVX2_KERNELS

// Portable builds compile this TU empty; keep one symbol so ranlib stays quiet.
namespace gendt::nn::detail {
void kernels_avx2_unavailable() {}
}  // namespace gendt::nn::detail

#endif
