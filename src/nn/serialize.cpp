#include "gendt/nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

namespace gendt::nn {

namespace {
constexpr char kMagic[8] = {'G', 'D', 'T', 'C', 'K', 'P', 'T', '1'};

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool read_u64(std::istream& is, uint64_t& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}
}  // namespace

bool save_params(const std::vector<NamedParam>& params, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, params.size());
  for (const auto& p : params) {
    write_u64(os, p.name.size());
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const Mat& m = p.tensor.value();
    write_u64(os, static_cast<uint64_t>(m.rows()));
    write_u64(os, static_cast<uint64_t>(m.cols()));
    os.write(reinterpret_cast<const char*>(m.data().data()),
             static_cast<std::streamsize>(m.size() * sizeof(double)));
  }
  return static_cast<bool>(os);
}

bool load_params(const std::vector<NamedParam>& params, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(magic, magic + 8, kMagic)) return false;
  uint64_t count = 0;
  if (!read_u64(is, count)) return false;

  std::unordered_map<std::string, Tensor> by_name;
  for (const auto& p : params) by_name.emplace(p.name, p.tensor);

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0, rows = 0, cols = 0;
    if (!read_u64(is, name_len)) return false;
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!read_u64(is, rows) || !read_u64(is, cols)) return false;
    Mat m(static_cast<int>(rows), static_cast<int>(cols));
    is.read(reinterpret_cast<char*>(m.data().data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
    if (!is) return false;
    auto it = by_name.find(name);
    if (it == by_name.end()) return false;
    if (!it->second.value().same_shape(m)) return false;
    it->second.mutable_value() = std::move(m);
  }
  return true;
}

}  // namespace gendt::nn
