#include "gendt/nn/serialize.h"

#include "crc32.h"
#include "gendt/nn/checks.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gendt::nn {

namespace {

constexpr char kMagicV1[8] = {'G', 'D', 'T', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'G', 'D', 'T', 'C', 'K', 'P', 'T', '2'};

// Bounds on untrusted length fields. Each is far above anything a real
// GenDT checkpoint contains but small enough that a corrupt field can
// neither trigger a multi-GB allocation nor wrap an int dimension.
constexpr std::uint64_t kMaxNameLen = 1u << 12;        // 4 KiB tensor/meta key
constexpr std::uint64_t kMaxMetaValueLen = 1u << 26;   // 64 MiB per value
constexpr std::uint64_t kMaxDim = 1u << 27;            // rows/cols, << INT_MAX
constexpr std::uint64_t kMaxRecords = 1u << 20;        // per section

// CRC-32 (IEEE 802.3): shared slice-by-8 implementation in crc32.cpp —
// same values as the original byte-at-a-time table walk, just faster over
// multi-MB tensor payloads.
std::uint32_t crc32(const std::uint8_t* data, size_t n) { return detail::crc32_ieee(data, n); }

// ---- Buffer writer --------------------------------------------------------

void put_bytes(std::vector<std::uint8_t>& b, const void* p, size_t n) {
  const auto* c = static_cast<const std::uint8_t*>(p);
  b.insert(b.end(), c, c + n);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_bytes(b, &v, sizeof(v));
}

void put_tensor(std::vector<std::uint8_t>& b, const TensorRecord& r) {
  put_u64(b, r.name.size());
  put_bytes(b, r.name.data(), r.name.size());
  put_u64(b, static_cast<std::uint64_t>(r.value.rows()));
  put_u64(b, static_cast<std::uint64_t>(r.value.cols()));
  put_bytes(b, r.value.data().data(), r.value.size() * sizeof(double));
}

// ---- Buffer reader --------------------------------------------------------

struct Reader {
  const std::uint8_t* p = nullptr;
  size_t n = 0;
  size_t off = 0;

  size_t remaining() const { return n - off; }
  bool u64(std::uint64_t& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, p + off, sizeof(v));
    off += sizeof(v);
    return true;
  }
  bool bytes(void* dst, size_t len) {
    if (remaining() < len) return false;
    // len == 0 is legal (a 0xN tensor): memcpy's pointers must be non-null
    // even then, and an empty Mat's data pointer is null.
    if (len != 0) std::memcpy(dst, p + off, len);
    off += len;
    return true;
  }
};

LoadResult fail(LoadStatus status, int version, std::string detail) {
  LoadResult r;
  r.status = status;
  r.version = version;
  r.detail = std::move(detail);
  return r;
}

std::string record_ref(const char* section, std::uint64_t index, const std::string& name) {
  std::string s = section;
  (s += " record ") += std::to_string(index);
  if (!name.empty()) ((s += " ('") += name) += "')";
  return s;
}

/// Parse one name/rows/cols/data record with every length field validated
/// against its bound and the remaining bytes *before* any allocation.
LoadResult parse_tensor(Reader& r, int version, const char* section, std::uint64_t index,
                        TensorRecord& rec) {
  std::uint64_t name_len = 0;
  if (!r.u64(name_len))
    return fail(LoadStatus::kTruncated, version, record_ref(section, index, "") + ": name length");
  if (name_len == 0 || name_len > kMaxNameLen)
    return fail(LoadStatus::kMalformed, version,
                record_ref(section, index, "") + ": name length " + std::to_string(name_len) +
                    " outside [1, " + std::to_string(kMaxNameLen) + "]");
  if (name_len > r.remaining())
    return fail(LoadStatus::kTruncated, version,
                record_ref(section, index, "") + ": name overruns the file");
  rec.name.assign(name_len, '\0');
  r.bytes(rec.name.data(), name_len);

  std::uint64_t rows = 0, cols = 0;
  if (!r.u64(rows) || !r.u64(cols))
    return fail(LoadStatus::kTruncated, version, record_ref(section, index, rec.name) + ": shape");
  if (rows > kMaxDim || cols > kMaxDim)
    return fail(LoadStatus::kMalformed, version,
                record_ref(section, index, rec.name) + ": dims " + std::to_string(rows) + "x" +
                    std::to_string(cols) + " exceed limit " + std::to_string(kMaxDim));
  const std::uint64_t elems = rows * cols;  // <= 2^54, no overflow after the bound check
  if (elems > r.remaining() / sizeof(double))
    return fail(LoadStatus::kTruncated, version,
                record_ref(section, index, rec.name) + ": declares " + std::to_string(elems) +
                    " doubles but only " + std::to_string(r.remaining()) + " bytes remain");
  rec.value = Mat(static_cast<int>(rows), static_cast<int>(cols));
  r.bytes(rec.value.data().data(), static_cast<size_t>(elems) * sizeof(double));
  return LoadResult{};
}

LoadResult parse_tensor_section(Reader& r, int version, const char* section,
                                std::uint64_t count, std::vector<TensorRecord>& out) {
  std::unordered_set<std::string> seen;
  out.reserve(static_cast<size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TensorRecord rec;
    LoadResult res = parse_tensor(r, version, section, i, rec);
    if (!res.ok()) return res;
    if (!seen.insert(rec.name).second)
      return fail(LoadStatus::kDuplicateName, version,
                  record_ref(section, i, rec.name) + ": name appears twice");
    out.push_back(std::move(rec));
  }
  return LoadResult{};
}

LoadResult parse_v2(const std::vector<std::uint8_t>& buf, Checkpoint& out) {
  constexpr int kV = 2;
  constexpr size_t kFooter = sizeof(std::uint64_t);
  Reader r{buf.data(), buf.size(), sizeof(kMagicV2)};

  std::uint64_t meta_count = 0, param_count = 0, state_count = 0;
  if (!r.u64(meta_count) || !r.u64(param_count) || !r.u64(state_count))
    return fail(LoadStatus::kTruncated, kV, "header cut short");
  if (meta_count > kMaxRecords || param_count > kMaxRecords || state_count > kMaxRecords)
    return fail(LoadStatus::kMalformed, kV, "header record counts exceed limit");

  for (std::uint64_t i = 0; i < meta_count; ++i) {
    std::uint64_t key_len = 0, val_len = 0;
    if (!r.u64(key_len))
      return fail(LoadStatus::kTruncated, kV, record_ref("meta", i, "") + ": key length");
    if (key_len == 0 || key_len > kMaxNameLen)
      return fail(LoadStatus::kMalformed, kV,
                  record_ref("meta", i, "") + ": key length " + std::to_string(key_len));
    if (key_len > r.remaining())
      return fail(LoadStatus::kTruncated, kV, record_ref("meta", i, "") + ": key overruns file");
    std::string key(key_len, '\0');
    r.bytes(key.data(), key_len);
    if (!r.u64(val_len))
      return fail(LoadStatus::kTruncated, kV, record_ref("meta", i, key) + ": value length");
    if (val_len > kMaxMetaValueLen)
      return fail(LoadStatus::kMalformed, kV,
                  record_ref("meta", i, key) + ": value length " + std::to_string(val_len));
    if (val_len > r.remaining())
      return fail(LoadStatus::kTruncated, kV, record_ref("meta", i, key) + ": value overruns file");
    std::vector<std::uint8_t> value(static_cast<size_t>(val_len));
    r.bytes(value.data(), static_cast<size_t>(val_len));
    if (out.meta.has(key))
      return fail(LoadStatus::kDuplicateName, kV,
                  record_ref("meta", i, key) + ": key appears twice");
    out.meta.set_bytes(key, std::move(value));
  }

  LoadResult res = parse_tensor_section(r, kV, "param", param_count, out.params);
  if (!res.ok()) return res;
  res = parse_tensor_section(r, kV, "state", state_count, out.state);
  if (!res.ok()) return res;

  if (r.remaining() != kFooter)
    return r.remaining() > kFooter
               ? fail(LoadStatus::kTrailingBytes, kV,
                      std::to_string(r.remaining() - kFooter) +
                          " unexpected bytes between the last record and the CRC footer")
               : fail(LoadStatus::kTruncated, kV, "CRC footer missing");
  std::uint64_t stored = 0;
  r.u64(stored);
  const std::uint32_t computed = crc32(buf.data(), buf.size() - kFooter);
  if (stored != computed)
    return fail(LoadStatus::kCrcMismatch, kV,
                "stored CRC does not match contents (file corrupted or bit-flipped)");
  LoadResult okr;
  okr.version = kV;
  return okr;
}

LoadResult parse_v1(const std::vector<std::uint8_t>& buf, Checkpoint& out) {
  constexpr int kV = 1;
  Reader r{buf.data(), buf.size(), sizeof(kMagicV1)};
  std::uint64_t count = 0;
  if (!r.u64(count)) return fail(LoadStatus::kTruncated, kV, "record count cut short");
  if (count > kMaxRecords)
    return fail(LoadStatus::kMalformed, kV, "record count exceeds limit");
  LoadResult res = parse_tensor_section(r, kV, "param", count, out.params);
  if (!res.ok()) return res;
  if (r.remaining() != 0)
    return fail(LoadStatus::kTrailingBytes, kV,
                std::to_string(r.remaining()) + " bytes after the declared records");
  LoadResult okr;
  okr.version = kV;
  return okr;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return false;
  const std::streamoff size = is.tellg();
  if (size < 0) return false;
  out.resize(static_cast<size_t>(size));
  is.seekg(0);
  if (size > 0) is.read(reinterpret_cast<char*>(out.data()), size);
  return static_cast<bool>(is);
}

}  // namespace

// ---- CkptMeta -------------------------------------------------------------

void CkptMeta::set_bytes(const std::string& key, std::vector<std::uint8_t> value) {
  for (auto& e : entries_) {
    if (e.first == key) {
      e.second = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

void CkptMeta::set_u64(const std::string& key, std::uint64_t v) {
  std::vector<std::uint8_t> raw(sizeof(v));
  std::memcpy(raw.data(), &v, sizeof(v));
  set_bytes(key, std::move(raw));
}

void CkptMeta::set_f64s(const std::string& key, std::span<const double> v) {
  std::vector<std::uint8_t> raw(v.size() * sizeof(double));
  if (!v.empty()) std::memcpy(raw.data(), v.data(), raw.size());
  set_bytes(key, std::move(raw));
}

void CkptMeta::set_string(const std::string& key, const std::string& v) {
  set_bytes(key, std::vector<std::uint8_t>(v.begin(), v.end()));
}

const std::vector<std::uint8_t>* CkptMeta::find(const std::string& key) const {
  for (const auto& e : entries_)
    if (e.first == key) return &e.second;
  return nullptr;
}

bool CkptMeta::get_u64(const std::string& key, std::uint64_t& out) const {
  const auto* raw = find(key);
  if (!raw || raw->size() != sizeof(out)) return false;
  std::memcpy(&out, raw->data(), sizeof(out));
  return true;
}

bool CkptMeta::get_f64s(const std::string& key, std::vector<double>& out) const {
  const auto* raw = find(key);
  if (!raw || raw->size() % sizeof(double) != 0) return false;
  out.resize(raw->size() / sizeof(double));
  if (!out.empty()) std::memcpy(out.data(), raw->data(), raw->size());
  return true;
}

bool CkptMeta::get_string(const std::string& key, std::string& out) const {
  const auto* raw = find(key);
  if (!raw) return false;
  out.assign(raw->begin(), raw->end());
  return true;
}

// ---- Public API -----------------------------------------------------------

const char* load_status_name(LoadStatus s) {
  switch (s) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kIoError: return "io-error";
    case LoadStatus::kBadMagic: return "bad-magic";
    case LoadStatus::kUnsupportedVersion: return "unsupported-version";
    case LoadStatus::kTruncated: return "truncated";
    case LoadStatus::kMalformed: return "malformed";
    case LoadStatus::kCrcMismatch: return "crc-mismatch";
    case LoadStatus::kDuplicateName: return "duplicate-name";
    case LoadStatus::kTrailingBytes: return "trailing-bytes";
    case LoadStatus::kUnknownParam: return "unknown-param";
    case LoadStatus::kShapeMismatch: return "shape-mismatch";
    case LoadStatus::kMissingParam: return "missing-param";
  }
  return "unknown";
}

bool save_checkpoint(const Checkpoint& ckpt, const std::string& path) {
  std::vector<std::uint8_t> buf;
  size_t estimate = 64;
  for (const auto& e : ckpt.meta.entries()) estimate += 16 + e.first.size() + e.second.size();
  for (const auto& t : ckpt.params) estimate += 24 + t.name.size() + t.value.size() * 8;
  for (const auto& t : ckpt.state) estimate += 24 + t.name.size() + t.value.size() * 8;
  buf.reserve(estimate);

  put_bytes(buf, kMagicV2, sizeof(kMagicV2));
  put_u64(buf, ckpt.meta.entries().size());
  put_u64(buf, ckpt.params.size());
  put_u64(buf, ckpt.state.size());
  for (const auto& e : ckpt.meta.entries()) {
    put_u64(buf, e.first.size());
    put_bytes(buf, e.first.data(), e.first.size());
    put_u64(buf, e.second.size());
    put_bytes(buf, e.second.data(), e.second.size());
  }
  for (const auto& t : ckpt.params) put_tensor(buf, t);
  for (const auto& t : ckpt.state) put_tensor(buf, t);
  put_u64(buf, crc32(buf.data(), buf.size()));

  // Atomic publish: write + flush the temp file, then rename over `path`.
  // POSIX rename is atomic, so readers see either the old or the new
  // checkpoint, never a torn one.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  ok = (std::fflush(f) == 0) && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

LoadResult read_checkpoint(const std::string& path, Checkpoint& out) {
  out = Checkpoint{};
  std::vector<std::uint8_t> buf;
  if (!read_file(path, buf))
    return fail(LoadStatus::kIoError, 0, "cannot read '" + path + "'");
  if (buf.size() < sizeof(kMagicV2))
    return fail(LoadStatus::kBadMagic, 0, "file shorter than the magic");
  if (std::memcmp(buf.data(), kMagicV2, sizeof(kMagicV2)) == 0) return parse_v2(buf, out);
  if (std::memcmp(buf.data(), kMagicV1, sizeof(kMagicV1)) == 0) return parse_v1(buf, out);
  if (std::memcmp(buf.data(), kMagicV2, sizeof(kMagicV2) - 1) == 0)
    return fail(LoadStatus::kUnsupportedVersion, 0,
                std::string("GDTCKPT version '") + static_cast<char>(buf[7]) +
                    "' (this build reads 1 and 2)");
  return fail(LoadStatus::kBadMagic, 0, "not a GenDT checkpoint");
}

LoadResult apply_params(const std::vector<NamedParam>& params, const Checkpoint& ckpt,
                        LoadMode mode) {
  // Stage 1: index the live parameters (rejecting ambiguous duplicates).
  std::unordered_map<std::string, Tensor> live;
  live.reserve(params.size());
  for (const auto& p : params) {
    if (!live.emplace(p.name, p.tensor).second)
      return fail(LoadStatus::kDuplicateName, 0,
                  "model exposes parameter '" + p.name + "' twice");
  }

  // Stage 2: validate every record against the live set. Nothing is written
  // until the whole file has been accepted.
  LoadResult res;
  std::vector<std::pair<Tensor, const Mat*>> staged;
  staged.reserve(ckpt.params.size());
  std::unordered_set<std::string> covered;
  for (const auto& rec : ckpt.params) {
    auto it = live.find(rec.name);
    if (it == live.end()) {
      if (mode == LoadMode::kStrict)
        return fail(LoadStatus::kUnknownParam, 0,
                    "checkpoint names '" + rec.name + "' which the model does not have");
      res.skipped.push_back(rec.name);
      continue;
    }
    if (!it->second.value().same_shape(rec.value))
      return fail(LoadStatus::kShapeMismatch, 0,
                  "'" + rec.name + "': file " + shape_str(rec.value) + " vs model " +
                      shape_str(it->second.value()));
    covered.insert(rec.name);
    staged.emplace_back(it->second, &rec.value);
  }
  for (const auto& p : params) {
    if (covered.count(p.name)) continue;
    if (mode == LoadMode::kStrict)
      return fail(LoadStatus::kMissingParam, 0,
                  "checkpoint is missing parameter '" + p.name + "'");
    res.missing.push_back(p.name);
  }

  // Stage 3: commit. Only reachable with every record validated.
  for (auto& [tensor, value] : staged) tensor.mutable_value() = *value;
  return res;
}

bool save_params(const std::vector<NamedParam>& params, const std::string& path) {
  Checkpoint ck;
  ck.params.reserve(params.size());
  for (const auto& p : params) ck.params.push_back({p.name, p.tensor.value()});
  return save_checkpoint(ck, path);
}

LoadResult load_params(const std::vector<NamedParam>& params, const std::string& path,
                       LoadMode mode) {
  Checkpoint ck;
  LoadResult r = read_checkpoint(path, ck);
  if (!r.ok()) return r;
  LoadResult applied = apply_params(params, ck, mode);
  applied.version = r.version;
  return applied;
}

}  // namespace gendt::nn
