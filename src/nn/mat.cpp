#include "gendt/nn/mat.h"

#include <algorithm>
#include <limits>

namespace gendt::nn {

Mat Mat::randn(int rows, int cols, std::mt19937_64& rng, double stddev) {
  Mat m(rows, cols);
  std::normal_distribution<double> dist(0.0, stddev);
  for (auto& v : m.data_) v = dist(rng);
  return m;
}

Mat Mat::uniform(int rows, int cols, std::mt19937_64& rng, double lo, double hi) {
  Mat m(rows, cols);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& v : m.data_) v = dist(rng);
  return m;
}

Mat Mat::row(std::span<const double> values) {
  Mat m(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Mat::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Mat::add_scaled(const Mat& other, double alpha) {
  assert(same_shape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Mat::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Mat::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

double Mat::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::min(m, v);
  return m;
}

double Mat::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::max(m, v);
  return m;
}

Mat Mat::transpose() const {
  Mat t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Mat matmul(const Mat& a, const Mat& b) {
  assert(a.cols() == b.rows());
  Mat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Mat matmul_nt(const Mat& a, const Mat& b) {
  assert(a.cols() == b.cols());
  Mat c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  }
  return c;
}

Mat matmul_tn(const Mat& a, const Mat& b) {
  assert(a.rows() == b.rows());
  Mat c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aki * b(k, j);
    }
  }
  return c;
}

Mat operator+(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c = a;
  c.add_scaled(b, 1.0);
  return c;
}

Mat operator-(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c = a;
  c.add_scaled(b, -1.0);
  return c;
}

Mat hadamard(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c(a.rows(), a.cols());
  for (size_t i = 0; i < c.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

Mat operator*(const Mat& a, double s) {
  Mat c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] *= s;
  return c;
}

}  // namespace gendt::nn
