#include "gendt/nn/mat.h"

#include <algorithm>
#include <limits>

#include "gendt/nn/checks.h"
#include "gendt/nn/simd.h"
#include "gendt/runtime/thread_pool.h"
#include "kernels_internal.h"

namespace gendt::nn {

Mat Mat::randn(int rows, int cols, std::mt19937_64& rng, double stddev) {
  Mat m(rows, cols);
  std::normal_distribution<double> dist(0.0, stddev);
  for (auto& v : m.data_) v = dist(rng);
  return m;
}

Mat Mat::uniform(int rows, int cols, std::mt19937_64& rng, double lo, double hi) {
  Mat m(rows, cols);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& v : m.data_) v = dist(rng);
  return m;
}

Mat Mat::row(std::span<const double> values) {
  Mat m(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Mat::fill(double v) {
  assert(!is_view());
  std::fill(data_.begin(), data_.end(), v);
}

void Mat::add_scaled(const Mat& other, double alpha) {
  assert(!is_view());
  assert(same_shape(other));
  const double* op = other.cdata();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * op[i];
}

double Mat::sum() const {
  double s = 0.0;
  for (double v : data()) s += v;
  return s;
}

double Mat::mean() const {
  assert(!empty());
  return sum() / static_cast<double>(size());
}

double Mat::min() const {
  assert(!empty());
  double m = std::numeric_limits<double>::infinity();
  for (double v : data()) m = std::min(m, v);
  return m;
}

double Mat::max() const {
  assert(!empty());
  double m = -std::numeric_limits<double>::infinity();
  for (double v : data()) m = std::max(m, v);
  return m;
}

Mat Mat::transpose() const {
  Mat t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

// ---- Matmul kernels (scalar route) ----------------------------------------
//
// All three products share the same structure: cache-blocked (tiled) loops
// with restrict-qualified row pointers in the inner loop, accumulating into
// a caller-owned C. Tiling never reorders the k-summation of any output
// element, and the row-parallel split assigns whole output rows to workers,
// so results are bitwise identical at every tile size and thread count.
//
// These are the REFERENCE kernels behind simd::Route::kScalar — the bitwise
// determinism anchor (see gendt/nn/simd.h). Their bodies must not change
// observable arithmetic; the AVX2 route lives in kernels_avx2.cpp.

namespace detail {

// C[r0:r1, :] += A[r0:r1, :] * B with A [M x K], B [K x N].
void mm_rows_scalar(const double* __restrict a, const double* __restrict b, double* __restrict c,
                    long r0, long r1, int K, int N) {
  for (int kk = 0; kk < K; kk += kDepthTile) {
    const int kend = std::min(K, kk + kDepthTile);
    for (int jj = 0; jj < N; jj += kColTile) {
      const int jend = std::min(N, jj + kColTile);
      for (long i = r0; i < r1; ++i) {
        const double* __restrict arow = a + i * K;
        double* __restrict crow = c + i * N;
        for (int k = kk; k < kend; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* __restrict brow = b + static_cast<long>(k) * N;
          for (int j = jj; j < jend; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

// C[r0:r1, :] += A[r0:r1, :] * B^T with A [M x K], B [N x K].
//
// The j-th output column reads B's j-th ROW, so a direct loop is a
// dot-product over strided memory with a loop-carried sum — it neither
// vectorizes nor reuses cache lines, and benched at ~2.2x slower than the
// naive NN kernel. Instead each [k x j] tile of B^T is packed once into a
// contiguous buffer, turning the inner loop into the same unit-stride axpy
// as mm_rows. Packing only relocates values; every output element still
// accumulates its products in ascending-k order, so results stay bitwise
// identical at every tile size and thread count.
void mm_nt_rows_scalar(const double* __restrict a, const double* __restrict b,
                       double* __restrict c, long r0, long r1, int K, int N) {
  thread_local std::vector<double> pack;
  pack.resize(static_cast<size_t>(kDepthTile) * kColTile);
  double* __restrict pk = pack.data();
  for (int kk = 0; kk < K; kk += kDepthTile) {
    const int kend = std::min(K, kk + kDepthTile);
    for (int jj = 0; jj < N; jj += kColTile) {
      const int jend = std::min(N, jj + kColTile);
      const int jw = jend - jj;
      for (int j = jj; j < jend; ++j) {
        const double* __restrict brow = b + static_cast<long>(j) * K;
        for (int k = kk; k < kend; ++k) pk[static_cast<size_t>(k - kk) * jw + (j - jj)] = brow[k];
      }
      for (long i = r0; i < r1; ++i) {
        const double* __restrict arow = a + i * K;
        double* __restrict crow = c + i * N;
        for (int k = kk; k < kend; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* __restrict prow = pk + static_cast<size_t>(k - kk) * jw;
          for (int j = jj; j < jend; ++j) crow[j] += aik * prow[j - jj];
        }
      }
    }
  }
}

// C[r0:r1, :] += (A^T)[r0:r1, :] * B with A [K x M], B [K x N]; C is [M x N]
// and the row range indexes columns of A.
void mm_tn_rows_scalar(const double* __restrict a, const double* __restrict b,
                       double* __restrict c, long r0, long r1, int K, int M, int N) {
  for (int jj = 0; jj < N; jj += kColTile) {
    const int jend = std::min(N, jj + kColTile);
    for (long i = r0; i < r1; ++i) {
      double* __restrict crow = c + i * N;
      for (int k = 0; k < K; ++k) {
        const double aki = a[static_cast<long>(k) * M + i];
        if (aki == 0.0) continue;
        const double* __restrict brow = b + static_cast<long>(k) * N;
        for (int j = jj; j < jend; ++j) crow[j] += aki * brow[j];
      }
    }
  }
}

}  // namespace detail

namespace {

// Parallelize only when the mul-add count is worth a fork-join (~2M flops);
// below that the pool round-trip dominates.
constexpr long kParallelMinFlops = 1L << 21;

// Split [0, rows) across the shared pool when the product is big enough.
// Whole rows per worker: no worker ever touches another's C elements.
template <typename RowKernel>
void run_rows(long rows, long flops, const RowKernel& kernel) {
  const int width = (flops >= kParallelMinFlops && rows >= 2)
                        ? runtime::Parallelism{.threads = 0}.resolved()
                        : 1;
  if (width <= 1 || runtime::ThreadPool::on_worker_thread()) {
    kernel(0, rows);
    return;
  }
  runtime::ThreadPool::shared().parallel_for(0, rows, width, kernel);
}

}  // namespace

void matmul_acc(const Mat& a, const Mat& b, Mat& c) {
  GENDT_CHECK(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols(),
              "matmul_acc shape mismatch: A " + shape_str(a) + " * B " + shape_str(b) +
                  " -> C " + shape_str(c));
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  const int K = a.cols(), N = b.cols();
  const double* ap = a.data().data();
  const double* bp = b.data().data();
  double* cp = c.data().data();
  // Resolve the route's kernel pointer once, outside the parallel region, so
  // every worker of one product runs the same route even if a test flips it.
  const simd::MmRowsFn mm = simd::kernels().mm_rows;
  run_rows(a.rows(), static_cast<long>(a.rows()) * K * N,
           [=](long r0, long r1) { mm(ap, bp, cp, r0, r1, K, N); });
}

void matmul_nt_acc(const Mat& a, const Mat& b, Mat& c) {
  GENDT_CHECK(a.cols() == b.cols() && c.rows() == a.rows() && c.cols() == b.rows(),
              "matmul_nt_acc shape mismatch: A " + shape_str(a) + " * B^T " + shape_str(b) +
                  " -> C " + shape_str(c));
  assert(a.cols() == b.cols());
  assert(c.rows() == a.rows() && c.cols() == b.rows());
  const int K = a.cols(), N = b.rows();
  const double* ap = a.data().data();
  const double* bp = b.data().data();
  double* cp = c.data().data();
  const simd::MmRowsFn mm = simd::kernels().mm_nt_rows;
  run_rows(a.rows(), static_cast<long>(a.rows()) * K * N,
           [=](long r0, long r1) { mm(ap, bp, cp, r0, r1, K, N); });
}

void matmul_tn_acc(const Mat& a, const Mat& b, Mat& c) {
  GENDT_CHECK(a.rows() == b.rows() && c.rows() == a.cols() && c.cols() == b.cols(),
              "matmul_tn_acc shape mismatch: A^T " + shape_str(a) + " * B " + shape_str(b) +
                  " -> C " + shape_str(c));
  assert(a.rows() == b.rows());
  assert(c.rows() == a.cols() && c.cols() == b.cols());
  const int K = a.rows(), M = a.cols(), N = b.cols();
  const double* ap = a.data().data();
  const double* bp = b.data().data();
  double* cp = c.data().data();
  const simd::MmTnRowsFn mm = simd::kernels().mm_tn_rows;
  run_rows(M, static_cast<long>(K) * M * N,
           [=](long r0, long r1) { mm(ap, bp, cp, r0, r1, K, M, N); });
}

Mat matmul(const Mat& a, const Mat& b) {
  Mat c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

Mat matmul_nt(const Mat& a, const Mat& b) {
  Mat c(a.rows(), b.rows());
  matmul_nt_acc(a, b, c);
  return c;
}

Mat matmul_tn(const Mat& a, const Mat& b) {
  Mat c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

Mat operator+(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c = a;
  c.add_scaled(b, 1.0);
  return c;
}

Mat operator-(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c = a;
  c.add_scaled(b, -1.0);
  return c;
}

Mat hadamard(const Mat& a, const Mat& b) {
  assert(a.same_shape(b));
  Mat c(a.rows(), a.cols());
  for (size_t i = 0; i < c.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

Mat operator*(const Mat& a, double s) {
  Mat c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] *= s;
  return c;
}

}  // namespace gendt::nn
