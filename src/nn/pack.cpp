#include "gendt/nn/pack.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "crc32.h"
#include "gendt/nn/checks.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define GENDT_PACK_HAVE_MMAP 1
#endif

namespace gendt::nn {

namespace {

constexpr char kMagic[8] = {'G', 'D', 'T', 'P', 'A', 'C', 'K', '1'};
constexpr int kV = 3;  // LoadResult::version for GDTPACK1 (GDTCKPT used 1/2)
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 5 * sizeof(std::uint64_t);
constexpr std::size_t kAlign = 64;  // data_off and every tensor offset

// Same untrusted-field bounds as the GDTCKPT2 parser (serialize.cpp).
constexpr std::uint64_t kMaxNameLen = 1u << 12;
constexpr std::uint64_t kMaxMetaValueLen = 1u << 26;
constexpr std::uint64_t kMaxDim = 1u << 27;
constexpr std::uint64_t kMaxRecords = 1u << 20;

std::uint64_t align_up(std::uint64_t v) { return (v + (kAlign - 1)) & ~static_cast<std::uint64_t>(kAlign - 1); }

void put_bytes(std::vector<std::uint8_t>& b, const void* p, std::size_t n) {
  const auto* c = static_cast<const std::uint8_t*>(p);
  b.insert(b.end(), c, c + n);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) { put_bytes(b, &v, sizeof(v)); }

LoadResult fail(LoadStatus status, int version, std::string detail) {
  LoadResult r;
  r.status = status;
  r.version = version;
  r.detail = std::move(detail);
  return r;
}

// Bounded little-endian reader over the directory region (never the data
// region — the caller caps `n` at data_off).
struct Reader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t off = 0;

  std::size_t remaining() const { return n - off; }
  bool u64(std::uint64_t& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, p + off, sizeof(v));
    off += sizeof(v);
    return true;
  }
  bool str(std::string& s, std::size_t len) {
    if (remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return true;
  }
};

}  // namespace

// ---- PackedModel ----------------------------------------------------------

PackedModel::PackedModel(PackedModel&& o) noexcept
    : base_(o.base_), len_(o.len_), is_mmap_(o.is_mmap_), fallback_(std::move(o.fallback_)),
      meta_(std::move(o.meta_)), tensors_(std::move(o.tensors_)) {
  o.base_ = nullptr;
  o.len_ = 0;
  o.is_mmap_ = false;
}

PackedModel& PackedModel::operator=(PackedModel&& o) noexcept {
  if (this == &o) return *this;
  reset();
  base_ = o.base_;
  len_ = o.len_;
  is_mmap_ = o.is_mmap_;
  fallback_ = std::move(o.fallback_);
  meta_ = std::move(o.meta_);
  tensors_ = std::move(o.tensors_);
  o.base_ = nullptr;
  o.len_ = 0;
  o.is_mmap_ = false;
  return *this;
}

PackedModel::~PackedModel() { reset(); }

void PackedModel::reset() {
#ifdef GENDT_PACK_HAVE_MMAP
  if (is_mmap_ && base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), len_);
  }
#endif
  base_ = nullptr;
  len_ = 0;
  is_mmap_ = false;
  fallback_.clear();
  meta_ = CkptMeta{};
  tensors_.clear();
}

const PackedTensor* PackedModel::find(const std::string& name) const {
  for (const auto& t : tensors_)
    if (t.name == name) return &t;
  return nullptr;
}

bool PackedModel::contains(const void* p) const {
  const auto* b = static_cast<const std::uint8_t*>(p);
  return base_ != nullptr && b >= base_ && b < base_ + len_;
}

LoadResult PackedModel::map(const std::string& path, PackVerify verify) {
  reset();

  // Acquire the bytes: one read-only mmap on unix (the zero-copy path — the
  // page cache backs every mapping of the same file with one physical copy),
  // a whole-file heap read elsewhere.
  const std::uint8_t* base = nullptr;
  std::size_t len = 0;
#ifdef GENDT_PACK_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail(LoadStatus::kIoError, 0, "cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail(LoadStatus::kIoError, 0, "cannot stat '" + path + "'");
  }
  len = static_cast<std::size_t>(st.st_size);
  void* m = len > 0 ? ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0) : MAP_FAILED;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (m == MAP_FAILED)
    return fail(LoadStatus::kIoError, 0, "cannot mmap '" + path + "'");
  base = static_cast<const std::uint8_t*>(m);
  base_ = base;
  len_ = len;
  is_mmap_ = true;
#else
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return fail(LoadStatus::kIoError, 0, "cannot read '" + path + "'");
  const std::streamoff size = is.tellg();
  if (size < 0) return fail(LoadStatus::kIoError, 0, "cannot read '" + path + "'");
  fallback_.resize(static_cast<std::size_t>(size));
  is.seekg(0);
  if (size > 0) is.read(reinterpret_cast<char*>(fallback_.data()), size);
  if (!is) {
    reset();
    return fail(LoadStatus::kIoError, 0, "cannot read '" + path + "'");
  }
  base = fallback_.data();
  len = fallback_.size();
  base_ = base;
  len_ = len;
  is_mmap_ = false;
#endif

  // Structural validation. Every length/offset field is untrusted: checked
  // against its bound and the real file size before any pointer is formed.
  const auto bail = [this](LoadResult r) {
    reset();
    return r;
  };
  if (len < sizeof(kMagic)) return bail(fail(LoadStatus::kBadMagic, 0, "file shorter than the magic"));
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    if (std::memcmp(base, kMagic, sizeof(kMagic) - 1) == 0)
      return bail(fail(LoadStatus::kUnsupportedVersion, 0,
                       std::string("GDTPACK version '") + static_cast<char>(base[7]) +
                           "' (this build reads 1)"));
    return bail(fail(LoadStatus::kBadMagic, 0, "not a GenDT packed model"));
  }
  if (len < kHeaderSize + sizeof(std::uint64_t))
    return bail(fail(LoadStatus::kTruncated, kV, "header cut short"));

  Reader hdr{base, kHeaderSize, sizeof(kMagic)};
  std::uint64_t file_size = 0, meta_count = 0, tensor_count = 0, data_off = 0, data_size = 0;
  hdr.u64(file_size);
  hdr.u64(meta_count);
  hdr.u64(tensor_count);
  hdr.u64(data_off);
  hdr.u64(data_size);
  if (file_size != len)
    return bail(fail(file_size > len ? LoadStatus::kTruncated : LoadStatus::kTrailingBytes, kV,
                     "header declares " + std::to_string(file_size) + " bytes but the file has " +
                         std::to_string(len)));
  if (meta_count > kMaxRecords || tensor_count > kMaxRecords)
    return bail(fail(LoadStatus::kMalformed, kV, "header record counts exceed limit"));
  if (data_off % kAlign != 0 || data_off < kHeaderSize)
    return bail(fail(LoadStatus::kMalformed, kV,
                     "data offset " + std::to_string(data_off) + " is not 64-byte aligned"));
  if (data_off > len || data_size > len - data_off ||
      data_off + data_size + sizeof(std::uint64_t) != len)
    return bail(fail(LoadStatus::kTruncated, kV,
                     "data region [" + std::to_string(data_off) + ", +" +
                         std::to_string(data_size) + "] does not fit the file"));

  // Directory: meta entries then the tensor table, capped at data_off so a
  // corrupt length can never walk into the data region.
  Reader r{base, static_cast<std::size_t>(data_off), kHeaderSize};
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    std::uint64_t key_len = 0, val_len = 0;
    std::string key;
    if (!r.u64(key_len))
      return bail(fail(LoadStatus::kTruncated, kV, "meta record " + std::to_string(i) + ": key length"));
    if (key_len == 0 || key_len > kMaxNameLen)
      return bail(fail(LoadStatus::kMalformed, kV,
                       "meta record " + std::to_string(i) + ": key length " + std::to_string(key_len)));
    if (!r.str(key, static_cast<std::size_t>(key_len)))
      return bail(fail(LoadStatus::kTruncated, kV, "meta record " + std::to_string(i) + ": key overruns directory"));
    if (!r.u64(val_len))
      return bail(fail(LoadStatus::kTruncated, kV, "meta record '" + key + "': value length"));
    if (val_len > kMaxMetaValueLen)
      return bail(fail(LoadStatus::kMalformed, kV,
                       "meta record '" + key + "': value length " + std::to_string(val_len)));
    if (val_len > r.remaining())
      return bail(fail(LoadStatus::kTruncated, kV, "meta record '" + key + "': value overruns directory"));
    if (meta_.has(key))
      return bail(fail(LoadStatus::kDuplicateName, kV, "meta key '" + key + "' appears twice"));
    meta_.set_bytes(key, std::vector<std::uint8_t>(r.p + r.off, r.p + r.off + val_len));
    r.off += static_cast<std::size_t>(val_len);
  }

  std::unordered_set<std::string> seen;
  tensors_.reserve(static_cast<std::size_t>(tensor_count));
  for (std::uint64_t i = 0; i < tensor_count; ++i) {
    std::uint64_t name_len = 0, rows = 0, cols = 0, off = 0;
    PackedTensor t;
    if (!r.u64(name_len))
      return bail(fail(LoadStatus::kTruncated, kV, "tensor record " + std::to_string(i) + ": name length"));
    if (name_len == 0 || name_len > kMaxNameLen)
      return bail(fail(LoadStatus::kMalformed, kV,
                       "tensor record " + std::to_string(i) + ": name length " + std::to_string(name_len)));
    if (!r.str(t.name, static_cast<std::size_t>(name_len)))
      return bail(fail(LoadStatus::kTruncated, kV, "tensor record " + std::to_string(i) + ": name overruns directory"));
    if (!r.u64(rows) || !r.u64(cols) || !r.u64(off))
      return bail(fail(LoadStatus::kTruncated, kV, "tensor record '" + t.name + "': shape/offset"));
    if (rows > kMaxDim || cols > kMaxDim)
      return bail(fail(LoadStatus::kMalformed, kV,
                       "tensor record '" + t.name + "': dims " + std::to_string(rows) + "x" +
                           std::to_string(cols) + " exceed limit"));
    if (off % kAlign != 0)
      return bail(fail(LoadStatus::kMalformed, kV,
                       "tensor record '" + t.name + "': offset " + std::to_string(off) +
                           " is not 64-byte aligned"));
    const std::uint64_t elems = rows * cols;  // <= 2^54 after the bound check
    if (off > data_size || elems > (data_size - off) / sizeof(double))
      return bail(fail(LoadStatus::kTruncated, kV,
                       "tensor record '" + t.name + "': payload overruns the data region"));
    if (!seen.insert(t.name).second)
      return bail(fail(LoadStatus::kDuplicateName, kV, "tensor '" + t.name + "' appears twice"));
    t.rows = static_cast<int>(rows);
    t.cols = static_cast<int>(cols);
    t.data = reinterpret_cast<const double*>(base + data_off + off);
    tensors_.push_back(std::move(t));
  }

  // Directory CRC sits right after the last record; everything from there to
  // data_off must be zero padding.
  const std::size_t dir_end = r.off;
  std::uint64_t dir_crc = 0;
  if (!r.u64(dir_crc))
    return bail(fail(LoadStatus::kTruncated, kV, "directory CRC missing"));
  if (dir_crc != detail::crc32_ieee(base, dir_end))
    return bail(fail(LoadStatus::kCrcMismatch, kV,
                     "directory CRC does not match (file corrupted or bit-flipped)"));
  for (std::size_t i = r.off; i < data_off; ++i) {
    if (base[i] != 0)
      return bail(fail(LoadStatus::kTrailingBytes, kV,
                       "nonzero byte in the directory padding at offset " + std::to_string(i)));
  }

  if (verify == PackVerify::kFull) {
    std::uint64_t data_crc = 0;
    std::memcpy(&data_crc, base + len - sizeof(data_crc), sizeof(data_crc));
    if (data_crc != detail::crc32_ieee(base + data_off, static_cast<std::size_t>(data_size)))
      return bail(fail(LoadStatus::kCrcMismatch, kV,
                       "data CRC does not match (tensor payload corrupted)"));
  }

  LoadResult okr;
  okr.version = kV;
  return okr;
}

// ---- Writer ---------------------------------------------------------------

bool write_packed(const Checkpoint& ckpt, const std::string& path) {
  // Layout pass: directory size, then 64-aligned running offsets for every
  // payload.
  std::size_t dir_size = kHeaderSize;
  for (const auto& e : ckpt.meta.entries()) dir_size += 16 + e.first.size() + e.second.size();
  for (const auto& t : ckpt.params) dir_size += 32 + t.name.size();
  dir_size += sizeof(std::uint64_t);  // dir_crc

  const std::uint64_t data_off = align_up(dir_size);
  std::vector<std::uint64_t> offsets;
  offsets.reserve(ckpt.params.size());
  std::uint64_t cursor = 0;
  for (const auto& t : ckpt.params) {
    offsets.push_back(cursor);
    cursor = align_up(cursor + t.value.size() * sizeof(double));
  }
  const std::uint64_t data_size = cursor;
  const std::uint64_t file_size = data_off + data_size + sizeof(std::uint64_t);

  std::vector<std::uint8_t> buf;
  buf.reserve(static_cast<std::size_t>(file_size));
  put_bytes(buf, kMagic, sizeof(kMagic));
  put_u64(buf, file_size);
  put_u64(buf, ckpt.meta.entries().size());
  put_u64(buf, ckpt.params.size());
  put_u64(buf, data_off);
  put_u64(buf, data_size);
  for (const auto& e : ckpt.meta.entries()) {
    put_u64(buf, e.first.size());
    put_bytes(buf, e.first.data(), e.first.size());
    put_u64(buf, e.second.size());
    put_bytes(buf, e.second.data(), e.second.size());
  }
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    const auto& t = ckpt.params[i];
    put_u64(buf, t.name.size());
    put_bytes(buf, t.name.data(), t.name.size());
    put_u64(buf, static_cast<std::uint64_t>(t.value.rows()));
    put_u64(buf, static_cast<std::uint64_t>(t.value.cols()));
    put_u64(buf, offsets[i]);
  }
  put_u64(buf, detail::crc32_ieee(buf.data(), buf.size()));
  buf.resize(static_cast<std::size_t>(data_off), 0);  // zero padding
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    const auto& t = ckpt.params[i];
    buf.resize(static_cast<std::size_t>(data_off + offsets[i]), 0);  // inter-tensor padding
    put_bytes(buf, t.value.data().data(), t.value.size() * sizeof(double));
  }
  buf.resize(static_cast<std::size_t>(data_off + data_size), 0);
  put_u64(buf, detail::crc32_ieee(buf.data() + data_off, static_cast<std::size_t>(data_size)));

  // Atomic publish, same contract as save_checkpoint: readers see the old
  // file or the new one, never a torn write.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  ok = (std::fflush(f) == 0) && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---- Apply ----------------------------------------------------------------

LoadResult apply_packed(const std::vector<NamedParam>& params, const PackedModel& pack,
                        LoadMode mode) {
  if (!pack.mapped()) return fail(LoadStatus::kIoError, kV, "packed model is not mapped");

  // Same three-stage shape as apply_params: index, validate everything,
  // then commit — except the commit installs read-only views into the arena
  // instead of copying.
  std::unordered_map<std::string, Tensor> live;
  live.reserve(params.size());
  for (const auto& p : params) {
    if (!live.emplace(p.name, p.tensor).second)
      return fail(LoadStatus::kDuplicateName, kV, "model exposes parameter '" + p.name + "' twice");
  }

  LoadResult res;
  res.version = kV;
  std::vector<std::pair<Tensor, const PackedTensor*>> staged;
  staged.reserve(pack.tensors().size());
  std::unordered_set<std::string> covered;
  for (const auto& rec : pack.tensors()) {
    auto it = live.find(rec.name);
    if (it == live.end()) {
      if (mode == LoadMode::kStrict)
        return fail(LoadStatus::kUnknownParam, kV,
                    "packed model names '" + rec.name + "' which the model does not have");
      res.skipped.push_back(rec.name);
      continue;
    }
    const Mat& cur = it->second.value();
    if (cur.rows() != rec.rows || cur.cols() != rec.cols)
      return fail(LoadStatus::kShapeMismatch, kV,
                  "'" + rec.name + "': file [" + std::to_string(rec.rows) + " x " +
                      std::to_string(rec.cols) + "] vs model " + shape_str(cur));
    covered.insert(rec.name);
    staged.emplace_back(it->second, &rec);
  }
  for (const auto& p : params) {
    if (covered.count(p.name)) continue;
    if (mode == LoadMode::kStrict)
      return fail(LoadStatus::kMissingParam, kV, "packed model is missing parameter '" + p.name + "'");
    res.missing.push_back(p.name);
  }

  for (auto& [tensor, rec] : staged)
    tensor.mutable_value() = Mat::view(rec->data, rec->rows, rec->cols);
  return res;
}

bool sniff_packed(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char head[sizeof(kMagic)] = {};
  is.read(head, sizeof(head));
  return is.gcount() == sizeof(head) && std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace gendt::nn
