// Zero-copy weight arena ("GDTPACK1"): a packed, mmap-friendly model file
// for instant cold-start loading.
//
// A GDTCKPT2 checkpoint is parsed record-by-record into freshly allocated
// Mats — O(model bytes) of read + copy + CRC before the first inference.
// `gendt pack` converts it once, offline, into a flat arena image:
//
//   [0]        magic "GDTPACK1"
//   [8]        u64 file_size      (must equal the real size — truncation check)
//   [16]       u64 meta_count
//   [24]       u64 tensor_count
//   [32]       u64 data_off       (64-byte aligned start of the data region)
//   [40]       u64 data_size
//   [48]       meta entries       (key_len, key, val_len, val) x meta_count
//   ...        tensor directory   (name_len, name, u64 rows, u64 cols,
//                                  u64 offset-into-data) x tensor_count
//   ...        u64 dir_crc        CRC-32 of every byte before it
//   ...        zero padding up to data_off
//   [data_off] tensor payloads    raw doubles, each offset 64-byte aligned
//   [size-8]   u64 data_crc       CRC-32 of the data region
//
// Loading is one mmap plus a directory walk: tensors are *pointed at*, never
// copied — apply_packed() installs read-only Mat views into the live
// parameters, so cold-start cost is O(directory) + page faults on first
// touch, and the page cache shares one copy of the weights across every
// process serving the same file.
//
// Integrity is split in two so the fast path stays fast: the directory CRC
// (names, shapes, offsets — everything that could misdirect a pointer) is
// always verified; the data CRC covers the tensor payloads and is verified
// under PackVerify::kFull (the default, and what `gendt pack` uses to check
// its own output) but skipped under kStructural, the instant-load mode.
//
// Only model parameters and metadata are packed; trainer state (Adam slots,
// resume cursor) stays in the GDTCKPT2 file — a pack is an inference
// artifact, not a training checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gendt/nn/serialize.h"

namespace gendt::nn {

/// How much of a GDTPACK1 file map() verifies before exposing it.
enum class PackVerify {
  kFull,        ///< directory CRC + data CRC (reads every byte once)
  kStructural,  ///< directory CRC only: O(page-fault) instant load
};

/// One tensor in the arena. `data` points into the mapping and stays valid
/// for the PackedModel's lifetime.
struct PackedTensor {
  std::string name;
  int rows = 0;
  int cols = 0;
  const double* data = nullptr;
};

/// A mapped GDTPACK1 file. Move-only: the mapping is unmapped (or the
/// fallback buffer freed) on destruction, so anything holding Mat views into
/// it — a GenDTGenerator that loaded packed weights — must keep the
/// PackedModel alive.
class PackedModel {
 public:
  PackedModel() = default;
  PackedModel(PackedModel&& o) noexcept;
  PackedModel& operator=(PackedModel&& o) noexcept;
  PackedModel(const PackedModel&) = delete;
  PackedModel& operator=(const PackedModel&) = delete;
  ~PackedModel();

  /// Map and validate `path`. On failure the model stays unmapped and the
  /// LoadResult says why (same status taxonomy as checkpoint loads; version
  /// reports 3 for GDTPACK1 once the magic parsed).
  LoadResult map(const std::string& path, PackVerify verify = PackVerify::kFull);

  bool mapped() const { return base_ != nullptr; }
  /// False when the platform has no mmap and map() fell back to a heap read
  /// (correct, just not zero-copy / shared).
  bool is_mmap() const { return is_mmap_; }
  std::size_t size_bytes() const { return len_; }

  const CkptMeta& meta() const { return meta_; }
  const std::vector<PackedTensor>& tensors() const { return tensors_; }
  /// Directory lookup by name; nullptr when absent.
  const PackedTensor* find(const std::string& name) const;
  /// True when `p` points inside the mapped arena — lets tests assert that
  /// applied parameters really alias the file instead of holding copies.
  bool contains(const void* p) const;

 private:
  void reset();

  const std::uint8_t* base_ = nullptr;
  std::size_t len_ = 0;
  bool is_mmap_ = false;
  std::vector<std::uint8_t> fallback_;  // owns the bytes when !is_mmap_
  CkptMeta meta_;
  std::vector<PackedTensor> tensors_;
};

/// Write `ckpt.meta` + `ckpt.params` as a GDTPACK1 arena at `path`
/// (atomically: temp file + rename). Trainer state is intentionally dropped.
/// Returns false on I/O failure; `path` is untouched in that case.
bool write_packed(const Checkpoint& ckpt, const std::string& path);

/// Transactionally point the matching live `params` at the arena's tensors
/// (read-only Mat views — zero copies). Validation mirrors apply_params:
/// nothing is modified unless every record passes. The PackedModel must
/// outlive the parameters.
LoadResult apply_packed(const std::vector<NamedParam>& params, const PackedModel& pack,
                        LoadMode mode = LoadMode::kStrict);

/// Cheap magic sniff: true when the file starts with "GDTPACK1".
bool sniff_packed(const std::string& path);

}  // namespace gendt::nn
