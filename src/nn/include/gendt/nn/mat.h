// Dense row-major double matrix: the storage type underneath the autograd
// Tensor. Kept deliberately small — only the operations the GenDT networks
// need — and exception-light: dimension mismatches are programming errors
// and abort via assert in debug builds.
//
// Storage is 64-byte aligned (AlignedAllocator) so both kernel routes see
// cache-line/vector-friendly buffers. A Mat can also be a non-owning
// read-only VIEW over external memory (Mat::view) — that is how GDTPACK1
// weight arenas are applied with zero per-tensor copies: the view points
// straight into the mmap. Views are borrowed and immutable: every mutating
// member asserts !is_view(); COPYING a view materializes an owned deep copy
// (so accidental copies can never dangle), while MOVES transfer the view.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <random>
#include <span>
#include <vector>

namespace gendt::nn {

/// Minimal over-aligned allocator (C++17 aligned operator new).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0);
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

/// Alignment of every owned Mat buffer and of each tensor in a GDTPACK1
/// arena (a cache line; enough for AVX-512 loads too).
inline constexpr std::size_t kMatAlignment = 64;

class Mat {
 public:
  using Storage = std::vector<double, AlignedAllocator<double, kMatAlignment>>;

  Mat() = default;
  Mat(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }

  // Copies materialize: a copy of a view owns its elements. Moves transfer
  // the view (apply_packed installs views into Tensors by move-assignment).
  Mat(const Mat& o) : rows_(o.rows_), cols_(o.cols_) {
    if (o.ext_ != nullptr) {
      data_.assign(o.ext_, o.ext_ + o.size());
    } else {
      data_ = o.data_;
    }
  }
  Mat& operator=(const Mat& o) {
    if (this == &o) return *this;
    rows_ = o.rows_;
    cols_ = o.cols_;
    if (o.ext_ != nullptr) {
      data_.assign(o.ext_, o.ext_ + o.size());
    } else {
      data_ = o.data_;
    }
    ext_ = nullptr;
    return *this;
  }
  Mat(Mat&&) noexcept = default;
  Mat& operator=(Mat&&) noexcept = default;
  ~Mat() = default;

  static Mat zeros(int rows, int cols) { return Mat(rows, cols, 0.0); }
  static Mat ones(int rows, int cols) { return Mat(rows, cols, 1.0); }
  static Mat full(int rows, int cols, double v) { return Mat(rows, cols, v); }

  /// Gaussian init, mean 0 / given stddev.
  static Mat randn(int rows, int cols, std::mt19937_64& rng, double stddev = 1.0);
  /// Uniform init in [lo, hi).
  static Mat uniform(int rows, int cols, std::mt19937_64& rng, double lo, double hi);
  /// Row vector from values.
  static Mat row(std::span<const double> values);

  /// Non-owning read-only view over `rows*cols` doubles at `data` (which
  /// must outlive the view — for packed models the PackedModel mapping
  /// guarantees it). Mutating members assert on a view.
  static Mat view(const double* data, int rows, int cols) {
    assert(rows >= 0 && cols >= 0 && (data != nullptr || rows * cols == 0));
    Mat m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.ext_ = data;
    return m;
  }
  bool is_view() const { return ext_ != nullptr; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const {
    return ext_ != nullptr ? static_cast<size_t>(rows_) * static_cast<size_t>(cols_)
                           : data_.size();
  }
  bool empty() const { return size() == 0; }
  bool same_shape(const Mat& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& operator()(int r, int c) {
    assert(!is_view());
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) + static_cast<size_t>(c)];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return cdata()[static_cast<size_t>(r) * static_cast<size_t>(cols_) + static_cast<size_t>(c)];
  }
  double& operator[](size_t i) {
    assert(!is_view());
    return data_[i];
  }
  double operator[](size_t i) const { return cdata()[i]; }

  std::span<double> data() {
    assert(!is_view());
    return data_;
  }
  std::span<const double> data() const { return {cdata(), size()}; }

  void fill(double v);
  void set_zero() { fill(0.0); }

  /// Reshape in place; contents become unspecified. Reuses the existing
  /// storage when the new size fits its capacity (no heap traffic) — this is
  /// what lets inference Workspace slots absorb varying window lengths
  /// without reallocating.
  void resize(int rows, int cols) {
    assert(!is_view());
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
  }

  /// In-place axpy: *this += alpha * other (same shape).
  void add_scaled(const Mat& other, double alpha);

  double sum() const;
  /// Reductions below assert a non-empty matrix (misuse contract above):
  /// there is no meaningful mean/min/max of zero elements.
  double mean() const;
  double min() const;
  double max() const;

  Mat transpose() const;

 private:
  const double* cdata() const { return ext_ != nullptr ? ext_ : data_.data(); }

  int rows_ = 0;
  int cols_ = 0;
  Storage data_;
  const double* ext_ = nullptr;  // non-null: non-owning view, data_ unused
};

// Matrix products. Every variant runs one cache-blocked kernel family
// (dispatched per the active gendt::nn::simd route) with restrict inner
// loops; large products split whole output rows across the shared
// runtime::ThreadPool. Within a route, results are bitwise identical at
// every thread count (the per-element k-summation order never changes); the
// scalar route is additionally the cross-release bitwise anchor.

/// C = A * B.
Mat matmul(const Mat& a, const Mat& b);
/// C = A * B^T (avoids materializing the transpose).
Mat matmul_nt(const Mat& a, const Mat& b);
/// C = A^T * B.
Mat matmul_tn(const Mat& a, const Mat& b);

/// Accumulating forms, C += product — used by autograd backward passes to
/// add straight into gradient buffers without a temporary.
void matmul_acc(const Mat& a, const Mat& b, Mat& c);
void matmul_nt_acc(const Mat& a, const Mat& b, Mat& c);
void matmul_tn_acc(const Mat& a, const Mat& b, Mat& c);

Mat operator+(const Mat& a, const Mat& b);
Mat operator-(const Mat& a, const Mat& b);
/// Elementwise (Hadamard) product.
Mat hadamard(const Mat& a, const Mat& b);
Mat operator*(const Mat& a, double s);
inline Mat operator*(double s, const Mat& a) { return a * s; }

}  // namespace gendt::nn
