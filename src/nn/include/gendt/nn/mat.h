// Dense row-major double matrix: the storage type underneath the autograd
// Tensor. Kept deliberately small — only the operations the GenDT networks
// need — and exception-light: dimension mismatches are programming errors
// and abort via assert in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <random>
#include <span>
#include <vector>

namespace gendt::nn {

class Mat {
 public:
  Mat() = default;
  Mat(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
    assert(rows >= 0 && cols >= 0);
  }

  static Mat zeros(int rows, int cols) { return Mat(rows, cols, 0.0); }
  static Mat ones(int rows, int cols) { return Mat(rows, cols, 1.0); }
  static Mat full(int rows, int cols, double v) { return Mat(rows, cols, v); }

  /// Gaussian init, mean 0 / given stddev.
  static Mat randn(int rows, int cols, std::mt19937_64& rng, double stddev = 1.0);
  /// Uniform init in [lo, hi).
  static Mat uniform(int rows, int cols, std::mt19937_64& rng, double lo, double hi);
  /// Row vector from values.
  static Mat row(std::span<const double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Mat& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  void fill(double v);
  void set_zero() { fill(0.0); }

  /// Reshape in place; contents become unspecified. Reuses the existing
  /// storage when the new size fits its capacity (no heap traffic) — this is
  /// what lets inference Workspace slots absorb varying window lengths
  /// without reallocating.
  void resize(int rows, int cols) {
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  /// In-place axpy: *this += alpha * other (same shape).
  void add_scaled(const Mat& other, double alpha);

  double sum() const;
  /// Reductions below assert a non-empty matrix (misuse contract above):
  /// there is no meaningful mean/min/max of zero elements.
  double mean() const;
  double min() const;
  double max() const;

  Mat transpose() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// Matrix products. All variants run one cache-blocked kernel family with
// restrict inner loops; large products split whole output rows across the
// shared runtime::ThreadPool. Results are bitwise identical at every thread
// count (the per-element k-summation order never changes).

/// C = A * B.
Mat matmul(const Mat& a, const Mat& b);
/// C = A * B^T (avoids materializing the transpose).
Mat matmul_nt(const Mat& a, const Mat& b);
/// C = A^T * B.
Mat matmul_tn(const Mat& a, const Mat& b);

/// Accumulating forms, C += product — used by autograd backward passes to
/// add straight into gradient buffers without a temporary.
void matmul_acc(const Mat& a, const Mat& b, Mat& c);
void matmul_nt_acc(const Mat& a, const Mat& b, Mat& c);
void matmul_tn_acc(const Mat& a, const Mat& b, Mat& c);

Mat operator+(const Mat& a, const Mat& b);
Mat operator-(const Mat& a, const Mat& b);
/// Elementwise (Hadamard) product.
Mat hadamard(const Mat& a, const Mat& b);
Mat operator*(const Mat& a, double s);
inline Mat operator*(double s, const Mat& a) { return a * s; }

}  // namespace gendt::nn
