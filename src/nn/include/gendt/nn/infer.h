// Tape-free inference kernels: the raw-Mat fast path underneath generation
// serving.
//
// The autograd Tensor graph pays one shared_ptr<Node> plus a fresh heap Mat
// per op — per timestep, per cell — even though inference never calls
// backward. The kernels here compute the SAME forward math directly on
// caller-owned Mat buffers:
//
//   Workspace      an arena of keyed, reusable Mat slots. checkout(key, r, c)
//                  hands out slot `key`, reallocating only on a shape change
//                  (never after warmup); release(key) returns it. A double
//                  checkout without release is a lifecycle bug and aborts
//                  under GENDT_CHECK. allocations() counts buffer
//                  (re)allocations so tests can assert steady-state reuse.
//   lstm_step_fwd  one LSTM step in place (h, c updated), including the
//                  SRNN stochastic perturbation.
//   affine2_fwd    y = x1*W1 + x2*W2 + b into a caller buffer.
//   linear_fwd     y = x*W + b into a caller buffer.
//   mlp_fwd        the ResGen MLP trunk with optional MC dropout.
//
// Parity contract (enforced by gen_parity_test): every kernel replays the
// exact FP operation sequence and RNG draw order of its Tensor counterpart,
// so fast-path outputs are BITWISE identical to the graph path. Three rules
// keep that true — do not "optimize" them away:
//   1. Matrix products go through the shared blocked matmul_acc kernels (the
//      same code the Tensor ops call), never a reordered local loop.
//   2. Elementwise chains keep the graph's op boundaries: e.g. Linear is
//      zero-init + matmul_acc + separate bias add (matmul(x,W) + b), NOT a
//      bias-seeded accumulate — the rounding differs. affine2 IS bias-seeded
//      because the affine2 graph op is.
//   3. infer.cpp compiles with -ffp-contract=off: GCC must not contract
//      a*b + c into an FMA here, because the graph computes the mul and the
//      add as separate ops (separately rounded).
#pragma once

#include <memory>
#include <random>

#include "gendt/nn/layers.h"
#include "gendt/nn/mat.h"

namespace gendt::nn::infer {

/// Arena of reusable Mat buffers addressed by small integer keys. Not
/// thread-safe: concurrent users each own a Workspace (the inference session
/// keeps one per cell slot so the per-cell rollout can fan out).
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Borrow slot `key` shaped [rows x cols]. Contents are stale — callers
  /// overwrite. The slot's storage is reused whenever the request fits its
  /// high-water capacity (shape changes reshape in place); only growth
  /// beyond it allocates (counted). Checking out a slot that is already out
  /// aborts under GENDT_CHECK — the double-use guard the reuse tests lean on.
  Mat& checkout(int key, int rows, int cols);

  /// Return slot `key`. The buffer and its contents survive for the next
  /// checkout; only the borrowed flag is cleared.
  void release(int key);

  /// True while slot `key` is borrowed.
  bool checked_out(int key) const;

  /// Number of Mat (re)allocations ever performed. Steady state after
  /// warmup means this stops moving — see InferenceSession tests.
  size_t allocations() const { return allocations_; }

  /// High-water memory footprint in bytes: the sum of every slot's capacity
  /// (element high-water mark) times sizeof(double). Monotone; constant after
  /// warmup. This is what makes the batched session's linear-in-B memory
  /// scaling assertable in tests and visible in serve startup logs.
  size_t peak_bytes() const;

 private:
  // Each buffer lives behind a unique_ptr so the Mat& a checkout hands out
  // stays valid when a LATER checkout of a higher key grows slots_ (the
  // vector relocates Slot objects, not the Mats they point to).
  struct Slot {
    std::unique_ptr<Mat> buf;
    size_t capacity = 0;  // high-water element count; growth beyond it counts
    bool out = false;
  };
  std::vector<Slot> slots_;
  size_t allocations_ = 0;
};

/// RAII checkout: releases the slot when it leaves scope.
class Lease {
 public:
  Lease(Workspace& ws, int key, int rows, int cols)
      : ws_(&ws), key_(key), mat_(&ws.checkout(key, rows, cols)) {}
  Lease(Lease&& o) noexcept : ws_(o.ws_), key_(o.key_), mat_(o.mat_) { o.ws_ = nullptr; }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  Lease& operator=(Lease&&) = delete;
  ~Lease() {
    if (ws_ != nullptr) ws_->release(key_);
  }
  Mat& mat() { return *mat_; }
  const Mat& mat() const { return *mat_; }

 private:
  Workspace* ws_;
  int key_;
  Mat* mat_;
};

/// y = x1*W1 + x2*W2 + b (broadcast bias), overwriting y. Bitwise identical
/// to the autograd affine2 forward: y seeded with the bias row, then both
/// products accumulated through the shared blocked kernels.
void affine2_fwd(const Mat& x1, const Mat& w1, const Mat& x2, const Mat& w2, const Mat& b,
                 Mat& y);

/// y = x*W + b, overwriting y. Bitwise identical to Linear::forward:
/// zero-init, matmul_acc, then a separate elementwise bias add.
void linear_fwd(const Mat& x, const Linear& layer, Mat& y);

/// In-place sum-preserving SRNN perturbation of state row `s`, replaying
/// stochastic_perturb's draw order and FP sequence. `noise` is same-shape
/// scratch. No-op (and no draws) when intensity <= 0 or mean|s| <= 0.
void stochastic_perturb_fwd(Mat& s, double intensity, std::mt19937_64& rng, Mat& noise);

/// One LSTM step of `cell` on input row x: h and c are updated in place
/// (stochastic perturbation included when stoch.enabled). `gates` [1 x 4H]
/// and `scratch` [1 x H] are workspace buffers.
void lstm_step_fwd(const LstmCell& cell, const Mat& x, const StochasticConfig& stoch,
                   std::mt19937_64& rng, Mat& h, Mat& c, Mat& gates, Mat& scratch);

/// In-place leaky ReLU.
void leaky_relu_inplace(Mat& h, double negative_slope);

/// In-place inverted dropout, replaying the Tensor dropout's bernoulli draw
/// order and per-element mask multiply.
void dropout_inplace(Mat& h, double p, std::mt19937_64& rng);

/// Full MLP forward (Linear -> LeakyReLU trunk, optional dropout before the
/// last layer, matching Mlp::forward). Hidden activations live in `ws` slots
/// [key_base, key_base + n_layers]; the head lands in `out`. `training`
/// keeps dropout sampling on (MC dropout).
void mlp_fwd(const Mlp& mlp, const Mat& x, std::mt19937_64& rng, bool training, Workspace& ws,
             int key_base, Mat& out);

// ---------------------------------------------------------------------------
// Lane-batched kernels: the same fused forward math over a [B x d] lane-major
// activation layout, so B independent rollouts share one pass through the
// blocked/AVX2 matmul kernels (one weight-tile load amortized across lanes)
// instead of B matrix-vector products.
//
// Batched parity contract (enforced by gen_batch_parity_test): row r of every
// batched kernel computes EXACTLY the bits the single-row kernel computes for
// that lane, because (a) the blocked matmul kernels accumulate each output
// element along ascending k with one separately-rounded FMA per term — the
// identical per-element chain the rows==1 fused path uses — and rows never
// interact, and (b) every RNG draw comes from the lane's own stream in the
// lane's own order (`rngs[r]`).
//
// `rngs[r] == nullptr` marks lane r RETIRED for this step: the row still
// rides in the shared matmul (rows cannot be carved out of a GEMM) but
// consumes no RNG draws and its h/c state is not advanced — its stale values
// are dead weight until the caller compacts the batch at the next window
// boundary.
// ---------------------------------------------------------------------------

/// Row-span form of stochastic_perturb_fwd: perturb the n-element state row
/// `s` using draws from `rng`, with `noise` as same-length scratch. Replays
/// the exact FP sequence of the Mat form (which delegates here).
void stochastic_perturb_row(double* s, int n, double intensity, std::mt19937_64& rng,
                            double* noise);

/// Lane-batched LSTM step: x is [B x in], h/c/scratch are [B x H], gates is
/// [B x 4H]. Gate pre-activations for all live lanes come from ONE batched
/// affine2 (bias-seed + two accumulating matmuls); the per-lane SRNN
/// perturbation and gate nonlinearities run row-wise with lane RNG streams.
/// `rngs` has B entries; a null entry skips that lane (see above).
void lstm_step_fwd_batch(const LstmCell& cell, const Mat& x, const StochasticConfig& stoch,
                         std::mt19937_64* const* rngs, Mat& h, Mat& c, Mat& gates, Mat& scratch);

/// Lane-batched MLP forward over x [B x d]: trunk Linears and LeakyReLU run
/// on the full batch (shared GEMMs); the MC-dropout mask before the head is
/// drawn row-wise from each lane's own stream. Null `rngs` entries skip that
/// lane's dropout draws (the row still rides in the GEMMs).
void mlp_fwd_batch(const Mlp& mlp, const Mat& x, std::mt19937_64* const* rngs, bool training,
                   Workspace& ws, int key_base, Mat& out);

}  // namespace gendt::nn::infer
