// First-order optimizers over Module parameters.
#pragma once

#include <unordered_map>
#include <vector>

#include "gendt/nn/layers.h"

namespace gendt::nn {

/// Plain SGD with optional gradient clipping (by global L2 norm).
class Sgd {
 public:
  struct Config {
    double lr = 1e-2;
    double clip_norm = 0.0;  // 0 disables clipping
  };
  explicit Sgd(Config cfg) : cfg_(cfg) {}

  void step(const std::vector<NamedParam>& params);

 private:
  Config cfg_;
};

/// Adam (Kingma & Ba). State is keyed on parameter node identity, so a single
/// optimizer instance can drive several modules.
class Adam {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double clip_norm = 5.0;  // 0 disables clipping
  };
  Adam();  // default config
  explicit Adam(Config cfg) : cfg_(cfg) {}

  void step(const std::vector<NamedParam>& params);
  void reset() { state_.clear(); }
  const Config& config() const { return cfg_; }
  void set_lr(double lr) { cfg_.lr = lr; }

 private:
  struct Slot {
    Mat m;
    Mat v;
    long t = 0;
  };
  Config cfg_;
  std::unordered_map<const void*, Slot> state_;
};

/// Scale gradients in place so their global L2 norm is at most max_norm.
void clip_grad_norm(const std::vector<NamedParam>& params, double max_norm);

}  // namespace gendt::nn
