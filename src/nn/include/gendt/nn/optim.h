// First-order optimizers over Module parameters.
#pragma once

#include <unordered_map>
#include <vector>

#include "gendt/nn/layers.h"
#include "gendt/nn/serialize.h"

namespace gendt::nn {

/// Plain SGD with optional gradient clipping (by global L2 norm).
class Sgd {
 public:
  struct Config {
    double lr = 1e-2;
    double clip_norm = 0.0;  // 0 disables clipping
  };
  explicit Sgd(Config cfg) : cfg_(cfg) {}

  void step(const std::vector<NamedParam>& params);

 private:
  Config cfg_;
};

/// Adam (Kingma & Ba). State is keyed on the parameter *name* (unique per
/// module tree by construction), so slots survive serialization and can be
/// restored into a fresh process for exact training resume; a single
/// optimizer instance can still drive several modules as long as their
/// parameter names do not collide.
class Adam {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double clip_norm = 5.0;  // 0 disables clipping
  };
  Adam();  // default config
  explicit Adam(Config cfg) : cfg_(cfg) {}

  void step(const std::vector<NamedParam>& params);
  void reset() { state_.clear(); }
  const Config& config() const { return cfg_; }
  void set_lr(double lr) { cfg_.lr = lr; }

  /// Append this optimizer's slots as tensor records named
  /// "<prefix>/<param>/m|v|t", in `params` order (deterministic layout).
  /// Parameters without a slot yet (no step taken) are skipped.
  void export_state(const std::vector<NamedParam>& params, const std::string& prefix,
                    std::vector<TensorRecord>& out) const;
  /// Restore slots from records produced by export_state under `prefix`
  /// (records under other prefixes are ignored, so several optimizers can
  /// share one state vector). Transactional: returns false — leaving the
  /// current state untouched — on a duplicate/partial/unknown record or a
  /// slot shape that does not match its parameter.
  bool import_state(const std::vector<NamedParam>& params, const std::string& prefix,
                    const std::vector<TensorRecord>& records);

 private:
  struct Slot {
    Mat m;
    Mat v;
    long t = 0;
  };
  Config cfg_;
  std::unordered_map<std::string, Slot> state_;
};

/// Scale gradients in place so their global L2 norm is at most max_norm.
/// A non-finite norm (NaN/Inf gradient upstream) aborts via GENDT_CHECK
/// when debug checks are on; with checks off the scaling is skipped so one
/// poisoned gradient cannot corrupt every other parameter's update.
void clip_grad_norm(const std::vector<NamedParam>& params, double max_norm);

}  // namespace gendt::nn
