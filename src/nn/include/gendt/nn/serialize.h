// Parameter checkpointing: a simple self-describing binary format
// ("GDTCKPT1" magic, then name/shape/data records).
#pragma once

#include <string>
#include <vector>

#include "gendt/nn/layers.h"

namespace gendt::nn {

/// Write all parameters to `path`. Returns false on I/O failure.
bool save_params(const std::vector<NamedParam>& params, const std::string& path);

/// Load into matching (name + shape) parameters. Returns false on I/O
/// failure, unknown format, or any name/shape mismatch.
bool load_params(const std::vector<NamedParam>& params, const std::string& path);

}  // namespace gendt::nn
