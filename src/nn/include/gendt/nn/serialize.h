// Checkpointing: versioned, corruption-proof model + trainer state files.
//
// Format v2 ("GDTCKPT2" magic): a self-describing header, an ordered
// key -> bytes metadata section (KPI normalization stats, resume cursor,
// RNG seeds), name/shape/data tensor records split into model *parameters*
// and trainer *state* (Adam slots keyed by parameter name), and a CRC-32
// footer over everything before it.
//
// Durability contract:
//  * Saves are atomic: the file is written to `<path>.tmp`, flushed, then
//    renamed over `path` — a crash mid-save never clobbers the previous
//    good checkpoint.
//  * Loads are transactional: the whole file is parsed and validated
//    (bounds on every untrusted length field, CRC, duplicate/trailing-byte
//    detection) into a staging buffer, matched against the live parameters,
//    and only then committed — a failure at any point leaves the model
//    untouched. Errors come back as a structured LoadResult, not a bool.
//  * Legacy "GDTCKPT1" files (params only, no metadata/state/CRC) remain
//    readable; LoadResult::version reports what was found.
//
// Byte order is host (little-endian on every supported target), matching
// the v1 format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gendt/nn/layers.h"

namespace gendt::nn {

/// A named dense tensor as stored in a checkpoint (decoupled from the live
/// autograd Tensor so staged data can be validated before any commit).
struct TensorRecord {
  std::string name;
  Mat value;
};

/// Insertion-ordered key -> bytes metadata. Ordered (not hashed) so the
/// serialized layout — and therefore the file's CRC — is deterministic.
class CkptMeta {
 public:
  using Entry = std::pair<std::string, std::vector<std::uint8_t>>;

  /// Upserts preserve first-insertion order.
  void set_bytes(const std::string& key, std::vector<std::uint8_t> value);
  void set_u64(const std::string& key, std::uint64_t v);
  void set_f64s(const std::string& key, std::span<const double> v);
  void set_string(const std::string& key, const std::string& v);

  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Raw bytes for `key`, or nullptr when absent.
  const std::vector<std::uint8_t>* find(const std::string& key) const;
  /// Typed getters return false when the key is absent or the payload has
  /// the wrong size/alignment for the requested type.
  bool get_u64(const std::string& key, std::uint64_t& out) const;
  bool get_f64s(const std::string& key, std::vector<double>& out) const;
  bool get_string(const std::string& key, std::string& out) const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& mutable_entries() { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// A fully staged checkpoint: everything a resumable training run needs.
struct Checkpoint {
  CkptMeta meta;
  std::vector<TensorRecord> params;  ///< model parameters
  std::vector<TensorRecord> state;   ///< optimizer / trainer state tensors
};

enum class LoadStatus {
  kOk,
  kIoError,             ///< file unreadable
  kBadMagic,            ///< not a GenDT checkpoint at all
  kUnsupportedVersion,  ///< GDTCKPT magic with an unknown version digit
  kTruncated,           ///< a declared length exceeds the remaining bytes
  kMalformed,           ///< a field fails its sanity bound (name len, dims)
  kCrcMismatch,         ///< integrity footer does not match the contents
  kDuplicateName,       ///< the same tensor name appears twice
  kTrailingBytes,       ///< bytes after the declared records
  kUnknownParam,        ///< file names a parameter the model does not have
  kShapeMismatch,       ///< file/model shapes disagree for a parameter
  kMissingParam,        ///< model parameter absent from the file (strict)
};

const char* load_status_name(LoadStatus s);

/// Structured outcome of a checkpoint read/apply.
struct LoadResult {
  LoadStatus status = LoadStatus::kOk;
  int version = 0;     ///< format version once the magic parsed (1 or 2)
  std::string detail;  ///< human-readable context for failures
  /// Partial mode only: live params the file did not cover.
  std::vector<std::string> missing;
  /// Partial mode only: file records that matched no live param.
  std::vector<std::string> skipped;

  bool ok() const { return status == LoadStatus::kOk; }
  std::string message() const {
    std::string m = load_status_name(status);
    if (!detail.empty()) (m += ": ") += detail;
    return m;
  }
};

/// kStrict demands an exact parameter bijection (fine-tuning the same
/// architecture); kPartial updates the intersection and reports the rest in
/// LoadResult::missing/skipped (fine-tuning from a parameter subset).
enum class LoadMode { kStrict, kPartial };

/// Serialize `ckpt` to `path` atomically (temp file + rename). Returns
/// false on any I/O failure; `path` is left untouched in that case.
bool save_checkpoint(const Checkpoint& ckpt, const std::string& path);

/// Parse and fully validate the file at `path` into `out` without touching
/// any model. v1 files load as params-only checkpoints.
LoadResult read_checkpoint(const std::string& path, Checkpoint& out);

/// Transactionally copy `ckpt.params` into the matching live `params`:
/// every record is validated (name, shape, duplicates) before the first
/// write, so on failure no parameter has been modified.
LoadResult apply_params(const std::vector<NamedParam>& params, const Checkpoint& ckpt,
                        LoadMode mode = LoadMode::kStrict);

/// Whole-model convenience wrappers (no metadata / trainer state).
bool save_params(const std::vector<NamedParam>& params, const std::string& path);
LoadResult load_params(const std::vector<NamedParam>& params, const std::string& path,
                       LoadMode mode = LoadMode::kStrict);

}  // namespace gendt::nn
