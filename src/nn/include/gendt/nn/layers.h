// Neural network layers built on the autograd Tensor.
//
// All layers process row vectors (batch dimension fixed at one); sequence
// models iterate step() over time. Parameters are Tensors with
// requires_grad=true; params() exposes them for optimizers/serialization.
#pragma once

#include <string>
#include <vector>

#include "gendt/nn/tensor.h"

namespace gendt::nn {

/// A named trainable parameter reference.
struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// Interface for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<NamedParam> params() const = 0;
  /// Zero the gradient of every parameter.
  void zero_grad();
  /// Total scalar parameter count.
  size_t param_count() const;
};

/// Fully connected layer: y = x W + b, x is [1 x in].
class Linear : public Module {
 public:
  Linear() = default;
  Linear(int in_features, int out_features, std::mt19937_64& rng, std::string name = "linear");

  Tensor forward(const Tensor& x) const;
  std::vector<NamedParam> params() const override;

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Raw parameter views for the tape-free inference kernels (infer.h).
  const Mat& weight_value() const { return weight_.value(); }
  const Mat& bias_value() const { return bias_.value(); }

 private:
  int in_ = 0, out_ = 0;
  std::string name_;
  Tensor weight_;  // [in x out]
  Tensor bias_;    // [1 x out]
};

/// The ResGen-style MLP trunk: Linear->LeakyReLU repeated, optional dropout
/// before the final Linear. Dropout stays active when `mc_dropout` is set at
/// inference time (Monte Carlo dropout for model uncertainty).
class Mlp : public Module {
 public:
  struct Config {
    std::vector<int> layer_sizes;  // [in, h1, ..., out]
    double leaky_slope = 0.01;
    double dropout_p = 0.0;        // applied before the last layer
  };

  Mlp() = default;
  Mlp(Config cfg, std::mt19937_64& rng, std::string name = "mlp");

  /// training=true keeps dropout sampling on (also used for MC dropout).
  Tensor forward(const Tensor& x, std::mt19937_64& rng, bool training) const;
  std::vector<NamedParam> params() const override;

  const Config& config() const { return cfg_; }
  /// Layer views for the tape-free inference kernels (infer.h).
  const std::vector<Linear>& layers() const { return layers_; }

 private:
  Config cfg_;
  std::vector<Linear> layers_;
};

/// Noise intensities for the SRNN-style stochastic layer (paper §4.3.4 and
/// Appendix A.2). Uniform noise in [0, mean(|state|)] is added to the LSTM
/// hidden state and memory before each step, then the state is rescaled so
/// the sum over hidden dimensions is preserved.
struct StochasticConfig {
  bool enabled = false;
  double a_h = 2.0;  // hidden-state noise intensity
  double a_c = 2.0;  // memory noise intensity
};

/// Single LSTM cell; gates packed as [i, f, g, o].
class LstmCell : public Module {
 public:
  LstmCell() = default;
  LstmCell(int input_size, int hidden_size, std::mt19937_64& rng, std::string name = "lstm");

  struct State {
    Tensor h;  // [1 x H]
    Tensor c;  // [1 x H]
  };
  /// Zero initial state.
  State initial_state() const;

  /// One step: x is [1 x input_size]. If stochastic.enabled, injects the
  /// sum-preserving uniform noise into h and c before the gate computation.
  State step(const Tensor& x, const State& prev, const StochasticConfig& stochastic,
             std::mt19937_64& rng) const;
  State step(const Tensor& x, const State& prev) const {
    static std::mt19937_64 unused(0);
    return step(x, prev, StochasticConfig{}, unused);
  }

  std::vector<NamedParam> params() const override;

  int input_size() const { return input_; }
  int hidden_size() const { return hidden_; }

  /// Raw parameter views for the tape-free inference kernels (infer.h).
  const Mat& wx_value() const { return wx_.value(); }
  const Mat& wh_value() const { return wh_.value(); }
  const Mat& bias_value() const { return b_.value(); }

 private:
  int input_ = 0, hidden_ = 0;
  std::string name_;
  Tensor wx_;  // [input x 4H]
  Tensor wh_;  // [H x 4H]
  Tensor b_;   // [1 x 4H]
};

/// Single GRU cell; gates packed as [r, z, n]. A lighter-weight recurrent
/// unit than LSTM (no separate memory), offered as an alternative backbone
/// for the node/aggregation networks.
class GruCell : public Module {
 public:
  GruCell() = default;
  GruCell(int input_size, int hidden_size, std::mt19937_64& rng, std::string name = "gru");

  /// One step: x is [1 x input_size], h is [1 x H]; returns h'.
  Tensor step(const Tensor& x, const Tensor& h) const;
  Tensor initial_state() const;

  std::vector<NamedParam> params() const override;
  int input_size() const { return input_; }
  int hidden_size() const { return hidden_; }

 private:
  int input_ = 0, hidden_ = 0;
  std::string name_;
  Tensor wx_;  // [input x 3H]
  Tensor wh_;  // [H x 3H]
  Tensor b_;   // [1 x 3H]  (input-side biases)
  Tensor bh_;  // [1 x 3H]  (hidden-side biases, for the candidate gate)
};

/// Applies the Appendix-A.2 sum-preserving noise to a state row vector:
/// s' = (s + a*n) * sum(s) / sum(s + a*n), n ~ U[0, mean(|s|)] per dim.
/// The rescaling factor is treated as a constant w.r.t. gradients.
Tensor stochastic_perturb(const Tensor& s, double intensity, std::mt19937_64& rng);

/// LSTM + projection head mapping each step's hidden state to an output row.
/// This is the shape of the GNN-node network, the aggregation network and the
/// discriminator trunk in GenDT.
class LstmNetwork : public Module {
 public:
  LstmNetwork() = default;
  LstmNetwork(int input_size, int hidden_size, int output_size, std::mt19937_64& rng,
              std::string name = "lstm_net");

  /// Runs the full sequence; returns one output row per input row.
  /// `inputs` is [T x input_size]; output is a vector of T [1 x output] rows.
  std::vector<Tensor> forward(const std::vector<Tensor>& inputs,
                              const StochasticConfig& stochastic, std::mt19937_64& rng) const;
  /// Hidden representations (pre-projection), one [1 x H] per step.
  std::vector<Tensor> hidden_sequence(const std::vector<Tensor>& inputs,
                                      const StochasticConfig& stochastic,
                                      std::mt19937_64& rng) const;
  Tensor project(const Tensor& h) const { return head_.forward(h); }

  std::vector<NamedParam> params() const override;
  int hidden_size() const { return cell_.hidden_size(); }
  int input_size() const { return cell_.input_size(); }
  int output_size() const { return head_.out_features(); }
  const LstmCell& cell() const { return cell_; }
  const Linear& head() const { return head_; }

 private:
  LstmCell cell_;
  Linear head_;
};

}  // namespace gendt::nn
