// Debug-mode correctness guards for the nn layer.
//
// GENDT_CHECK(cond, msg) is a runtime-switchable, release-build-capable
// assert: when checks are enabled and `cond` is false it prints the failing
// condition, the message and the source location to stderr and aborts — so a
// gradcheck-class bug (shape mismatch, NaN poison) fails loudly at the op
// that produced it instead of surfacing as a wrong loss thousands of steps
// later. When checks are disabled the macro costs one relaxed atomic load
// and a predictable branch; `msg` is never evaluated.
//
// Enabling:
//  * environment: GENDT_DEBUG_CHECKS=1 (read once, at first query)
//  * programmatic: gendt::nn::set_debug_checks(true)  (wins over the env)
//  * build-wide default: -DGENDT_DEBUG_CHECKS (CMake option of the same name)
#pragma once

#include <string>

#include "gendt/nn/mat.h"

namespace gendt::nn {

/// True when GENDT_CHECK guards are live. First call snapshots the
/// GENDT_DEBUG_CHECKS environment variable (any value but "", "0", "off",
/// "false" enables); set_debug_checks overrides it afterwards.
bool debug_checks_enabled();
void set_debug_checks(bool enabled);

/// Report a failed check and abort. Never returns.
[[noreturn]] void check_failed(const char* file, int line, const char* condition,
                               const std::string& message);

/// "[RxC]" — for building shape-mismatch messages.
std::string shape_str(const Mat& m);

/// Poison detection: abort if any element of `m` is NaN or +-Inf. No-op when
/// checks are disabled. `where` names the op that produced the value.
void check_finite(const Mat& m, const char* where);

}  // namespace gendt::nn

#define GENDT_CHECK(cond, msg)                                               \
  do {                                                                       \
    if (::gendt::nn::debug_checks_enabled() && !(cond))                      \
      ::gendt::nn::check_failed(__FILE__, __LINE__, #cond, (msg));           \
  } while (0)
