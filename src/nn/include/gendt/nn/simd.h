// Runtime kernel dispatch. The nn library ships three kernel routes:
//
//   kScalar  the blocked scalar kernels (mat.cpp / infer.cpp) — the bitwise
//            determinism anchor. Graph and fast-path outputs are bit-equal,
//            thread-count invariant, and stable across releases.
//   kAvx2    AVX2/FMA kernels (kernels_avx2.cpp) — each route is itself
//            deterministic (fixed per-element operation order, whole-row
//            parallel split), but FMA rounds mul+add once, so avx2 results
//            differ from the scalar route within a small relative bound
//            (see docs/ARCHITECTURE.md "SIMD dispatch & weight arena").
//   kAvx512  the avx2 table with the row-GEMM widened to zmm registers
//            (kernels_avx512.cpp). Bitwise identical to kAvx2 — vector width
//            regroups j elements per instruction without touching any
//            element's single ascending-k FMA chain — so it inherits the
//            avx2 tolerance bound against scalar. Exists for lane-batched
//            rollouts, whose multi-row GEMM is instruction-bound on ymm.
//
// The route is chosen once, lazily, from the GENDT_SIMD environment variable
// ("off"/"scalar", "avx2", "avx512", or "auto" — the default, also settable
// at build time with -DGENDT_SIMD=...) gated by CPUID: a vector route is only
// ever selected when the CPU reports the matching ISA (AVX2+FMA, plus
// AVX-512F for kAvx512). Tests and benchmarks may override the live
// route with set_route()/ScopedRoute; callers must not flip the route while
// kernels are executing on other threads.
#pragma once

#include <string>

namespace gendt::nn::simd {

enum class Route {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar", "avx2", or "avx512".
const char* route_name(Route r);

/// True when this build has the route's kernels AND the CPU supports them.
bool route_supported(Route r);

/// Space-separated feature list detected at runtime (e.g. "avx2 fma
/// avx512f"), empty on non-x86 hosts. Purely informational (--version,
/// serve startup log).
std::string cpu_feature_string();

/// The route every dispatched kernel currently uses. First call resolves
/// GENDT_SIMD + CPUID and caches the result.
Route active_route();

/// Force the route (tests/benches). Returns false — and changes nothing —
/// when the route is unsupported on this build/CPU.
bool set_route(Route r);

/// RAII route override: restores the previous route on destruction.
/// `ok()` is false when the requested route is unsupported (route left
/// unchanged) — callers should skip rather than silently measure scalar.
class ScopedRoute {
 public:
  explicit ScopedRoute(Route r) : prev_(active_route()), ok_(set_route(r)) {}
  ~ScopedRoute() { set_route(prev_); }
  ScopedRoute(const ScopedRoute&) = delete;
  ScopedRoute& operator=(const ScopedRoute&) = delete;
  bool ok() const { return ok_; }

 private:
  Route prev_;
  bool ok_;
};

// Kernel signatures dispatched through the table below. The mm_* kernels
// compute C[r0:r1, :] += op(A, B) row ranges (see mat.cpp for the exact
// shapes); lstm_gates applies the LSTM gate nonlinearity to a packed
// [i f g o] gate row; affine2_row is an optional fused y = b + x1*W1 + x2*W2
// single-row kernel (null on the scalar route — the generic path is used).
using MmRowsFn = void (*)(const double*, const double*, double*, long, long, int, int);
using MmTnRowsFn = void (*)(const double*, const double*, double*, long, long, int, int, int);
using LstmGatesFn = void (*)(const double*, double*, double*, int);
using Affine2RowFn = void (*)(const double*, const double*, int, const double*, const double*,
                              int, const double*, double*, int);

struct KernelTable {
  MmRowsFn mm_rows;
  MmRowsFn mm_nt_rows;
  MmTnRowsFn mm_tn_rows;
  LstmGatesFn lstm_gates;
  Affine2RowFn affine2_row;  // may be null (no fused variant for the route)
};

/// The kernel table for the active route.
const KernelTable& kernels();

}  // namespace gendt::nn::simd
