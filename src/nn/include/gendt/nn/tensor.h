// Reverse-mode automatic differentiation over Mat values.
//
// A Tensor is a cheap value-semantic handle onto a graph node. Operations
// build a DAG define-by-run; Tensor::backward() topologically sorts the
// reachable subgraph and propagates gradients into every node with
// requires_grad set. Nodes that do not require grad are skipped entirely, so
// pure inference allocates no gradient buffers beyond the node values.
//
// The library is sized for GenDT: sequences are processed with a batch
// dimension of one (row-vector hidden states), so all binary elementwise ops
// demand identical shapes, and the only broadcast is scalar ops.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gendt/nn/mat.h"

namespace gendt::nn {

namespace detail {
struct Node {
  Mat value;
  Mat grad;                 // allocated lazily, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward_fn;

  void ensure_grad() {
    if (grad.empty() && !value.empty()) grad = Mat::zeros(value.rows(), value.cols());
  }
};
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;
  /// Wrap a value. requires_grad marks this as a leaf parameter.
  explicit Tensor(Mat value, bool requires_grad = false);

  static Tensor zeros(int rows, int cols, bool requires_grad = false);
  /// Non-differentiable constant (inputs, noise samples, targets).
  static Tensor constant(Mat value) { return Tensor(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Mat& value() const { return node_->value; }
  Mat& mutable_value() { return node_->value; }
  const Mat& grad() const { return node_->grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  /// Value of a 1x1 tensor.
  double item() const {
    assert(rows() == 1 && cols() == 1);
    return node_->value(0, 0);
  }

  /// Zero this node's gradient buffer (for parameters, between steps).
  /// Const because Tensor is a handle: the node state is shared.
  void zero_grad() const;
  /// grad += g (allocating the buffer on demand). Used by the trainer's
  /// deterministic ordered reduction of per-window gradient snapshots.
  void accumulate_grad(const Mat& g) const;
  /// Run backpropagation from this (scalar, 1x1) node.
  void backward();

  /// Identity of the underlying node; used as an optimizer state key.
  const void* id() const { return node_.get(); }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
  friend Tensor make_op(Mat value, std::vector<Tensor> parents,
                        std::function<void(detail::Node&)> backward_fn);
};

/// Internal helper: create an op node. Exposed so layer code can define
/// custom fused ops when profitable.
Tensor make_op(Mat value, std::vector<Tensor> parents,
               std::function<void(detail::Node&)> backward_fn);

// ---- Arithmetic -----------------------------------------------------------
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);  // elementwise
Tensor operator*(const Tensor& a, double s);
inline Tensor operator*(double s, const Tensor& a) { return a * s; }
Tensor operator+(const Tensor& a, double s);
inline Tensor operator-(const Tensor& a) { return a * -1.0; }
Tensor matmul(const Tensor& a, const Tensor& b);
/// Fused y = x1*W1 + x2*W2 + b (b broadcast over rows): one output
/// allocation instead of the four temporaries of the unfused expression.
/// This is the recurrent-cell gate preactivation, hoisted into a single op.
Tensor affine2(const Tensor& x1, const Tensor& w1, const Tensor& x2, const Tensor& w2,
               const Tensor& b);
/// Elementwise division a / b.
Tensor divide(const Tensor& a, const Tensor& b);

// ---- Nonlinearities -------------------------------------------------------
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, double negative_slope = 0.01);
Tensor exp_t(const Tensor& a);
Tensor log_t(const Tensor& a);  // requires strictly positive input
Tensor softplus(const Tensor& a);
Tensor square(const Tensor& a);

// ---- Shape ----------------------------------------------------------------
/// Horizontal concatenation of row blocks with equal row counts.
Tensor concat_cols(const std::vector<Tensor>& parts);
inline Tensor concat_cols(const Tensor& a, const Tensor& b) { return concat_cols({a, b}); }
/// Columns [c0, c1).
Tensor slice_cols(const Tensor& a, int c0, int c1);
/// Vertical concatenation (equal col counts).
Tensor concat_rows(const std::vector<Tensor>& parts);

// ---- Reductions & losses --------------------------------------------------
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);
/// (1/N) sum (a-b)^2.
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// Mean binary cross entropy with logits; targets in {0,1} (constant).
Tensor bce_with_logits(const Tensor& logits, const Tensor& targets);
/// Mean elementwise Gaussian negative log-likelihood with learned log sigma.
Tensor gaussian_nll(const Tensor& mu, const Tensor& log_sigma, const Tensor& target);

// ---- Regularization -------------------------------------------------------
/// Inverted dropout. Identity when !training or p == 0.
Tensor dropout(const Tensor& a, double p, std::mt19937_64& rng, bool training);

/// Cut the graph: value passes through, gradient stops.
Tensor detach(const Tensor& a);

// ---- Testing utility ------------------------------------------------------
/// Central-difference gradient check of `loss_fn` w.r.t. `param`.
/// Returns max abs difference between analytic and numeric gradient.
double gradient_check(const std::function<Tensor()>& loss_fn, Tensor param,
                      double eps = 1e-6);

}  // namespace gendt::nn
