#include "gendt/nn/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "kernels_internal.h"

namespace gendt::nn::simd {

namespace {

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Build-time default route, overridable per process with GENDT_SIMD. Set by
// src/nn/CMakeLists.txt from the GENDT_SIMD cache option.
#ifndef GENDT_SIMD_BUILD_DEFAULT
#define GENDT_SIMD_BUILD_DEFAULT "auto"
#endif

bool avx2_available() {
#ifdef GENDT_HAVE_AVX2_KERNELS
  return cpu_has_avx2_fma();
#else
  return false;
#endif
}

bool avx512_available() {
  // The avx512 table reuses the avx2 gate/affine kernels, so it needs both
  // TUs in the build and both ISAs on the CPU.
#if defined(GENDT_HAVE_AVX512_KERNELS) && defined(GENDT_HAVE_AVX2_KERNELS)
  return cpu_has_avx2_fma() && __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

Route detect_route() {
  // Startup-time config read: detect_route() runs once, inside the guarded
  // static initialization of the route cell, and nothing in the process
  // calls setenv — the concurrency-mt-unsafe hazard cannot occur.
  const char* env = std::getenv("GENDT_SIMD");  // NOLINT(concurrency-mt-unsafe)
  const std::string pref = env != nullptr ? env : GENDT_SIMD_BUILD_DEFAULT;
  if (pref == "off" || pref == "scalar") return Route::kScalar;
  if (pref == "avx512") {
    if (avx512_available()) return Route::kAvx512;
    std::fprintf(stderr,
                 "gendt: GENDT_SIMD=avx512 requested but this %s — falling back\n",
#ifdef GENDT_HAVE_AVX512_KERNELS
                 "CPU lacks AVX-512F"
#else
                 "build has no AVX-512 kernels"
#endif
    );
    return avx2_available() ? Route::kAvx2 : Route::kScalar;
  }
  if (pref == "avx2") {
    if (avx2_available()) return Route::kAvx2;
    std::fprintf(stderr,
                 "gendt: GENDT_SIMD=avx2 requested but this %s — using scalar kernels\n",
#ifdef GENDT_HAVE_AVX2_KERNELS
                 "CPU lacks AVX2+FMA"
#else
                 "build has no AVX2 kernels"
#endif
    );
    return Route::kScalar;
  }
  if (pref != "auto" && !pref.empty()) {
    std::fprintf(stderr,
                 "gendt: unknown GENDT_SIMD value '%s' (expected off, avx2, avx512, or "
                 "auto) — using auto\n",
                 pref.c_str());
  }
  if (avx512_available()) return Route::kAvx512;
  return avx2_available() ? Route::kAvx2 : Route::kScalar;
}

std::atomic<Route>& route_cell() {
  static std::atomic<Route> cell{detect_route()};
  return cell;
}

constexpr KernelTable kScalarTable = {
    &detail::mm_rows_scalar, &detail::mm_nt_rows_scalar, &detail::mm_tn_rows_scalar,
    &detail::lstm_gates_scalar,
    nullptr,  // no fused affine2: the generic bias-seed + matmul_acc path is the anchor
};

#ifdef GENDT_HAVE_AVX2_KERNELS
constexpr KernelTable kAvx2Table = {
    &detail::mm_rows_avx2, &detail::mm_nt_rows_avx2, &detail::mm_tn_rows_avx2,
    &detail::lstm_gates_avx2, &detail::affine2_row_avx2,
};
#endif

#if defined(GENDT_HAVE_AVX512_KERNELS) && defined(GENDT_HAVE_AVX2_KERNELS)
// avx2 table with only the row-GEMM swapped: bitwise identical by design
// (simd_parity_test pins it), just fewer instructions per flop on zmm.
constexpr KernelTable kAvx512Table = {
    &detail::mm_rows_avx512, &detail::mm_nt_rows_avx2, &detail::mm_tn_rows_avx2,
    &detail::lstm_gates_avx2, &detail::affine2_row_avx2,
};
#endif

}  // namespace

const char* route_name(Route r) {
  switch (r) {
    case Route::kAvx512: return "avx512";
    case Route::kAvx2: return "avx2";
    case Route::kScalar: break;
  }
  return "scalar";
}

bool route_supported(Route r) {
  return r == Route::kScalar || (r == Route::kAvx2 && avx2_available()) ||
         (r == Route::kAvx512 && avx512_available());
}

std::string cpu_feature_string() {
  std::string s;
#if defined(__x86_64__) || defined(__i386__)
  const auto add = [&s](const char* name, bool have) {
    if (!have) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add("sse4.2", __builtin_cpu_supports("sse4.2"));
  add("avx", __builtin_cpu_supports("avx"));
  add("avx2", __builtin_cpu_supports("avx2"));
  add("fma", __builtin_cpu_supports("fma"));
  add("avx512f", __builtin_cpu_supports("avx512f"));
#endif
  return s;
}

Route active_route() { return route_cell().load(std::memory_order_relaxed); }

bool set_route(Route r) {
  if (!route_supported(r)) return false;
  route_cell().store(r, std::memory_order_relaxed);
  return true;
}

const KernelTable& kernels() {
#if defined(GENDT_HAVE_AVX512_KERNELS) && defined(GENDT_HAVE_AVX2_KERNELS)
  if (active_route() == Route::kAvx512) return kAvx512Table;
#endif
#ifdef GENDT_HAVE_AVX2_KERNELS
  if (active_route() == Route::kAvx2) return kAvx2Table;
#endif
  return kScalarTable;
}

}  // namespace gendt::nn::simd
