// Internal kernel declarations shared by mat.cpp / infer.cpp (scalar route),
// kernels_avx2.cpp (AVX2 route) and simd.cpp (the dispatch table). Not
// installed: everything here is an implementation detail of the dispatch in
// gendt/nn/simd.h.
//
// Contract for every kernel pair: given the same inputs, each route is
// individually deterministic — the per-element floating-point operation
// order is a pure function of the shapes, never of the tile split, the
// thread count, or neighbouring rows. The scalar kernels additionally match
// the autograd graph bit-for-bit (no FMA contraction); the avx2 kernels use
// FMA and vector transcendentals and only match within tolerance.
#pragma once

namespace gendt::nn::detail {

// Tiling shared by both routes: k-tile keeps the A panel hot, j-tile keeps a
// 1 KiB C/B row segment in L1.
inline constexpr int kDepthTile = 64;
inline constexpr int kColTile = 128;

// ---- scalar route (mat.cpp; infer.cpp for the gate kernel) ----------------

// C[r0:r1, :] += A[r0:r1, :] * B with A [M x K], B [K x N].
void mm_rows_scalar(const double* a, const double* b, double* c, long r0, long r1, int K, int N);
// C[r0:r1, :] += A[r0:r1, :] * B^T with A [M x K], B [N x K].
void mm_nt_rows_scalar(const double* a, const double* b, double* c, long r0, long r1, int K,
                       int N);
// C[r0:r1, :] += (A^T)[r0:r1, :] * B with A [K x M], B [K x N]; the row
// range indexes columns of A.
void mm_tn_rows_scalar(const double* a, const double* b, double* c, long r0, long r1, int K,
                       int M, int N);
// LSTM gate nonlinearity over a packed [i f g o] gate row `g` of width 4*H:
// c' = sigmoid(f)*c + sigmoid(i)*tanh(g), h' = sigmoid(o)*tanh(c').
// Defined in infer.cpp so it keeps that TU's -ffp-contract=off.
void lstm_gates_scalar(const double* g, double* h, double* c, int H);

// ---- avx2 route (kernels_avx2.cpp; only built on x86 builds with
// GENDT_SIMD != off) --------------------------------------------------------

#ifdef GENDT_HAVE_AVX2_KERNELS
void mm_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K, int N);
void mm_nt_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K, int N);
void mm_tn_rows_avx2(const double* a, const double* b, double* c, long r0, long r1, int K, int M,
                     int N);
void lstm_gates_avx2(const double* g, double* h, double* c, int H);
// Fused y = b + x1*W1 + x2*W2 for a single row (the shape every LSTM step
// feeds affine2 with): x1 [1 x k1], W1 [k1 x n], x2 [1 x k2], W2 [k2 x n],
// b/y [1 x n].
void affine2_row_avx2(const double* x1, const double* w1, int k1, const double* x2,
                      const double* w2, int k2, const double* b, double* y, int n);
#endif

// ---- avx512 route (kernels_avx512.cpp) ------------------------------------
//
// Widens only the NN row-GEMM to zmm; the route's other table entries reuse
// the avx2 kernels. Per-element operation order and rounding are identical
// to mm_rows_avx2 (one ascending-k FMA per element, same zero skip), so the
// avx512 route is bitwise identical to the avx2 route.

#ifdef GENDT_HAVE_AVX512_KERNELS
void mm_rows_avx512(const double* a, const double* b, double* c, long r0, long r1, int K,
                    int N);
#endif

}  // namespace gendt::nn::detail
