// Tape-free forward kernels. This file compiles with -ffp-contract=off (see
// src/nn/CMakeLists.txt): the Tensor graph rounds every mul and add
// separately, so letting GCC fuse a*b + c into an FMA here would silently
// break the bitwise-parity contract gen_parity_test enforces.
#include "gendt/nn/infer.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "gendt/nn/checks.h"
#include "gendt/nn/simd.h"
#include "kernels_internal.h"

namespace gendt::nn::detail {

// Scalar LSTM gate kernel (simd::Route::kScalar). Lives in this TU so it
// keeps -ffp-contract=off; the body is the bitwise anchor the avx2 variant
// is tolerance-tested against.
void lstm_gates_scalar(const double* __restrict gp, double* __restrict hp, double* __restrict cp,
                       int H) {
  for (int j = 0; j < H; ++j) {
    const double ig = 1.0 / (1.0 + std::exp(-gp[j]));
    const double fg = 1.0 / (1.0 + std::exp(-gp[H + j]));
    const double gg = std::tanh(gp[2 * H + j]);
    const double og = 1.0 / (1.0 + std::exp(-gp[3 * H + j]));
    // c' = f*c + i*g, h' = o*tanh(c'): mul/mul/add rounded separately
    // (-ffp-contract=off), exactly like the graph's hadamard + add ops.
    const double cn = fg * cp[j] + ig * gg;
    cp[j] = cn;
    hp[j] = og * std::tanh(cn);
  }
}

}  // namespace gendt::nn::detail

namespace gendt::nn::infer {

Mat& Workspace::checkout(int key, int rows, int cols) {
  assert(key >= 0 && rows >= 0 && cols >= 0);
  if (key >= static_cast<int>(slots_.size())) slots_.resize(static_cast<size_t>(key) + 1);
  Slot& s = slots_[static_cast<size_t>(key)];
  GENDT_CHECK(!s.out, "workspace slot " + std::to_string(key) +
                          " checked out twice without release");
  assert(!s.out);
  const size_t need = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (s.buf == nullptr) {
    s.buf = std::make_unique<Mat>(rows, cols);
    s.capacity = need;
    ++allocations_;
  } else if (s.buf->rows() != rows || s.buf->cols() != cols) {
    // Reshape in place; only growth beyond the slot's high-water mark costs
    // (and counts as) an allocation, so alternating window lengths reuse the
    // same storage after warmup.
    if (need > s.capacity) {
      s.capacity = need;
      ++allocations_;
    }
    s.buf->resize(rows, cols);
  }
  s.out = true;
  return *s.buf;
}

void Workspace::release(int key) {
  const bool live = key >= 0 && key < static_cast<int>(slots_.size()) &&
                    slots_[static_cast<size_t>(key)].out;
  GENDT_CHECK(live, "workspace release of slot " + std::to_string(key) +
                        " that is not checked out");
  assert(live);
  if (live) slots_[static_cast<size_t>(key)].out = false;
}

bool Workspace::checked_out(int key) const {
  return key >= 0 && key < static_cast<int>(slots_.size()) &&
         slots_[static_cast<size_t>(key)].out;
}

size_t Workspace::peak_bytes() const {
  size_t bytes = 0;
  for (const Slot& s : slots_) bytes += s.capacity * sizeof(double);
  return bytes;
}

void affine2_fwd(const Mat& x1, const Mat& w1, const Mat& x2, const Mat& w2, const Mat& b,
                 Mat& y) {
  GENDT_CHECK(x1.rows() == x2.rows() && x1.cols() == w1.rows() && x2.cols() == w2.rows() &&
                  w1.cols() == w2.cols() && w1.cols() == b.cols() && b.rows() == 1 &&
                  y.rows() == x1.rows() && y.cols() == w1.cols(),
              "affine2_fwd shape mismatch: x1 " + shape_str(x1) + " w1 " + shape_str(w1) +
                  " x2 " + shape_str(x2) + " w2 " + shape_str(w2) + " b " + shape_str(b) +
                  " -> y " + shape_str(y));
  assert(y.rows() == x1.rows() && y.cols() == w1.cols());
  const int rows = y.rows(), cols = y.cols();
  // Fused single-row kernel when the active route provides one (the LSTM
  // step always lands here with rows == 1); otherwise bias-seed + two
  // accumulating matmuls — the graph-parity reference order.
  const simd::Affine2RowFn fused = simd::kernels().affine2_row;
  if (fused != nullptr && rows == 1) {
    fused(x1.data().data(), w1.data().data(), x1.cols(), x2.data().data(), w2.data().data(),
          x2.cols(), b.data().data(), y.data().data(), cols);
  } else {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) y(r, c) = b(0, c);
    matmul_acc(x1, w1, y);
    matmul_acc(x2, w2, y);
  }
  check_finite(y, "affine2_fwd");
}

void linear_fwd(const Mat& x, const Linear& layer, Mat& y) {
  const Mat& w = layer.weight_value();
  const Mat& b = layer.bias_value();
  GENDT_CHECK(x.cols() == w.rows() && y.rows() == x.rows() && y.cols() == w.cols(),
              "linear_fwd shape mismatch: x " + shape_str(x) + " * W " + shape_str(w) +
                  " -> y " + shape_str(y));
  assert(x.cols() == w.rows() && y.rows() == x.rows() && y.cols() == w.cols());
  // matmul(x, W) + b: zero-init then accumulate, bias added as its own pass
  // (the graph rounds the product before the bias add — keep that order).
  y.set_zero();
  matmul_acc(x, w, y);
  for (int r = 0; r < y.rows(); ++r)
    for (int c = 0; c < y.cols(); ++c) y(r, c) += b(0, c);
  check_finite(y, "linear_fwd");
}

void stochastic_perturb_row(double* s, int n, double intensity, std::mt19937_64& rng,
                            double* noise) {
  if (intensity <= 0.0) return;
  assert(n > 0);
  double mean_abs = 0.0;
  for (int i = 0; i < n; ++i) mean_abs += std::abs(s[i]);
  mean_abs /= static_cast<double>(n);
  if (mean_abs <= 0.0) return;

  std::uniform_real_distribution<double> dist(0.0, mean_abs);
  for (int i = 0; i < n; ++i) noise[i] = intensity * dist(rng);

  // Ascending accumulation, matching Mat::sum on a one-row state mat.
  double sum_before = 0.0;
  for (int i = 0; i < n; ++i) sum_before += s[i];
  double noise_sum = 0.0;
  for (int i = 0; i < n; ++i) noise_sum += noise[i];
  const double sum_after = sum_before + noise_sum;
  double scale = (std::abs(sum_after) > 1e-12) ? sum_before / sum_after : 1.0;
  scale = std::clamp(scale, 0.5, 2.0);
  // (s + noise) * scale: the graph's add and scale are distinct ops.
  for (int i = 0; i < n; ++i) s[i] = (s[i] + noise[i]) * scale;
}

void stochastic_perturb_fwd(Mat& s, double intensity, std::mt19937_64& rng, Mat& noise) {
  assert(noise.same_shape(s));
  stochastic_perturb_row(s.data().data(), static_cast<int>(s.size()), intensity, rng,
                         noise.data().data());
}

void lstm_step_fwd(const LstmCell& cell, const Mat& x, const StochasticConfig& stoch,
                   std::mt19937_64& rng, Mat& h, Mat& c, Mat& gates, Mat& scratch) {
  const int H = cell.hidden_size();
  GENDT_CHECK(x.cols() == cell.input_size() && h.cols() == H && c.cols() == H &&
                  gates.cols() == 4 * H && scratch.cols() == H,
              "lstm_step_fwd shape mismatch: x " + shape_str(x) + " h " + shape_str(h) +
                  " gates " + shape_str(gates));
  assert(x.cols() == cell.input_size() && h.cols() == H && c.cols() == H);
  assert(gates.rows() == 1 && gates.cols() == 4 * H && scratch.cols() == H);
  if (stoch.enabled) {
    stochastic_perturb_fwd(h, stoch.a_h, rng, scratch);
    stochastic_perturb_fwd(c, stoch.a_c, rng, scratch);
  }
  affine2_fwd(x, cell.wx_value(), h, cell.wh_value(), cell.bias_value(), gates);

  double* hp = h.data().data();
  double* cp = c.data().data();
  const double* gp = gates.data().data();
  simd::kernels().lstm_gates(gp, hp, cp, H);
  check_finite(h, "lstm_step_fwd");
}

void leaky_relu_inplace(Mat& h, double negative_slope) {
  for (size_t i = 0; i < h.size(); ++i) h[i] = h[i] > 0.0 ? h[i] : negative_slope * h[i];
}

void dropout_inplace(Mat& h, double p, std::mt19937_64& rng) {
  assert(p > 0.0 && p < 1.0);
  std::bernoulli_distribution keep(1.0 - p);
  const double scale = 1.0 / (1.0 - p);
  // Same draw order and same per-element multiply as dropout()'s mask path;
  // a dropped element computes h[i] * 0.0 (not an assignment of 0.0), so
  // signed zeros match the graph too.
  for (size_t i = 0; i < h.size(); ++i) h[i] *= keep(rng) ? scale : 0.0;
}

void mlp_fwd(const Mlp& mlp, const Mat& x, std::mt19937_64& rng, bool training, Workspace& ws,
             int key_base, Mat& out) {
  const std::vector<Linear>& layers = mlp.layers();
  GENDT_CHECK(!layers.empty(), "mlp_fwd on an empty Mlp");
  assert(!layers.empty());
  const size_t n = layers.size();
  const double p = mlp.config().dropout_p;
  const bool drop = p > 0.0 && training;

  Mat* cur = nullptr;  // last hidden activation (null = still the input x)
  for (size_t i = 0; i + 1 < n; ++i) {
    const Mat& in = cur != nullptr ? *cur : x;
    Mat& y = ws.checkout(key_base + static_cast<int>(i), in.rows(), layers[i].out_features());
    linear_fwd(in, layers[i], y);
    leaky_relu_inplace(y, mlp.config().leaky_slope);
    cur = &y;
  }
  bool copied_input = false;
  if (drop) {
    if (cur == nullptr) {  // single-layer MLP: dropout applies to the input
      Mat& cp = ws.checkout(key_base + static_cast<int>(n), x.rows(), x.cols());
      std::copy(x.data().begin(), x.data().end(), cp.data().begin());
      cur = &cp;
      copied_input = true;
    }
    dropout_inplace(*cur, p, rng);
  }
  linear_fwd(cur != nullptr ? *cur : x, layers[n - 1], out);

  for (size_t i = 0; i + 1 < n; ++i) ws.release(key_base + static_cast<int>(i));
  if (copied_input) ws.release(key_base + static_cast<int>(n));
}

void lstm_step_fwd_batch(const LstmCell& cell, const Mat& x, const StochasticConfig& stoch,
                         std::mt19937_64* const* rngs, Mat& h, Mat& c, Mat& gates, Mat& scratch) {
  const int H = cell.hidden_size();
  const int R = x.rows();
  GENDT_CHECK(x.cols() == cell.input_size() && h.rows() == R && h.cols() == H && c.rows() == R &&
                  c.cols() == H && gates.rows() == R && gates.cols() == 4 * H &&
                  scratch.rows() == R && scratch.cols() == H,
              "lstm_step_fwd_batch shape mismatch: x " + shape_str(x) + " h " + shape_str(h) +
                  " gates " + shape_str(gates));
  assert(x.cols() == cell.input_size() && h.rows() == R && c.rows() == R && scratch.rows() == R);
  // Per-lane SRNN perturbation first (exactly the single-lane order: perturb
  // h, then c, then the affine reads the perturbed h). Each live lane draws
  // only from its own stream, so lane bits are independent of who else rides
  // in the batch.
  if (stoch.enabled) {
    for (int r = 0; r < R; ++r) {
      if (rngs[r] == nullptr) continue;  // retired row: no draws, no update
      stochastic_perturb_row(h.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H), H,
                             stoch.a_h, *rngs[r],
                             scratch.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H));
      stochastic_perturb_row(c.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H), H,
                             stoch.a_c, *rngs[r],
                             scratch.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H));
    }
  }
  // One batched affine2 for the whole lane block: rows never interact inside
  // the blocked kernels, and each output element accumulates along ascending
  // k with separately-rounded FMAs on both routes — the identical per-element
  // chain the rows==1 fused path walks, so lane bits match the single-row
  // kernel while B lanes amortize one pass over Wx/Wh.
  affine2_fwd(x, cell.wx_value(), h, cell.wh_value(), cell.bias_value(), gates);

  for (int r = 0; r < R; ++r) {
    if (rngs[r] == nullptr) continue;  // retired row: state stays put
    simd::kernels().lstm_gates(
        gates.data().data() + static_cast<size_t>(r) * static_cast<size_t>(4 * H),
        h.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H),
        c.data().data() + static_cast<size_t>(r) * static_cast<size_t>(H), H);
  }
  check_finite(h, "lstm_step_fwd_batch");
}

namespace {

// Row-span form of dropout_inplace: same fresh bernoulli distribution per
// call, same draw order, same multiply-by-zero for dropped elements.
void dropout_row(double* h, int n, double p, std::mt19937_64& rng) {
  assert(p > 0.0 && p < 1.0);
  std::bernoulli_distribution keep(1.0 - p);
  const double scale = 1.0 / (1.0 - p);
  for (int i = 0; i < n; ++i) h[i] *= keep(rng) ? scale : 0.0;
}

}  // namespace

void mlp_fwd_batch(const Mlp& mlp, const Mat& x, std::mt19937_64* const* rngs, bool training,
                   Workspace& ws, int key_base, Mat& out) {
  const std::vector<Linear>& layers = mlp.layers();
  GENDT_CHECK(!layers.empty(), "mlp_fwd_batch on an empty Mlp");
  assert(!layers.empty());
  const size_t n = layers.size();
  const double p = mlp.config().dropout_p;
  const bool drop = p > 0.0 && training;
  const int R = x.rows();

  Mat* cur = nullptr;  // last hidden activation (null = still the input x)
  for (size_t i = 0; i + 1 < n; ++i) {
    const Mat& in = cur != nullptr ? *cur : x;
    Mat& y = ws.checkout(key_base + static_cast<int>(i), in.rows(), layers[i].out_features());
    linear_fwd(in, layers[i], y);
    leaky_relu_inplace(y, mlp.config().leaky_slope);
    cur = &y;
  }
  bool copied_input = false;
  if (drop) {
    if (cur == nullptr) {  // single-layer MLP: dropout applies to the input
      Mat& cp = ws.checkout(key_base + static_cast<int>(n), x.rows(), x.cols());
      std::copy(x.data().begin(), x.data().end(), cp.data().begin());
      cur = &cp;
      copied_input = true;
    }
    // Per-lane masks: row r's bernoulli draws come from lane r's own stream,
    // exactly where the single-lane mlp_fwd draws them (between z1 and eps).
    const int cols = cur->cols();
    for (int r = 0; r < R; ++r) {
      if (rngs[r] == nullptr) continue;
      dropout_row(cur->data().data() + static_cast<size_t>(r) * static_cast<size_t>(cols), cols, p,
                  *rngs[r]);
    }
  }
  linear_fwd(cur != nullptr ? *cur : x, layers[n - 1], out);

  for (size_t i = 0; i + 1 < n; ++i) ws.release(key_base + static_cast<int>(i));
  if (copied_input) ws.release(key_base + static_cast<int>(n));
}

}  // namespace gendt::nn::infer
