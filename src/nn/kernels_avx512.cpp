// AVX-512 kernel route: widens ONLY the NN row-GEMM to zmm registers. Every
// other entry in the route's kernel table (NT/TN matmuls, gate nonlinearity,
// fused affine2 row) is shared with the AVX2 route, and the GEMM below keeps
// the exact per-element operation sequence of mm_rows_avx2 — one FMA per
// (k, element) in ascending-k order with the same a==0 skip — so the whole
// avx512 route is BITWISE IDENTICAL to the avx2 route (vector width changes
// which j elements are grouped per instruction, never any element's math).
// simd_parity_test pins that equality.
//
// Why it exists: the lane-batched rollout (core::BatchedInferenceSession)
// turns the LSTM matvec into a [B x K]*[K x 4H] GEMM whose 2-row ymm block is
// frontend-bound at ~0.8 FMA/cycle — the zero-skip compares and x loads cost
// as many uops as the FMAs. Doubling the vector width halves the instruction
// count per flop; on AVX-512 hardware this roughly doubles multi-row GEMM
// throughput while the single-row path stays weight-bandwidth-bound, which is
// exactly the batched-vs-serial gap the covermap benchmark measures.
#include "kernels_internal.h"

#ifdef GENDT_HAVE_AVX512_KERNELS

#include <immintrin.h>

#include <algorithm>

namespace gendt::nn::detail {

namespace {

// y[0:n) += a * x[0:n) — 8-wide FMA body with a masked tail. Ascending j;
// each element sees exactly one fma(a, x[j], y[j]), bit-equal to the avx2
// axpy1 (4-wide body + scalar std::fma tail) because FMA rounding does not
// depend on lane grouping. Inactive tail lanes are never loaded or stored.
inline void axpy1_512(double a, const double* __restrict x, double* __restrict y, int n) {
  const __m512d va = _mm512_set1_pd(a);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(y + j,
                     _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j), _mm512_loadu_pd(y + j)));
  }
  if (j < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - j)) - 1u);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + j);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + j);
    _mm512_mask_storeu_pd(y + j, m, _mm512_fmadd_pd(va, vx, vy));
  }
}

}  // namespace

// C[r0:r1, :] += A[r0:r1, :] * B — same tiling as the other routes, with a
// 4-row x 16-column register block (8 zmm accumulators) ahead of the tails.
// Four rows per B line amortize the k-strided x loads (a new page per k at
// LSTM widths, so no hardware prefetch) across twice as many FMAs as the ymm
// block. The zero skip mirrors the scalar/avx2 kernels: a zero A element
// contributes nothing, never a 0*x FMA (which would turn an Inf/NaN in x
// into a NaN the other routes do not produce).
void mm_rows_avx512(const double* a, const double* b, double* c, long r0, long r1, int K,
                    int N) {
  for (int kk = 0; kk < K; kk += kDepthTile) {
    const int kend = std::min(K, kk + kDepthTile);
    for (int jj = 0; jj < N; jj += kColTile) {
      const int jend = std::min(N, jj + kColTile);
      long i = r0;
      for (; i + 4 <= r1; i += 4) {
        const double* __restrict arow0 = a + i * K;
        const double* __restrict arow1 = arow0 + K;
        const double* __restrict arow2 = arow1 + K;
        const double* __restrict arow3 = arow2 + K;
        double* __restrict crow0 = c + i * N;
        double* __restrict crow1 = crow0 + N;
        double* __restrict crow2 = crow1 + N;
        double* __restrict crow3 = crow2 + N;
        int j = jj;
        for (; j + 16 <= jend; j += 16) {
          __m512d c00 = _mm512_loadu_pd(crow0 + j);
          __m512d c01 = _mm512_loadu_pd(crow0 + j + 8);
          __m512d c10 = _mm512_loadu_pd(crow1 + j);
          __m512d c11 = _mm512_loadu_pd(crow1 + j + 8);
          __m512d c20 = _mm512_loadu_pd(crow2 + j);
          __m512d c21 = _mm512_loadu_pd(crow2 + j + 8);
          __m512d c30 = _mm512_loadu_pd(crow3 + j);
          __m512d c31 = _mm512_loadu_pd(crow3 + j + 8);
          for (int k = kk; k < kend; ++k) {
            const double a0 = arow0[k];
            const double a1 = arow1[k];
            const double a2 = arow2[k];
            const double a3 = arow3[k];
            if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
            const double* __restrict x = b + static_cast<long>(k) * N + j;
            const __m512d x0 = _mm512_loadu_pd(x);
            const __m512d x1 = _mm512_loadu_pd(x + 8);
            if (a0 != 0.0) {
              const __m512d va = _mm512_set1_pd(a0);
              c00 = _mm512_fmadd_pd(va, x0, c00);
              c01 = _mm512_fmadd_pd(va, x1, c01);
            }
            if (a1 != 0.0) {
              const __m512d va = _mm512_set1_pd(a1);
              c10 = _mm512_fmadd_pd(va, x0, c10);
              c11 = _mm512_fmadd_pd(va, x1, c11);
            }
            if (a2 != 0.0) {
              const __m512d va = _mm512_set1_pd(a2);
              c20 = _mm512_fmadd_pd(va, x0, c20);
              c21 = _mm512_fmadd_pd(va, x1, c21);
            }
            if (a3 != 0.0) {
              const __m512d va = _mm512_set1_pd(a3);
              c30 = _mm512_fmadd_pd(va, x0, c30);
              c31 = _mm512_fmadd_pd(va, x1, c31);
            }
          }
          _mm512_storeu_pd(crow0 + j, c00);
          _mm512_storeu_pd(crow0 + j + 8, c01);
          _mm512_storeu_pd(crow1 + j, c10);
          _mm512_storeu_pd(crow1 + j + 8, c11);
          _mm512_storeu_pd(crow2 + j, c20);
          _mm512_storeu_pd(crow2 + j + 8, c21);
          _mm512_storeu_pd(crow3 + j, c30);
          _mm512_storeu_pd(crow3 + j + 8, c31);
        }
        if (j < jend) {
          for (int k = kk; k < kend; ++k) {
            const double* __restrict x = b + static_cast<long>(k) * N + j;
            const double a0 = arow0[k];
            const double a1 = arow1[k];
            const double a2 = arow2[k];
            const double a3 = arow3[k];
            if (a0 != 0.0) axpy1_512(a0, x, crow0 + j, jend - j);
            if (a1 != 0.0) axpy1_512(a1, x, crow1 + j, jend - j);
            if (a2 != 0.0) axpy1_512(a2, x, crow2 + j, jend - j);
            if (a3 != 0.0) axpy1_512(a3, x, crow3 + j, jend - j);
          }
        }
      }
      for (; i < r1; ++i) {
        const double* __restrict arow = a + i * K;
        double* __restrict crow = c + i * N;
        for (int k = kk; k < kend; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          axpy1_512(aik, b + static_cast<long>(k) * N + jj, crow + jj, jend - jj);
        }
      }
    }
  }
}

}  // namespace gendt::nn::detail

#else  // !GENDT_HAVE_AVX512_KERNELS

// Portable builds compile this TU empty; keep one symbol so ranlib stays quiet.
namespace gendt::nn::detail {
void kernels_avx512_unavailable() {}
}  // namespace gendt::nn::detail

#endif
