// Internal to src/serve: the admission queue shared by GenerationEngine and
// ModelRouter, plus the worker drain loop both run on top of it. Not part of
// the public gendt/serve API — include only from serve .cpp files.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "gendt/runtime/mutex.h"
#include "gendt/runtime/thread_pool.h"

namespace gendt::serve::internal {

/// MPMC bounded queue of request indices: the admission boundary. close()
/// releases every waiter; pop() returns false once closed and drained.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t cap) : cap_(std::max<size_t>(1, cap)) {}

  void push_block(size_t v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      not_full_.wait(lock, mu_, [this]() GENDT_REQUIRES(mu_) {
        return q_.size() < cap_ || closed_;
      });
      if (closed_) return;  // serve() never closes while submitting
      q_.push_back(v);
    }
    not_empty_.notify_one();
  }

  bool try_push(size_t v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      if (closed_ || q_.size() >= cap_) return false;
      q_.push_back(v);
    }
    not_empty_.notify_one();
    return true;
  }

  bool pop(size_t& v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      not_empty_.wait(lock, mu_,
                      [this]() GENDT_REQUIRES(mu_) { return !q_.empty() || closed_; });
      if (q_.empty()) return false;  // closed and drained
      v = q_.front();
      q_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Drain up to `max_n` queued indices in FIFO order into `batch` (cleared
  /// first). Blocks until at least one is available; returns an empty batch
  /// only once closed and drained. Takes what is there — it never waits to
  /// fill the batch, so batching adds no latency when traffic is sparse.
  void pop_batch(std::vector<size_t>& batch, size_t max_n) GENDT_EXCLUDES(mu_) {
    batch.clear();
    {
      runtime::MutexLock lock(mu_);
      not_empty_.wait(lock, mu_,
                      [this]() GENDT_REQUIRES(mu_) { return !q_.empty() || closed_; });
      while (!q_.empty() && batch.size() < max_n) {
        batch.push_back(q_.front());
        q_.pop_front();
      }
    }
    if (!batch.empty()) not_full_.notify_all();
  }

  void close() GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  runtime::Mutex mu_;
  runtime::CondVar not_full_;
  runtime::CondVar not_empty_;
  std::deque<size_t> q_ GENDT_GUARDED_BY(mu_);
  const size_t cap_;
  bool closed_ GENDT_GUARDED_BY(mu_) = false;
};

/// One worker's drain loop: pop indices (singly, or in batches fanned out on
/// the shared runtime pool when batch_max > 1) and run `run_one(idx)` for
/// each until the queue is closed and drained. `run_one` is keyed by the
/// ORIGINAL request index — never the batch slot — so responses stay bitwise
/// independent of batch composition.
inline void drain_queue(BoundedQueue& queue, size_t batch_max,
                        const std::function<void(size_t)>& run_one) {
  if (batch_max <= 1) {
    size_t idx = 0;
    while (queue.pop(idx)) run_one(idx);
    return;
  }
  std::vector<size_t> batch;
  for (;;) {
    queue.pop_batch(batch, batch_max);
    if (batch.empty()) return;  // closed and drained
    if (batch.size() == 1) {
      run_one(batch[0]);
      continue;
    }
    runtime::parallel_tasks(runtime::Parallelism{.threads = static_cast<int>(batch.size())},
                            static_cast<int>(batch.size()),
                            [&](int bi) { run_one(batch[static_cast<size_t>(bi)]); });
  }
}

}  // namespace gendt::serve::internal
