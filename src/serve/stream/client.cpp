#include "gendt/serve/stream/client.h"

#include <cerrno>

#include "gendt/net/socket.h"

namespace gendt::serve::stream {

bool StreamClient::connect_unix(const std::string& path, std::string* error) {
  fd_ = net::unix_connect(path, error);
  return fd_.valid();
}

bool StreamClient::send_frame(FrameType type, uint8_t flags,
                              const std::vector<uint8_t>& body) {
  if (!fd_.valid()) return false;
  const std::vector<uint8_t> frame = encode_frame(type, flags, body);
  if (!net::write_all(fd_.get(), frame.data(), frame.size())) {
    fd_.reset();
    return false;
  }
  return true;
}

StreamClient::Status StreamClient::recv_frame(Frame& out) {
  if (!fd_.valid()) return Status::kClosed;
  std::string error;
  int64_t waited_ms = 0;
  for (;;) {
    const FrameDecoder::Status st = decoder_.next(out, &error);
    if (st == FrameDecoder::Status::kFrame) return Status::kOk;
    if (st == FrameDecoder::Status::kError) {
      fd_.reset();
      return Status::kProtocol;
    }
    if (waited_ms >= opts_.recv_timeout_ms) return Status::kTimeout;
    const int slice = 100;
    const int r = net::wait_readable(fd_.get(), slice);
    if (r < 0) {
      fd_.reset();
      return Status::kClosed;
    }
    if (r == 0) {
      waited_ms += slice;
      continue;
    }
    uint8_t buf[4096];
    const long n = net::read_some(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    fd_.reset();
    return Status::kClosed;
  }
}

StreamClient::Status StreamClient::open(const OpenRequest& req, OpenAck* ack) {
  if (!send_frame(FrameType::kOpen, 0, encode_open(req))) return Status::kClosed;
  Frame frame;
  const Status st = recv_frame(frame);
  if (st != Status::kOk) return st;
  if (frame.is(FrameType::kError)) {
    if (!decode_error(frame.body, server_error_)) return Status::kProtocol;
    return Status::kError;
  }
  if (!frame.is(FrameType::kOpen) || !frame.reply()) return Status::kProtocol;
  if (ack != nullptr && !decode_open_ack(frame.body, *ack)) return Status::kProtocol;
  return Status::kOk;
}

StreamClient::Status StreamClient::resume(const ResumeRequest& req, ResumeAck* ack) {
  if (!send_frame(FrameType::kResume, 0, encode_resume(req))) return Status::kClosed;
  Frame frame;
  const Status st = recv_frame(frame);
  if (st != Status::kOk) return st;
  if (frame.is(FrameType::kError)) {
    if (!decode_error(frame.body, server_error_)) return Status::kProtocol;
    return Status::kError;
  }
  if (!frame.is(FrameType::kResume) || !frame.reply()) return Status::kProtocol;
  if (ack != nullptr && !decode_resume_ack(frame.body, *ack)) return Status::kProtocol;
  return Status::kOk;
}

StreamClient::Status StreamClient::recv_chunk(ChunkMsg* out, bool* last) {
  for (;;) {
    Frame frame;
    const Status st = recv_frame(frame);
    if (st != Status::kOk) return st;
    if (frame.is(FrameType::kHeartbeat) && frame.reply()) continue;
    if (frame.is(FrameType::kError)) {
      if (!decode_error(frame.body, server_error_)) return Status::kProtocol;
      return Status::kError;
    }
    if (!frame.is(FrameType::kChunk)) return Status::kProtocol;
    if (out != nullptr &&
        !decode_chunk(frame.body, *out, /*max_points=*/1u << 26)) {
      return Status::kProtocol;
    }
    if (last != nullptr) *last = frame.last();
    return Status::kOk;
  }
}

bool StreamClient::ack(uint64_t chunk_index) {
  AckMsg msg;
  msg.chunk_index = chunk_index;
  return send_frame(FrameType::kAck, 0, encode_ack(msg));
}

bool StreamClient::heartbeat() { return send_frame(FrameType::kHeartbeat, 0, {}); }

StreamClient::Status StreamClient::close_session(CloseStats* out) {
  if (!send_frame(FrameType::kClose, 0, {})) return Status::kClosed;
  for (;;) {
    Frame frame;
    const Status st = recv_frame(frame);
    if (st != Status::kOk) return st;
    // An early CLOSE can cross an in-flight CHUNK; skip stream traffic.
    if (frame.is(FrameType::kChunk)) continue;
    if (frame.is(FrameType::kHeartbeat) && frame.reply()) continue;
    if (frame.is(FrameType::kError)) {
      if (!decode_error(frame.body, server_error_)) return Status::kProtocol;
      return Status::kError;
    }
    if (!frame.is(FrameType::kClose) || !frame.reply()) return Status::kProtocol;
    if (out != nullptr && !decode_close_stats(frame.body, *out)) return Status::kProtocol;
    return Status::kOk;
  }
}

}  // namespace gendt::serve::stream
