#include "gendt/serve/stream/server.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <exception>

#include "gendt/net/socket.h"
#include "gendt/serve/error.h"

namespace gendt::serve::stream {

StreamServer::StreamServer(StreamServerConfig cfg, SourceFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {
  if (cfg_.clock == nullptr) cfg_.clock = &runtime::steady_clock();
  cfg_.chunk_windows = std::max(1, cfg_.chunk_windows);
  cfg_.max_chunk_windows = std::max(cfg_.chunk_windows, cfg_.max_chunk_windows);
}

StreamServer::~StreamServer() = default;

int64_t StreamServer::now_ms() const { return cfg_.clock->now_ms(); }

bool StreamServer::listen_unix(const std::string& path, std::string* error) {
  listen_fd_ = net::unix_listen(path, /*backlog=*/16, error);
  if (!listen_fd_.valid()) return false;
  net::set_nonblocking(listen_fd_.get(), true);
  return true;
}

void StreamServer::adopt(net::FdGuard fd) {
  runtime::MutexLock lock(adopt_mu_);
  adopted_.push_back(std::move(fd));
}

void StreamServer::request_drain() { drain_requested_.store(true, std::memory_order_release); }

StreamStats StreamServer::stats() const {
  runtime::MutexLock lock(stats_mu_);
  return stats_;
}

void StreamServer::enqueue(Conn& conn, FrameType type, uint8_t flags,
                           const std::vector<uint8_t>& body) {
  const std::vector<uint8_t> frame = encode_frame(type, flags, body);
  conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
}

void StreamServer::send_error(Conn& conn, StreamErrorCode code, const std::string& message) {
  ErrorMsg msg;
  msg.code = code;
  msg.message = message;
  enqueue(conn, FrameType::kError, 0, encode_error(msg));
  conn.close_after_flush = true;
}

void StreamServer::resolve(Session& s, Outcome outcome, StreamErrorCode code,
                           const std::string& message) {
  if (s.resolved) return;
  s.resolved = true;
  {
    runtime::MutexLock lock(stats_mu_);
    switch (outcome) {
      case Outcome::kOk: ++stats_.sessions_ok; break;
      case Outcome::kDegraded: ++stats_.sessions_degraded; break;
      case Outcome::kFailed: ++stats_.sessions_failed; break;
    }
  }
  if (s.conn >= 0) {
    const auto it = conns_.find(s.conn);
    if (it != conns_.end()) {
      if (code != StreamErrorCode::kNone) {
        send_error(it->second, code, message);
      } else if (outcome != Outcome::kOk) {
        it->second.close_after_flush = true;
      }
    }
  }
}

void StreamServer::detach_session(Session& s) {
  if (s.conn >= 0) {
    const auto it = conns_.find(s.conn);
    if (it != conns_.end()) it->second.session_id.clear();
  }
  s.conn = -1;
  s.detached_at_ms = now_ms();
}

void StreamServer::drop_conn(int conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  if (!it->second.session_id.empty()) {
    const auto sit = sessions_.find(it->second.session_id);
    if (sit != sessions_.end()) {
      if (sit->second.resolved) {
        sessions_.erase(sit);
      } else {
        detach_session(sit->second);  // stays resumable for the retention window
      }
    }
  }
  conns_.erase(it);
}

void StreamServer::drain_adopted() {
  std::vector<net::FdGuard> pending;
  {
    runtime::MutexLock lock(adopt_mu_);
    pending.swap(adopted_);
  }
  for (net::FdGuard& fd : pending) {
    net::set_nonblocking(fd.get(), true);
    const int id = next_conn_id_++;
    conns_.emplace(id, Conn(std::move(fd), cfg_.max_frame_bytes, now_ms()));
  }
}

void StreamServer::accept_ready() {
  if (!listen_fd_.valid()) return;
  for (;;) {
    net::FdGuard fd = net::accept_connection(listen_fd_.get());
    if (!fd.valid()) break;
    net::set_nonblocking(fd.get(), true);
    const int id = next_conn_id_++;
    conns_.emplace(id, Conn(std::move(fd), cfg_.max_frame_bytes, now_ms()));
  }
}

void StreamServer::read_conn(int conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  Conn& conn = it->second;

  // Drain to EAGAIN/EOF (the fd is non-blocking): a short read must not end
  // the pass, or an EOF queued behind the peer's final bytes goes unseen for
  // a tick — and a client that reconnects and RESUMEs immediately after a
  // kill would race the server's view of the old connection.
  uint8_t buf[4096];
  for (;;) {
    const long n = net::read_some(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity_ms = now_ms();
      conn.decoder.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // orderly EOF or hard error: either way the peer is gone
    break;
  }

  Frame frame;
  std::string error;
  for (;;) {
    // Re-find every iteration: a handler may have scheduled teardown.
    const auto cur = conns_.find(conn_id);
    if (cur == conns_.end() || cur->second.dead || cur->second.close_after_flush) return;
    const FrameDecoder::Status st = cur->second.decoder.next(frame, &error);
    if (st == FrameDecoder::Status::kNeedMore) return;
    if (st == FrameDecoder::Status::kError) {
      {
        runtime::MutexLock lock(stats_mu_);
        ++stats_.bad_frames;
      }
      if (!cur->second.session_id.empty()) {
        const auto sit = sessions_.find(cur->second.session_id);
        if (sit != sessions_.end())
          resolve(sit->second, Outcome::kFailed, StreamErrorCode::kBadFrame, error);
      }
      send_error(cur->second, StreamErrorCode::kBadFrame, error);
      return;
    }
    handle_frame(conn_id, frame);
  }
}

void StreamServer::handle_frame(int conn_id, const Frame& frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if (frame.is(FrameType::kOpen)) {
    handle_open(conn_id, frame);
  } else if (frame.is(FrameType::kResume)) {
    handle_resume(conn_id, frame);
  } else if (frame.is(FrameType::kAck)) {
    handle_ack(conn_id, frame);
  } else if (frame.is(FrameType::kHeartbeat)) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.heartbeats;
    }
    enqueue(conn, FrameType::kHeartbeat, kFlagReply, {});
  } else if (frame.is(FrameType::kClose)) {
    handle_close(conn_id);
  } else {
    // CHUNK/ERROR (and reply-flagged traffic) only flow server -> client.
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.bad_frames;
    }
    if (!conn.session_id.empty()) {
      const auto sit = sessions_.find(conn.session_id);
      if (sit != sessions_.end())
        resolve(sit->second, Outcome::kFailed, StreamErrorCode::kBadFrame,
                "unexpected frame type from client");
    }
    send_error(conn, StreamErrorCode::kBadFrame, "unexpected frame type from client");
  }
}

void StreamServer::handle_open(int conn_id, const Frame& frame) {
  Conn& conn = conns_.at(conn_id);
  if (!conn.session_id.empty()) {
    const auto sit = sessions_.find(conn.session_id);
    if (sit != sessions_.end())
      resolve(sit->second, Outcome::kFailed, StreamErrorCode::kInvalidRequest,
              "OPEN on a connection that already holds a session");
    send_error(conn, StreamErrorCode::kInvalidRequest, "connection already holds a session");
    return;
  }

  OpenRequest open;
  if (!decode_open(frame.body, open, cfg_.max_trajectory_points)) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.bad_frames;
    }
    send_error(conn, StreamErrorCode::kBadFrame, "malformed OPEN body");
    return;
  }

  // Admission control: every OPEN is a session for accounting purposes, even
  // the ones shed before a source exists — total counts admissions + sheds.
  if (draining() || drain_started_) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.sessions_total;
      ++stats_.sessions_shed;
    }
    send_error(conn, StreamErrorCode::kServerDraining, "server is draining");
    return;
  }
  if (static_cast<int>(sessions_.size()) >= cfg_.max_sessions) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.sessions_total;
      ++stats_.sessions_shed;
    }
    send_error(conn, StreamErrorCode::kOverloaded, "session table full");
    return;
  }

  OpenRequest negotiated = open;
  const int want = negotiated.chunk_windows == 0 ? cfg_.chunk_windows
                                                 : static_cast<int>(negotiated.chunk_windows);
  negotiated.chunk_windows =
      static_cast<uint32_t>(std::clamp(want, 1, cfg_.max_chunk_windows));

  StreamErrorCode code = StreamErrorCode::kInvalidRequest;
  std::string error = "source factory failed";
  std::unique_ptr<ChunkSource> source = factory_(negotiated, &code, &error);
  if (source == nullptr || source->meta().total_windows == 0) {
    if (source != nullptr) {
      code = StreamErrorCode::kInvalidRequest;
      error = "request yields no generation windows";
    }
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.sessions_total;
      ++stats_.sessions_failed;
    }
    send_error(conn, code, error);
    return;
  }

  const uint64_t n = next_session_++;
  Session s;
  s.id = "s" + std::to_string(n);
  s.token = runtime::derive_stream_seed(cfg_.token_seed, n);
  s.source = std::move(source);
  s.snap_acked = s.source->snapshot();
  s.conn = conn_id;
  conn.session_id = s.id;

  OpenAck ack;
  ack.session_id = s.id;
  ack.resume_token = s.token;
  ack.chunk_windows = s.source->meta().chunk_windows;
  ack.total_windows = s.source->meta().total_windows;
  ack.channel_names = s.source->meta().channel_names;
  ack.t0 = s.source->meta().t0;
  ack.period_s = s.source->meta().period_s;
  enqueue(conn, FrameType::kOpen, kFlagReply, encode_open_ack(ack));

  {
    runtime::MutexLock lock(stats_mu_);
    ++stats_.sessions_total;
  }
  sessions_.emplace(s.id, std::move(s));
}

void StreamServer::handle_resume(int conn_id, const Frame& frame) {
  Conn& conn = conns_.at(conn_id);
  if (!conn.session_id.empty()) {
    send_error(conn, StreamErrorCode::kInvalidRequest,
               "RESUME on a connection that already holds a session");
    return;
  }
  ResumeRequest req;
  if (!decode_resume(frame.body, req)) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.bad_frames;
    }
    send_error(conn, StreamErrorCode::kBadFrame, "malformed RESUME body");
    return;
  }
  if (drain_started_) {
    send_error(conn, StreamErrorCode::kServerDraining, "server is draining");
    return;
  }
  const auto sit = sessions_.find(req.session_id);
  if (sit == sessions_.end()) {
    send_error(conn, StreamErrorCode::kUnknownSession,
               "no such session (expired or never existed)");
    return;
  }
  Session& s = sit->second;
  if (s.conn >= 0) {
    // A client that reconnects immediately after a kill can race the
    // server's EOF read of the old connection within one tick: if the
    // owning connection is already dead (or gone), the session is detached
    // in everything but bookkeeping — detach it now so the RESUME lands.
    const auto owner = conns_.find(s.conn);
    if (owner == conns_.end() || owner->second.dead) detach_session(s);
  }
  if (s.conn >= 0 || s.resolved) {
    send_error(conn, StreamErrorCode::kInvalidRequest, "session is not resumable");
    return;
  }
  if (req.resume_token != s.token) {
    send_error(conn, StreamErrorCode::kBadResumeToken, "resume token mismatch");
    return;
  }

  if (req.chunks_have == s.acked) {
    // Client is at the last ACKed boundary; rewind to the matching snapshot
    // (drops any generated-but-unACKed chunk, which will be regenerated
    // bit-for-bit from the same source state).
    s.source->restore(*s.snap_acked);
    s.has_inflight = false;
    s.attempts = 0;
    s.last_sent = false;
  } else if (req.chunks_have == s.acked + 1 && s.has_inflight &&
             s.inflight.index == s.acked) {
    // Client received the in-flight chunk but its ACK was lost: count it.
    s.acked += 1;
    s.snap_acked = s.source->snapshot();
    s.has_inflight = false;
    s.attempts = 0;
  } else {
    send_error(conn, StreamErrorCode::kBadResumeToken,
               "client chunk cursor does not match session state");
    return;
  }

  s.conn = conn_id;
  s.detached_at_ms = 0;
  conn.session_id = s.id;
  {
    runtime::MutexLock lock(stats_mu_);
    ++stats_.resumes;
  }

  ResumeAck ack;
  ack.next_chunk_index = s.source->next_chunk_index();
  ack.total_windows = s.source->meta().total_windows;
  enqueue(conn, FrameType::kResume, kFlagReply, encode_resume_ack(ack));
}

void StreamServer::handle_ack(int conn_id, const Frame& frame) {
  Conn& conn = conns_.at(conn_id);
  if (conn.session_id.empty()) {
    send_error(conn, StreamErrorCode::kInvalidRequest, "ACK without a session");
    return;
  }
  const auto sit = sessions_.find(conn.session_id);
  if (sit == sessions_.end()) return;
  Session& s = sit->second;
  if (s.resolved) return;

  AckMsg ack;
  if (!decode_ack(frame.body, ack)) {
    {
      runtime::MutexLock lock(stats_mu_);
      ++stats_.bad_frames;
    }
    resolve(s, Outcome::kFailed, StreamErrorCode::kBadFrame, "malformed ACK body");
    return;
  }
  if (!s.has_inflight || ack.chunk_index != s.inflight.index) {
    resolve(s, Outcome::kFailed, StreamErrorCode::kInvalidRequest,
            "ACK does not match the in-flight chunk");
    return;
  }

  s.acked += 1;
  s.snap_acked = s.source->snapshot();
  s.has_inflight = false;
  s.attempts = 0;
  if (s.last_sent && s.source->done()) {
    resolve(s, Outcome::kOk, StreamErrorCode::kNone, "");
  }
}

void StreamServer::handle_close(int conn_id) {
  Conn& conn = conns_.at(conn_id);
  CloseStats out;
  if (!conn.session_id.empty()) {
    const auto sit = sessions_.find(conn.session_id);
    if (sit != sessions_.end()) {
      Session& s = sit->second;
      out.chunks_sent = s.chunks_sent;
      out.points_sent = s.points_sent;
      if (!s.resolved) {
        // Client-initiated abort before completion.
        resolve(s, Outcome::kFailed, StreamErrorCode::kNone, "");
      }
    }
  }
  enqueue(conn, FrameType::kClose, kFlagReply, encode_close_stats(out));
  conn.close_after_flush = true;
}

void StreamServer::apply_timeouts() {
  const int64_t now = now_ms();
  for (auto& [id, conn] : conns_) {
    if (conn.dead) continue;
    if (now - conn.last_activity_ms > cfg_.idle_timeout_ms) {
      conn.dead = true;  // drop_conn() in reap() detaches any session
    }
  }
  for (auto& [id, s] : sessions_) {
    if (s.resolved || s.conn >= 0) continue;
    if (now - s.detached_at_ms > cfg_.resume_retention_ms) {
      resolve(s, Outcome::kFailed, StreamErrorCode::kNone, "");  // abandoned
    }
  }
}

void StreamServer::apply_drain() {
  if (!drain_started_) return;
  const int64_t now = now_ms();
  const bool past_deadline = now - drain_start_ms_ >= cfg_.drain_deadline_ms;
  if (past_deadline) gen_cancel_.cancel();

  for (auto& [id, s] : sessions_) {
    if (s.resolved) continue;
    // A sent-but-unACKed chunk gets until the drain deadline to be ACKed;
    // everything else closes immediately with a clean draining error.
    if (s.conn >= 0 && s.has_inflight && !past_deadline) continue;
    resolve(s, Outcome::kDegraded, StreamErrorCode::kServerDraining, "server draining");
  }
  if (past_deadline) {
    for (auto& [id, conn] : conns_) conn.close_after_flush = true;
  }
}

void StreamServer::generate_ready() {
  if (drain_started_) return;

  std::vector<Session*> ready;
  for (auto& [id, s] : sessions_) {
    if (s.resolved || s.conn < 0 || s.has_inflight || s.source->done()) continue;
    const auto cit = conns_.find(s.conn);
    if (cit == conns_.end() || cit->second.dead || cit->second.close_after_flush) continue;
    ready.push_back(&s);
  }
  if (ready.empty()) return;

  struct Result {
    ChunkMsg msg;
    std::exception_ptr error;
  };
  std::vector<Result> results(ready.size());

  // Fan out in session order; each task touches only its own session's
  // source, and commits below happen sequentially in the same order — so
  // the transcript is identical at every worker count.
  runtime::parallel_tasks(cfg_.parallelism, static_cast<int>(ready.size()), [&](int i) {
    try {
      results[static_cast<size_t>(i)].msg = ready[static_cast<size_t>(i)]->source->next_chunk(&gen_cancel_);
    } catch (...) {
      results[static_cast<size_t>(i)].error = std::current_exception();
    }
  });

  for (size_t i = 0; i < ready.size(); ++i) {
    Session& s = *ready[i];
    Result& r = results[i];
    bool poisoned = false;
    if (r.error == nullptr) {
      for (const double v : r.msg.values) {
        if (!std::isfinite(v)) {
          poisoned = true;
          break;
        }
      }
    }

    if (r.error == nullptr && !poisoned) {
      s.inflight = std::move(r.msg);
      s.has_inflight = true;
      s.last_sent = s.source->done();
      const uint8_t flags = s.last_sent ? kFlagLast : 0;
      const auto cit = conns_.find(s.conn);
      if (cit != conns_.end()) {
        enqueue(cit->second, FrameType::kChunk, flags, encode_chunk(s.inflight));
      }
      s.chunks_sent += 1;
      s.points_sent += s.inflight.num_points;
      runtime::MutexLock lock(stats_mu_);
      ++stats_.chunks_sent;
      stats_.points_sent += s.inflight.num_points;
      continue;
    }

    // Rewind to the ACKed boundary (a poisoned chunk *committed*; a thrown
    // one did not, but the restore is idempotent either way).
    s.source->restore(*s.snap_acked);
    if (r.error != nullptr) {
      try {
        std::rethrow_exception(r.error);
      } catch (const runtime::CancelledError&) {
        resolve(s, Outcome::kDegraded, StreamErrorCode::kServerDraining,
                "chunk cancelled by drain");
        continue;
      } catch (const TransientError&) {
        // retryable; fall through to the attempt counter
      } catch (const std::exception& e) {
        resolve(s, Outcome::kFailed, StreamErrorCode::kModelFailure, e.what());
        continue;
      }
    }
    s.attempts += 1;
    if (s.attempts > cfg_.max_chunk_retries) {
      resolve(s, Outcome::kFailed, StreamErrorCode::kModelFailure,
              poisoned ? "model produced non-finite values" : "model failure persisted");
    }
  }
}

void StreamServer::flush_conn(int conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.dead) return;
  while (conn.out_pos < conn.outbox.size()) {
    const long n = net::write_some(conn.fd.get(), conn.outbox.data() + conn.out_pos,
                                   conn.outbox.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.dead = true;
    return;
  }
  conn.outbox.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush) conn.dead = true;
}

void StreamServer::reap() {
  std::vector<int> dead;
  for (const auto& [id, conn] : conns_) {
    if (conn.dead) dead.push_back(id);
  }
  for (const int id : dead) drop_conn(id);

  std::vector<std::string> done;
  for (const auto& [id, s] : sessions_) {
    if (s.resolved && s.conn < 0) done.push_back(id);
  }
  for (const std::string& id : done) sessions_.erase(id);
}

bool StreamServer::finished() {
  // A connection adopted but not yet drained into conns_ counts as live:
  // exiting while one sits in the queue would strand its client without
  // even a draining error (adopt() can race the drain flag by one tick).
  bool adopted_pending = false;
  {
    runtime::MutexLock lock(adopt_mu_);
    adopted_pending = !adopted_.empty();
  }
  const bool idle = sessions_.empty() && conns_.empty() && !adopted_pending;
  if (drain_started_ && idle) return true;
  uint64_t resolved = 0;
  {
    runtime::MutexLock lock(stats_mu_);
    resolved = stats_.resolved();
  }
  if (cfg_.exit_after_sessions > 0 && resolved >= cfg_.exit_after_sessions && idle) {
    return true;
  }
  if (cfg_.idle_exit_ms > 0) {
    if (!idle) {
      idle_since_ms_ = -1;
    } else if (idle_since_ms_ < 0) {
      idle_since_ms_ = now_ms();
    } else if (now_ms() - idle_since_ms_ >= cfg_.idle_exit_ms) {
      return true;
    }
  }
  return false;
}

bool StreamServer::poll_once(int timeout_ms) {
  drain_adopted();

  if ((draining() || (cfg_.drain != nullptr && cfg_.drain->cancelled())) && !drain_started_) {
    drain_requested_.store(true, std::memory_order_release);
    drain_started_ = true;
    drain_start_ms_ = now_ms();
    gen_cancel_.arm_deadline(*cfg_.clock, drain_start_ms_ + cfg_.drain_deadline_ms);
    listen_fd_.reset();  // stop accepting; queued connects fail fast
  }

  // Anything already actionable makes the poll a non-blocking peek.
  bool work_pending = drain_started_;
  for (const auto& [id, conn] : conns_) {
    if (conn.dead || conn.out_pos < conn.outbox.size()) {
      work_pending = true;
      break;
    }
  }
  if (!work_pending) {
    for (const auto& [id, s] : sessions_) {
      if (!s.resolved && s.conn >= 0 && !s.has_inflight && !s.source->done()) {
        work_pending = true;
        break;
      }
    }
  }

  std::vector<net::PollItem> items;
  std::vector<int> item_conn;  // conn id per item; -1 = listener
  if (listen_fd_.valid()) {
    net::PollItem li;
    li.fd = listen_fd_.get();
    li.want_read = true;
    items.push_back(li);
    item_conn.push_back(-1);
  }
  for (const auto& [id, conn] : conns_) {
    if (conn.dead) continue;
    net::PollItem it;
    it.fd = conn.fd.get();
    it.want_read = true;
    it.want_write = conn.out_pos < conn.outbox.size();
    items.push_back(it);
    item_conn.push_back(id);
  }

  if (!items.empty()) {
    net::poll_fds(items.data(), items.size(), work_pending ? 0 : timeout_ms);
  }

  for (size_t i = 0; i < items.size(); ++i) {
    if (item_conn[i] < 0) {
      if (items[i].readable) accept_ready();
      continue;
    }
    if (items[i].readable || items[i].hangup) read_conn(item_conn[i]);
  }

  apply_timeouts();
  apply_drain();
  generate_ready();

  std::vector<int> ids;
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const int id : ids) flush_conn(id);

  reap();
  return !finished();
}

void StreamServer::run() {
  while (poll_once(50)) {
  }
}

}  // namespace gendt::serve::stream
