#include "gendt/serve/stream/frame.h"

#include <array>
#include <cstring>

namespace gendt::serve::stream {

std::string_view to_string(StreamErrorCode code) {
  switch (code) {
    case StreamErrorCode::kNone:
      return "ok";
    case StreamErrorCode::kInvalidRequest:
      return "invalid_request";
    case StreamErrorCode::kOverloaded:
      return "overloaded";
    case StreamErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StreamErrorCode::kModelFailure:
      return "model_failure";
    case StreamErrorCode::kCancelled:
      return "cancelled";
    case StreamErrorCode::kBadFrame:
      return "bad_frame";
    case StreamErrorCode::kUnknownSession:
      return "unknown_session";
    case StreamErrorCode::kBadResumeToken:
      return "bad_resume_token";
    case StreamErrorCode::kServerDraining:
      return "server_draining";
  }
  return "unknown";
}

StreamErrorCode from_serve_error(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone:
      return StreamErrorCode::kNone;
    case ServeErrorCode::kInvalidRequest:
      return StreamErrorCode::kInvalidRequest;
    case ServeErrorCode::kOverloaded:
      return StreamErrorCode::kOverloaded;
    case ServeErrorCode::kDeadlineExceeded:
      return StreamErrorCode::kDeadlineExceeded;
    case ServeErrorCode::kModelFailure:
      return StreamErrorCode::kModelFailure;
    case ServeErrorCode::kCancelled:
      return StreamErrorCode::kCancelled;
  }
  return StreamErrorCode::kModelFailure;
}

namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

uint32_t load_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t crc32(const uint8_t* data, size_t n) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---- Wire primitives -------------------------------------------------------

void WireWriter::u32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void WireWriter::u64(uint64_t v) {
  u32(static_cast<uint32_t>(v));
  u32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::f64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<uint32_t>(s.size()));
  raw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool WireReader::take(size_t n, const uint8_t*& p) {
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  p = data_ + pos_;
  pos_ += n;
  return true;
}

bool WireReader::u8(uint8_t& v) {
  const uint8_t* p = nullptr;
  if (!take(1, p)) return false;
  v = p[0];
  return true;
}

bool WireReader::u32(uint32_t& v) {
  const uint8_t* p = nullptr;
  if (!take(4, p)) return false;
  v = load_u32(p);
  return true;
}

bool WireReader::u64(uint64_t& v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!u32(lo) || !u32(hi)) return false;
  v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool WireReader::f64(double& v) {
  uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool WireReader::str(std::string& s, size_t max_len) {
  uint32_t n = 0;
  if (!u32(n)) return false;
  if (n > max_len || n > remaining()) {
    ok_ = false;
    return false;
  }
  const uint8_t* p = nullptr;
  if (!take(n, p)) return false;
  s.assign(reinterpret_cast<const char*>(p), n);
  return true;
}

// ---- Frame codec -----------------------------------------------------------

std::vector<uint8_t> encode_frame(FrameType type, uint8_t flags,
                                  const std::vector<uint8_t>& body) {
  WireWriter w;
  w.u32(static_cast<uint32_t>(body.size()));
  w.u8(static_cast<uint8_t>(type));
  w.u8(flags);
  w.raw(body.data(), body.size());
  // CRC covers type ++ flags ++ body: skip the 4 length bytes.
  const std::vector<uint8_t>& so_far = w.bytes();
  w.u32(crc32(so_far.data() + 4, so_far.size() - 4));
  return w.take();
}

void FrameDecoder::feed(const uint8_t* data, size_t n) {
  if (poisoned_) return;  // connection is dead; don't grow the buffer
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_;
    return Status::kError;
  }
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return Status::kNeedMore;
  const uint8_t* p = buf_.data() + consumed_;

  // The length field alone decides admissibility — an oversized frame is
  // rejected as soon as the 4 length bytes arrive, before buffering (or
  // allocating) anything of its body.
  const uint32_t body_len = load_u32(p);
  if (body_len > max_body_) {
    poisoned_ = true;
    poison_ = "frame body length " + std::to_string(body_len) + " exceeds limit " +
              std::to_string(max_body_);
    if (error != nullptr) *error = poison_;
    return Status::kError;
  }
  const size_t total = kHeaderLen + body_len + kTrailerLen;
  if (avail < total) return Status::kNeedMore;

  const uint32_t want_crc = load_u32(p + kHeaderLen + body_len);
  const uint32_t got_crc = crc32(p + 4, 2 + body_len);
  if (want_crc != got_crc) {
    poisoned_ = true;
    poison_ = "frame CRC mismatch";
    if (error != nullptr) *error = poison_;
    return Status::kError;
  }
  const uint8_t type = p[4];
  if (type < static_cast<uint8_t>(FrameType::kOpen) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    poisoned_ = true;
    poison_ = "unknown frame type " + std::to_string(type);
    if (error != nullptr) *error = poison_;
    return Status::kError;
  }

  out.type = type;
  out.flags = p[5];
  out.body.assign(p + kHeaderLen, p + kHeaderLen + body_len);
  consumed_ += total;
  // Compact once the dead prefix dominates, amortizing the memmove.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  return Status::kFrame;
}

// ---- Message bodies --------------------------------------------------------

namespace {

bool read_magic(WireReader& r) {
  for (size_t i = 0; i < kMagicLen; ++i) {
    uint8_t b = 0;
    if (!r.u8(b) || b != static_cast<uint8_t>(kMagic[i])) return false;
  }
  return true;
}

}  // namespace

std::vector<uint8_t> encode_open(const OpenRequest& m) {
  WireWriter w;
  w.raw(reinterpret_cast<const uint8_t*>(kMagic), kMagicLen);
  w.str(m.model_id);
  w.u64(m.seed);
  w.u32(m.chunk_windows);
  w.u32(static_cast<uint32_t>(m.points.size()));
  for (const TrajectoryPoint& p : m.points) {
    w.f64(p.t);
    w.f64(p.lat);
    w.f64(p.lon);
  }
  return w.take();
}

bool decode_open(const std::vector<uint8_t>& body, OpenRequest& m, uint32_t max_points) {
  WireReader r(body.data(), body.size());
  if (!read_magic(r)) return false;
  uint32_t n = 0;
  if (!r.str(m.model_id) || !r.u64(m.seed) || !r.u32(m.chunk_windows) || !r.u32(n)) {
    return false;
  }
  if (n > max_points || static_cast<size_t>(n) * 24 != r.remaining()) return false;
  m.points.resize(n);
  for (TrajectoryPoint& p : m.points) {
    if (!r.f64(p.t) || !r.f64(p.lat) || !r.f64(p.lon)) return false;
  }
  return r.exhausted();
}

std::vector<uint8_t> encode_open_ack(const OpenAck& m) {
  WireWriter w;
  w.str(m.session_id);
  w.u64(m.resume_token);
  w.u32(m.chunk_windows);
  w.u32(m.total_windows);
  w.u32(static_cast<uint32_t>(m.channel_names.size()));
  for (const std::string& name : m.channel_names) w.str(name);
  w.f64(m.t0);
  w.f64(m.period_s);
  return w.take();
}

bool decode_open_ack(const std::vector<uint8_t>& body, OpenAck& m) {
  WireReader r(body.data(), body.size());
  uint32_t nch = 0;
  if (!r.str(m.session_id) || !r.u64(m.resume_token) || !r.u32(m.chunk_windows) ||
      !r.u32(m.total_windows) || !r.u32(nch)) {
    return false;
  }
  if (nch > 4096) return false;
  m.channel_names.resize(nch);
  for (std::string& name : m.channel_names) {
    if (!r.str(name)) return false;
  }
  if (!r.f64(m.t0) || !r.f64(m.period_s)) return false;
  return r.exhausted();
}

std::vector<uint8_t> encode_chunk(const ChunkMsg& m) {
  WireWriter w;
  w.u64(m.index);
  w.u32(m.first_window);
  w.u32(m.num_windows);
  w.u32(m.num_points);
  w.u32(m.num_channels);
  for (double v : m.values) w.f64(v);
  return w.take();
}

bool decode_chunk(const std::vector<uint8_t>& body, ChunkMsg& m, uint32_t max_points) {
  WireReader r(body.data(), body.size());
  if (!r.u64(m.index) || !r.u32(m.first_window) || !r.u32(m.num_windows) ||
      !r.u32(m.num_points) || !r.u32(m.num_channels)) {
    return false;
  }
  if (m.num_points > max_points || m.num_channels > 4096) return false;
  const size_t count = static_cast<size_t>(m.num_points) * m.num_channels;
  if (count * 8 != r.remaining()) return false;
  m.values.resize(count);
  for (double& v : m.values) {
    if (!r.f64(v)) return false;
  }
  return r.exhausted();
}

std::vector<uint8_t> encode_ack(const AckMsg& m) {
  WireWriter w;
  w.u64(m.chunk_index);
  return w.take();
}

bool decode_ack(const std::vector<uint8_t>& body, AckMsg& m) {
  WireReader r(body.data(), body.size());
  return r.u64(m.chunk_index) && r.exhausted();
}

std::vector<uint8_t> encode_resume(const ResumeRequest& m) {
  WireWriter w;
  w.raw(reinterpret_cast<const uint8_t*>(kMagic), kMagicLen);
  w.str(m.session_id);
  w.u64(m.resume_token);
  w.u64(m.chunks_have);
  return w.take();
}

bool decode_resume(const std::vector<uint8_t>& body, ResumeRequest& m) {
  WireReader r(body.data(), body.size());
  if (!read_magic(r)) return false;
  return r.str(m.session_id) && r.u64(m.resume_token) && r.u64(m.chunks_have) &&
         r.exhausted();
}

std::vector<uint8_t> encode_resume_ack(const ResumeAck& m) {
  WireWriter w;
  w.u64(m.next_chunk_index);
  w.u32(m.total_windows);
  return w.take();
}

bool decode_resume_ack(const std::vector<uint8_t>& body, ResumeAck& m) {
  WireReader r(body.data(), body.size());
  return r.u64(m.next_chunk_index) && r.u32(m.total_windows) && r.exhausted();
}

std::vector<uint8_t> encode_close_stats(const CloseStats& m) {
  WireWriter w;
  w.u64(m.chunks_sent);
  w.u64(m.points_sent);
  return w.take();
}

bool decode_close_stats(const std::vector<uint8_t>& body, CloseStats& m) {
  WireReader r(body.data(), body.size());
  return r.u64(m.chunks_sent) && r.u64(m.points_sent) && r.exhausted();
}

std::vector<uint8_t> encode_error(const ErrorMsg& m) {
  WireWriter w;
  w.u8(static_cast<uint8_t>(m.code));
  w.str(m.message);
  return w.take();
}

bool decode_error(const std::vector<uint8_t>& body, ErrorMsg& m) {
  WireReader r(body.data(), body.size());
  uint8_t code = 0;
  if (!r.u8(code) || code > static_cast<uint8_t>(StreamErrorCode::kServerDraining)) {
    return false;
  }
  m.code = static_cast<StreamErrorCode>(code);
  return r.str(m.message) && r.exhausted();
}

}  // namespace gendt::serve::stream
