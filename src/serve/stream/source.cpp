#include "gendt/serve/stream/source.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gendt::serve::stream {

namespace {

struct GenDTSnapshot final : SourceSnapshot {
  core::StreamSession::Snapshot snap;
};

struct ScriptedSnapshot final : SourceSnapshot {
  int next_window = 0;
  uint64_t next_chunk = 0;
};

}  // namespace

// ---- GenDTChunkSource ------------------------------------------------------

GenDTChunkSource::GenDTChunkSource(const core::GenDTModel& model, context::KpiNorm norm,
                                   std::vector<sim::Kpi> kpis,
                                   std::vector<context::Window> windows, uint64_t seed,
                                   int chunk_windows, std::vector<std::string> channel_names,
                                   double t0, double period_s)
    : session_(model, std::move(norm), std::move(kpis), std::move(windows), seed,
               chunk_windows) {
  meta_.total_windows = static_cast<uint32_t>(session_.total_windows());
  meta_.chunk_windows = static_cast<uint32_t>(session_.chunk_windows());
  meta_.num_channels = static_cast<uint32_t>(session_.num_channels());
  meta_.channel_names = std::move(channel_names);
  meta_.t0 = t0;
  meta_.period_s = period_s;
}

ChunkMsg GenDTChunkSource::next_chunk(const runtime::CancelToken* cancel) {
  ChunkMsg msg;
  msg.index = session_.next_chunk_index();
  msg.first_window = static_cast<uint32_t>(session_.next_window());
  const size_t before = session_.next_window();
  const core::GeneratedSeries series = session_.next_chunk(cancel);
  msg.num_windows = static_cast<uint32_t>(session_.next_window() - before);
  msg.num_channels = meta_.num_channels;
  const size_t points = series.channels.empty() ? 0 : series.channels[0].size();
  msg.num_points = static_cast<uint32_t>(points);
  msg.values.reserve(points * series.channels.size());
  for (size_t t = 0; t < points; ++t) {
    for (const std::vector<double>& col : series.channels) msg.values.push_back(col[t]);
  }
  return msg;
}

std::unique_ptr<SourceSnapshot> GenDTChunkSource::snapshot() const {
  auto snap = std::make_unique<GenDTSnapshot>();
  snap->snap = session_.snapshot();
  return snap;
}

void GenDTChunkSource::restore(const SourceSnapshot& snap) {
  const auto* s = dynamic_cast<const GenDTSnapshot*>(&snap);
  if (s == nullptr) throw std::logic_error("GenDTChunkSource: foreign snapshot");
  session_.restore(s->snap);
}

// ---- ScriptedChunkSource ---------------------------------------------------

ScriptedChunkSource::ScriptedChunkSource(Config cfg, FaultPlan plan,
                                         runtime::ManualClock* clock)
    : cfg_(cfg), plan_(std::move(plan)), clock_(clock) {
  if (cfg_.total_windows < 0 || cfg_.window_len <= 0 || cfg_.num_channels <= 0) {
    throw std::invalid_argument("ScriptedChunkSource: bad config");
  }
  cfg_.chunk_windows = std::max(1, cfg_.chunk_windows);
  meta_.total_windows = static_cast<uint32_t>(cfg_.total_windows);
  meta_.chunk_windows = static_cast<uint32_t>(cfg_.chunk_windows);
  meta_.num_channels = static_cast<uint32_t>(cfg_.num_channels);
  for (int ch = 0; ch < cfg_.num_channels; ++ch) {
    meta_.channel_names.push_back("ch" + std::to_string(ch));
  }
  attempts_.assign(static_cast<size_t>(cfg_.total_windows), 0);
}

ChunkMsg ScriptedChunkSource::next_chunk(const runtime::CancelToken* cancel) {
  ChunkMsg msg;
  msg.index = next_chunk_;
  msg.first_window = static_cast<uint32_t>(next_window_);
  const int end = std::min(cfg_.total_windows, next_window_ + cfg_.chunk_windows);
  msg.num_windows = static_cast<uint32_t>(end - next_window_);
  msg.num_channels = static_cast<uint32_t>(cfg_.num_channels);
  msg.num_points = msg.num_windows * static_cast<uint32_t>(cfg_.window_len);
  msg.values.reserve(static_cast<size_t>(msg.num_points) * msg.num_channels);

  // Values accumulate in msg; the cursor commits only at the end, so a
  // fault throw (or drain cancel) leaves the source at the chunk boundary —
  // the retried/resumed chunk replays the identical windows.
  for (int w = next_window_; w < end; ++w) {
    runtime::check_cancel(cancel);
    const int attempt = ++attempts_[static_cast<size_t>(w)];
    bool poison = false;
    for (const Fault& f : plan_.at(cfg_.request_index, w)) {
      switch (f.kind) {
        case Fault::Kind::kDelay:
          if (attempt <= f.attempts && clock_ != nullptr) clock_->advance_ms(f.delay_ms);
          break;
        case Fault::Kind::kThrow:
          if (attempt <= f.attempts) throw TransientError("injected transient failure");
          break;
        case Fault::Kind::kPoison:
          if (attempt <= f.attempts) poison = true;
          break;
      }
    }
    if (clock_ != nullptr) clock_->advance_ms(cfg_.window_cost_ms);
    for (int t = 0; t < cfg_.window_len; ++t) {
      for (int ch = 0; ch < cfg_.num_channels; ++ch) {
        msg.values.push_back(poison ? std::numeric_limits<double>::quiet_NaN()
                                    : ScriptedGenerator::expected_value(cfg_.seed, w, t, ch));
      }
    }
  }

  next_window_ = end;
  ++next_chunk_;
  return msg;
}

std::unique_ptr<SourceSnapshot> ScriptedChunkSource::snapshot() const {
  auto snap = std::make_unique<ScriptedSnapshot>();
  snap->next_window = next_window_;
  snap->next_chunk = next_chunk_;
  return snap;
}

void ScriptedChunkSource::restore(const SourceSnapshot& snap) {
  const auto* s = dynamic_cast<const ScriptedSnapshot*>(&snap);
  if (s == nullptr) throw std::logic_error("ScriptedChunkSource: foreign snapshot");
  next_window_ = s->next_window;
  next_chunk_ = s->next_chunk;
}

std::vector<double> ScriptedChunkSource::expected_chunk(const Config& cfg, uint64_t index) {
  const int chunk_windows = std::max(1, cfg.chunk_windows);
  const int first = static_cast<int>(index) * chunk_windows;
  const int end = std::min(cfg.total_windows, first + chunk_windows);
  std::vector<double> values;
  for (int w = first; w < end; ++w) {
    for (int t = 0; t < cfg.window_len; ++t) {
      for (int ch = 0; ch < cfg.num_channels; ++ch) {
        values.push_back(ScriptedGenerator::expected_value(cfg.seed, w, t, ch));
      }
    }
  }
  return values;
}

}  // namespace gendt::serve::stream
