#include "gendt/serve/router.h"

#include <algorithm>
#include <thread>

#include "bounded_queue.h"

namespace gendt::serve {

std::vector<Response> ModelRouter::serve(const std::vector<RoutedRequest>& requests) {
  std::vector<Response> out(requests.size());
  if (requests.empty()) return out;

  // leases[i] is written by the submitter strictly before index i is pushed
  // (and read by exactly one worker strictly after it is popped); the queue
  // mutex orders the two, same as out[i].
  std::vector<ModelRegistry::Lease> leases(requests.size());

  const EngineConfig& cfg = engine_.config();
  internal::BoundedQueue queue(static_cast<size_t>(std::max(1, cfg.max_queue)));
  const int workers = std::max(1, cfg.workers);
  const size_t batch_max = static_cast<size_t>(std::max(1, cfg.batch_max));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([this, &queue, &requests, &out, &leases, batch_max] {
      internal::drain_queue(queue, batch_max, [&](size_t idx) {
        const RoutedRequest& routed = requests[idx];
        out[idx] =
            engine_.execute_with(leases[idx].generator(), routed.request, static_cast<int>(idx));
        registry_.complete(routed.model_id, out[idx].outcome);
        // Release AFTER complete: in-flight never undercounts leased work.
        // If this was the last lease on a swapped-out version, retirement
        // runs right here, on this worker.
        leases[idx].release();
      });
    });
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    ModelRegistry::Admission admission = registry_.admit(requests[i].model_id);
    if (admission.unknown) {
      out[i].outcome = Outcome::kError;
      out[i].error = {ServeErrorCode::kInvalidRequest,
                      "unknown model id '" + requests[i].model_id + "'"};
      continue;
    }
    if (!admission.lease) {
      out[i].outcome = Outcome::kShed;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "model '" + requests[i].model_id + "' admission budget exhausted"};
      continue;
    }
    leases[i] = std::move(admission.lease);
    if (cfg.backpressure == EngineConfig::Backpressure::kBlock) {
      queue.push_block(i);
    } else if (!queue.try_push(i)) {
      // Global queue shed after a successful per-model admit: hand the
      // budget slot back and re-tally as shed so the model's invariant
      // (admitted == ok + degraded + failed) still holds.
      leases[i].release();
      registry_.abandon(requests[i].model_id);
      out[i].outcome = Outcome::kShed;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "admission queue full (" + std::to_string(cfg.max_queue) + ")"};
    }
  }

  queue.close();
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace gendt::serve
