#include "gendt/serve/router.h"

#include <algorithm>
#include <thread>

#include "bounded_queue.h"

namespace gendt::serve {

std::vector<Response> ModelRouter::serve(const std::vector<RoutedRequest>& requests) {
  std::vector<Response> out(requests.size());
  if (requests.empty()) return out;

  // leases[i] is written by the submitter strictly before index i is pushed
  // (and read by exactly one worker strictly after it is popped); the queue
  // mutex orders the two, same as out[i].
  std::vector<ModelRegistry::Lease> leases(requests.size());

  const EngineConfig& cfg = engine_.config();
  internal::BoundedQueue queue(static_cast<size_t>(std::max(1, cfg.max_queue)));
  const int workers = std::max(1, cfg.workers);
  const size_t batch_max = static_cast<size_t>(std::max(1, cfg.batch_max));
  const bool lane_batch = cfg.lane_batch && batch_max > 1;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([this, &queue, &requests, &out, &leases, batch_max, lane_batch] {
      // Terminal bookkeeping shared by both drain shapes: complete BEFORE
      // release, so in-flight never undercounts leased work. If this was the
      // last lease on a swapped-out version, retirement runs right here, on
      // this worker.
      auto finish = [&](size_t idx, Response&& r) {
        out[idx] = std::move(r);
        registry_.complete(requests[idx].model_id, out[idx].outcome);
        leases[idx].release();
      };
      if (lane_batch) {
        std::vector<size_t> batch;
        for (;;) {
          queue.pop_batch(batch, batch_max);
          if (batch.empty()) return;  // closed and drained
          // Lanes of one rollout must share weights, so group the drained
          // batch by leased model version (first-seen order — deterministic
          // given the batch, and responses are keyed by original index and
          // bitwise independent of grouping anyway).
          std::vector<std::pair<const core::TimeSeriesGenerator*, std::vector<size_t>>> groups;
          for (size_t idx : batch) {
            const core::TimeSeriesGenerator* g = &leases[idx].generator();
            auto it = std::find_if(groups.begin(), groups.end(),
                                   [g](const auto& p) { return p.first == g; });
            if (it == groups.end())
              groups.push_back({g, {idx}});
            else
              it->second.push_back(idx);
          }
          for (auto& [gen, idxs] : groups) {
            engine_.execute_lane_batch(
                *gen, idxs,
                [&](size_t idx) -> const Request& { return requests[idx].request; },
                [&](size_t idx, Response&& r) { finish(idx, std::move(r)); });
          }
        }
      }
      internal::drain_queue(queue, batch_max, [&](size_t idx) {
        finish(idx, engine_.execute_with(leases[idx].generator(), requests[idx].request,
                                         static_cast<int>(idx)));
      });
    });
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    ModelRegistry::Admission admission = registry_.admit(requests[i].model_id);
    if (admission.unknown) {
      out[i].outcome = Outcome::kError;
      out[i].error = {ServeErrorCode::kInvalidRequest,
                      "unknown model id '" + requests[i].model_id + "'"};
      continue;
    }
    if (!admission.lease) {
      out[i].outcome = Outcome::kShed;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "model '" + requests[i].model_id + "' admission budget exhausted"};
      continue;
    }
    leases[i] = std::move(admission.lease);
    if (cfg.backpressure == EngineConfig::Backpressure::kBlock) {
      queue.push_block(i);
    } else if (!queue.try_push(i)) {
      // Global queue shed after a successful per-model admit: hand the
      // budget slot back and re-tally as shed so the model's invariant
      // (admitted == ok + degraded + failed) still holds.
      leases[i].release();
      registry_.abandon(requests[i].model_id);
      out[i].outcome = Outcome::kShed;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "admission queue full (" + std::to_string(cfg.max_queue) + ")"};
    }
  }

  queue.close();
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace gendt::serve
