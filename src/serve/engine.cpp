#include "gendt/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <random>
#include <thread>

#include "gendt/runtime/mutex.h"
#include "gendt/runtime/thread_pool.h"

namespace gendt::serve {

std::string_view to_string(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone: return "none";
    case ServeErrorCode::kInvalidRequest: return "invalid-request";
    case ServeErrorCode::kOverloaded: return "overloaded";
    case ServeErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ServeErrorCode::kModelFailure: return "model-failure";
    case ServeErrorCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

namespace {

/// MPMC bounded queue of request indices: the admission boundary. close()
/// releases every waiter; pop() returns false once closed and drained.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t cap) : cap_(std::max<size_t>(1, cap)) {}

  void push_block(size_t v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      not_full_.wait(lock, mu_, [this]() GENDT_REQUIRES(mu_) {
        return q_.size() < cap_ || closed_;
      });
      if (closed_) return;  // serve() never closes while submitting
      q_.push_back(v);
    }
    not_empty_.notify_one();
  }

  bool try_push(size_t v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      if (closed_ || q_.size() >= cap_) return false;
      q_.push_back(v);
    }
    not_empty_.notify_one();
    return true;
  }

  bool pop(size_t& v) GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      not_empty_.wait(lock, mu_,
                      [this]() GENDT_REQUIRES(mu_) { return !q_.empty() || closed_; });
      if (q_.empty()) return false;  // closed and drained
      v = q_.front();
      q_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Drain up to `max_n` queued indices in FIFO order into `batch` (cleared
  /// first). Blocks until at least one is available; returns an empty batch
  /// only once closed and drained. Takes what is there — it never waits to
  /// fill the batch, so batching adds no latency when traffic is sparse.
  void pop_batch(std::vector<size_t>& batch, size_t max_n) GENDT_EXCLUDES(mu_) {
    batch.clear();
    {
      runtime::MutexLock lock(mu_);
      not_empty_.wait(lock, mu_,
                      [this]() GENDT_REQUIRES(mu_) { return !q_.empty() || closed_; });
      while (!q_.empty() && batch.size() < max_n) {
        batch.push_back(q_.front());
        q_.pop_front();
      }
    }
    if (!batch.empty()) not_full_.notify_all();
  }

  void close() GENDT_EXCLUDES(mu_) {
    {
      runtime::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  runtime::Mutex mu_;
  runtime::CondVar not_full_;
  runtime::CondVar not_empty_;
  std::deque<size_t> q_ GENDT_GUARDED_BY(mu_);
  const size_t cap_;
  bool closed_ GENDT_GUARDED_BY(mu_) = false;
};

size_t expected_length(const Request& request) {
  size_t len = 0;
  for (const auto& w : request.windows) len += static_cast<size_t>(w.len);
  return len;
}

/// Poison/shape screen on a generated series: structurally complete and
/// every value finite. A model that "succeeds" with garbage is a model
/// failure the client must never have to discover downstream.
bool validate_series(const core::GeneratedSeries& series, size_t want_len, int want_channels,
                     std::string& why) {
  if (series.channels.empty()) {
    why = "no channels";
    return false;
  }
  if (want_channels > 0 && series.channels.size() != static_cast<size_t>(want_channels)) {
    why = "channel count " + std::to_string(series.channels.size()) + ", expected " +
          std::to_string(want_channels);
    return false;
  }
  for (size_t ch = 0; ch < series.channels.size(); ++ch) {
    if (series.channels[ch].size() != want_len) {
      why = "channel " + std::to_string(ch) + " length " +
            std::to_string(series.channels[ch].size()) + ", expected " + std::to_string(want_len);
      return false;
    }
    for (double v : series.channels[ch]) {
      if (!std::isfinite(v)) {
        why = "non-finite value in channel " + std::to_string(ch);
        return false;
      }
    }
  }
  return true;
}

bool validate_request(const Request& request, std::string& why) {
  if (request.windows.empty()) {
    why = "request has no windows";
    return false;
  }
  for (const auto& w : request.windows) {
    if (w.len <= 0) {
      why = "window with non-positive length";
      return false;
    }
  }
  if (request.deadline_ms < -1) {
    why = "negative deadline";
    return false;
  }
  return true;
}

}  // namespace

GenerationEngine::GenerationEngine(const core::TimeSeriesGenerator& primary, EngineConfig cfg)
    : primary_(primary), cfg_(cfg) {}

int64_t GenerationEngine::backoff_delay_ms(int request_index, int attempt) const {
  // Exponential base with full-jitter from a per-(request, attempt) seeded
  // stream: reproducible, and uncorrelated across requests so a thundering
  // herd of retries spreads out.
  const int64_t base = std::max<int64_t>(1, cfg_.backoff_base_ms);
  const int shift = std::min(attempt - 1, 20);
  const int64_t expo = base << shift;
  std::mt19937_64 rng(runtime::derive_stream_seed(
      cfg_.backoff_jitter_seed,
      (static_cast<uint64_t>(request_index) << 8) ^ static_cast<uint64_t>(attempt)));
  std::uniform_int_distribution<int64_t> jitter(0, base - 1);
  return expo + (base > 1 ? jitter(rng) : 0);
}

bool GenerationEngine::run_fallback(const Request& request, Response& response) const {
  if (fallback_ == nullptr) return false;
  try {
    core::GeneratedSeries series = fallback_->generate(request.windows, request.seed, nullptr);
    std::string why;
    if (!validate_series(series, expected_length(request), cfg_.expected_channels, why)) {
      fallback_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    response.series = std::move(series);
    response.outcome = Outcome::kDegraded;
    response.fallback_used = true;
    return true;
  } catch (const std::exception&) {
    fallback_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

Response GenerationEngine::execute(const Request& request, int request_index) {
  Response response;

  std::string why;
  if (!validate_request(request, why)) {
    response.error = {ServeErrorCode::kInvalidRequest, why};
    failed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  const runtime::Clock& clock =
      request.virtual_clock != nullptr ? static_cast<const runtime::Clock&>(*request.virtual_clock)
                                       : *cfg_.clock;
  runtime::CancelToken local_token;
  runtime::CancelToken* token = request.cancel != nullptr ? request.cancel : &local_token;
  const int64_t budget =
      request.deadline_ms >= 0 ? request.deadline_ms : cfg_.default_deadline_ms;
  if (budget >= 0) token->arm_deadline(clock, clock.now_ms() + budget);

  const size_t want_len = expected_length(request);
  const int max_attempts = 1 + std::max(0, cfg_.max_retries);
  ServeError last_error;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      const int64_t wait = backoff_delay_ms(request_index, attempt);
      if (wait >= token->remaining_ms()) {
        // The backoff alone would blow the budget — stop retrying under
        // deadline pressure and let the degradation path answer.
        last_error = {ServeErrorCode::kDeadlineExceeded,
                      "deadline reached while backing off after: " + last_error.message};
        break;
      }
      if (request.virtual_clock != nullptr) {
        request.virtual_clock->advance_ms(wait);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      }
    }
    const runtime::CancelToken::Reason pre = token->reason();
    if (pre != runtime::CancelToken::Reason::kNone) {
      last_error = pre == runtime::CancelToken::Reason::kCancelled
                       ? ServeError{ServeErrorCode::kCancelled, "cancelled before attempt"}
                       : ServeError{ServeErrorCode::kDeadlineExceeded,
                                    "deadline expired before attempt"};
      break;
    }

    response.attempts = attempt + 1;
    try {
      core::GeneratedSeries series = primary_.generate(request.windows, request.seed, token);
      if (!validate_series(series, want_len, cfg_.expected_channels, why)) {
        last_error = {ServeErrorCode::kModelFailure, "poisoned output: " + why};
        continue;  // retryable: the poison may be transient
      }
      response.series = std::move(series);
      response.outcome = Outcome::kOk;
      ok_.fetch_add(1, std::memory_order_relaxed);
      return response;
    } catch (const runtime::CancelledError& e) {
      last_error = e.reason() == runtime::CancelToken::Reason::kCancelled
                       ? ServeError{ServeErrorCode::kCancelled, e.what()}
                       : ServeError{ServeErrorCode::kDeadlineExceeded, e.what()};
      break;  // cancellation is never retried
    } catch (const TransientError& e) {
      last_error = {ServeErrorCode::kModelFailure, e.what()};
      continue;
    } catch (const std::exception& e) {
      last_error = {ServeErrorCode::kModelFailure, std::string("permanent: ") + e.what()};
      break;  // non-transient model failure: retrying is wasted budget
    }
  }

  if (last_error.code == ServeErrorCode::kDeadlineExceeded)
    deadline_expirations_.fetch_add(1, std::memory_order_relaxed);

  // Graceful degradation: a blown deadline (policy-gated) or exhausted/
  // permanent model failure falls back; an explicit client cancel never
  // does — the client walked away.
  const bool degradable =
      last_error.code == ServeErrorCode::kModelFailure ||
      (last_error.code == ServeErrorCode::kDeadlineExceeded && cfg_.fallback_on_deadline);
  if (degradable && run_fallback(request, response)) {
    response.error = last_error;  // why the primary path lost
    degraded_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  response.outcome = Outcome::kError;
  response.error = last_error;
  failed_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::vector<Response> GenerationEngine::serve(const std::vector<Request>& requests) {
  std::vector<Response> out(requests.size());
  if (requests.empty()) return out;

  BoundedQueue queue(static_cast<size_t>(std::max(1, cfg_.max_queue)));
  const int workers = std::max(1, cfg_.workers);
  const size_t batch_max = static_cast<size_t>(std::max(1, cfg_.batch_max));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([this, &queue, &requests, &out, batch_max] {
      if (batch_max == 1) {
        size_t idx = 0;
        while (queue.pop(idx)) out[idx] = execute(requests[idx], static_cast<int>(idx));
        return;
      }
      std::vector<size_t> batch;
      for (;;) {
        queue.pop_batch(batch, batch_max);
        if (batch.empty()) return;  // closed and drained
        if (batch.size() == 1) {
          const size_t idx = batch[0];
          out[idx] = execute(requests[idx], static_cast<int>(idx));
          continue;
        }
        // One pool task per request. execute() is keyed by the ORIGINAL
        // request index — never the batch slot — so every response is
        // bitwise identical whatever batch it happened to ride in.
        runtime::parallel_tasks(runtime::Parallelism{.threads = static_cast<int>(batch.size())},
                                static_cast<int>(batch.size()), [&](int bi) {
                                  const size_t idx = batch[static_cast<size_t>(bi)];
                                  out[idx] = execute(requests[idx], static_cast<int>(idx));
                                });
      }
    });
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    if (cfg_.backpressure == EngineConfig::Backpressure::kBlock) {
      queue.push_block(i);
      admitted_.fetch_add(1, std::memory_order_relaxed);
    } else if (queue.try_push(i)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out[i].outcome = Outcome::kError;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "admission queue full (" + std::to_string(cfg_.max_queue) + ")"};
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  queue.close();
  for (auto& t : pool) t.join();
  return out;
}

GenerationEngine::Stats GenerationEngine::stats() const {
  Stats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.deadline_expirations = deadline_expirations_.load(std::memory_order_relaxed);
  s.fallback_failures = fallback_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gendt::serve
