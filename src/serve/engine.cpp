#include "gendt/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <thread>

#include "bounded_queue.h"

#include "gendt/runtime/mutex.h"
#include "gendt/runtime/thread_pool.h"

namespace gendt::serve {

std::string_view to_string(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone: return "none";
    case ServeErrorCode::kInvalidRequest: return "invalid-request";
    case ServeErrorCode::kOverloaded: return "overloaded";
    case ServeErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ServeErrorCode::kModelFailure: return "model-failure";
    case ServeErrorCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kError: return "error";
    case Outcome::kShed: return "shed";
  }
  return "unknown";
}

namespace {

size_t expected_length(const Request& request) {
  size_t len = 0;
  for (const auto& w : request.windows) len += static_cast<size_t>(w.len);
  return len;
}

/// Poison/shape screen on a generated series: structurally complete and
/// every value finite. A model that "succeeds" with garbage is a model
/// failure the client must never have to discover downstream.
bool validate_series(const core::GeneratedSeries& series, size_t want_len, int want_channels,
                     std::string& why) {
  if (series.channels.empty()) {
    why = "no channels";
    return false;
  }
  if (want_channels > 0 && series.channels.size() != static_cast<size_t>(want_channels)) {
    why = "channel count " + std::to_string(series.channels.size()) + ", expected " +
          std::to_string(want_channels);
    return false;
  }
  for (size_t ch = 0; ch < series.channels.size(); ++ch) {
    if (series.channels[ch].size() != want_len) {
      why = "channel " + std::to_string(ch) + " length " +
            std::to_string(series.channels[ch].size()) + ", expected " + std::to_string(want_len);
      return false;
    }
    for (double v : series.channels[ch]) {
      if (!std::isfinite(v)) {
        why = "non-finite value in channel " + std::to_string(ch);
        return false;
      }
    }
  }
  return true;
}

bool validate_request(const Request& request, std::string& why) {
  if (request.windows.empty()) {
    why = "request has no windows";
    return false;
  }
  for (const auto& w : request.windows) {
    if (w.len <= 0) {
      why = "window with non-positive length";
      return false;
    }
  }
  if (request.deadline_ms < -1) {
    why = "negative deadline";
    return false;
  }
  return true;
}

}  // namespace

GenerationEngine::GenerationEngine(const core::TimeSeriesGenerator& primary, EngineConfig cfg)
    : primary_(&primary), cfg_(cfg) {}

GenerationEngine::GenerationEngine(EngineConfig cfg) : primary_(nullptr), cfg_(cfg) {}

int64_t GenerationEngine::backoff_delay_ms(int request_index, int attempt,
                                           int64_t budget_ms) const {
  // Exponential base with full-jitter from a per-(request, attempt) seeded
  // stream: reproducible, and uncorrelated across requests so a thundering
  // herd of retries spreads out.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t base = std::max<int64_t>(1, cfg_.backoff_base_ms);
  const int shift = std::min(attempt - 1, 20);
  // Saturate instead of shifting into signed overflow: base << shift is UB
  // the moment base > 2^(63-shift), which a large backoff_base_ms reaches
  // by attempt 2. The saturated value is immediately clamped below anyway.
  int64_t wait = base > (kMax >> shift) ? kMax : base << shift;
  if (base > 1) {
    // Nested derive_stream_seed gives every (request, attempt) pair its own
    // 64-bit stream. The former mix `(request_index << 8) ^ attempt`
    // collided — e.g. (request 0, attempt 257) and (request 1, attempt 1)
    // shared a jitter stream — correlating exactly the retries that backoff
    // is supposed to spread apart.
    std::mt19937_64 rng(runtime::derive_stream_seed(
        runtime::derive_stream_seed(cfg_.backoff_jitter_seed,
                                    static_cast<uint64_t>(request_index)),
        static_cast<uint64_t>(attempt)));
    std::uniform_int_distribution<int64_t> jitter(0, base - 1);
    const int64_t j = jitter(rng);
    wait = j > kMax - wait ? kMax : wait + j;
  }
  wait = std::min(wait, std::max<int64_t>(0, cfg_.backoff_max_ms));
  // Clamp to the remaining deadline budget: a wait the budget cannot absorb
  // comes back as exactly the budget, which the retry loop reads as
  // "backing off would blow the deadline" and stops retrying.
  if (budget_ms >= 0) wait = std::min(wait, budget_ms);
  return wait;
}

bool GenerationEngine::run_fallback(const Request& request, const runtime::Clock& clock,
                                    Response& response) const {
  if (fallback_ == nullptr) return false;
  // The degradation path gets its own small grace budget. The request's
  // token is usually already tripped when we get here (that is why we are
  // degrading), so reusing it would cancel the fallback before it produced
  // anything; passing nullptr (the old behavior) let a slow fallback run
  // unbounded after the deadline it was supposed to rescue.
  runtime::CancelToken grace;
  if (cfg_.fallback_grace_ms >= 0)
    grace.arm_deadline(clock, clock.now_ms() + cfg_.fallback_grace_ms);
  try {
    core::GeneratedSeries series = fallback_->generate(request.windows, request.seed, &grace);
    std::string why;
    if (!validate_series(series, expected_length(request), cfg_.expected_channels, why)) {
      fallback_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    response.series = std::move(series);
    response.outcome = Outcome::kDegraded;
    response.fallback_used = true;
    return true;
  } catch (const std::exception&) {
    fallback_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

Response GenerationEngine::execute(const Request& request, int request_index) {
  if (primary_ == nullptr) {
    Response response;
    response.error = {ServeErrorCode::kInvalidRequest,
                      "engine has no primary generator (use execute_with)"};
    failed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  return execute_with(*primary_, request, request_index);
}

Response GenerationEngine::execute_with(const core::TimeSeriesGenerator& primary,
                                        const Request& request, int request_index) {
  Response response;

  std::string why;
  if (!validate_request(request, why)) {
    response.error = {ServeErrorCode::kInvalidRequest, why};
    failed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  const runtime::Clock& clock =
      request.virtual_clock != nullptr ? static_cast<const runtime::Clock&>(*request.virtual_clock)
                                       : *cfg_.clock;
  runtime::CancelToken local_token;
  runtime::CancelToken* token = request.cancel != nullptr ? request.cancel : &local_token;
  const int64_t budget =
      request.deadline_ms >= 0 ? request.deadline_ms : cfg_.default_deadline_ms;
  if (budget >= 0) token->arm_deadline(clock, clock.now_ms() + budget);

  const size_t want_len = expected_length(request);
  const int max_attempts = 1 + std::max(0, cfg_.max_retries);
  ServeError last_error;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      const int64_t remaining = token->remaining_ms();
      const bool bounded = remaining != runtime::CancelToken::kNoDeadline;
      const int64_t wait =
          backoff_delay_ms(request_index, attempt, bounded ? remaining : int64_t{-1});
      if (bounded && wait >= remaining) {
        // The backoff alone would blow the budget — stop retrying under
        // deadline pressure and let the degradation path answer.
        last_error = {ServeErrorCode::kDeadlineExceeded,
                      "deadline reached while backing off after: " + last_error.message};
        break;
      }
      if (request.virtual_clock != nullptr) {
        request.virtual_clock->advance_ms(wait);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      }
    }
    const runtime::CancelToken::Reason pre = token->reason();
    if (pre != runtime::CancelToken::Reason::kNone) {
      last_error = pre == runtime::CancelToken::Reason::kCancelled
                       ? ServeError{ServeErrorCode::kCancelled, "cancelled before attempt"}
                       : ServeError{ServeErrorCode::kDeadlineExceeded,
                                    "deadline expired before attempt"};
      break;
    }

    response.attempts = attempt + 1;
    try {
      core::GeneratedSeries series = primary.generate(request.windows, request.seed, token);
      if (!validate_series(series, want_len, cfg_.expected_channels, why)) {
        last_error = {ServeErrorCode::kModelFailure, "poisoned output: " + why};
        continue;  // retryable: the poison may be transient
      }
      response.series = std::move(series);
      response.outcome = Outcome::kOk;
      ok_.fetch_add(1, std::memory_order_relaxed);
      return response;
    } catch (const runtime::CancelledError& e) {
      last_error = e.reason() == runtime::CancelToken::Reason::kCancelled
                       ? ServeError{ServeErrorCode::kCancelled, e.what()}
                       : ServeError{ServeErrorCode::kDeadlineExceeded, e.what()};
      break;  // cancellation is never retried
    } catch (const TransientError& e) {
      last_error = {ServeErrorCode::kModelFailure, e.what()};
      continue;
    } catch (const std::exception& e) {
      last_error = {ServeErrorCode::kModelFailure, std::string("permanent: ") + e.what()};
      break;  // non-transient model failure: retrying is wasted budget
    }
  }

  if (last_error.code == ServeErrorCode::kDeadlineExceeded)
    deadline_expirations_.fetch_add(1, std::memory_order_relaxed);

  // Graceful degradation: a blown deadline (policy-gated) or exhausted/
  // permanent model failure falls back; an explicit client cancel never
  // does — the client walked away.
  const bool degradable =
      last_error.code == ServeErrorCode::kModelFailure ||
      (last_error.code == ServeErrorCode::kDeadlineExceeded && cfg_.fallback_on_deadline);
  if (degradable && run_fallback(request, clock, response)) {
    response.error = last_error;  // why the primary path lost
    degraded_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  response.outcome = Outcome::kError;
  response.error = last_error;
  failed_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

void GenerationEngine::execute_lane_batch(
    const core::TimeSeriesGenerator& primary, const std::vector<size_t>& batch,
    const std::function<const Request&(size_t)>& request_at,
    const std::function<void(size_t, Response&&)>& resolve) {
  // Partition the drained batch: a request is lane-batchable when its first
  // attempt carries no time budget (nothing to arm) — then one
  // generate_batch() lane IS the serial execute_with() first attempt (same
  // seed, same bits), and a success can resolve to kOk/attempts=1 directly.
  // A caller cancellation token rides along per lane: the batched session
  // polls it at window boundaries, and a tripped lane falls through to the
  // ladder below, which resolves it to kCancelled exactly like serial.
  std::vector<size_t> lanes, rest;
  lanes.reserve(batch.size());
  for (size_t idx : batch) {
    const Request& r = request_at(idx);
    std::string why;
    const int64_t budget = r.deadline_ms >= 0 ? r.deadline_ms : cfg_.default_deadline_ms;
    if (validate_request(r, why) && budget < 0)
      lanes.push_back(idx);
    else
      rest.push_back(idx);
  }

  if (lanes.size() >= 2) {
    std::vector<core::GenerateBatchItem> items(lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) {
      const Request& r = request_at(lanes[i]);
      items[i].windows = &r.windows;
      items[i].seed = r.seed;
      items[i].cancel = r.cancel;
    }
    std::vector<core::GenerateBatchResult> results = primary.generate_batch(items);
    for (size_t i = 0; i < lanes.size(); ++i) {
      const size_t idx = lanes[i];
      const Request& r = request_at(idx);
      std::string why;
      if (results[i].ok && validate_series(results[i].series, expected_length(r),
                                           cfg_.expected_channels, why)) {
        Response response;
        response.outcome = Outcome::kOk;
        response.series = std::move(results[i].series);
        response.attempts = 1;
        ok_.fetch_add(1, std::memory_order_relaxed);
        resolve(idx, std::move(response));
      } else {
        // A failed lane re-enters the classic ladder. Its first attempt
        // replays the exact generate() the batch ran (deterministic
        // generator, same seed), so attempts/retries/fallback accounting and
        // the final response match serial serving bit for bit.
        resolve(idx, execute_with(primary, r, static_cast<int>(idx)));
      }
    }
  } else {
    for (size_t idx : lanes)
      resolve(idx, execute_with(primary, request_at(idx), static_cast<int>(idx)));
  }
  for (size_t idx : rest)
    resolve(idx, execute_with(primary, request_at(idx), static_cast<int>(idx)));
}

std::vector<Response> GenerationEngine::serve(const std::vector<Request>& requests) {
  std::vector<Response> out(requests.size());
  if (requests.empty()) return out;

  internal::BoundedQueue queue(static_cast<size_t>(std::max(1, cfg_.max_queue)));
  const int workers = std::max(1, cfg_.workers);
  const size_t batch_max = static_cast<size_t>(std::max(1, cfg_.batch_max));
  const bool lane_batch = cfg_.lane_batch && batch_max > 1 && primary_ != nullptr;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([this, &queue, &requests, &out, batch_max, lane_batch] {
      if (lane_batch) {
        std::vector<size_t> batch;
        for (;;) {
          queue.pop_batch(batch, batch_max);
          if (batch.empty()) return;  // closed and drained
          execute_lane_batch(
              *primary_, batch, [&](size_t idx) -> const Request& { return requests[idx]; },
              [&](size_t idx, Response&& r) { out[idx] = std::move(r); });
        }
      }
      internal::drain_queue(queue, batch_max, [&](size_t idx) {
        out[idx] = execute(requests[idx], static_cast<int>(idx));
      });
    });
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    if (cfg_.backpressure == EngineConfig::Backpressure::kBlock) {
      queue.push_block(i);
      admitted_.fetch_add(1, std::memory_order_relaxed);
    } else if (queue.try_push(i)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Shed is its own outcome, not kError: the request never executed, so
      // it lands in Stats::shed (not failed_) and the buckets partition the
      // batch — ok + degraded + failed + shed == total.
      out[i].outcome = Outcome::kShed;
      out[i].error = {ServeErrorCode::kOverloaded,
                      "admission queue full (" + std::to_string(cfg_.max_queue) + ")"};
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  queue.close();
  for (auto& t : pool) t.join();
  return out;
}

GenerationEngine::Stats GenerationEngine::stats() const {
  Stats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.deadline_expirations = deadline_expirations_.load(std::memory_order_relaxed);
  s.fallback_failures = fallback_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gendt::serve
