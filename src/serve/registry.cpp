#include "gendt/serve/registry.h"

#include <utility>

namespace gendt::serve {

bool ModelRegistry::add(const std::string& id,
                        std::unique_ptr<core::TimeSeriesGenerator> generator,
                        ModelBudget budget) {
  if (generator == nullptr) return false;
  auto version = std::make_shared<Version>();
  version->generator = std::move(generator);
  version->number = 1;
  runtime::MutexLock lock(mu_);
  auto [it, inserted] = models_.try_emplace(id);
  if (!inserted) return false;
  it->second.current = std::move(version);
  it->second.budget = budget;
  return true;
}

bool ModelRegistry::swap(const std::string& id,
                         std::unique_ptr<core::TimeSeriesGenerator> next) {
  if (next == nullptr) return false;
  auto version = std::make_shared<Version>();
  version->generator = std::move(next);
  std::shared_ptr<const Version> old;  // retired outside the lock (see below)
  {
    runtime::MutexLock lock(mu_);
    auto it = models_.find(id);
    if (it == models_.end()) return false;
    version->number = it->second.next_version++;
    old = std::move(it->second.current);
    it->second.current = std::move(version);
    it->second.stats.swaps++;
  }
  // `old` drops here. If no request still holds a lease on it, this is the
  // retirement point (destructor may unmap an arena / free a session pool —
  // too heavy to run under mu_). Otherwise the last lease holder retires it.
  return true;
}

ModelRegistry::Lease ModelRegistry::acquire(const std::string& id) const {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Lease{};
  return Lease{it->second.current};
}

ModelRegistry::Admission ModelRegistry::admit(const std::string& id) {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Admission{Lease{}, /*unknown=*/true};
  Model& m = it->second;
  if (m.budget.max_in_flight >= 0 && m.in_flight >= m.budget.max_in_flight) {
    m.stats.shed++;
    return Admission{Lease{}, /*unknown=*/false};
  }
  m.in_flight++;
  m.stats.admitted++;
  return Admission{Lease{m.current}, /*unknown=*/false};
}

void ModelRegistry::complete(const std::string& id, Outcome outcome) {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return;
  Model& m = it->second;
  if (m.in_flight > 0) m.in_flight--;
  switch (outcome) {
    case Outcome::kOk: m.stats.ok++; break;
    case Outcome::kDegraded: m.stats.degraded++; break;
    default: m.stats.failed++; break;
  }
}

void ModelRegistry::abandon(const std::string& id) {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return;
  Model& m = it->second;
  if (m.in_flight > 0) m.in_flight--;
  if (m.stats.admitted > 0) m.stats.admitted--;
  m.stats.shed++;
}

void ModelRegistry::record(const std::string& id, Outcome outcome) {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return;
  ModelStats& s = it->second.stats;
  switch (outcome) {
    case Outcome::kOk: s.admitted++; s.ok++; break;
    case Outcome::kDegraded: s.admitted++; s.degraded++; break;
    case Outcome::kShed: s.shed++; break;
    default: s.admitted++; s.failed++; break;
  }
}

ModelBudget ModelRegistry::budget(const std::string& id) const {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  return it == models_.end() ? ModelBudget{} : it->second.budget;
}

ModelStats ModelRegistry::stats(const std::string& id) const {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  return it == models_.end() ? ModelStats{} : it->second.stats;
}

uint64_t ModelRegistry::active_version(const std::string& id) const {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  return it == models_.end() ? 0 : it->second.current->number;
}

int ModelRegistry::in_flight(const std::string& id) const {
  runtime::MutexLock lock(mu_);
  auto it = models_.find(id);
  return it == models_.end() ? -1 : it->second.in_flight;
}

std::vector<std::string> ModelRegistry::ids() const {
  runtime::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, model] : models_) out.push_back(id);
  return out;
}

size_t ModelRegistry::size() const {
  runtime::MutexLock lock(mu_);
  return models_.size();
}

}  // namespace gendt::serve
