// GDTSTRM1: the length-prefixed, CRC-framed wire protocol of the streaming
// generation service.
//
// Frame layout (all integers little-endian):
//
//   [u32 body_len][u8 type][u8 flags][body: body_len bytes][u32 crc]
//
// where crc is CRC-32 (IEEE 802.3) over type ++ flags ++ body. body_len is
// bounded by the decoder's max_body (oversized lengths are rejected from
// the 4 header bytes alone, before any allocation). KPI values travel as
// raw IEEE-754 bit patterns (u64), so a streamed series is byte-exact —
// the resume/parity tests compare bits, not decimal renderings.
//
// Frame types and their bodies (strings are u32 length + bytes):
//
//   OPEN       c->s  magic "GDTSTRM1", model_id, u64 seed, u32 chunk_windows,
//                    u32 n_points, n_points x (f64 t, f64 lat, f64 lon)
//   OPEN|R     s->c  session_id, u64 resume_token, u32 chunk_windows,
//                    u32 total_windows, u32 num_channels, channel names,
//                    f64 t0, f64 period_s
//   CHUNK      s->c  u64 chunk_index, u32 first_window, u32 num_windows,
//                    u32 num_points, u32 num_channels,
//                    num_points*num_channels x f64 (row-major); flag LAST on
//                    the final chunk of the stream
//   ACK        c->s  u64 chunk_index (cumulative: all chunks <= index held)
//   HEARTBEAT  c->s  empty; server replies HEARTBEAT|R (empty) and refreshes
//                    the connection's idle clock
//   RESUME     c->s  magic "GDTSTRM1", session_id, u64 resume_token,
//                    u64 chunks_have
//   RESUME|R   s->c  u64 next_chunk_index, u32 total_windows
//   CLOSE      c->s  empty; server replies CLOSE|R with final session stats
//   CLOSE|R    s->c  u64 chunks_sent, u64 points_sent
//   ERROR      s->c  u8 code, message — the closed error taxonomy below;
//                    always followed by connection close when terminal
//
// The decoder is transactional: bytes are consumed only when a complete,
// CRC-valid frame is extracted; anything malformed poisons the decoder with
// a sticky error and never yields a partial frame. stream_frame_test runs
// the same corpus discipline as nn_serialize_test over it: truncation at
// every byte offset, a full bit-flip sweep, oversized length fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gendt/serve/error.h"

namespace gendt::serve::stream {

inline constexpr char kMagic[8] = {'G', 'D', 'T', 'S', 'T', 'R', 'M', '1'};
inline constexpr size_t kMagicLen = 8;
inline constexpr size_t kHeaderLen = 6;   // u32 body_len + u8 type + u8 flags
inline constexpr size_t kTrailerLen = 4;  // u32 crc

enum class FrameType : uint8_t {
  kOpen = 1,
  kChunk = 2,
  kAck = 3,
  kHeartbeat = 4,
  kResume = 5,
  kClose = 6,
  kError = 7,
};

/// Frame flags (bitmask).
inline constexpr uint8_t kFlagReply = 0x1;  // server response to a client frame
inline constexpr uint8_t kFlagLast = 0x2;   // CHUNK: final chunk of the stream

/// Closed error taxonomy of the ERROR frame. The first six values mirror
/// ServeErrorCode one-to-one (same semantics, same retryability story); the
/// rest are protocol-level conditions that have no batch-engine equivalent.
enum class StreamErrorCode : uint8_t {
  kNone = 0,
  kInvalidRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kModelFailure = 4,
  kCancelled = 5,
  kBadFrame = 6,        ///< CRC mismatch / unknown type / malformed body
  kUnknownSession = 7,  ///< RESUME for a session the server no longer holds
  kBadResumeToken = 8,  ///< RESUME with the wrong token or chunk cursor
  kServerDraining = 9,  ///< admission or stream cut short by graceful drain
};

std::string_view to_string(StreamErrorCode code);
StreamErrorCode from_serve_error(ServeErrorCode code);

/// CRC-32 (IEEE 802.3), the same polynomial as the GDTCKPT2/GDTPACK1
/// footers (kept local: serve cannot reach nn's private crc32.h without a
/// layering hole, and the table is 20 lines).
uint32_t crc32(const uint8_t* data, size_t n);

// ---- Wire primitives -------------------------------------------------------

/// Little-endian append-only encoder.
class WireWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// IEEE-754 bit pattern as u64 — bitwise-exact round trip.
  void f64(double v);
  void str(const std::string& s);
  void raw(const uint8_t* data, size_t n) { buf_.insert(buf_.end(), data, data + n); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader. Every getter returns false (and
/// poisons the reader) on underrun; `ok()` must be checked after a decode.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t n) : data_(data), len_(n) {}

  bool u8(uint8_t& v);
  bool u32(uint32_t& v);
  bool u64(uint64_t& v);
  bool f64(double& v);
  /// String with a sanity cap: a length field larger than the remaining
  /// bytes (or `max_len`) is malformed, not a huge allocation.
  bool str(std::string& s, size_t max_len = 1 << 20);
  bool ok() const { return ok_; }
  size_t remaining() const { return len_ - pos_; }
  /// True when the whole body was consumed (trailing garbage is malformed).
  bool exhausted() const { return ok_ && pos_ == len_; }

 private:
  bool take(size_t n, const uint8_t*& p);
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Frames ----------------------------------------------------------------

struct Frame {
  uint8_t type = 0;
  uint8_t flags = 0;
  std::vector<uint8_t> body;

  bool is(FrameType t) const { return type == static_cast<uint8_t>(t); }
  bool reply() const { return (flags & kFlagReply) != 0; }
  bool last() const { return (flags & kFlagLast) != 0; }
};

/// Encode one frame (header + body + CRC trailer), ready to write.
std::vector<uint8_t> encode_frame(FrameType type, uint8_t flags,
                                  const std::vector<uint8_t>& body);

/// Transactional incremental decoder. feed() appends raw bytes; next()
/// extracts at most one complete frame per call. Once an error is reported
/// the decoder is poisoned — the connection must be failed, because frame
/// boundaries are unrecoverable after corruption.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_body) : max_body_(max_body) {}

  enum class Status { kNeedMore, kFrame, kError };

  void feed(const uint8_t* data, size_t n);
  Status next(Frame& out, std::string* error);

  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  size_t max_body_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // compacted lazily
  bool poisoned_ = false;
  std::string poison_;
};

// ---- Message bodies --------------------------------------------------------

struct TrajectoryPoint {
  double t = 0.0;
  double lat = 0.0;
  double lon = 0.0;
};

struct OpenRequest {
  std::string model_id;  // empty = server default
  uint64_t seed = 1;
  uint32_t chunk_windows = 0;  // 0 = server default; server clamps
  std::vector<TrajectoryPoint> points;
};

struct OpenAck {
  std::string session_id;
  uint64_t resume_token = 0;
  uint32_t chunk_windows = 0;
  uint32_t total_windows = 0;
  std::vector<std::string> channel_names;
  double t0 = 0.0;
  double period_s = 1.0;
};

struct ChunkMsg {
  uint64_t index = 0;
  uint32_t first_window = 0;
  uint32_t num_windows = 0;
  uint32_t num_points = 0;
  uint32_t num_channels = 0;
  std::vector<double> values;  // row-major [num_points x num_channels]
};

struct AckMsg {
  uint64_t chunk_index = 0;
};

struct ResumeRequest {
  std::string session_id;
  uint64_t resume_token = 0;
  uint64_t chunks_have = 0;
};

struct ResumeAck {
  uint64_t next_chunk_index = 0;
  uint32_t total_windows = 0;
};

struct CloseStats {
  uint64_t chunks_sent = 0;
  uint64_t points_sent = 0;
};

struct ErrorMsg {
  StreamErrorCode code = StreamErrorCode::kNone;
  std::string message;
};

// Body encoders/decoders. Decoders validate shape (magic, counts, value
// payload sizes, full consumption) and return false on anything malformed;
// `max_points` bounds the trajectory / chunk allocations.
std::vector<uint8_t> encode_open(const OpenRequest& m);
bool decode_open(const std::vector<uint8_t>& body, OpenRequest& m, uint32_t max_points);
std::vector<uint8_t> encode_open_ack(const OpenAck& m);
bool decode_open_ack(const std::vector<uint8_t>& body, OpenAck& m);
std::vector<uint8_t> encode_chunk(const ChunkMsg& m);
bool decode_chunk(const std::vector<uint8_t>& body, ChunkMsg& m, uint32_t max_points);
std::vector<uint8_t> encode_ack(const AckMsg& m);
bool decode_ack(const std::vector<uint8_t>& body, AckMsg& m);
std::vector<uint8_t> encode_resume(const ResumeRequest& m);
bool decode_resume(const std::vector<uint8_t>& body, ResumeRequest& m);
std::vector<uint8_t> encode_resume_ack(const ResumeAck& m);
bool decode_resume_ack(const std::vector<uint8_t>& body, ResumeAck& m);
std::vector<uint8_t> encode_close_stats(const CloseStats& m);
bool decode_close_stats(const std::vector<uint8_t>& body, CloseStats& m);
std::vector<uint8_t> encode_error(const ErrorMsg& m);
bool decode_error(const std::vector<uint8_t>& body, ErrorMsg& m);

}  // namespace gendt::serve::stream
