// StreamServer: the fault-tolerant streaming generation daemon.
//
// One event-loop thread owns all connections and sessions; poll_once() is a
// single steppable tick (poll fds -> accept -> read/dispatch frames -> apply
// timeouts/drain -> fan out ready chunk generations -> flush outboxes), and
// run() just loops it. Tests drive poll_once directly (or run() on a thread)
// against socketpair ends adopted with adopt().
//
// Invariants the tests pin:
//  * One chunk in flight per session: the next chunk is not generated until
//    the previous one is ACKed, so a stalled reader exerts backpressure and
//    per-session memory is bounded by one chunk + one outbox.
//  * Seam-free resume: after every ACK the session's ChunkSource snapshot is
//    refreshed; a RESUME restores it and regenerates exactly the bytes the
//    uninterrupted stream would have carried.
//  * Deterministic parallelism: each tick collects ready sessions in id
//    order and fans their generations out via runtime::parallel_tasks —
//    every worker count produces the identical transcript, because chunk
//    values depend only on per-session source state and commits happen
//    sequentially in session order.
//  * Graceful drain: on request_drain() (or the config's external drain
//    token, e.g. SignalDrain) new OPENs are shed, in-flight chunks finish
//    (or are cancelled at the drain deadline), and every live session is
//    closed with a clean ERROR kServerDraining. Every admitted session
//    resolves to exactly one of ok/degraded/failed/shed:
//    ok + degraded + failed + shed == total, always.
//
// All time is read from the injected runtime::Clock, so idle timeouts,
// resume retention, and the drain deadline are virtual-time-testable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gendt/net/io.h"
#include "gendt/runtime/cancel.h"
#include "gendt/runtime/mutex.h"
#include "gendt/runtime/thread_pool.h"
#include "gendt/serve/stream/frame.h"
#include "gendt/serve/stream/source.h"

namespace gendt::serve::stream {

struct StreamServerConfig {
  /// Default / ceiling for a session's chunk size in windows. An OPEN asking
  /// for 0 gets `chunk_windows`; anything above `max_chunk_windows` clamps.
  int chunk_windows = 8;
  int max_chunk_windows = 256;

  /// A connection silent (no frames) for this long is closed; its session
  /// detaches and stays resumable for `resume_retention_ms`, after which it
  /// resolves as failed (abandoned).
  int64_t idle_timeout_ms = 30'000;
  int64_t resume_retention_ms = 60'000;

  /// Budget for in-flight chunks to finish once a drain starts; generations
  /// still running at the deadline are cancelled (still a clean degraded
  /// close, just a cancelled chunk instead of a finished one).
  int64_t drain_deadline_ms = 5'000;

  /// Protocol bounds: decoder frame-body cap and OPEN trajectory cap.
  size_t max_frame_bytes = 64u << 20;
  uint32_t max_trajectory_points = 1u << 20;

  /// Admission bound on live (attached + detached) sessions; beyond it new
  /// OPENs are shed with kOverloaded.
  int max_sessions = 64;

  /// Transparent retries of a chunk whose generation threw TransientError
  /// (the source is transactional, so a retry replays the same windows).
  int max_chunk_retries = 2;

  /// Worker fan-out for per-tick chunk generation.
  runtime::Parallelism parallelism;

  /// Time source for every timeout above. Defaults to the steady clock.
  const runtime::Clock* clock = nullptr;

  /// Optional external drain signal (e.g. &runtime::SignalDrain::token()):
  /// polled every tick, same effect as request_drain().
  const runtime::CancelToken* drain = nullptr;

  /// Seed for resume tokens (tokens must be unguessable only to the extent
  /// of "a client cannot resume a session it never opened by accident").
  uint64_t token_seed = 0x67646E74u;  // "gdnt"

  /// run() exit hooks for daemon tests: exit once this many sessions have
  /// resolved (0 = never), or once the server has been completely idle (no
  /// sessions, no connections) for `idle_exit_ms` (0 = never).
  uint64_t exit_after_sessions = 0;
  int64_t idle_exit_ms = 0;
};

/// Monotonic counters; `sessions_*` obey the partition invariant
/// ok + degraded + failed + shed == total once the server is quiescent
/// (total counts admissions *and* sheds; a live session is admitted but not
/// yet resolved, so the sum lags total by the number of live sessions).
struct StreamStats {
  uint64_t sessions_total = 0;
  uint64_t sessions_ok = 0;
  uint64_t sessions_degraded = 0;
  uint64_t sessions_failed = 0;
  uint64_t sessions_shed = 0;
  uint64_t chunks_sent = 0;
  uint64_t points_sent = 0;
  uint64_t resumes = 0;
  uint64_t heartbeats = 0;
  uint64_t bad_frames = 0;

  uint64_t resolved() const {
    return sessions_ok + sessions_degraded + sessions_failed + sessions_shed;
  }
};

class StreamServer {
 public:
  /// Builds a session's ChunkSource from its OPEN. On failure return nullptr
  /// and set `code`/`error` (kInvalidRequest for an unusable request, etc.);
  /// the session resolves as failed. Called on the event-loop thread.
  using SourceFactory = std::function<std::unique_ptr<ChunkSource>(
      const OpenRequest& open, StreamErrorCode* code, std::string* error)>;

  StreamServer(StreamServerConfig cfg, SourceFactory factory);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Bind + listen on a Unix-domain socket. False (with `error`) on failure.
  bool listen_unix(const std::string& path, std::string* error);

  /// Adopt an already-connected fd (e.g. one end of net::socket_pair) as a
  /// client connection. Thread-safe; the fd joins the loop on the next tick.
  void adopt(net::FdGuard fd);

  /// One event-loop tick; blocks in poll(2) for at most `timeout_ms` when
  /// there is nothing to do. Single-threaded: only one thread may call
  /// poll_once/run. Returns false once the server is finished (drained, or
  /// an exit hook fired) — run() loops while it returns true.
  bool poll_once(int timeout_ms);

  void run();

  /// Begin graceful drain (idempotent, thread-safe): shed new work, finish
  /// or cancel in-flight chunks within the drain deadline, close every
  /// session cleanly, then let run() return.
  void request_drain();
  bool draining() const { return drain_requested_.load(std::memory_order_acquire); }

  StreamStats stats() const;

 private:
  struct Conn {
    net::FdGuard fd;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;
    size_t out_pos = 0;
    std::string session_id;  // empty until OPEN/RESUME attaches one
    int64_t last_activity_ms = 0;
    bool close_after_flush = false;
    bool dead = false;

    explicit Conn(net::FdGuard f, size_t max_body, int64_t now_ms)
        : fd(std::move(f)), decoder(max_body), last_activity_ms(now_ms) {}
  };

  struct Session {
    std::string id;
    uint64_t token = 0;
    std::unique_ptr<ChunkSource> source;
    std::unique_ptr<SourceSnapshot> snap_acked;  // boundary after last ACK
    bool has_inflight = false;                   // chunk sent, awaiting ACK
    ChunkMsg inflight;
    uint64_t acked = 0;      // chunks ACKed so far
    int attempts = 0;        // transient-retry count for the next chunk
    int conn = -1;           // owning connection id; -1 = detached
    int64_t detached_at_ms = 0;
    bool last_sent = false;  // the kFlagLast chunk has been sent
    bool resolved = false;   // outcome already counted; lingers until close
    uint64_t chunks_sent = 0;
    uint64_t points_sent = 0;
  };

  enum class Outcome { kOk, kDegraded, kFailed };

  int64_t now_ms() const;
  void enqueue(Conn& conn, FrameType type, uint8_t flags, const std::vector<uint8_t>& body);
  void send_error(Conn& conn, StreamErrorCode code, const std::string& message);
  /// Count the session's outcome, send a terminal ERROR when `code` is set,
  /// and schedule teardown. Idempotent per session.
  void resolve(Session& s, Outcome outcome, StreamErrorCode code, const std::string& message);
  void drop_conn(int conn_id);
  void detach_session(Session& s);

  void drain_adopted();
  void accept_ready();
  void read_conn(int conn_id);
  void handle_frame(int conn_id, const Frame& frame);
  void handle_open(int conn_id, const Frame& frame);
  void handle_resume(int conn_id, const Frame& frame);
  void handle_ack(int conn_id, const Frame& frame);
  void handle_close(int conn_id);
  void apply_timeouts();
  void apply_drain();
  void generate_ready();
  void flush_conn(int conn_id);
  void reap();
  bool finished();

  StreamServerConfig cfg_;
  SourceFactory factory_;
  net::FdGuard listen_fd_;

  std::map<int, Conn> conns_;
  std::map<std::string, Session> sessions_;
  int next_conn_id_ = 1;
  uint64_t next_session_ = 1;

  std::atomic<bool> drain_requested_{false};
  bool drain_started_ = false;
  int64_t drain_start_ms_ = 0;
  /// Cancel handle passed to every chunk generation; armed with the drain
  /// deadline when a drain starts so straggling chunks are cut off.
  runtime::CancelToken gen_cancel_;

  int64_t idle_since_ms_ = -1;

  mutable runtime::Mutex adopt_mu_;
  std::vector<net::FdGuard> adopted_ GENDT_GUARDED_BY(adopt_mu_);

  mutable runtime::Mutex stats_mu_;
  StreamStats stats_ GENDT_GUARDED_BY(stats_mu_);
};

}  // namespace gendt::serve::stream
