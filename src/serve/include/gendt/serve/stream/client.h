// Blocking GDTSTRM1 client: the consumer side of the streaming protocol,
// used by the `gendt stream-client` subcommand and by the stream tests'
// scripted clients. One connection, one session; resuming after a kill means
// constructing a fresh client and calling resume() with the saved session
// credentials.
//
// All receives run the same transactional FrameDecoder as the server, so a
// malformed server (or a fuzzer) can never leave the client with a torn
// message — it surfaces as Status::kProtocol and the connection is dropped.
#pragma once

#include <string>

#include "gendt/net/io.h"
#include "gendt/serve/stream/frame.h"

namespace gendt::serve::stream {

class StreamClient {
 public:
  struct Options {
    /// Budget for one blocking receive (a whole frame must arrive in it).
    int recv_timeout_ms = 30'000;
    size_t max_frame_bytes = 64u << 20;
  };

  enum class Status {
    kOk,        ///< expected frame received
    kError,     ///< server sent an ERROR frame (see last_error())
    kClosed,    ///< connection closed / EOF
    kTimeout,   ///< recv_timeout_ms elapsed without a complete frame
    kProtocol,  ///< malformed frame or unexpected type from the server
  };

  StreamClient() : StreamClient(Options()) {}
  explicit StreamClient(Options opts) : opts_(opts), decoder_(opts.max_frame_bytes) {}

  bool connect_unix(const std::string& path, std::string* error);
  /// Adopt an already-connected fd (e.g. one end of net::socket_pair).
  void adopt(net::FdGuard fd) { fd_ = std::move(fd); }
  bool connected() const { return fd_.valid(); }

  /// OPEN handshake: returns kOk with `ack` filled, or the failure class.
  Status open(const OpenRequest& req, OpenAck* ack);

  /// RESUME handshake on a fresh connection.
  Status resume(const ResumeRequest& req, ResumeAck* ack);

  /// Receive the next CHUNK (heartbeat replies are consumed transparently).
  /// `last` reports the kFlagLast bit. Does NOT auto-ACK — call ack() once
  /// the chunk is durably held, which is what gives resume its cursor.
  Status recv_chunk(ChunkMsg* out, bool* last);

  bool ack(uint64_t chunk_index);
  bool heartbeat();  // fire-and-forget; the reply is consumed by recv_chunk

  /// CLOSE handshake; returns kOk with the server's final session stats.
  Status close_session(CloseStats* out);

  /// Hard-drop the connection without CLOSE — the chaos tests' kill switch.
  void kill() { fd_.reset(); }

  /// The last ERROR frame received (valid after a kError status).
  const ErrorMsg& last_error() const { return server_error_; }

 private:
  Status recv_frame(Frame& out);
  bool send_frame(FrameType type, uint8_t flags, const std::vector<uint8_t>& body);

  Options opts_;
  net::FdGuard fd_;
  FrameDecoder decoder_;
  ErrorMsg server_error_;
};

}  // namespace gendt::serve::stream
