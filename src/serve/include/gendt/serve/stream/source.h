// ChunkSource: what a streaming session generates from.
//
// The server is generic over where chunk values come from. Production
// sessions use GenDTChunkSource, a thin adapter over core::StreamSession
// (real model, seam-free carried state, CQI-snap policy chosen by the
// factory). Chaos tests use ScriptedChunkSource, whose values are the pure
// function ScriptedGenerator::expected_value and whose misbehavior (virtual
// delays, transient throws, NaN poisoning) comes from a FaultPlan on a
// ManualClock — so a kill-and-resume scenario has a bit-exact expected
// transcript at any worker count.
//
// Both implementations honor the transactional contract StreamSession
// establishes: next_chunk() either returns a complete chunk and advances the
// cursor, or throws and leaves the source at the pre-call boundary.
// snapshot()/restore() capture the boundary for RESUME.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gendt/core/stream_session.h"
#include "gendt/runtime/cancel.h"
#include "gendt/serve/fault.h"
#include "gendt/serve/stream/frame.h"

namespace gendt::serve::stream {

/// Opaque chunk-boundary state. Each ChunkSource implementation downcasts to
/// its own concrete type; restore() with a foreign snapshot is a programming
/// error and throws.
class SourceSnapshot {
 public:
  virtual ~SourceSnapshot() = default;
};

class ChunkSource {
 public:
  struct Meta {
    uint32_t total_windows = 0;
    uint32_t chunk_windows = 1;
    uint32_t num_channels = 0;
    std::vector<std::string> channel_names;
    double t0 = 0.0;
    double period_s = 1.0;
  };

  virtual ~ChunkSource() = default;

  virtual const Meta& meta() const = 0;
  virtual bool done() const = 0;
  virtual uint64_t next_chunk_index() const = 0;

  /// Generate the next chunk (index/first_window/num_windows/num_points/
  /// num_channels/values all filled). Transactional: any throw — including
  /// CancelledError from a drain — leaves the cursor unmoved.
  virtual ChunkMsg next_chunk(const runtime::CancelToken* cancel) = 0;

  virtual std::unique_ptr<SourceSnapshot> snapshot() const = 0;
  virtual void restore(const SourceSnapshot& snap) = 0;
};

/// Production source: a core::StreamSession over a loaded GenDT model. The
/// model (and everything else referenced by the ctor arguments) must outlive
/// the source; the serving layer guarantees this by keeping the model
/// registry alive for the server's lifetime.
class GenDTChunkSource final : public ChunkSource {
 public:
  GenDTChunkSource(const core::GenDTModel& model, context::KpiNorm norm,
                   std::vector<sim::Kpi> kpis, std::vector<context::Window> windows,
                   uint64_t seed, int chunk_windows, std::vector<std::string> channel_names,
                   double t0, double period_s);

  const Meta& meta() const override { return meta_; }
  bool done() const override { return session_.done(); }
  uint64_t next_chunk_index() const override { return session_.next_chunk_index(); }
  ChunkMsg next_chunk(const runtime::CancelToken* cancel) override;
  std::unique_ptr<SourceSnapshot> snapshot() const override;
  void restore(const SourceSnapshot& snap) override;

 private:
  Meta meta_;
  core::StreamSession session_;
};

/// Chaos-test source: values from ScriptedGenerator::expected_value, faults
/// from a FaultPlan (window-keyed, same semantics as the batch engine:
/// kDelay charges the bound ManualClock, kThrow raises TransientError while
/// attempts are below the fault's budget, kPoison emits NaN). Stateless
/// between chunks apart from the cursor, so snapshots are trivially exact.
class ScriptedChunkSource final : public ChunkSource {
 public:
  struct Config {
    uint64_t seed = 1;
    int request_index = 0;  ///< FaultPlan request key
    int total_windows = 8;
    int window_len = 16;
    int num_channels = 2;
    int chunk_windows = 2;
    int64_t window_cost_ms = 1;  ///< virtual cost charged per window
  };

  ScriptedChunkSource(Config cfg, FaultPlan plan, runtime::ManualClock* clock);

  const Meta& meta() const override { return meta_; }
  bool done() const override { return next_window_ >= cfg_.total_windows; }
  uint64_t next_chunk_index() const override { return next_chunk_; }
  ChunkMsg next_chunk(const runtime::CancelToken* cancel) override;
  std::unique_ptr<SourceSnapshot> snapshot() const override;
  void restore(const SourceSnapshot& snap) override;

  /// The exact values chunk `index` carries on a fault-free stream — what
  /// chaos tests compare resumed transcripts against.
  static std::vector<double> expected_chunk(const Config& cfg, uint64_t index);

 private:
  Config cfg_;
  FaultPlan plan_;
  runtime::ManualClock* clock_;
  Meta meta_;
  int next_window_ = 0;
  uint64_t next_chunk_ = 0;
  std::vector<int> attempts_;  // per-window attempt counts (fault gating)
};

}  // namespace gendt::serve::stream
