// gendt::serve — trace-replay load harness (the MASS-style validation shape:
// replay a recorded/generated traffic trace against the serving stack and
// measure what real clients would see).
//
// A Trace is an arrival-ordered list of requests — model id, arrival time,
// seed, deadline, context windows. replay() plays it against a ModelRegistry
// entirely on VIRTUAL time:
//
//   phase 1 (sequential, deterministic): walk the trace in arrival order,
//     apply scripted hot-swaps when their virtual time comes due, make the
//     per-model budget decision from virtual occupancy (admitted requests
//     occupy their model until their nominal finish), and schedule every
//     admitted request onto `sim_workers` simulated servers (earliest-free
//     wins, lowest index breaks ties). The request's model-version lease is
//     pinned here, at virtual admission time.
//   phase 2 (parallel, outcome-pure): execute the admitted requests on
//     `threads` real threads. Each request runs against its own ManualClock
//     started at its scheduled virtual start, with its deadline budget
//     reduced by its virtual queue wait — so outcomes, latencies, attempts
//     and series bits are a pure function of (trace, registry contents,
//     swaps, config), bitwise identical at ANY `threads` value and at any
//     real interleaving. That purity is what the serve-replay tests sweep.
//
// Latency is virtual: finish − arrival, where finish is the request's clock
// after execution (or at least start + nominal service cost, for models that
// charge no virtual time). Per-model p50/p99 latency and shed rate feed
// BENCH_serve_replay.json.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gendt/context/context.h"
#include "gendt/runtime/cancel.h"
#include "gendt/serve/engine.h"
#include "gendt/serve/registry.h"
#include "gendt/sim/trajectory_gen.h"

namespace gendt::serve {

/// One trace entry. Traces must be sorted by arrival_ms (replay enforces).
struct TraceRequest {
  std::string model_id;
  int64_t arrival_ms = 0;
  uint64_t seed = 1;
  int64_t deadline_ms = -1;  ///< budget from ARRIVAL (queue wait counts); -1 none
  std::vector<context::Window> windows;
};

struct Trace {
  std::vector<TraceRequest> requests;
};

/// Shape of a generated trace. Arrivals are a seeded Poisson process at
/// rate_hz on the virtual clock; model ids round-robin over `model_ids`;
/// request seeds are derive_stream_seed(seed, index) — unique per request,
/// which ScriptedGenerator bindings require.
struct TraceConfig {
  int num_requests = 1000;
  double rate_hz = 200.0;
  uint64_t seed = 1;
  int64_t deadline_ms = -1;
  std::vector<std::string> model_ids = {"default"};
  // synthetic_trace: bare windows (start/len only) for scripted models.
  int windows_per_request = 4;
  int window_len = 10;
  // sim_trace: one simulated user trajectory per request.
  double trajectory_duration_s = 60.0;
};

/// Bare-window trace for scripted/synthetic models (no context extraction).
Trace synthetic_trace(const TraceConfig& cfg);

/// Trace whose windows come from simulated drive-test user trajectories:
/// each request is one scenario trajectory (cycling the paper's scenarios)
/// run through the context pipeline — the "~10^5 user trajectories from
/// gendt::sim" load shape.
Trace sim_trace(const context::ContextBuilder& builder, const sim::RegionConfig& region,
                const TraceConfig& cfg);

/// A scripted hot-swap: at virtual time `at_ms`, install `next` as model
/// `model_id`'s new version (the checkpoint "load" happened when `next` was
/// built; the swap itself is the atomic install). Requests with
/// arrival_ms >= at_ms lease the new version; earlier ones drain on the old.
struct SwapScript {
  int64_t at_ms = 0;
  std::string model_id;
  std::unique_ptr<core::TimeSeriesGenerator> next;
};

struct ReplayConfig {
  /// Simulated service capacity: concurrent requests on virtual time.
  int sim_workers = 4;
  /// Nominal virtual service cost per context window (the scheduler's
  /// occupancy model; scripted generators should charge the same per-window
  /// cost to their bound clock so schedule and execution agree).
  int64_t per_window_cost_ms = 1;
  /// Real execution threads. NEVER changes any outcome — only wall time.
  int threads = 1;
  /// Retry/backoff/fallback/validation policy (queue fields are unused:
  /// admission is the virtual-time scheduler above).
  EngineConfig engine;
};

/// Terminal record of one trace entry. Byte-comparable: the determinism
/// tests require identical vectors at any thread count / swap timing.
struct RequestOutcome {
  Outcome outcome = Outcome::kError;
  ServeErrorCode code = ServeErrorCode::kNone;
  int attempts = 0;
  bool fallback_used = false;
  uint64_t series_digest = 0;  ///< FNV over the exact series bits (0 if none)
  uint64_t version = 0;        ///< model version leased (0 = never admitted)
  int64_t arrival_ms = 0;
  int64_t start_ms = 0;   ///< virtual execution start (arrival if shed)
  int64_t finish_ms = 0;  ///< virtual completion (arrival if shed)
  int64_t latency_ms = 0; ///< finish − arrival (0 if shed)
};

/// Per-model rollup: the BENCH_serve_replay.json payload.
struct ModelReport {
  std::string id;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  double p50_latency_ms = 0.0;  ///< nearest-rank over non-shed requests
  double p99_latency_ms = 0.0;
  double shed_rate = 0.0;  ///< shed / requests
};

struct ReplayReport {
  std::vector<RequestOutcome> outcomes;  ///< trace order
  std::vector<ModelReport> models;       ///< sorted by id
  uint64_t digest = 0;  ///< FNV over all outcomes, trace order
};

/// Replay `trace` against `registry`. `clocks` supplies the per-request
/// ManualClocks (size >= trace size) and is caller-owned so scripted
/// generators can be bound to them BEFORE the replay runs (bindings need
/// stable clock addresses; the clocks' start times are set internally).
/// Throws std::invalid_argument on a malformed call (unsorted trace, short
/// clocks vector); per-request failures never throw.
ReplayReport replay(ModelRegistry& registry, const Trace& trace,
                    std::vector<runtime::ManualClock>& clocks, const ReplayConfig& cfg,
                    std::vector<SwapScript> swaps = {},
                    const core::TimeSeriesGenerator* fallback = nullptr);

}  // namespace gendt::serve
