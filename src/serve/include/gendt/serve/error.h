// Structured failure taxonomy for the generation serving layer. Every
// request the engine admits resolves to OK, degraded, or exactly one of
// these codes — never an uncaught exception, a hang, or a torn result.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace gendt::serve {

enum class ServeErrorCode {
  kNone = 0,
  /// The request can never succeed as stated (empty/ill-formed windows,
  /// nonsense deadline). Not retryable; the client must fix the request.
  kInvalidRequest,
  /// Shed at admission: the bounded queue was full under the shed policy.
  /// Retryable by the client after backing off.
  kOverloaded,
  /// The deadline expired before a result was produced (generation was
  /// cooperatively cancelled at a window boundary).
  kDeadlineExceeded,
  /// The model threw or produced a poisoned (non-finite / wrong-shape)
  /// series, and retries + fallback did not rescue it.
  kModelFailure,
  /// The caller cancelled the request via its CancelToken.
  kCancelled,
};

std::string_view to_string(ServeErrorCode code);

/// Only these classes are worth retrying inside the engine: a transient
/// model hiccup may pass on the next attempt; everything else is either
/// permanent (invalid, cancelled) or already the retry's verdict (deadline).
inline bool retryable(ServeErrorCode code) { return code == ServeErrorCode::kModelFailure; }

struct ServeError {
  ServeErrorCode code = ServeErrorCode::kNone;
  std::string message;
};

/// Thrown by a generator for a failure that is plausibly transient (e.g. a
/// flaky data dependency); the engine retries these with exponential
/// backoff before degrading. Any other exception type from the model is
/// treated as permanent for the request.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace gendt::serve
