// gendt::serve — the fault-tolerant generation serving layer.
//
// GenerationEngine wraps any core::TimeSeriesGenerator behind the contract a
// service needs and a batch script doesn't:
//
//   admission:   a bounded queue with a configurable backpressure policy —
//                block the submitter, or shed with a structured kOverloaded
//                error the moment the queue is full.
//   budgets:     per-request deadlines enforced cooperatively at window
//                granularity (runtime::CancelToken armed against an
//                injectable Clock), so an expired request stops burning CPU
//                instead of running to completion.
//   retries:     transient model failures (TransientError, poisoned output)
//                retry with seeded exponential backoff — jitter comes from
//                derive_stream_seed, never from wall-clock or global RNG
//                state, so retry schedules are reproducible.
//   degradation: when the primary model fails or the deadline is blown, a
//                registered cheap fallback generator (e.g. baselines::FDaS)
//                answers instead and the response is tagged kDegraded — the
//                client gets a usable series plus the truth about it.
//   taxonomy:    every request resolves to exactly one of OK / degraded /
//                shed / ServeError — never an escaped exception, a hang, or
//                a torn result — and the Stats buckets partition the batch
//                (ok + degraded + failed + shed == total).
//
// Determinism: with per-request virtual clocks (Request::virtual_clock) and
// the block policy, a serve() batch's outcomes are a pure function of the
// requests and the fault schedule — bitwise identical at any worker count.
// That property is what the chaos tests sweep. With the shed policy,
// shedding depends on real queue occupancy and is inherently timing-
// dependent; tests pin it down by gating the workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "gendt/core/generator.h"
#include "gendt/runtime/cancel.h"
#include "gendt/serve/error.h"

namespace gendt::serve {

/// One generation request: context windows plus the budget to answer within.
struct Request {
  std::vector<context::Window> windows;
  uint64_t seed = 1;
  /// Time budget in ms measured from execution start; -1 inherits the
  /// engine default (which may itself be "no deadline").
  int64_t deadline_ms = -1;
  /// Optional caller-owned cancellation handle. The engine arms its
  /// deadline on it, and the caller may cancel() at any point.
  runtime::CancelToken* cancel = nullptr;
  /// Optional per-request time source. When set, deadlines are measured
  /// against it and retry backoff advances it instead of sleeping — the
  /// chaos harness gives every request its own ManualClock so time (and
  /// therefore every outcome) is isolated from concurrent requests. Null
  /// means the engine clock (production: the process steady clock).
  runtime::ManualClock* virtual_clock = nullptr;
};

enum class Outcome : uint8_t {
  kOk = 0,        ///< primary model answered within budget
  kDegraded = 1,  ///< fallback answered; `error` says why the primary lost
  kError = 2,     ///< structured failure in `error`
  kShed = 3,      ///< rejected at admission (`error` carries kOverloaded);
                  ///< the request never executed, so `series` is empty and
                  ///< `attempts` is 0. Counted in Stats::shed, not failed —
                  ///< the two buckets partition cleanly (see Stats).
};

std::string_view to_string(Outcome outcome);

struct Response {
  Outcome outcome = Outcome::kError;
  core::GeneratedSeries series;  ///< valid for kOk / kDegraded
  /// kError: the failure. kDegraded: the primary-path failure the fallback
  /// rescued (code kDeadlineExceeded or kModelFailure).
  ServeError error;
  int attempts = 0;  ///< primary-model attempts (1 = no retry)
  bool fallback_used = false;
};

struct EngineConfig {
  enum class Backpressure : uint8_t {
    kBlock,  ///< submitter waits for queue space (batch/offline serving)
    kShed,   ///< full queue rejects immediately with kOverloaded
  };

  int max_queue = 64;
  Backpressure backpressure = Backpressure::kShed;
  /// Executor threads consuming the admission queue.
  int workers = 1;
  /// Requests a worker drains from the queue per dispatch (>= 1). A batch
  /// runs fan-out on the shared runtime pool, one task per request; each
  /// request keeps its own RNG stream (keyed by its seed and original
  /// index, never its batch slot), so responses are bitwise independent of
  /// batch composition. 1 = classic one-request-per-worker serving, which
  /// also keeps the shed policy's "a worker holds at most one request"
  /// occupancy bound.
  int batch_max = 1;
  /// Opt-in lane batching (requires batch_max > 1): a worker packs the
  /// compatible requests of each drained batch into ONE lane-batched
  /// generate_batch() rollout instead of fanning out one generate() task per
  /// request — the matvec→GEMM shape transfer at the serving boundary.
  /// Compatible means the first attempt carries no time budget; caller
  /// cancellation tokens ride along per lane (polled at window boundaries).
  /// Everything else (and any lane whose batched attempt fails or cancels)
  /// goes through the classic per-request execute() ladder. Responses
  /// stay keyed by original request index and are bitwise identical to
  /// serial serving (generate_batch's contract; pinned by serve_engine_test).
  bool lane_batch = false;
  /// Retries after the first attempt for retryable failures.
  int max_retries = 2;
  /// Exponential backoff: base << (attempt-1) plus seeded jitter in
  /// [0, base), saturating (never overflowing) and clamped to
  /// [0, backoff_max_ms] and then to the remaining deadline budget. Waits
  /// advance the request's virtual clock when it has one, otherwise sleep
  /// real time.
  int64_t backoff_base_ms = 1;
  /// Ceiling on any single backoff wait, applied after the exponential and
  /// jitter. Keeps a mis-sized base (or a deep retry ladder) from parking a
  /// deadline-less request for hours.
  int64_t backoff_max_ms = 30'000;
  uint64_t backoff_jitter_seed = 0x5eedf00dULL;
  /// Deadline for requests that don't set one; -1 = none.
  int64_t default_deadline_ms = -1;
  /// Channel count responses must have; 0 skips the check.
  int expected_channels = 0;
  /// Degrade to the fallback on a blown deadline (not just model failure).
  bool fallback_on_deadline = true;
  /// Time budget for the degradation path itself: the fallback runs under a
  /// fresh CancelToken armed `fallback_grace_ms` past the moment it starts
  /// (on the request's clock), so a degraded answer after a blown deadline
  /// is still deadline-bounded instead of running unboundedly. The request's
  /// own token is NOT reused — it is typically already tripped, which would
  /// cancel the fallback before it produced anything. -1 = unbounded.
  int64_t fallback_grace_ms = 100;
  /// Time source for deadlines/backoff of requests without a virtual clock.
  const runtime::Clock* clock = &runtime::steady_clock();
};

class GenerationEngine {
 public:
  GenerationEngine(const core::TimeSeriesGenerator& primary, EngineConfig cfg);

  /// Primary-less engine: every request must go through execute_with(),
  /// which supplies the generator per call. This is the form the model
  /// registry/router uses — one engine, N routed models. execute()/serve()
  /// on a primary-less engine resolve each request to kInvalidRequest.
  explicit GenerationEngine(EngineConfig cfg);

  GenerationEngine(const GenerationEngine&) = delete;
  GenerationEngine& operator=(const GenerationEngine&) = delete;

  /// Register the graceful-degradation path. Null disables it. The fallback
  /// must be cheap and reliable (it runs without retry, under a small
  /// fallback_grace_ms budget); callers keep ownership.
  void set_fallback(const core::TimeSeriesGenerator* fallback) { fallback_ = fallback; }

  /// Serve a batch: admit every request in order through the bounded queue,
  /// execute on `workers` threads, return responses in request order.
  /// Returns only when every request has resolved; never throws for
  /// per-request failures.
  std::vector<Response> serve(const std::vector<Request>& requests);

  /// The full lifecycle of one request (validate → attempt/retry → degrade),
  /// bypassing admission. serve() calls this on its workers; tests call it
  /// directly. `request_index` keys the backoff jitter stream.
  Response execute(const Request& request, int request_index);

  /// execute() against an explicit generator instead of the constructor
  /// primary — the router's entry point: it resolves a model lease per
  /// request and runs it through the shared engine (one Stats surface, one
  /// retry/degrade policy). Thread-safe like execute().
  Response execute_with(const core::TimeSeriesGenerator& primary, const Request& request,
                        int request_index);

  /// Accounting invariant (enforced by tests): every request handed to
  /// serve()/execute() lands in exactly one of ok/degraded/failed/shed, so
  ///   ok + degraded + failed + shed == total submitted
  /// and admitted == ok + degraded + failed (shed requests never execute).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t ok = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    uint64_t deadline_expirations = 0;
    uint64_t fallback_failures = 0;

    /// Requests that reached a terminal outcome. Equals the batch size once
    /// serve() returns — the invariant the accounting tests pin.
    uint64_t resolved() const { return ok + degraded + failed + shed; }
  };
  Stats stats() const;

  const EngineConfig& config() const { return cfg_; }

  /// Seeded backoff wait before retry `attempt` (>= 1) of `request_index`:
  /// saturating exponential `base << (attempt-1)` plus full jitter in
  /// [0, base), clamped to backoff_max_ms and then to `budget_ms` (the
  /// remaining deadline budget; -1 = unbounded). Public because the
  /// overflow/collision regression tests probe it directly.
  int64_t backoff_delay_ms(int request_index, int attempt, int64_t budget_ms) const;

  /// Lane-batch drain step (cfg.lane_batch): resolve one drained batch of
  /// request indices against `primary`, packing the batchable ones — no time
  /// budget; caller cancellation rides along per lane — into a single
  /// generate_batch() rollout and routing the rest (plus any lane whose
  /// batched attempt failed) through the classic execute_with() ladder.
  /// `request_at(idx)` fetches a request, `resolve(idx, response)` delivers
  /// its terminal response; both serve() and ModelRouter::serve() drain
  /// through this.
  void execute_lane_batch(const core::TimeSeriesGenerator& primary,
                          const std::vector<size_t>& batch,
                          const std::function<const Request&(size_t)>& request_at,
                          const std::function<void(size_t, Response&&)>& resolve);

 private:
  bool run_fallback(const Request& request, const runtime::Clock& clock,
                    Response& response) const;

  const core::TimeSeriesGenerator* primary_;
  const core::TimeSeriesGenerator* fallback_ = nullptr;
  EngineConfig cfg_;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_expirations_{0};
  mutable std::atomic<uint64_t> fallback_failures_{0};
};

}  // namespace gendt::serve
