// gendt::serve — multi-model registry: the serving layer's model catalog.
//
// ModelRegistry owns N named generators (typically core::GenDTGenerator
// instances loaded from GDTCKPT2 checkpoints or GDTPACK1 arenas, each with
// its own warmed InferenceSession pool) and hands them out as leases:
//
//   lease:     a shared, read-only pin on one immutable model *version*. A
//              request acquires its lease at admission and holds it for the
//              request's whole lifetime, so the version it computes with can
//              never change — or be destroyed — mid-request.
//   hot-swap:  swap(id, next) atomically installs a new version under the
//              same id. In-flight requests drain on the version they pinned;
//              the old version (weights, mmap arena, session pool) is
//              retired exactly when its last lease returns — zero-downtime,
//              no global pause, no use-after-free window. New admissions see
//              the new version immediately.
//   budgets:   each model carries its own admission budget (max in-flight).
//              admit() sheds traffic for an overloaded model without
//              touching any other model's headroom — isolation the router
//              tests pin down.
//   stats:     per-model Stats with the same partition invariant as the
//              engine: ok + degraded + failed + shed == total routed.
//
// Thread safety: every method is safe to call concurrently; leases are
// plain shared_ptr pins and may be released from any thread (the releasing
// thread runs the retirement destructor if it is the last holder).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gendt/core/generator.h"
#include "gendt/runtime/mutex.h"
#include "gendt/serve/engine.h"

namespace gendt::serve {

/// Per-model admission budget.
struct ModelBudget {
  /// Maximum requests admitted-but-not-yet-completed for this model
  /// (queued + executing). -1 = unlimited.
  int max_in_flight = -1;
};

/// Per-model accounting. Invariant once traffic has drained:
/// admitted == ok + degraded + failed, and total() == admitted + shed.
struct ModelStats {
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t failed = 0;
  uint64_t swaps = 0;  ///< completed hot-swaps (versions retired or retiring)

  uint64_t total() const { return ok + degraded + failed + shed; }
};

class ModelRegistry {
  /// One immutable installed model. Never mutated after install; retired
  /// (destroyed, releasing weights/arena/session pool) when the registry
  /// has moved past it AND the last lease has been released.
  struct Version {
    std::unique_ptr<core::TimeSeriesGenerator> generator;
    uint64_t number = 0;  ///< 1-based, monotonic per model id
  };

 public:
  /// A request's pin on one model version. Cheap to copy/move (shared_ptr).
  /// Default-constructed = empty; generator()/version() require engaged.
  class Lease {
   public:
    Lease() = default;
    const core::TimeSeriesGenerator& generator() const { return *version_->generator; }
    uint64_t version() const { return version_->number; }
    explicit operator bool() const { return version_ != nullptr; }
    void release() { version_.reset(); }

   private:
    friend class ModelRegistry;
    explicit Lease(std::shared_ptr<const Version> v) : version_(std::move(v)) {}
    std::shared_ptr<const Version> version_;
  };

  /// admit() result. Exactly one of three states:
  ///   lease engaged            → admitted (in-flight slot held)
  ///   empty lease, !unknown    → shed (budget exhausted; counted in stats)
  ///   empty lease, unknown     → no such model id (nothing counted)
  struct Admission {
    Lease lease;
    bool unknown = false;
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Install a model under a new id as version 1. False (and `generator`
  /// destroyed) if the id already exists or the generator is null.
  bool add(const std::string& id, std::unique_ptr<core::TimeSeriesGenerator> generator,
           ModelBudget budget = {}) GENDT_EXCLUDES(mu_);

  /// Hot-swap: atomically install `next` as the id's new version. Requests
  /// admitted before the swap finish on the version they leased; the old
  /// version is destroyed when its last lease releases (possibly inside
  /// this call, if none are outstanding). False if the id is unknown or
  /// `next` is null.
  bool swap(const std::string& id, std::unique_ptr<core::TimeSeriesGenerator> next)
      GENDT_EXCLUDES(mu_);

  /// Pin the current version of `id` without admission accounting (replay
  /// and inspection paths). Empty lease if unknown.
  Lease acquire(const std::string& id) const GENDT_EXCLUDES(mu_);

  /// Live-path admission: under budget → engaged lease + in-flight slot +
  /// admitted tally; over budget → shed tally; unknown id → nothing.
  /// Every engaged lease MUST be paired with exactly one complete().
  Admission admit(const std::string& id) GENDT_EXCLUDES(mu_);

  /// Release the in-flight slot taken by admit() and tally the terminal
  /// outcome (kOk/kDegraded → ok/degraded, anything else → failed).
  void complete(const std::string& id, Outcome outcome) GENDT_EXCLUDES(mu_);

  /// Undo an admit() whose request could not be enqueued downstream (e.g.
  /// the router's global queue shed it): the slot is released and the
  /// request re-tallied as shed instead of admitted.
  void abandon(const std::string& id) GENDT_EXCLUDES(mu_);

  /// Replay-path accounting: tally a request that was admitted and resolved
  /// outside the live in-flight counters (virtual-time admission), or shed.
  void record(const std::string& id, Outcome outcome) GENDT_EXCLUDES(mu_);

  ModelBudget budget(const std::string& id) const GENDT_EXCLUDES(mu_);  ///< {} if unknown
  ModelStats stats(const std::string& id) const GENDT_EXCLUDES(mu_);    ///< {} if unknown
  uint64_t active_version(const std::string& id) const GENDT_EXCLUDES(mu_);  ///< 0 if unknown
  int in_flight(const std::string& id) const GENDT_EXCLUDES(mu_);           ///< -1 if unknown
  std::vector<std::string> ids() const GENDT_EXCLUDES(mu_);  ///< sorted
  size_t size() const GENDT_EXCLUDES(mu_);

 private:
  struct Model {
    std::shared_ptr<const Version> current;
    ModelBudget budget;
    ModelStats stats;
    int in_flight = 0;
    uint64_t next_version = 2;  ///< add() installs 1
  };

  mutable runtime::Mutex mu_;
  // std::map, not unordered: ids() and any future iteration stay in
  // deterministic order (src/serve is an order-sensitive lint path).
  std::map<std::string, Model> models_ GENDT_GUARDED_BY(mu_);
};

}  // namespace gendt::serve
