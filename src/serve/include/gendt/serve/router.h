// gendt::serve — request router: GenerationEngine's batch serving loop in
// front of a ModelRegistry instead of a single primary model.
//
// Admission is two-gated, in request order:
//   1. per-model budget (registry.admit) — an overloaded model sheds its own
//      traffic (kShed/kOverloaded) without consuming queue space another
//      model could use;
//   2. the shared bounded queue (EngineConfig::max_queue + backpressure) —
//      global shed/block exactly as the single-model engine.
// A request's model-version lease is taken at admission (gate 1) and
// released after its outcome is recorded, so a hot-swap during the batch
// never changes — or destroys — the model a routed request runs on.
//
// Determinism: same contract as GenerationEngine::serve — with per-request
// virtual clocks and the block policy, outcomes are a pure function of the
// routed requests (and any swaps that happen-before serve()), bitwise
// identical at any worker count.
#pragma once

#include <string>
#include <vector>

#include "gendt/serve/engine.h"
#include "gendt/serve/registry.h"

namespace gendt::serve {

/// One routed request: which model, plus the ordinary engine request.
struct RoutedRequest {
  std::string model_id;
  Request request;
};

class ModelRouter {
 public:
  /// The registry must outlive the router. EngineConfig supplies the queue,
  /// worker, retry, deadline and fallback policy shared by all models.
  ModelRouter(ModelRegistry& registry, EngineConfig cfg)
      : registry_(registry), engine_(std::move(cfg)) {}

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Shared degradation path for every model (callers keep ownership).
  void set_fallback(const core::TimeSeriesGenerator* fallback) {
    engine_.set_fallback(fallback);
  }

  /// Route and serve a batch; responses come back in request order. An
  /// unknown model_id resolves to kError/kInvalidRequest; a model over its
  /// budget (or a full global queue) resolves to kShed/kOverloaded.
  /// Per-model tallies land in the registry (ModelStats invariant holds per
  /// model); execution tallies also land in engine().stats().
  std::vector<Response> serve(const std::vector<RoutedRequest>& requests);

  /// The shared execution engine (aggregate Stats across all models).
  const GenerationEngine& engine() const { return engine_; }

 private:
  ModelRegistry& registry_;
  GenerationEngine engine_;
};

}  // namespace gendt::serve
