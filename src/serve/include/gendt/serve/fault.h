// Deterministic, seed-driven fault injection for the serving layer.
//
// A FaultPlan is a fixed table of faults keyed by (request index, window
// index): inject a virtual-time delay, throw a transient error, or poison
// the emitted values with NaN. Plans are either hand-built or derived from a
// seed (FaultPlan::random), so a chaos run is a pure function of
// (seed, plan) — the same schedule replays bit-for-bit at any thread count.
//
// ScriptedGenerator is the instrumented TimeSeriesGenerator the chaos tests
// serve: a synthetic model whose output is a pure function of
// (seed, window, t, channel) and whose misbehavior comes entirely from the
// plan. Time is virtual — each request binds its own ManualClock, which the
// generator advances by a per-window base cost plus any injected delay, so
// "slow model" and "deadline expiry" are exactly reproducible and isolated
// between concurrently-executing requests.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "gendt/core/generator.h"
#include "gendt/runtime/cancel.h"
#include "gendt/serve/error.h"

namespace gendt::serve {

struct Fault {
  enum class Kind : uint8_t {
    kDelay,   ///< advance the request's virtual clock by delay_ms
    kThrow,   ///< throw TransientError before emitting the window
    kPoison,  ///< emit NaN for every value of the window
  };
  Kind kind = Kind::kDelay;
  int request = 0;       ///< request index the fault targets
  int window = 0;        ///< window index within the request
  int64_t delay_ms = 0;  ///< kDelay only
  /// The fault fires while the request's attempt number is < `attempts`:
  /// 1 models a transient hiccup (a retry succeeds), a large value a sticky
  /// failure that must exhaust retries and degrade.
  int attempts = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void add(const Fault& fault) { faults_.push_back(fault); }
  const std::vector<Fault>& faults() const { return faults_; }

  /// All faults registered for (request, window).
  std::vector<Fault> at(int request, int window) const;

  /// Derive a random plan from `seed`: every (request, window) slot rolls
  /// independently for each fault kind on its own
  /// derive_stream_seed(seed, slot) stream, so the plan is a pure function
  /// of its arguments. Rates are per-slot probabilities in [0, 1].
  static FaultPlan random(uint64_t seed, int num_requests, int windows_per_request,
                          double delay_rate, double throw_rate, double poison_rate,
                          int64_t max_delay_ms);

 private:
  std::vector<Fault> faults_;
};

/// A client-side chaos action for the streaming service, keyed by
/// (session index, chunk index). Where FaultPlan misbehaves the *model*,
/// a StreamScript misbehaves the *client*: stream_chaos_test's scripted
/// clients consult it after every chunk and act it out — so mid-chunk
/// disconnects, stalled readers (withheld ACKs / backpressure), heartbeat
/// loss, and kill-and-resume are all a fixed, replayable schedule rather
/// than timing accidents.
struct StreamFault {
  enum class Kind : uint8_t {
    /// Drop the connection after *receiving* chunk `chunk` without ACKing
    /// it — the server sees a mid-chunk disconnect (sent, never ACKed).
    kDisconnect,
    /// Withhold the ACK for chunk `chunk` for `stall_ms` of virtual time —
    /// the stalled-reader/backpressure path (one-chunk-in-flight means the
    /// server must not generate ahead while the ACK is outstanding).
    kStallAck,
    /// Stop heartbeating after chunk `chunk` and go silent — drives the
    /// server's idle-timeout detach.
    kDropHeartbeat,
    /// Kill the connection after ACKing chunk `chunk`, then RESUME on a
    /// fresh connection — the seam-free resume path.
    kKillResume,
  };
  Kind kind = Kind::kDisconnect;
  int session = 0;     ///< scripted-client index the fault targets
  uint64_t chunk = 0;  ///< chunk index the action triggers on
  int64_t stall_ms = 0;  ///< kStallAck only
};

/// Ordered collection of StreamFaults; at() returns the first fault
/// registered for a (session, chunk) slot, or nullptr.
class StreamScript {
 public:
  void add(const StreamFault& fault) { faults_.push_back(fault); }
  const std::vector<StreamFault>& faults() const { return faults_; }
  const StreamFault* at(int session, uint64_t chunk) const;

 private:
  std::vector<StreamFault> faults_;
};

/// Synthetic generator for chaos/serve tests: deterministic output, faults
/// from a FaultPlan, virtual per-request time. Concurrent generate() calls
/// for different requests are independent; all shared state is either
/// immutable during serving (bindings, plan) or per-request atomics.
class ScriptedGenerator final : public core::TimeSeriesGenerator {
 public:
  struct Config {
    int num_channels = 2;
    /// Virtual cost of generating one window, charged to the request's
    /// clock before the window is emitted — what makes a deadline bite even
    /// without injected delays.
    int64_t window_cost_ms = 1;
  };

  ScriptedGenerator(Config cfg, FaultPlan plan, int num_requests);

  /// Associate a request seed with its index and virtual clock. Must be
  /// called for every request before serving starts (bindings are read-only
  /// during serving). The engine passes Request::seed through to generate()
  /// untouched, which is what makes this lookup well-defined.
  void bind_request(uint64_t seed, int request_index, runtime::ManualClock* clock);

  /// Attempts generate() has seen for a request (fault `attempts` gating).
  int attempt_count(int request_index) const;

  /// The value the generator emits at (seed, window, t, channel) — exposed
  /// so tests can assert a served series is exactly the expected bits.
  static double expected_value(uint64_t seed, int window, int t, int channel);

  std::string name() const override { return "Scripted"; }
  void fit(const std::vector<context::Window>&) override {}
  core::GeneratedSeries generate(const std::vector<context::Window>& windows,
                                 uint64_t seed) const override {
    return generate(windows, seed, nullptr);
  }
  core::GeneratedSeries generate(const std::vector<context::Window>& windows, uint64_t seed,
                                 const runtime::CancelToken* cancel) const override;

 private:
  struct Binding {
    int index = 0;
    runtime::ManualClock* clock = nullptr;
  };

  Config cfg_;
  FaultPlan plan_;
  std::map<uint64_t, Binding> bindings_;
  /// Per-request attempt counters; only the thread executing a request
  /// increments its own slot, so ordering is deterministic per request.
  mutable std::vector<std::atomic<int>> attempts_;
};

/// Trivial fallback generator for tests: constant per-channel values,
/// instant, never fails. (The CLI uses the real baselines::FDaS instead.)
class ConstantGenerator final : public core::TimeSeriesGenerator {
 public:
  explicit ConstantGenerator(int num_channels, double value = 0.0)
      : num_channels_(num_channels), value_(value) {}
  std::string name() const override { return "Constant"; }
  void fit(const std::vector<context::Window>&) override {}
  core::GeneratedSeries generate(const std::vector<context::Window>& windows,
                                 uint64_t seed) const override;

 private:
  int num_channels_;
  double value_;
};

}  // namespace gendt::serve
