#include "gendt/serve/replay.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>

#include "gendt/runtime/thread_pool.h"

namespace gendt::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv_double(uint64_t h, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv_mix(h, bits);
}

uint64_t digest_series(const core::GeneratedSeries& series) {
  if (series.channels.empty()) return 0;
  uint64_t h = kFnvOffset;
  h = fnv_mix(h, series.channels.size());
  for (const auto& ch : series.channels) {
    h = fnv_mix(h, ch.size());
    for (double v : ch) h = fnv_double(h, v);
  }
  return h;
}

/// Seeded Poisson arrival times (ms, non-decreasing) at cfg.rate_hz.
std::vector<int64_t> poisson_arrivals(const TraceConfig& cfg) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(std::max(0, cfg.num_requests)));
  std::mt19937_64 rng(runtime::derive_stream_seed(cfg.seed, 0xA441AA1ULL));
  const double rate = cfg.rate_hz > 0.0 ? cfg.rate_hz : 1.0;
  std::exponential_distribution<double> gap_s(rate);
  double t_ms = 0.0;
  for (int i = 0; i < cfg.num_requests; ++i) {
    t_ms += gap_s(rng) * 1000.0;
    out.push_back(static_cast<int64_t>(std::llround(t_ms)));
  }
  return out;
}

const std::string& model_for(const TraceConfig& cfg, int i) {
  static const std::string kDefault = "default";
  if (cfg.model_ids.empty()) return kDefault;
  return cfg.model_ids[static_cast<size_t>(i) % cfg.model_ids.size()];
}

}  // namespace

Trace synthetic_trace(const TraceConfig& cfg) {
  Trace trace;
  const std::vector<int64_t> arrivals = poisson_arrivals(cfg);
  trace.requests.reserve(arrivals.size());
  for (int i = 0; i < static_cast<int>(arrivals.size()); ++i) {
    TraceRequest req;
    req.model_id = model_for(cfg, i);
    req.arrival_ms = arrivals[static_cast<size_t>(i)];
    req.seed = runtime::derive_stream_seed(cfg.seed, static_cast<uint64_t>(i));
    req.deadline_ms = cfg.deadline_ms;
    const int wlen = std::max(1, cfg.window_len);
    req.windows.resize(static_cast<size_t>(std::max(1, cfg.windows_per_request)));
    for (size_t w = 0; w < req.windows.size(); ++w) {
      req.windows[w].start = static_cast<int>(w) * wlen;
      req.windows[w].len = wlen;
    }
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

Trace sim_trace(const context::ContextBuilder& builder, const sim::RegionConfig& region,
                const TraceConfig& cfg) {
  Trace trace;
  const std::vector<int64_t> arrivals = poisson_arrivals(cfg);
  trace.requests.reserve(arrivals.size());
  // Cycle the paper's seven measurement scenarios across the user
  // population; each request is one user's trajectory through the region.
  // Highway scenarios need a highway polyline to ride — a region without
  // one (small test worlds) keeps the city/transit scenarios only.
  std::vector<sim::Scenario> scenarios = {
      sim::Scenario::kWalk,         sim::Scenario::kBus, sim::Scenario::kTram,
      sim::Scenario::kCityDriving1, sim::Scenario::kCityDriving2};
  if (!region.highways.empty()) {
    scenarios.push_back(sim::Scenario::kHighway1);
    scenarios.push_back(sim::Scenario::kHighway2);
  }
  const size_t kNumScenarios = scenarios.size();
  const int cities = std::max<int>(1, static_cast<int>(region.cities.size()));
  for (int i = 0; i < static_cast<int>(arrivals.size()); ++i) {
    TraceRequest req;
    req.model_id = model_for(cfg, i);
    req.arrival_ms = arrivals[static_cast<size_t>(i)];
    req.seed = runtime::derive_stream_seed(cfg.seed, static_cast<uint64_t>(i));
    req.deadline_ms = cfg.deadline_ms;
    std::mt19937_64 rng(runtime::derive_stream_seed(cfg.seed ^ 0x7Ace5eedULL,
                                                    static_cast<uint64_t>(i)));
    const geo::Trajectory traj = sim::scenario_trajectory(
        region, scenarios[static_cast<size_t>(i) % kNumScenarios],
        cfg.trajectory_duration_s, rng, i % cities);
    req.windows = builder.generation_windows(traj);
    if (req.windows.empty()) continue;  // trajectory too short for one window
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

ReplayReport replay(ModelRegistry& registry, const Trace& trace,
                    std::vector<runtime::ManualClock>& clocks, const ReplayConfig& cfg,
                    std::vector<SwapScript> swaps,
                    const core::TimeSeriesGenerator* fallback) {
  const size_t n = trace.requests.size();
  if (clocks.size() < n)
    throw std::invalid_argument("replay: clocks vector smaller than trace");

  ReplayReport report;
  report.outcomes.resize(n);

  // ---- phase 1: virtual-time admission & scheduling (sequential) --------
  std::stable_sort(swaps.begin(), swaps.end(),
                   [](const SwapScript& a, const SwapScript& b) { return a.at_ms < b.at_ms; });
  struct Sched {
    bool admitted = false;
    int64_t start = 0;
    int64_t cost = 0;
    ModelRegistry::Lease lease;
  };
  std::vector<Sched> sched(n);
  std::vector<int64_t> worker_free(static_cast<size_t>(std::max(1, cfg.sim_workers)), 0);
  using MinHeap = std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>;
  std::map<std::string, MinHeap> occupancy;  // per-model nominal finish times

  size_t swap_i = 0;
  int64_t prev_arrival = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    const TraceRequest& tr = trace.requests[i];
    if (tr.arrival_ms < prev_arrival)
      throw std::invalid_argument("replay: trace arrivals must be non-decreasing");
    prev_arrival = tr.arrival_ms;

    // Scripted hot-swaps come due strictly by virtual time: every request
    // arriving at or after a swap leases the new version, every earlier one
    // drains on the version it pinned. Swap timing can therefore move WHICH
    // version answers, but never how — the determinism tests pin that.
    while (swap_i < swaps.size() && swaps[swap_i].at_ms <= tr.arrival_ms) {
      registry.swap(swaps[swap_i].model_id, std::move(swaps[swap_i].next));
      ++swap_i;
    }

    RequestOutcome& o = report.outcomes[i];
    o.arrival_ms = tr.arrival_ms;
    o.start_ms = tr.arrival_ms;
    o.finish_ms = tr.arrival_ms;

    ModelRegistry::Lease lease = registry.acquire(tr.model_id);
    if (!lease) {
      o.outcome = Outcome::kError;
      o.code = ServeErrorCode::kInvalidRequest;  // unknown model id
      continue;
    }

    // Budget decision from virtual occupancy: requests admitted earlier
    // occupy the model until their nominal finish.
    MinHeap& occ = occupancy[tr.model_id];
    while (!occ.empty() && occ.top() <= tr.arrival_ms) occ.pop();
    const int budget = registry.budget(tr.model_id).max_in_flight;
    if (budget >= 0 && occ.size() >= static_cast<size_t>(budget)) {
      o.outcome = Outcome::kShed;
      o.code = ServeErrorCode::kOverloaded;
      o.version = lease.version();
      registry.record(tr.model_id, Outcome::kShed);
      continue;
    }

    // Earliest-free simulated server, lowest index breaking ties.
    size_t k = 0;
    for (size_t w = 1; w < worker_free.size(); ++w)
      if (worker_free[w] < worker_free[k]) k = w;
    const int64_t start = std::max(tr.arrival_ms, worker_free[k]);
    const int64_t cost =
        std::max<int64_t>(0, cfg.per_window_cost_ms) * static_cast<int64_t>(tr.windows.size());
    worker_free[k] = start + cost;
    occ.push(start + cost);

    o.version = lease.version();
    sched[i].admitted = true;
    sched[i].start = start;
    sched[i].cost = cost;
    sched[i].lease = std::move(lease);
  }

  std::vector<size_t> admitted;
  admitted.reserve(n);
  for (size_t i = 0; i < n; ++i)
    if (sched[i].admitted) admitted.push_back(i);

  // ---- phase 2: execution (parallel, outcome-pure) ----------------------
  // Every admitted request runs against its own ManualClock started at its
  // scheduled virtual start with its lease pinned in phase 1, so nothing a
  // sibling thread does can move its outcome: `threads` is wall-time only.
  GenerationEngine engine(cfg.engine);
  if (fallback != nullptr) engine.set_fallback(fallback);
  if (!admitted.empty()) {
    runtime::parallel_tasks(
        runtime::Parallelism{.threads = std::max(1, cfg.threads)},
        static_cast<int>(admitted.size()), [&](int t) {
          const size_t i = admitted[static_cast<size_t>(t)];
          const TraceRequest& tr = trace.requests[i];
          runtime::ManualClock& clock = clocks[i];
          clock.set_ms(sched[i].start);

          Request req;
          req.windows = tr.windows;
          req.seed = tr.seed;
          req.virtual_clock = &clock;
          int64_t deadline = tr.deadline_ms;
          if (deadline >= 0) {
            // The deadline budget is measured from ARRIVAL: virtual queue
            // wait spends it before execution even starts.
            deadline = std::max<int64_t>(0, deadline - (sched[i].start - tr.arrival_ms));
          }
          req.deadline_ms = deadline;

          Response resp =
              engine.execute_with(sched[i].lease.generator(), req, static_cast<int>(i));

          RequestOutcome& o = report.outcomes[i];
          o.outcome = resp.outcome;
          o.code = resp.error.code;
          o.attempts = resp.attempts;
          o.fallback_used = resp.fallback_used;
          o.series_digest = digest_series(resp.series);
          // Models that charge virtual time (scripted) move the clock; ones
          // that don't (real inference) bill at least the nominal cost.
          o.finish_ms = std::max(clock.now_ms(), sched[i].start + sched[i].cost);
          o.start_ms = sched[i].start;
          o.latency_ms = o.finish_ms - o.arrival_ms;

          registry.record(tr.model_id, resp.outcome);
          sched[i].lease.release();  // last lease out retires a swapped version
        });
  }

  // ---- rollup ------------------------------------------------------------
  struct Agg {
    ModelReport r;
    std::vector<int64_t> latencies;
  };
  std::map<std::string, Agg> by_model;
  uint64_t digest = kFnvOffset;
  for (size_t i = 0; i < n; ++i) {
    const RequestOutcome& o = report.outcomes[i];
    Agg& a = by_model[trace.requests[i].model_id];
    a.r.requests++;
    switch (o.outcome) {
      case Outcome::kOk: a.r.ok++; break;
      case Outcome::kDegraded: a.r.degraded++; break;
      case Outcome::kShed: a.r.shed++; break;
      case Outcome::kError: a.r.failed++; break;
    }
    if (o.outcome != Outcome::kShed) a.latencies.push_back(o.latency_ms);
    digest = fnv_mix(digest, static_cast<uint64_t>(o.outcome));
    digest = fnv_mix(digest, static_cast<uint64_t>(o.code));
    digest = fnv_mix(digest, static_cast<uint64_t>(o.attempts));
    digest = fnv_mix(digest, o.fallback_used ? 1u : 0u);
    digest = fnv_mix(digest, o.series_digest);
    digest = fnv_mix(digest, o.version);
    digest = fnv_mix(digest, static_cast<uint64_t>(o.start_ms));
    digest = fnv_mix(digest, static_cast<uint64_t>(o.finish_ms));
  }
  report.digest = digest;
  for (auto& [id, agg] : by_model) {
    agg.r.id = id;
    agg.r.shed_rate =
        agg.r.requests == 0 ? 0.0
                            : static_cast<double>(agg.r.shed) / static_cast<double>(agg.r.requests);
    std::sort(agg.latencies.begin(), agg.latencies.end());
    const auto pct = [&](double q) -> double {
      if (agg.latencies.empty()) return 0.0;
      const double rank = std::ceil(q * static_cast<double>(agg.latencies.size()));
      const size_t idx =
          std::min(agg.latencies.size() - 1, static_cast<size_t>(std::max(1.0, rank)) - 1);
      return static_cast<double>(agg.latencies[idx]);
    };
    agg.r.p50_latency_ms = pct(0.50);
    agg.r.p99_latency_ms = pct(0.99);
    report.models.push_back(agg.r);
  }
  return report;
}

}  // namespace gendt::serve
