#include "gendt/serve/fault.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

#include "gendt/runtime/thread_pool.h"

namespace gendt::serve {

std::vector<Fault> FaultPlan::at(int request, int window) const {
  std::vector<Fault> out;
  for (const auto& f : faults_)
    if (f.request == request && f.window == window) out.push_back(f);
  return out;
}

FaultPlan FaultPlan::random(uint64_t seed, int num_requests, int windows_per_request,
                            double delay_rate, double throw_rate, double poison_rate,
                            int64_t max_delay_ms) {
  FaultPlan plan;
  for (int r = 0; r < num_requests; ++r) {
    for (int w = 0; w < windows_per_request; ++w) {
      // One independent stream per slot: the roll for slot (r, w) never
      // depends on how many faults earlier slots drew.
      const uint64_t slot = static_cast<uint64_t>(r) * 8191u + static_cast<uint64_t>(w);
      std::mt19937_64 rng(runtime::derive_stream_seed(seed, slot));
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng) < delay_rate) {
        std::uniform_int_distribution<int64_t> d(1, std::max<int64_t>(1, max_delay_ms));
        plan.add({Fault::Kind::kDelay, r, w, d(rng), 1});
      }
      if (coin(rng) < throw_rate) {
        // Half the throws are transient (retry succeeds), half sticky.
        const int attempts = coin(rng) < 0.5 ? 1 : std::numeric_limits<int>::max();
        plan.add({Fault::Kind::kThrow, r, w, 0, attempts});
      }
      if (coin(rng) < poison_rate) {
        const int attempts = coin(rng) < 0.5 ? 1 : std::numeric_limits<int>::max();
        plan.add({Fault::Kind::kPoison, r, w, 0, attempts});
      }
    }
  }
  return plan;
}

const StreamFault* StreamScript::at(int session, uint64_t chunk) const {
  for (const auto& f : faults_)
    if (f.session == session && f.chunk == chunk) return &f;
  return nullptr;
}

ScriptedGenerator::ScriptedGenerator(Config cfg, FaultPlan plan, int num_requests)
    : cfg_(cfg), plan_(std::move(plan)), attempts_(static_cast<size_t>(num_requests)) {
  for (auto& a : attempts_) a.store(0, std::memory_order_relaxed);
}

void ScriptedGenerator::bind_request(uint64_t seed, int request_index,
                                     runtime::ManualClock* clock) {
  bindings_[seed] = Binding{request_index, clock};
}

int ScriptedGenerator::attempt_count(int request_index) const {
  return attempts_[static_cast<size_t>(request_index)].load(std::memory_order_relaxed);
}

double ScriptedGenerator::expected_value(uint64_t seed, int window, int t, int channel) {
  // A full-avalanche hash mapped into [-1, 1): pure in its arguments, so the
  // bits of a served series are checkable against the request alone.
  const uint64_t h = runtime::derive_stream_seed(
      seed, (static_cast<uint64_t>(window) << 40) ^ (static_cast<uint64_t>(t) << 16) ^
                static_cast<uint64_t>(channel));
  return static_cast<double>(h >> 11) * (2.0 / 9007199254740992.0) - 1.0;
}

core::GeneratedSeries ScriptedGenerator::generate(const std::vector<context::Window>& windows,
                                                  uint64_t seed,
                                                  const runtime::CancelToken* cancel) const {
  const auto it = bindings_.find(seed);
  if (it == bindings_.end())
    throw std::logic_error("ScriptedGenerator: request seed was never bound");
  const Binding& bind = it->second;
  const int attempt =
      attempts_[static_cast<size_t>(bind.index)].fetch_add(1, std::memory_order_relaxed);

  core::GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(cfg_.num_channels), {});
  for (size_t w = 0; w < windows.size(); ++w) {
    runtime::check_cancel(cancel);

    // Charge the window's virtual cost, then any injected slowness, before
    // doing the "work" — a deadline that expires mid-window is observed at
    // the next boundary, exactly like the real rollout loop.
    int64_t delay = cfg_.window_cost_ms;
    bool poison = false;
    bool do_throw = false;
    for (const auto& f : plan_.at(bind.index, static_cast<int>(w))) {
      if (attempt >= f.attempts) continue;  // fault already "healed"
      switch (f.kind) {
        case Fault::Kind::kDelay: delay += f.delay_ms; break;
        case Fault::Kind::kThrow: do_throw = true; break;
        case Fault::Kind::kPoison: poison = true; break;
      }
    }
    if (bind.clock != nullptr && delay > 0) bind.clock->advance_ms(delay);
    runtime::check_cancel(cancel);
    if (do_throw) throw TransientError("injected transient failure");

    for (int t = 0; t < windows[w].len; ++t) {
      for (int ch = 0; ch < cfg_.num_channels; ++ch) {
        out.channels[static_cast<size_t>(ch)].push_back(
            poison ? std::numeric_limits<double>::quiet_NaN()
                   : expected_value(seed, static_cast<int>(w), t, ch));
      }
    }
  }
  return out;
}

core::GeneratedSeries ConstantGenerator::generate(const std::vector<context::Window>& windows,
                                                  uint64_t /*seed*/) const {
  core::GeneratedSeries out;
  out.channels.assign(static_cast<size_t>(num_channels_), {});
  for (const auto& w : windows)
    for (int t = 0; t < w.len; ++t)
      for (auto& ch : out.channels) ch.push_back(value_);
  return out;
}

}  // namespace gendt::serve
