file(REMOVE_RECURSE
  "CMakeFiles/gendt_cli.dir/gendt_cli.cpp.o"
  "CMakeFiles/gendt_cli.dir/gendt_cli.cpp.o.d"
  "gendt"
  "gendt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
