# Empty compiler generated dependencies file for gendt_cli.
# This may be replaced when dependencies are built.
