file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_long_complex.dir/bench_table7_long_complex.cpp.o"
  "CMakeFiles/bench_table7_long_complex.dir/bench_table7_long_complex.cpp.o.d"
  "bench_table7_long_complex"
  "bench_table7_long_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_long_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
