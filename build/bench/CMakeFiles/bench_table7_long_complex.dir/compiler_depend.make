# Empty compiler generated dependencies file for bench_table7_long_complex.
# This may be replaced when dependencies are built.
