# Empty compiler generated dependencies file for bench_fig16_serving_distance_cdf.
# This may be replaced when dependencies are built.
