file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_serving_distance_cdf.dir/bench_fig16_serving_distance_cdf.cpp.o"
  "CMakeFiles/bench_fig16_serving_distance_cdf.dir/bench_fig16_serving_distance_cdf.cpp.o.d"
  "bench_fig16_serving_distance_cdf"
  "bench_fig16_serving_distance_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_serving_distance_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
