file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fidelity_a_rsrp.dir/bench_table3_fidelity_a_rsrp.cpp.o"
  "CMakeFiles/bench_table3_fidelity_a_rsrp.dir/bench_table3_fidelity_a_rsrp.cpp.o.d"
  "bench_table3_fidelity_a_rsrp"
  "bench_table3_fidelity_a_rsrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fidelity_a_rsrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
