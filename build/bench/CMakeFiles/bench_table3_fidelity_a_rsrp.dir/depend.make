# Empty dependencies file for bench_table3_fidelity_a_rsrp.
# This may be replaced when dependencies are built.
