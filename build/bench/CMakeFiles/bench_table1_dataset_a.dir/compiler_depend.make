# Empty compiler generated dependencies file for bench_table1_dataset_a.
# This may be replaced when dependencies are built.
