# Empty dependencies file for bench_table6_fidelity_b_avg.
# This may be replaced when dependencies are built.
