file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fidelity_b_avg.dir/bench_table6_fidelity_b_avg.cpp.o"
  "CMakeFiles/bench_table6_fidelity_b_avg.dir/bench_table6_fidelity_b_avg.cpp.o.d"
  "bench_table6_fidelity_b_avg"
  "bench_table6_fidelity_b_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fidelity_b_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
