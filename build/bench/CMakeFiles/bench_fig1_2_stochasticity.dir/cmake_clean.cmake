file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_stochasticity.dir/bench_fig1_2_stochasticity.cpp.o"
  "CMakeFiles/bench_fig1_2_stochasticity.dir/bench_fig1_2_stochasticity.cpp.o.d"
  "bench_fig1_2_stochasticity"
  "bench_fig1_2_stochasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_stochasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
