
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_2_stochasticity.cpp" "bench/CMakeFiles/bench_fig1_2_stochasticity.dir/bench_fig1_2_stochasticity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_2_stochasticity.dir/bench_fig1_2_stochasticity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gendt_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gendt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gendt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/gendt_context.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gendt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gendt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/gendt_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/gendt_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gendt_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
