# Empty compiler generated dependencies file for bench_table10_fig13_handover.
# This may be replaced when dependencies are built.
