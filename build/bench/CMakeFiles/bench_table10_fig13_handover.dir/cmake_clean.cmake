file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_fig13_handover.dir/bench_table10_fig13_handover.cpp.o"
  "CMakeFiles/bench_table10_fig13_handover.dir/bench_table10_fig13_handover.cpp.o.d"
  "bench_table10_fig13_handover"
  "bench_table10_fig13_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_fig13_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
