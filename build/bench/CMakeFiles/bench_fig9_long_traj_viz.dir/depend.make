# Empty dependencies file for bench_fig9_long_traj_viz.
# This may be replaced when dependencies are built.
