file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_long_traj_viz.dir/bench_fig9_long_traj_viz.cpp.o"
  "CMakeFiles/bench_fig9_long_traj_viz.dir/bench_fig9_long_traj_viz.cpp.o.d"
  "bench_fig9_long_traj_viz"
  "bench_fig9_long_traj_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_long_traj_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
