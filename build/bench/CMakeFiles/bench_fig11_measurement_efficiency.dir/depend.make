# Empty dependencies file for bench_fig11_measurement_efficiency.
# This may be replaced when dependencies are built.
