file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_sample_series.dir/bench_fig18_sample_series.cpp.o"
  "CMakeFiles/bench_fig18_sample_series.dir/bench_fig18_sample_series.cpp.o.d"
  "bench_fig18_sample_series"
  "bench_fig18_sample_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_sample_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
