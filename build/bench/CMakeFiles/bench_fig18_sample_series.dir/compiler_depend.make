# Empty compiler generated dependencies file for bench_fig18_sample_series.
# This may be replaced when dependencies are built.
