# Empty compiler generated dependencies file for bench_table9_fig12_qoe.
# This may be replaced when dependencies are built.
