file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_fig12_qoe.dir/bench_table9_fig12_qoe.cpp.o"
  "CMakeFiles/bench_table9_fig12_qoe.dir/bench_table9_fig12_qoe.cpp.o.d"
  "bench_table9_fig12_qoe"
  "bench_table9_fig12_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_fig12_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
