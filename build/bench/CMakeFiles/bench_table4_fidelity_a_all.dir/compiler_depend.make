# Empty compiler generated dependencies file for bench_table4_fidelity_a_all.
# This may be replaced when dependencies are built.
