file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fidelity_a_all.dir/bench_table4_fidelity_a_all.cpp.o"
  "CMakeFiles/bench_table4_fidelity_a_all.dir/bench_table4_fidelity_a_all.cpp.o.d"
  "bench_table4_fidelity_a_all"
  "bench_table4_fidelity_a_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fidelity_a_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
