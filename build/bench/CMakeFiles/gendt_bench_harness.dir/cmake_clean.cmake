file(REMOVE_RECURSE
  "CMakeFiles/gendt_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/gendt_bench_harness.dir/harness.cpp.o.d"
  "libgendt_bench_harness.a"
  "libgendt_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
