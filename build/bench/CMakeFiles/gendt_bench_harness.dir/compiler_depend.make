# Empty compiler generated dependencies file for gendt_bench_harness.
# This may be replaced when dependencies are built.
