file(REMOVE_RECURSE
  "libgendt_bench_harness.a"
)
