# Empty compiler generated dependencies file for bench_table5_fidelity_b_rsrp.
# This may be replaced when dependencies are built.
