file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fidelity_b_rsrp.dir/bench_table5_fidelity_b_rsrp.cpp.o"
  "CMakeFiles/bench_table5_fidelity_b_rsrp.dir/bench_table5_fidelity_b_rsrp.cpp.o.d"
  "bench_table5_fidelity_b_rsrp"
  "bench_table5_fidelity_b_rsrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fidelity_b_rsrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
