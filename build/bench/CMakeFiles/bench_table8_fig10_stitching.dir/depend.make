# Empty dependencies file for bench_table8_fig10_stitching.
# This may be replaced when dependencies are built.
