file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_fig10_stitching.dir/bench_table8_fig10_stitching.cpp.o"
  "CMakeFiles/bench_table8_fig10_stitching.dir/bench_table8_fig10_stitching.cpp.o.d"
  "bench_table8_fig10_stitching"
  "bench_table8_fig10_stitching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_fig10_stitching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
