# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nn_mat_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/radio_test[1]_include.cmake")
include("/root/repo/build/tests/sim_landuse_test[1]_include.cmake")
include("/root/repo/build/tests/sim_world_test[1]_include.cmake")
include("/root/repo/build/tests/sim_drive_test_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/context_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/downstream_test[1]_include.cmake")
include("/root/repo/build/tests/nn_property_test[1]_include.cmake")
include("/root/repo/build/tests/radio_property_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_roads_test[1]_include.cmake")
include("/root/repo/build/tests/downstream_extended_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/downstream_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/io_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_config_test[1]_include.cmake")
include("/root/repo/build/tests/cvae_test[1]_include.cmake")
