# Empty dependencies file for sim_drive_test_test.
# This may be replaced when dependencies are built.
