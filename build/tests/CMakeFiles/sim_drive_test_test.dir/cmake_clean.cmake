file(REMOVE_RECURSE
  "CMakeFiles/sim_drive_test_test.dir/sim_drive_test_test.cpp.o"
  "CMakeFiles/sim_drive_test_test.dir/sim_drive_test_test.cpp.o.d"
  "sim_drive_test_test"
  "sim_drive_test_test.pdb"
  "sim_drive_test_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_drive_test_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
