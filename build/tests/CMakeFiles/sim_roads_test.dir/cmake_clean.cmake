file(REMOVE_RECURSE
  "CMakeFiles/sim_roads_test.dir/sim_roads_test.cpp.o"
  "CMakeFiles/sim_roads_test.dir/sim_roads_test.cpp.o.d"
  "sim_roads_test"
  "sim_roads_test.pdb"
  "sim_roads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_roads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
