# Empty dependencies file for sim_roads_test.
# This may be replaced when dependencies are built.
