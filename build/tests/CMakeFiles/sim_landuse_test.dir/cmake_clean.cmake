file(REMOVE_RECURSE
  "CMakeFiles/sim_landuse_test.dir/sim_landuse_test.cpp.o"
  "CMakeFiles/sim_landuse_test.dir/sim_landuse_test.cpp.o.d"
  "sim_landuse_test"
  "sim_landuse_test.pdb"
  "sim_landuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_landuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
