file(REMOVE_RECURSE
  "CMakeFiles/nn_mat_test.dir/nn_mat_test.cpp.o"
  "CMakeFiles/nn_mat_test.dir/nn_mat_test.cpp.o.d"
  "nn_mat_test"
  "nn_mat_test.pdb"
  "nn_mat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_mat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
