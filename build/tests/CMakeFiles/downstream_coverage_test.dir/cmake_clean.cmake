file(REMOVE_RECURSE
  "CMakeFiles/downstream_coverage_test.dir/downstream_coverage_test.cpp.o"
  "CMakeFiles/downstream_coverage_test.dir/downstream_coverage_test.cpp.o.d"
  "downstream_coverage_test"
  "downstream_coverage_test.pdb"
  "downstream_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
