# Empty compiler generated dependencies file for radio_property_test.
# This may be replaced when dependencies are built.
