file(REMOVE_RECURSE
  "CMakeFiles/radio_property_test.dir/radio_property_test.cpp.o"
  "CMakeFiles/radio_property_test.dir/radio_property_test.cpp.o.d"
  "radio_property_test"
  "radio_property_test.pdb"
  "radio_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
