# Empty compiler generated dependencies file for cvae_test.
# This may be replaced when dependencies are built.
