file(REMOVE_RECURSE
  "CMakeFiles/metrics_property_test.dir/metrics_property_test.cpp.o"
  "CMakeFiles/metrics_property_test.dir/metrics_property_test.cpp.o.d"
  "metrics_property_test"
  "metrics_property_test.pdb"
  "metrics_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
