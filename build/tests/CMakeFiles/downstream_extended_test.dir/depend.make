# Empty dependencies file for downstream_extended_test.
# This may be replaced when dependencies are built.
