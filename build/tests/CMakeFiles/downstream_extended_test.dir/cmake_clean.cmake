file(REMOVE_RECURSE
  "CMakeFiles/downstream_extended_test.dir/downstream_extended_test.cpp.o"
  "CMakeFiles/downstream_extended_test.dir/downstream_extended_test.cpp.o.d"
  "downstream_extended_test"
  "downstream_extended_test.pdb"
  "downstream_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
