file(REMOVE_RECURSE
  "CMakeFiles/downstream_test.dir/downstream_test.cpp.o"
  "CMakeFiles/downstream_test.dir/downstream_test.cpp.o.d"
  "downstream_test"
  "downstream_test.pdb"
  "downstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
