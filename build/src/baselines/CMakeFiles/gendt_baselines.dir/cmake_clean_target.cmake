file(REMOVE_RECURSE
  "libgendt_baselines.a"
)
