file(REMOVE_RECURSE
  "CMakeFiles/gendt_baselines.dir/baselines.cpp.o"
  "CMakeFiles/gendt_baselines.dir/baselines.cpp.o.d"
  "CMakeFiles/gendt_baselines.dir/cvae.cpp.o"
  "CMakeFiles/gendt_baselines.dir/cvae.cpp.o.d"
  "libgendt_baselines.a"
  "libgendt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
