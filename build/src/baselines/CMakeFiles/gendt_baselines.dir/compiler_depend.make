# Empty compiler generated dependencies file for gendt_baselines.
# This may be replaced when dependencies are built.
