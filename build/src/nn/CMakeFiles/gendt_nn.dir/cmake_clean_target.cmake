file(REMOVE_RECURSE
  "libgendt_nn.a"
)
