# Empty compiler generated dependencies file for gendt_nn.
# This may be replaced when dependencies are built.
