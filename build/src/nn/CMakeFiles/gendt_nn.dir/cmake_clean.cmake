file(REMOVE_RECURSE
  "CMakeFiles/gendt_nn.dir/layers.cpp.o"
  "CMakeFiles/gendt_nn.dir/layers.cpp.o.d"
  "CMakeFiles/gendt_nn.dir/mat.cpp.o"
  "CMakeFiles/gendt_nn.dir/mat.cpp.o.d"
  "CMakeFiles/gendt_nn.dir/optim.cpp.o"
  "CMakeFiles/gendt_nn.dir/optim.cpp.o.d"
  "CMakeFiles/gendt_nn.dir/serialize.cpp.o"
  "CMakeFiles/gendt_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/gendt_nn.dir/tensor.cpp.o"
  "CMakeFiles/gendt_nn.dir/tensor.cpp.o.d"
  "libgendt_nn.a"
  "libgendt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
