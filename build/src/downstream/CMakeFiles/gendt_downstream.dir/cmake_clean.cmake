file(REMOVE_RECURSE
  "CMakeFiles/gendt_downstream.dir/coverage.cpp.o"
  "CMakeFiles/gendt_downstream.dir/coverage.cpp.o.d"
  "CMakeFiles/gendt_downstream.dir/extended.cpp.o"
  "CMakeFiles/gendt_downstream.dir/extended.cpp.o.d"
  "CMakeFiles/gendt_downstream.dir/handover.cpp.o"
  "CMakeFiles/gendt_downstream.dir/handover.cpp.o.d"
  "CMakeFiles/gendt_downstream.dir/qoe.cpp.o"
  "CMakeFiles/gendt_downstream.dir/qoe.cpp.o.d"
  "libgendt_downstream.a"
  "libgendt_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
