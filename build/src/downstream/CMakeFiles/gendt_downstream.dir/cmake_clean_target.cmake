file(REMOVE_RECURSE
  "libgendt_downstream.a"
)
