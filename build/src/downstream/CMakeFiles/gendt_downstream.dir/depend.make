# Empty dependencies file for gendt_downstream.
# This may be replaced when dependencies are built.
