# Empty compiler generated dependencies file for gendt_sim.
# This may be replaced when dependencies are built.
