file(REMOVE_RECURSE
  "libgendt_sim.a"
)
