
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/gendt_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/dataset.cpp.o.d"
  "/root/repo/src/sim/drive_test.cpp" "src/sim/CMakeFiles/gendt_sim.dir/drive_test.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/drive_test.cpp.o.d"
  "/root/repo/src/sim/landuse.cpp" "src/sim/CMakeFiles/gendt_sim.dir/landuse.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/landuse.cpp.o.d"
  "/root/repo/src/sim/roads.cpp" "src/sim/CMakeFiles/gendt_sim.dir/roads.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/roads.cpp.o.d"
  "/root/repo/src/sim/trajectory_gen.cpp" "src/sim/CMakeFiles/gendt_sim.dir/trajectory_gen.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/trajectory_gen.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/gendt_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/gendt_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/gendt_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/gendt_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
