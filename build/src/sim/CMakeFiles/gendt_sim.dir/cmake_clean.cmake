file(REMOVE_RECURSE
  "CMakeFiles/gendt_sim.dir/dataset.cpp.o"
  "CMakeFiles/gendt_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/gendt_sim.dir/drive_test.cpp.o"
  "CMakeFiles/gendt_sim.dir/drive_test.cpp.o.d"
  "CMakeFiles/gendt_sim.dir/landuse.cpp.o"
  "CMakeFiles/gendt_sim.dir/landuse.cpp.o.d"
  "CMakeFiles/gendt_sim.dir/roads.cpp.o"
  "CMakeFiles/gendt_sim.dir/roads.cpp.o.d"
  "CMakeFiles/gendt_sim.dir/trajectory_gen.cpp.o"
  "CMakeFiles/gendt_sim.dir/trajectory_gen.cpp.o.d"
  "CMakeFiles/gendt_sim.dir/world.cpp.o"
  "CMakeFiles/gendt_sim.dir/world.cpp.o.d"
  "libgendt_sim.a"
  "libgendt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
