# Empty dependencies file for gendt_context.
# This may be replaced when dependencies are built.
