file(REMOVE_RECURSE
  "CMakeFiles/gendt_context.dir/context.cpp.o"
  "CMakeFiles/gendt_context.dir/context.cpp.o.d"
  "libgendt_context.a"
  "libgendt_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
