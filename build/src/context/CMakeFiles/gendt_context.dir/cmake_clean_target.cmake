file(REMOVE_RECURSE
  "libgendt_context.a"
)
