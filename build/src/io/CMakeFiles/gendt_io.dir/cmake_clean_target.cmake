file(REMOVE_RECURSE
  "libgendt_io.a"
)
