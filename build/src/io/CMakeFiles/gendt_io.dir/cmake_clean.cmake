file(REMOVE_RECURSE
  "CMakeFiles/gendt_io.dir/csv.cpp.o"
  "CMakeFiles/gendt_io.dir/csv.cpp.o.d"
  "libgendt_io.a"
  "libgendt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
