# Empty dependencies file for gendt_io.
# This may be replaced when dependencies are built.
