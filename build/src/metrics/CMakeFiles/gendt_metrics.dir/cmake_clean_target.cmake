file(REMOVE_RECURSE
  "libgendt_metrics.a"
)
