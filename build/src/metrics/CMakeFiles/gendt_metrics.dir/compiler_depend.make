# Empty compiler generated dependencies file for gendt_metrics.
# This may be replaced when dependencies are built.
