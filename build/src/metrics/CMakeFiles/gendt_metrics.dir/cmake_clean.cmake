file(REMOVE_RECURSE
  "CMakeFiles/gendt_metrics.dir/metrics.cpp.o"
  "CMakeFiles/gendt_metrics.dir/metrics.cpp.o.d"
  "libgendt_metrics.a"
  "libgendt_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
