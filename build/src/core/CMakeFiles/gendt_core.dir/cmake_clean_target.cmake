file(REMOVE_RECURSE
  "libgendt_core.a"
)
