# Empty compiler generated dependencies file for gendt_core.
# This may be replaced when dependencies are built.
