file(REMOVE_RECURSE
  "CMakeFiles/gendt_core.dir/active_learning.cpp.o"
  "CMakeFiles/gendt_core.dir/active_learning.cpp.o.d"
  "CMakeFiles/gendt_core.dir/model.cpp.o"
  "CMakeFiles/gendt_core.dir/model.cpp.o.d"
  "libgendt_core.a"
  "libgendt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
