# Empty dependencies file for gendt_geo.
# This may be replaced when dependencies are built.
