file(REMOVE_RECURSE
  "CMakeFiles/gendt_geo.dir/geo.cpp.o"
  "CMakeFiles/gendt_geo.dir/geo.cpp.o.d"
  "libgendt_geo.a"
  "libgendt_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
