file(REMOVE_RECURSE
  "libgendt_geo.a"
)
