file(REMOVE_RECURSE
  "CMakeFiles/gendt_radio.dir/cell.cpp.o"
  "CMakeFiles/gendt_radio.dir/cell.cpp.o.d"
  "CMakeFiles/gendt_radio.dir/propagation.cpp.o"
  "CMakeFiles/gendt_radio.dir/propagation.cpp.o.d"
  "CMakeFiles/gendt_radio.dir/units.cpp.o"
  "CMakeFiles/gendt_radio.dir/units.cpp.o.d"
  "libgendt_radio.a"
  "libgendt_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendt_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
