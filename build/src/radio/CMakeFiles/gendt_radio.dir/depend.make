# Empty dependencies file for gendt_radio.
# This may be replaced when dependencies are built.
