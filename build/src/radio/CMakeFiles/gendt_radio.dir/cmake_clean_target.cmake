file(REMOVE_RECURSE
  "libgendt_radio.a"
)
