file(REMOVE_RECURSE
  "CMakeFiles/whatif_new_cell.dir/whatif_new_cell.cpp.o"
  "CMakeFiles/whatif_new_cell.dir/whatif_new_cell.cpp.o.d"
  "whatif_new_cell"
  "whatif_new_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_new_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
