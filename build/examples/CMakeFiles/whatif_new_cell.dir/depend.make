# Empty dependencies file for whatif_new_cell.
# This may be replaced when dependencies are built.
