file(REMOVE_RECURSE
  "CMakeFiles/handover_study.dir/handover_study.cpp.o"
  "CMakeFiles/handover_study.dir/handover_study.cpp.o.d"
  "handover_study"
  "handover_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handover_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
