# Empty compiler generated dependencies file for handover_study.
# This may be replaced when dependencies are built.
