// Exact training resume: kill-and-resume through an on-disk checkpoint must
// be bitwise identical to an uninterrupted run.
//
// This is the end-to-end guarantee the checkpoint subsystem exists for:
// each epoch draws from its own derive_stream_seed(seed, epoch) RNG stream
// and the Adam slots round-trip by parameter name, so restoring
// {params, optimizer state, epoch cursor} from a GDTCKPT2 file and running
// the remaining epochs reproduces the uninterrupted parameters exactly —
// at any thread count, including resuming at a different width than the
// run that wrote the checkpoint.
#include "gendt/core/model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "gendt/sim/dataset.h"

namespace gendt::core {
namespace {

class ResumeF : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetScale scale;
    scale.train_duration_s = 200.0;
    scale.test_duration_s = 100.0;
    scale.records_per_scenario = 1;
    ds_ = new sim::Dataset(sim::make_dataset_a(scale));
    norm_ = new context::KpiNorm(context::fit_kpi_norm(ds_->train, ds_->kpis));
    context::ContextConfig cfg;
    cfg.window_len = 20;
    cfg.train_step = 20;
    cfg.max_cells = 4;
    builder_ = new context::ContextBuilder(ds_->world, cfg, *norm_, ds_->kpis);
    train_windows_ = new std::vector<context::Window>();
    for (const auto& rec : ds_->train) {
      auto w = builder_->training_windows(rec);
      train_windows_->insert(train_windows_->end(), w.begin(), w.end());
    }
    if (train_windows_->size() > 6) train_windows_->resize(6);
  }
  static void TearDownTestSuite() {
    delete train_windows_;
    delete builder_;
    delete norm_;
    delete ds_;
    train_windows_ = nullptr;
    builder_ = nullptr;
    norm_ = nullptr;
    ds_ = nullptr;
  }

  static GenDTConfig model_config(int threads) {
    GenDTConfig c;
    c.num_channels = 4;
    c.hidden = 10;
    c.resgen_hidden = 12;
    c.init_seed = 3;
    c.parallelism = {.threads = threads};
    return c;
  }

  static TrainConfig train_config(int threads) {
    TrainConfig t;
    t.epochs = 4;
    t.windows_per_step = 3;
    t.seed = 17;
    t.parallelism = {.threads = threads};
    return t;
  }

  static std::vector<nn::NamedParam> all_params(const GenDTModel& m) {
    auto params = m.generator_params();
    for (auto& p : m.discriminator_params()) params.push_back(p);
    return params;
  }

  static void expect_same_params(const GenDTModel& a, const GenDTModel& b) {
    const auto pa = all_params(a);
    const auto pb = all_params(b);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].name, pb[i].name);
      const nn::Mat& ma = pa[i].tensor.value();
      const nn::Mat& mb = pb[i].tensor.value();
      ASSERT_EQ(ma.rows(), mb.rows());
      ASSERT_EQ(ma.cols(), mb.cols());
      for (size_t j = 0; j < ma.size(); ++j)
        ASSERT_EQ(ma[j], mb[j]) << pa[i].name << " elem " << j;  // bitwise
    }
  }

  // What the CLI does each epoch: persist {cursor, params, Adam slots} as a
  // GDTCKPT2 file, atomically replacing the previous epoch's checkpoint.
  static void write_train_checkpoint(const GenDTModel& model, const TrainCheckpoint& tc,
                                     const std::string& path) {
    nn::Checkpoint ck;
    ck.meta.set_u64("train.epochs_done", static_cast<std::uint64_t>(tc.epochs_done));
    for (const auto& p : all_params(model)) ck.params.push_back({p.name, p.tensor.value()});
    ck.state = tc.opt_state;
    ASSERT_TRUE(nn::save_checkpoint(ck, path));
  }

  // Simulate a kill after `stop_epoch` epochs (run only that many — the
  // per-epoch RNG streams make the prefix identical to a full run's), then
  // resume from the file in a *fresh* model, as a restarted process would.
  static void run_interrupted_then_resumed(int first_threads, int resume_threads,
                                           int stop_epoch, GenDTModel& out) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("gendt_resume_" + std::to_string(first_threads) + "_" +
          std::to_string(resume_threads) + ".ckpt"))
            .string();

    GenDTModel first(model_config(first_threads));
    TrainConfig cfg1 = train_config(first_threads);
    cfg1.epochs = stop_epoch;
    cfg1.on_epoch_end = [&](const TrainCheckpoint& tc) {
      write_train_checkpoint(first, tc, path);
    };
    TrainStats st1 = train_gendt(first, *train_windows_, cfg1);
    ASSERT_TRUE(st1.error.empty()) << st1.error;

    nn::Checkpoint ck;
    nn::LoadResult read = nn::read_checkpoint(path, ck);
    ASSERT_TRUE(read.ok()) << read.message();
    EXPECT_EQ(read.version, 2);
    std::uint64_t done = 0;
    ASSERT_TRUE(ck.meta.get_u64("train.epochs_done", done));
    ASSERT_EQ(done, static_cast<std::uint64_t>(stop_epoch));

    nn::LoadResult applied = nn::apply_params(all_params(out), ck);
    ASSERT_TRUE(applied.ok()) << applied.message();
    TrainConfig cfg2 = train_config(resume_threads);
    cfg2.start_epoch = static_cast<int>(done);
    cfg2.resume_opt_state = ck.state;
    TrainStats st2 = train_gendt(out, *train_windows_, cfg2);
    ASSERT_TRUE(st2.error.empty()) << st2.error;
    std::remove(path.c_str());
  }

  static sim::Dataset* ds_;
  static context::KpiNorm* norm_;
  static context::ContextBuilder* builder_;
  static std::vector<context::Window>* train_windows_;
};
sim::Dataset* ResumeF::ds_ = nullptr;
context::KpiNorm* ResumeF::norm_ = nullptr;
context::ContextBuilder* ResumeF::builder_ = nullptr;
std::vector<context::Window>* ResumeF::train_windows_ = nullptr;

TEST_F(ResumeF, KillAndResumeIsBitwiseIdenticalToUninterrupted) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    GenDTModel uninterrupted(model_config(threads));
    train_gendt(uninterrupted, *train_windows_, train_config(threads));

    GenDTModel resumed(model_config(threads));
    run_interrupted_then_resumed(threads, threads, /*stop_epoch=*/2, resumed);
    expect_same_params(uninterrupted, resumed);
  }
}

TEST_F(ResumeF, ResumeAtDifferentThreadCountStillMatches) {
  // Checkpoint written by a serial run, resumed on 4 workers: the result
  // must still equal the uninterrupted serial run bit for bit.
  GenDTModel uninterrupted(model_config(1));
  train_gendt(uninterrupted, *train_windows_, train_config(1));

  GenDTModel resumed(model_config(4));
  run_interrupted_then_resumed(/*first_threads=*/1, /*resume_threads=*/4,
                               /*stop_epoch=*/2, resumed);
  expect_same_params(uninterrupted, resumed);
}

TEST_F(ResumeF, ResumeAtEveryEpochBoundaryMatches) {
  GenDTModel uninterrupted(model_config(1));
  train_gendt(uninterrupted, *train_windows_, train_config(1));

  for (int stop : {1, 3}) {
    SCOPED_TRACE("stop_epoch=" + std::to_string(stop));
    GenDTModel resumed(model_config(1));
    run_interrupted_then_resumed(1, 1, stop, resumed);
    expect_same_params(uninterrupted, resumed);
  }
}

TEST_F(ResumeF, MalformedResumeStateRefusesToTrain) {
  GenDTModel model(model_config(1));
  const auto before = all_params(model);
  std::vector<nn::Mat> snapshot;
  for (const auto& p : before) snapshot.push_back(p.tensor.value());

  TrainConfig cfg = train_config(1);
  cfg.start_epoch = 2;
  // A lone "/m" record (no /v, /t) is a corrupt slot, not a fresh start.
  cfg.resume_opt_state = {{"adam.gen/" + before[0].name + "/m",
                           nn::Mat::zeros(before[0].tensor.rows(), before[0].tensor.cols())}};
  TrainStats st = train_gendt(model, *train_windows_, cfg);
  EXPECT_FALSE(st.error.empty());
  EXPECT_TRUE(st.mse_per_epoch.empty());
  // Refusal happened before any update touched the parameters.
  const auto after = all_params(model);
  for (size_t i = 0; i < after.size(); ++i)
    for (size_t j = 0; j < snapshot[i].size(); ++j)
      ASSERT_EQ(after[i].tensor.value()[j], snapshot[i][j]);
}

}  // namespace
}  // namespace gendt::core
