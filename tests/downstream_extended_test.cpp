#include "gendt/downstream/extended.h"

#include <gtest/gtest.h>

#include "gendt/metrics/metrics.h"
#include "gendt/sim/dataset.h"

namespace gendt::downstream {
namespace {

class ExtendedF : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetScale scale;
    scale.train_duration_s = 400.0;
    scale.test_duration_s = 200.0;
    scale.records_per_scenario = 1;
    ds_ = new sim::Dataset(sim::make_dataset_a(scale));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static sim::Dataset* ds_;
};
sim::Dataset* ExtendedF::ds_ = nullptr;

TEST_F(ExtendedF, SimulatorExportsServingLoad) {
  for (const auto& rec : ds_->train) {
    for (const auto& m : rec.samples) {
      EXPECT_GE(m.serving_load, 0.0);
      EXPECT_LE(m.serving_load, 1.0);
      EXPECT_DOUBLE_EQ(m.kpi(sim::Kpi::kCellLoad), m.serving_load);
    }
  }
}

TEST_F(ExtendedF, CellLoadEstimatorExtractsSignal) {
  // Absolute per-sample load on unseen routes is noisy; the estimator must
  // at least recover real signal: positive correlation with ground truth on
  // in-distribution (training) data, and bounded outputs everywhere.
  CellLoadEstimator est({.epochs = 25, .seed = 1});
  est.fit(ds_->train);
  std::vector<double> rsrq, sinr, truth;
  for (const auto& rec : ds_->train) {
    for (const auto& m : rec.samples) {
      rsrq.push_back(m.rsrq_db);
      sinr.push_back(m.sinr_db);
      truth.push_back(m.serving_load);
    }
  }
  const auto pred = est.estimate(rsrq, sinr);
  ASSERT_EQ(pred.size(), truth.size());
  // Pearson correlation.
  const auto ts = metrics::series_stats(truth);
  const auto ps = metrics::series_stats(pred);
  double cov = 0.0;
  for (size_t i = 0; i < truth.size(); ++i)
    cov += (truth[i] - ts.mean) * (pred[i] - ps.mean);
  cov /= static_cast<double>(truth.size());
  const double corr = cov / std::max(1e-9, ts.stddev * ps.stddev);
  EXPECT_GT(corr, 0.2);
  for (double v : pred) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(ExtendedF, LinkBandwidthFeaturesAligned) {
  const auto& rec = ds_->test[0];
  const auto f = LinkBandwidthPredictor::features_from_record(rec);
  ASSERT_EQ(f.rsrp_dbm.size(), rec.samples.size());
  EXPECT_DOUBLE_EQ(f.handover[0], 0.0);  // first sample is never a handover
  int handovers = 0;
  for (double h : f.handover) handovers += h > 0.5 ? 1 : 0;
  int actual = 0;
  for (size_t i = 1; i < rec.samples.size(); ++i)
    if (rec.samples[i].serving_cell != rec.samples[i - 1].serving_cell) ++actual;
  EXPECT_EQ(handovers, actual);
}

TEST_F(ExtendedF, LinkBandwidthPredictorLearnsThroughput) {
  LinkBandwidthPredictor pred({.epochs = 25, .seed = 2});
  pred.fit(ds_->train);
  const auto& test = ds_->test[0];
  const auto f = LinkBandwidthPredictor::features_from_record(test);
  const auto y = pred.predict(f);
  const auto truth = test.kpi_series(sim::Kpi::kThroughput);
  const double mean = metrics::series_stats(truth).mean;
  std::vector<double> mean_pred(truth.size(), mean);
  // KPI-driven prediction must clearly beat the constant-mean baseline.
  EXPECT_LT(metrics::mae(truth, y), metrics::mae(truth, mean_pred));
  for (double v : y) EXPECT_GE(v, 0.0);
}

TEST_F(ExtendedF, CqiCorrelatesWithPredictedBandwidth) {
  // Sanity on the learned relationship: raising CQI (holding the rest at
  // typical values) should raise predicted bandwidth.
  LinkBandwidthPredictor pred({.epochs = 25, .seed = 3});
  pred.fit(ds_->train);
  LinkBandwidthPredictor::Features lo, hi;
  for (int k = 0; k < 10; ++k) {
    lo.rsrp_dbm.push_back(-90.0);
    lo.rsrq_db.push_back(-12.0);
    lo.cqi.push_back(3.0);
    lo.handover.push_back(0.0);
    lo.bler.push_back(0.2);
    hi.rsrp_dbm.push_back(-90.0);
    hi.rsrq_db.push_back(-12.0);
    hi.cqi.push_back(13.0);
    hi.handover.push_back(0.0);
    hi.bler.push_back(0.01);
  }
  const auto ylo = pred.predict(lo);
  const auto yhi = pred.predict(hi);
  EXPECT_GT(yhi[0], ylo[0]);
}

}  // namespace
}  // namespace gendt::downstream
