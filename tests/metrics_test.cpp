#include "gendt/metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace gendt::metrics {
namespace {

TEST(Mae, IdenticalSeriesIsZero) {
  std::vector<double> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
}

TEST(Mae, KnownValue) {
  std::vector<double> a{0, 0, 0};
  std::vector<double> b{1, -2, 3};
  EXPECT_DOUBLE_EQ(mae(a, b), 2.0);
}

TEST(Mae, EmptyIsZero) {
  std::vector<double> e;
  EXPECT_DOUBLE_EQ(mae(e, e), 0.0);
}

TEST(Dtw, IdenticalSeriesIsZero) {
  std::vector<double> a{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dtw(a, a), 0.0);
}

TEST(Dtw, ShiftToleranceBeatsMae) {
  // A pulse and its shifted copy: MAE is large, DTW small — the exact
  // property §5.1 cites for choosing DTW.
  std::vector<double> a(40, 0.0), b(40, 0.0);
  for (int i = 10; i < 15; ++i) a[static_cast<size_t>(i)] = 5.0;
  for (int i = 13; i < 18; ++i) b[static_cast<size_t>(i)] = 5.0;
  EXPECT_LT(dtw(a, b), mae(a, b) * 0.5);
}

TEST(Dtw, UnequalLengths) {
  std::vector<double> a{0, 1, 2, 3, 4};
  std::vector<double> b{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4};
  EXPECT_LT(dtw(a, b), 0.5);  // same ramp at different sampling
}

TEST(Dtw, BandedApproximatesUnbanded) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> a(100), b(100);
  for (auto& v : a) v = g(rng);
  for (auto& v : b) v = g(rng);
  const double full = dtw(a, b);
  const double banded = dtw(a, b, 20);
  EXPECT_GE(banded, full - 1e-12);      // band can only restrict paths
  EXPECT_LT(banded, full * 1.5 + 0.5);  // but should stay close
}

TEST(Dtw, SymmetricAndNonNegative) {
  std::vector<double> a{3, 1, 4, 1, 5};
  std::vector<double> b{2, 7, 1, 8};
  EXPECT_GE(dtw(a, b), 0.0);
  EXPECT_DOUBLE_EQ(dtw(a, b), dtw(b, a));
}

TEST(Histogram, DensitiesSumToOne) {
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto h = histogram(x, 0.0, 10.0, 5);
  double s = 0.0;
  for (double v : h) s += v;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  std::vector<double> x{-100.0, 100.0};
  auto h = histogram(x, 0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.front(), 0.5);
  EXPECT_DOUBLE_EQ(h.back(), 0.5);
}

TEST(Wasserstein, IdenticalIsZero) {
  std::vector<double> a{1, 2, 3, 4};
  EXPECT_NEAR(wasserstein1(a, a), 0.0, 1e-12);
}

TEST(Wasserstein, ShiftedDeltaEqualsShift) {
  std::vector<double> a(100, 0.0);
  std::vector<double> b(100, 3.0);
  EXPECT_NEAR(wasserstein1(a, b), 3.0, 1e-9);
}

TEST(Wasserstein, UnequalSampleCounts) {
  std::vector<double> a(50, 1.0);
  std::vector<double> b(200, 2.0);
  EXPECT_NEAR(wasserstein1(a, b), 1.0, 1e-9);
}

TEST(Hwd, ZeroForSameDistribution) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> g(-90.0, 10.0);
  std::vector<double> a(5000), b(5000);
  for (auto& v : a) v = g(rng);
  for (auto& v : b) v = g(rng);
  EXPECT_LT(hwd(a, b), 1.0);  // same law -> small
}

TEST(Hwd, DetectsMeanShift) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g1(-90.0, 10.0), g2(-80.0, 10.0);
  std::vector<double> a(5000), b(5000);
  for (auto& v : a) v = g1(rng);
  for (auto& v : b) v = g2(rng);
  EXPECT_NEAR(hwd(a, b), 10.0, 2.0);  // W1 of mean-shifted Gaussians = shift
}

TEST(Hwd, AgreesWithExactWassersteinOnSimpleCase) {
  std::vector<double> a(100, 0.0);
  std::vector<double> b(100, 5.0);
  EXPECT_NEAR(hwd(a, b, 200), wasserstein1(a, b), 0.2);
}

TEST(Ecdf, MonotoneAndBounded) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> th{0, 2.5, 5, 10};
  auto c = ecdf(x, th);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 0.4);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 1.0);
}

TEST(SeriesStats, KnownValues) {
  std::vector<double> x{1, 2, 3, 4, 5};
  auto st = series_stats(x);
  EXPECT_DOUBLE_EQ(st.mean, 3.0);
  EXPECT_NEAR(st.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(st.roc, 1.0);
  EXPECT_EQ(st.n, 5u);
}

TEST(SeriesStats, EmptySeries) {
  std::vector<double> x;
  auto st = series_stats(x);
  EXPECT_EQ(st.n, 0u);
  EXPECT_DOUBLE_EQ(st.mean, 0.0);
}

TEST(InterHandoverTimes, ExtractsDurations) {
  std::vector<double> cells{1, 1, 1, 2, 2, 3, 3, 3, 3, 1};
  std::vector<double> t{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto d = inter_handover_times(cells, t);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);  // change at t=3
  EXPECT_DOUBLE_EQ(d[1], 2.0);  // change at t=5
  EXPECT_DOUBLE_EQ(d[2], 4.0);  // change at t=9
}

TEST(InterHandoverTimes, NoChangesGivesEmpty) {
  std::vector<double> cells{7, 7, 7};
  std::vector<double> t{0, 1, 2};
  EXPECT_TRUE(inter_handover_times(cells, t).empty());
}

}  // namespace
}  // namespace gendt::metrics
