// Bitwise determinism of training and generation across thread counts.
//
// The runtime's contract (see gendt/runtime/thread_pool.h) is that the
// *math* of a parallel region is a pure function of the input and the seed:
// every parallel unit draws from its own index-derived RNG stream and
// results are reduced in index order. These tests pin that contract with
// exact (bitwise) floating-point comparisons — any scheduling leak into the
// numbers shows up as a hard failure, not a tolerance drift.
#include "gendt/core/model.h"

#include <gtest/gtest.h>

#include "gendt/sim/dataset.h"

namespace gendt::core {
namespace {

class DeterminismF : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetScale scale;
    scale.train_duration_s = 200.0;
    scale.test_duration_s = 100.0;
    scale.records_per_scenario = 1;
    ds_ = new sim::Dataset(sim::make_dataset_a(scale));
    norm_ = new context::KpiNorm(context::fit_kpi_norm(ds_->train, ds_->kpis));
    context::ContextConfig cfg;
    cfg.window_len = 20;
    cfg.train_step = 20;
    cfg.max_cells = 4;
    builder_ = new context::ContextBuilder(ds_->world, cfg, *norm_, ds_->kpis);
    train_windows_ = new std::vector<context::Window>();
    for (const auto& rec : ds_->train) {
      auto w = builder_->training_windows(rec);
      train_windows_->insert(train_windows_->end(), w.begin(), w.end());
    }
    // Keep the suite fast: a handful of windows is enough to cross several
    // accumulation-step and chunking boundaries.
    if (train_windows_->size() > 6) train_windows_->resize(6);
    gen_windows_ = new std::vector<context::Window>(builder_->generation_windows(ds_->test[0]));
    if (gen_windows_->size() > 4) gen_windows_->resize(4);
  }
  static void TearDownTestSuite() {
    delete gen_windows_;
    delete train_windows_;
    delete builder_;
    delete norm_;
    delete ds_;
    gen_windows_ = nullptr;
    train_windows_ = nullptr;
    builder_ = nullptr;
    norm_ = nullptr;
    ds_ = nullptr;
  }

  static GenDTConfig model_config(int threads) {
    GenDTConfig c;
    c.num_channels = 4;
    c.hidden = 10;
    c.resgen_hidden = 12;
    c.init_seed = 3;
    c.parallelism = {.threads = threads};
    return c;
  }

  static TrainConfig train_config(int threads) {
    TrainConfig t;
    t.epochs = 2;
    t.windows_per_step = 3;
    t.seed = 17;
    t.parallelism = {.threads = threads};
    return t;
  }

  // EXPECT_EQ on doubles is exact equality — that is the point here.
  static void expect_same_mat(const nn::Mat& a, const nn::Mat& b, const char* what) {
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << what << " elem " << i;
  }

  static void expect_same_params(const GenDTModel& a, const GenDTModel& b) {
    const auto pa = a.generator_params();
    const auto pb = b.generator_params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].name, pb[i].name);
      expect_same_mat(pa[i].tensor.value(), pb[i].tensor.value(), pa[i].name.c_str());
    }
    const auto da = a.discriminator_params();
    const auto db = b.discriminator_params();
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i)
      expect_same_mat(da[i].tensor.value(), db[i].tensor.value(), da[i].name.c_str());
  }

  static void expect_same_samples(const std::vector<WindowSample>& a,
                                  const std::vector<WindowSample>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      expect_same_mat(a[i].output, b[i].output, "output");
      expect_same_mat(a[i].mean, b[i].mean, "mean");
      expect_same_mat(a[i].res_mu, b[i].res_mu, "res_mu");
      expect_same_mat(a[i].res_sigma, b[i].res_sigma, "res_sigma");
    }
  }

  static sim::Dataset* ds_;
  static context::KpiNorm* norm_;
  static context::ContextBuilder* builder_;
  static std::vector<context::Window>* train_windows_;
  static std::vector<context::Window>* gen_windows_;
};
sim::Dataset* DeterminismF::ds_ = nullptr;
context::KpiNorm* DeterminismF::norm_ = nullptr;
context::ContextBuilder* DeterminismF::builder_ = nullptr;
std::vector<context::Window>* DeterminismF::train_windows_ = nullptr;
std::vector<context::Window>* DeterminismF::gen_windows_ = nullptr;

TEST_F(DeterminismF, TrainingIsBitwiseIdenticalAcrossThreadCounts) {
  GenDTModel serial(model_config(1));
  train_gendt(serial, *train_windows_, train_config(1));

  for (int threads : {2, 8}) {
    GenDTModel threaded(model_config(threads));
    train_gendt(threaded, *train_windows_, train_config(threads));
    expect_same_params(serial, threaded);

    // And the trained models generate bitwise-identical series — with the
    // generation-side fan-out itself at different widths.
    const auto s1 = serial.sample_windows(*gen_windows_, 77);
    const auto s2 = threaded.sample_windows(*gen_windows_, 77);
    expect_same_samples(s1, s2);
  }
}

TEST_F(DeterminismF, GenerationIsBitwiseIdenticalAcrossThreadCounts) {
  // Same weights (same init seed), different inference parallelism.
  GenDTModel serial(model_config(1));
  GenDTModel wide(model_config(8));
  const auto a = serial.sample_windows(*gen_windows_, 123);
  const auto b = wide.sample_windows(*gen_windows_, 123);
  expect_same_samples(a, b);
}

TEST_F(DeterminismF, TrajectoryFanOutMatchesSerialPerTrajectoryRuns) {
  GenDTModel model(model_config(4));
  std::vector<std::vector<context::Window>> trajs = {*gen_windows_, *train_windows_};
  const auto fanned = model.sample_trajectories(trajs, 555);
  ASSERT_EQ(fanned.size(), trajs.size());
  for (size_t ti = 0; ti < trajs.size(); ++ti) {
    const auto serial =
        model.sample_windows(trajs[ti], runtime::derive_stream_seed(555, ti));
    expect_same_samples(fanned[ti], serial);
  }
}

TEST_F(DeterminismF, ModelUncertaintyIsThreadCountInvariant) {
  GenDTModel serial(model_config(1));
  GenDTModel wide(model_config(8));
  const double u1 = model_uncertainty(serial, *gen_windows_, 4, 9);
  const double u2 = model_uncertainty(wide, *gen_windows_, 4, 9);
  EXPECT_EQ(u1, u2);
}

}  // namespace
}  // namespace gendt::core
